//! # terrain-oracle
//!
//! A Rust reproduction of **“Distance Oracle on Terrain Surface”** (Victor
//! Junqiu Wei, Raymond Chi-Wing Wong, Cheng Long, David M. Mount — SIGMOD
//! 2017): the **SE** space-efficient ε-approximate geodesic distance oracle
//! together with every substrate it stands on and every baseline it is
//! evaluated against.
//!
//! This facade crate re-exports the workspace:
//!
//! | crate | contents |
//! |---|---|
//! | [`terrain`] | TIN meshes, synthetic terrain generation, POIs, refinement, OFF I/O |
//! | [`geodesic`] | exact continuous-Dijkstra SSAD, edge-graph Dijkstra, Steiner graphs |
//! | [`phash`] | FKS perfect hashing |
//! | [`oracle`] (crate `se-oracle`) | partition tree, WSPD node pairs, SE construction & queries, A2A, β estimation, tiled atlas + portal routing |
//! | [`baselines`] | SP-Oracle and K-Algo |
//!
//! ## Quickstart
//!
//! ```
//! use terrain_oracle::prelude::*;
//!
//! // A terrain and some points of interest.
//! let mesh = Preset::SfSmall.mesh(0.3);
//! let pois = sample_uniform(&mesh, 25, 42);
//!
//! // Build the SE oracle with ε = 0.1 over exact geodesics.
//! let oracle = P2POracle::build(
//!     &mesh, &pois, 0.1, EngineKind::Exact, &BuildConfig::default(),
//! ).unwrap();
//!
//! // Microsecond-scale ε-approximate queries.
//! let d = oracle.distance(3, 17);
//! assert!(d > 0.0);
//! ```

#![forbid(unsafe_code)]
pub use baselines;
pub use geodesic;
pub use phash;
pub use se_oracle as oracle;
pub use terrain;

/// The items most applications need.
pub mod prelude {
    pub use baselines::{KAlgo, SpOracle};
    pub use geodesic::engine::{GeodesicEngine, Stop};
    pub use geodesic::{
        geodesic_voronoi, shortest_path, shortest_path_straightened, shortest_vertex_path,
        shortest_vertex_path_straightened, trace_descent_path, EdgeGraphEngine, IchEngine,
        SteinerEngine, SteinerGraph, SurfacePath, VoronoiResult,
    };
    pub use se_oracle::{
        A2AOracle, Atlas, AtlasConfig, AtlasHandle, BuildConfig, ConstructionMethod, DetourPoi,
        DynamicOracle, EngineKind, Neighbor, P2POracle, PathIndex, ProximityIndex, QueryHandle,
        SeOracle, SelectionStrategy, ShortestPath, TileStore, TileStoreStats, EPS_QUANT,
    };
    pub use terrain::gen::{diamond_square, Heightfield, Preset};
    pub use terrain::poi::{
        dedup_pois, sample_clustered, sample_uniform, scale_pois, vertices_as_pois,
    };
    pub use terrain::refine::insert_surface_points;
    pub use terrain::tile::{TileGridConfig, TilePartition};
    pub use terrain::{SurfacePoint, TerrainMesh, Vec3};
}
