//! `oracle-loadgen` — replay a deterministic pair workload against an
//! `oracled` server and report latency/throughput, optionally verifying
//! every answer bit-for-bit against an in-process replay.
//!
//! ```text
//! oracle-loadgen --addr 127.0.0.1:7474 --clients 8 --requests 200 --pairs 64
//! oracle-loadgen --addr 127.0.0.1:7474 --verify --image oracle.seor
//! oracle-loadgen --addr 127.0.0.1:7474 --stats
//! oracle-loadgen --addr 127.0.0.1:7474 --metrics
//! oracle-loadgen --addr 127.0.0.1:7474 --shutdown
//! ```
//!
//! Workloads come from `se_oracle::serve::pair_stream`, a splitmix64
//! generator keyed by `(salt, stream)` — client `c`'s request `r` uses
//! stream `c·requests + r`, so a serial in-process replay regenerates any
//! worker's workload exactly. That is what makes `--verify` meaningful:
//! socket answers must equal `distance_many` on the same image, bit for
//! bit, regardless of how the server coalesced them.

use se_oracle::atlas::{Atlas, AtlasHandle};
use se_oracle::net::{Connection, NetError, Request, Response};
use se_oracle::oracle::SeOracle;
use se_oracle::persist::{ATLAS_MAGIC, ORACLE_MAGIC};
use se_oracle::serve::{pair_stream, QueryHandle};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "\
oracle-loadgen — drive an oracled server with a deterministic pair workload

USAGE:
  oracle-loadgen --addr <host:port> [--clients <n>] [--requests <n>]
                 [--pairs <n>] [--salt <u64>]
                 [--verify --image <file.seor|file.seat>]
  oracle-loadgen --addr <host:port> --stats      print server counters
  oracle-loadgen --addr <host:port> --metrics    print the server's metrics
                                                 registry (text exposition)
  oracle-loadgen --addr <host:port> --shutdown   stop the server

OPTIONS:
  --clients <n>    concurrent connections (default 4)
  --requests <n>   requests per client (default 100)
  --pairs <n>      pairs per request (default 64)
  --salt <u64>     workload seed (default 42)
  --verify         assert every socket answer is bit-identical to an
                   in-process distance_many replay of the same image
  --image <file>   the image oracled serves (required with --verify)

Latency quantiles (p50/p95/p99/p99.9) come from a log-bucketed histogram of
completed round trips (<= 25% relative bucket error; max is exact). The load
is closed-loop: each client waits for its answer (and sleeps on Busy) before
sending the next request, so under backpressure these numbers understate the
latency an open-loop arrival process would experience (coordinated omission).
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if matches!(args.first().map(String::as_str), Some("--help") | Some("-h")) {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

/// Pulls the value following `--name`, removing both from `rest`.
fn take_opt(rest: &mut Vec<String>, name: &str) -> Option<String> {
    let at = rest.iter().position(|a| a == name)?;
    if at + 1 >= rest.len() {
        return None;
    }
    let v = rest.remove(at + 1);
    rest.remove(at);
    Some(v)
}

/// Pulls a bare flag, removing it from `rest`.
fn take_flag(rest: &mut Vec<String>, name: &str) -> bool {
    if let Some(at) = rest.iter().position(|a| a == name) {
        rest.remove(at);
        true
    } else {
        false
    }
}

fn require(rest: &mut Vec<String>, name: &str) -> Result<String, String> {
    take_opt(rest, name).ok_or_else(|| format!("missing required option {name}"))
}

fn reject_leftovers(rest: &[String]) -> Result<(), String> {
    if let Some(stray) = rest.iter().find(|a| a.starts_with("--")) {
        return Err(format!("unknown option '{stray}'\n{USAGE}"));
    }
    Ok(())
}

fn parse<T: std::str::FromStr>(v: &str, what: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("invalid {what}: '{v}'"))
}

/// Connects with retries so a just-spawned daemon (CI smoke) has time to
/// bind.
fn connect(addr: &str) -> Result<Connection, String> {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Connection::connect(addr) {
            Ok(c) => return Ok(c),
            Err(e) if Instant::now() >= deadline => {
                return Err(format!("connecting to {addr}: {e}"));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(100)),
        }
    }
}

/// The in-process reference for `--verify`: the same batch API the server
/// coalesces into, over the same image bytes.
#[derive(Clone)]
enum Reference {
    Oracle(QueryHandle),
    Atlas(AtlasHandle),
}

impl Reference {
    fn load(path: &str) -> Result<Self, String> {
        let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
        match bytes.get(..4) {
            Some(m) if m == ORACLE_MAGIC => {
                let o = SeOracle::load_bytes(&bytes).map_err(|e| format!("loading {path}: {e}"))?;
                Ok(Reference::Oracle(QueryHandle::new(o)))
            }
            Some(m) if m == ATLAS_MAGIC => {
                let a = Atlas::load_bytes(&bytes).map_err(|e| format!("loading {path}: {e}"))?;
                Ok(Reference::Atlas(AtlasHandle::new(a)))
            }
            _ => Err(format!("{path}: not an oracle (.seor) or atlas (.seat) image")),
        }
    }

    fn distance_many(&self, pairs: &[(u32, u32)]) -> Vec<f64> {
        match self {
            Reference::Oracle(h) => h.distance_many(pairs),
            Reference::Atlas(h) => h.distance_many(pairs),
        }
    }
}

struct ClientReport {
    latencies_us: Vec<u64>,
    pairs_answered: u64,
    busy_retries: u64,
    errors: Vec<String>,
    mismatches: u64,
}

#[allow(clippy::too_many_arguments)]
fn client_worker(
    addr: String,
    client: u64,
    requests: u64,
    pairs_per_req: usize,
    salt: u64,
    n_sites: usize,
    reference: Option<Arc<Reference>>,
) -> Result<ClientReport, String> {
    let mut conn = connect(&addr)?;
    let mut report = ClientReport {
        latencies_us: Vec::with_capacity(requests as usize),
        pairs_answered: 0,
        busy_retries: 0,
        errors: Vec::new(),
        mismatches: 0,
    };
    for r in 0..requests {
        let stream = client * requests + r;
        let pairs = pair_stream(salt, stream, pairs_per_req, n_sites);
        let t0 = Instant::now();
        let resp = loop {
            let resp = conn
                .roundtrip(&Request::Distance { id: stream, pairs: pairs.clone() })
                .map_err(|e| format!("client {client}: {e}"))?;
            match resp {
                Response::Busy { .. } => {
                    report.busy_retries += 1;
                    std::thread::sleep(Duration::from_micros(500));
                }
                other => break other,
            }
        };
        report.latencies_us.push(t0.elapsed().as_micros() as u64);
        match resp {
            Response::Distances { id, distances } => {
                if id != stream {
                    return Err(format!("client {client}: response id {id} for request {stream}"));
                }
                if distances.len() != pairs.len() {
                    return Err(format!(
                        "client {client}: {} answers for {} pairs",
                        distances.len(),
                        pairs.len()
                    ));
                }
                report.pairs_answered += distances.len() as u64;
                if let Some(reference) = &reference {
                    let expect = reference.distance_many(&pairs);
                    for (i, (&got, &want)) in distances.iter().zip(expect.iter()).enumerate() {
                        if got.to_bits() != want.to_bits() {
                            if report.mismatches < 3 {
                                report.errors.push(format!(
                                    "client {client} stream {stream} pair #{i} \
                                     ({}, {}): socket {got:?} != replay {want:?}",
                                    pairs[i].0, pairs[i].1
                                ));
                            }
                            report.mismatches += 1;
                        }
                    }
                }
            }
            Response::Error { code, message, .. } => {
                report.errors.push(format!("client {client} stream {stream}: {code:?}: {message}"));
            }
            other => {
                return Err(format!("client {client}: unexpected response {other:?}"));
            }
        }
    }
    Ok(report)
}

fn run(args: Vec<String>) -> Result<(), String> {
    let mut rest = args;
    let addr = require(&mut rest, "--addr")?;

    if take_flag(&mut rest, "--shutdown") {
        reject_leftovers(&rest)?;
        let mut conn = connect(&addr)?;
        match conn.roundtrip(&Request::Shutdown { id: 0 }) {
            Ok(Response::ShuttingDown { .. }) => {
                println!("server at {addr} is shutting down");
                Ok(())
            }
            Ok(other) => Err(format!("unexpected response {other:?}")),
            // The server may close the socket right after draining.
            Err(NetError::Disconnected) => {
                println!("server at {addr} is shutting down");
                Ok(())
            }
            Err(e) => Err(e.to_string()),
        }
    } else if take_flag(&mut rest, "--stats") {
        reject_leftovers(&rest)?;
        let mut conn = connect(&addr)?;
        match conn.roundtrip(&Request::Stats { id: 0 }) {
            Ok(Response::Stats { stats, .. }) => {
                println!("{stats:#?}");
                Ok(())
            }
            Ok(other) => Err(format!("unexpected response {other:?}")),
            Err(e) => Err(e.to_string()),
        }
    } else if take_flag(&mut rest, "--metrics") {
        reject_leftovers(&rest)?;
        let mut conn = connect(&addr)?;
        match conn.roundtrip(&Request::Metrics { id: 0 }) {
            Ok(Response::Metrics { text, .. }) => {
                print!("{text}");
                Ok(())
            }
            Ok(other) => Err(format!("unexpected response {other:?}")),
            Err(e) => Err(e.to_string()),
        }
    } else {
        let clients: u64 =
            parse(&take_opt(&mut rest, "--clients").unwrap_or("4".into()), "--clients")?;
        let requests: u64 =
            parse(&take_opt(&mut rest, "--requests").unwrap_or("100".into()), "--requests")?;
        let pairs_per_req: usize =
            parse(&take_opt(&mut rest, "--pairs").unwrap_or("64".into()), "--pairs")?;
        let salt: u64 = parse(&take_opt(&mut rest, "--salt").unwrap_or("42".into()), "--salt")?;
        let verify = take_flag(&mut rest, "--verify");
        let image = take_opt(&mut rest, "--image");
        reject_leftovers(&rest)?;
        if clients == 0 || requests == 0 || pairs_per_req == 0 {
            return Err("--clients, --requests and --pairs must be positive".into());
        }

        let reference = if verify {
            let path = image.ok_or("--verify requires --image <file>")?;
            Some(Arc::new(Reference::load(&path)?))
        } else {
            None
        };

        // One control roundtrip for the workload domain.
        let mut control = connect(&addr)?;
        let stats = match control.roundtrip(&Request::Stats { id: 0 }) {
            Ok(Response::Stats { stats, .. }) => stats,
            Ok(other) => return Err(format!("unexpected response {other:?}")),
            Err(e) => return Err(e.to_string()),
        };
        let n_sites = stats.n_sites as usize;
        if n_sites == 0 {
            return Err("server reports an image with 0 sites".into());
        }

        println!(
            "oracle-loadgen: {clients} clients x {requests} requests x {pairs_per_req} pairs \
             against {addr} ({n_sites} sites, eps {})",
            stats.epsilon
        );

        let t0 = Instant::now();
        let mut handles = Vec::new();
        for client in 0..clients {
            let addr = addr.clone();
            let reference = reference.clone();
            handles.push(std::thread::spawn(move || {
                client_worker(addr, client, requests, pairs_per_req, salt, n_sites, reference)
            }));
        }
        let hist = se_oracle::telemetry::Histogram::default();
        let mut answered = 0u64;
        let mut pairs_answered = 0u64;
        let mut busy_retries = 0u64;
        let mut mismatches = 0u64;
        let mut errors = Vec::new();
        for h in handles {
            let report = h.join().map_err(|_| "client thread panicked".to_string())??;
            answered += report.latencies_us.len() as u64;
            for &us in &report.latencies_us {
                hist.observe(us);
            }
            pairs_answered += report.pairs_answered;
            busy_retries += report.busy_retries;
            mismatches += report.mismatches;
            errors.extend(report.errors);
        }
        let elapsed = t0.elapsed().as_secs_f64();

        let snap = hist.snapshot();
        let qps = if elapsed > 0.0 { pairs_answered as f64 / elapsed } else { 0.0 };
        println!(
            "requests: {answered} answered, {busy_retries} busy-retries, {} request errors",
            errors.len()
        );
        println!(
            "latency:  p50 {} us   p95 {} us   p99 {} us   p99.9 {} us   max {} us",
            snap.quantile(0.50),
            snap.quantile(0.95),
            snap.quantile(0.99),
            snap.quantile(0.999),
            snap.max
        );
        println!("throughput: {qps:.0} pairs/s ({pairs_answered} pairs in {elapsed:.3} s)");
        for e in errors.iter().take(5) {
            eprintln!("  {e}");
        }
        if let Some(_reference) = &reference {
            if mismatches == 0 && errors.is_empty() {
                println!("verify: {pairs_answered}/{pairs_answered} answers bit-identical to in-process replay");
            } else {
                return Err(format!(
                    "verify FAILED: {mismatches} mismatched answers, {} request errors",
                    errors.len()
                ));
            }
        } else if !errors.is_empty() {
            return Err(format!("{} requests failed", errors.len()));
        }
        Ok(())
    }
}
