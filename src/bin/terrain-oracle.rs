//! `terrain-oracle` — command-line front end for building, inspecting and
//! querying SE distance-oracle images.
//!
//! ```text
//! terrain-oracle build --mesh t.off --pois p.csv --eps 0.1 --out oracle.seor
//! terrain-oracle info  --oracle oracle.seor
//! terrain-oracle query --oracle oracle.seor --pairs "0 5" "3 17"
//! terrain-oracle query-path --mesh t.off --pois p.csv --eps 0.1
//!                           --pairs "0 5" "3 17"
//! terrain-oracle query-detour --mesh t.off --pois p.csv --eps 0.1
//!                             --from 0 --to 5 --delta 0.4
//! terrain-oracle knn   --oracle oracle.seor --site 4 --k 3
//! terrain-oracle gen   --preset sf-small --scale 0.5 --out t.off
//! terrain-oracle atlas-build --mesh t.off --pois p.csv --eps 0.1
//!                            --grid 2x2 --out atlas.seat
//! terrain-oracle atlas-query --atlas atlas.seat --pairs-file q.txt
//! ```
//!
//! POIs are a CSV of `x,y` (projected onto the surface) or `x,y,z`
//! (matched to the nearest surface point by projection); `#` comments and
//! blank lines are ignored.

use se_oracle::atlas::{Atlas, AtlasConfig, AtlasHandle};
use se_oracle::oracle::{BuildConfig, SeOracle};
use se_oracle::p2p::{EngineKind, P2POracle};
use se_oracle::route::PathIndex;
use se_oracle::serve::QueryHandle;
use se_oracle::ProximityIndex;
use std::process::ExitCode;
use terrain::gen::Preset;
use terrain::locate::FaceLocator;
use terrain::poi::SurfacePoint;
use terrain::tile::TileGridConfig;
use terrain::TerrainMesh;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let r = match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("query-batch") => cmd_query_batch(&args[1..]),
        Some("query-path") => cmd_query_path(&args[1..]),
        Some("query-detour") => cmd_query_detour(&args[1..]),
        Some("atlas-build") => cmd_atlas_build(&args[1..]),
        Some("atlas-query") => cmd_atlas_query(&args[1..]),
        Some("knn") => cmd_knn(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match r {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "\
terrain-oracle — SE geodesic distance oracles on terrain surfaces

USAGE:
  terrain-oracle build --mesh <file.off> --pois <file.csv> --eps <f>
                       --out <file.seor> [--engine exact|edge|steiner]
                       [--threads <n>]   (0 = auto-detect; default 0)
                       [--compress]      (write the compact v2 image:
                       quantized + delta-coded tables; answers within
                       (1+eps)(1+EPS_QUANT), EPS_QUANT = 2^-20)
                       [--trace <file.json>]  (write a Chrome trace-event
                       JSON of the build phases; view in chrome://tracing
                       or Perfetto. The built image is byte-identical with
                       and without tracing.)
  terrain-oracle info  --oracle <file.seor>
  terrain-oracle query --oracle <file.seor> --pairs \"<s> <t>\" ...
  terrain-oracle query-batch --oracle <file.seor> [--pairs-file <f>]
                       [--threads <n>]   (pairs from the file or stdin, one
                       '<s> <t>' per line; 0 threads = auto-detect)
  terrain-oracle query-path --mesh <file.off> --pois <file.csv> --eps <f>
                       --pairs \"<s> <t>\" ... [--engine exact|edge|steiner]
                       [--steiner-points <m>] [--threads <n>]
                       (ids are POI indices from the CSV; prints one
                       '<s> <t> <distance> <length> <points>' per pair)
  terrain-oracle query-detour --mesh <file.off> --pois <file.csv> --eps <f>
                       --from <s> --to <t> --delta <f>
                       [--engine exact|edge|steiner] [--threads <n>]
                       (POIs p with d(s,p) + d(p,t) <= d(s,t) + delta;
                       prints one '<p> <d_sp> <d_pt> <total>' per POI)
  terrain-oracle atlas-build --mesh <file.off> --pois <file.csv> --eps <f>
                       --out <file.seat> [--grid <nx>x<ny>] [--overlap <f>]
                       [--portal-spacing <k>] [--engine exact|edge|steiner]
                       [--threads <n>] [--compress]   (tiled per-piece
                       oracles + portal graph; defaults: 2x2 grid, 0.15
                       overlap, spacing 8; --compress writes the compact
                       v2 image)
  terrain-oracle atlas-query --atlas <file.seat> [--pairs-file <f>]
                       [--threads <n>]   (pairs from the file or stdin, one
                       '<s> <t>' per line; 0 threads = auto-detect)
                       [--resident-budget <bytes>]  (serve out-of-core:
                       decode tiles lazily, hold at most this many decoded
                       bytes resident; answers are bit-identical to a
                       fully resident load of the same image)
  terrain-oracle knn   --oracle <file.seor> --site <s> --k <k>
  terrain-oracle gen   --preset bh|ep|sf|sf-small|bh-low --scale <f>
                       --out <file.off>
";

/// Pulls the value following `--name`, removing both from `rest`.
fn take_opt(rest: &mut Vec<String>, name: &str) -> Option<String> {
    let at = rest.iter().position(|a| a == name)?;
    if at + 1 >= rest.len() {
        return None;
    }
    let v = rest.remove(at + 1);
    rest.remove(at);
    Some(v)
}

/// Pulls a bare `--name` flag, removing it from `rest`.
fn take_flag(rest: &mut Vec<String>, name: &str) -> bool {
    match rest.iter().position(|a| a == name) {
        Some(at) => {
            rest.remove(at);
            true
        }
        None => false,
    }
}

fn require(rest: &mut Vec<String>, name: &str) -> Result<String, String> {
    take_opt(rest, name).ok_or_else(|| format!("missing required option {name}"))
}

fn reject_leftovers(rest: &[String]) -> Result<(), String> {
    if let Some(stray) = rest.iter().find(|a| a.starts_with("--")) {
        return Err(format!("unknown option '{stray}'"));
    }
    Ok(())
}

fn load_mesh(path: &str) -> Result<TerrainMesh, String> {
    terrain::io::read_off_file(path).map_err(|e| format!("reading {path}: {e}"))
}

fn load_pois(path: &str, mesh: &TerrainMesh) -> Result<Vec<SurfacePoint>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let locator = FaceLocator::build(mesh);
    let mut out = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() < 2 {
            return Err(format!("{path}:{}: expected 'x,y[,z]'", ln + 1));
        }
        let x: f64 =
            fields[0].parse().map_err(|_| format!("{path}:{}: bad x '{}'", ln + 1, fields[0]))?;
        let y: f64 =
            fields[1].parse().map_err(|_| format!("{path}:{}: bad y '{}'", ln + 1, fields[1]))?;
        let (face, pos) = locator
            .locate(mesh, x, y)
            .ok_or_else(|| format!("{path}:{}: ({x}, {y}) outside the terrain", ln + 1))?;
        out.push(SurfacePoint { face, pos });
    }
    if out.is_empty() {
        return Err(format!("{path}: no POIs"));
    }
    Ok(out)
}

/// Parses the optional `--engine` flag (default: exact).
fn parse_engine(rest: &mut Vec<String>) -> Result<EngineKind, String> {
    match take_opt(rest, "--engine").as_deref() {
        None | Some("exact") => Ok(EngineKind::Exact),
        Some("edge") => Ok(EngineKind::EdgeGraph),
        Some("steiner") => Ok(EngineKind::Steiner { points_per_edge: 3 }),
        Some(other) => Err(format!("unknown engine '{other}'")),
    }
}

/// Parses the optional `--threads` flag. `0` = auto-detect (the
/// `BuildConfig` convention); validated here so a typo fails before any
/// input loads.
fn parse_threads(rest: &mut Vec<String>) -> Result<usize, String> {
    match take_opt(rest, "--threads") {
        Some(t) => {
            t.parse().map_err(|_| "--threads needs a non-negative integer (0 = auto)".to_string())
        }
        None => Ok(0),
    }
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let mut rest = args.to_vec();
    let mesh_path = require(&mut rest, "--mesh")?;
    let poi_path = require(&mut rest, "--pois")?;
    let eps: f64 =
        require(&mut rest, "--eps")?.parse().map_err(|_| "--eps needs a number".to_string())?;
    let out_path = require(&mut rest, "--out")?;
    let trace_path = take_opt(&mut rest, "--trace");
    let compress = take_flag(&mut rest, "--compress");
    let engine = parse_engine(&mut rest)?;
    let threads = parse_threads(&mut rest)?;
    reject_leftovers(&rest)?;

    let mesh = load_mesh(&mesh_path)?;
    let pois = load_pois(&poi_path, &mesh)?;
    eprintln!("building SE(ε={eps}) over {} POIs on {} vertices…", pois.len(), mesh.n_vertices());
    let cfg = BuildConfig { threads, ..Default::default() };
    if trace_path.is_some() {
        se_oracle::telemetry::trace::enable();
    }
    let t0 = std::time::Instant::now();
    let oracle = P2POracle::build(&mesh, &pois, eps, engine, &cfg).map_err(|e| e.to_string())?;
    if let Some(trace_out) = &trace_path {
        let events = se_oracle::telemetry::trace::take_events();
        let json = se_oracle::telemetry::trace::export_chrome_json(&events);
        std::fs::write(trace_out, json).map_err(|e| format!("writing {trace_out}: {e}"))?;
        eprintln!(
            "wrote {} trace event(s) to {trace_out} (open in chrome://tracing or Perfetto)",
            events.len()
        );
    }
    let stats = oracle.oracle().build_stats();
    eprintln!(
        "built in {:.2?}: {} pairs, h = {}, {:.1} KiB ({} workers, SSAD cache {} hits / {} misses)",
        t0.elapsed(),
        oracle.oracle().n_pairs(),
        oracle.oracle().height(),
        oracle.storage_bytes() as f64 / 1024.0,
        stats.workers,
        stats.cache_hits,
        stats.cache_misses
    );
    let mut f =
        std::fs::File::create(&out_path).map_err(|e| format!("creating {out_path}: {e}"))?;
    if compress {
        oracle.oracle().save_to_compact(&mut f, true)
    } else {
        oracle.oracle().save_to(&mut f)
    }
    .map_err(|e| format!("writing {out_path}: {e}"))?;
    println!("{out_path}");
    Ok(())
}

fn load_oracle(rest: &mut Vec<String>) -> Result<SeOracle, String> {
    let path = require(rest, "--oracle")?;
    let mut f = std::fs::File::open(&path).map_err(|e| format!("opening {path}: {e}"))?;
    SeOracle::load_from(&mut f).map_err(|e| format!("loading {path}: {e}"))
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let mut rest = args.to_vec();
    let oracle = load_oracle(&mut rest)?;
    reject_leftovers(&rest)?;
    println!("sites:   {}", oracle.n_sites());
    println!("pairs:   {}", oracle.n_pairs());
    println!("epsilon: {}", oracle.epsilon());
    println!("height:  {}", oracle.height());
    println!("bytes:   {}", oracle.storage_bytes());
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let mut rest = args.to_vec();
    let oracle = load_oracle(&mut rest)?;
    let at = rest.iter().position(|a| a == "--pairs").ok_or("missing required option --pairs")?;
    let pair_args: Vec<String> = rest.drain(at..).skip(1).collect();
    reject_leftovers(&rest)?;
    if pair_args.is_empty() {
        return Err("--pairs needs at least one \"<s> <t>\" argument".into());
    }
    for spec in &pair_args {
        let mut it = spec.split_whitespace();
        let (s, t) = match (it.next(), it.next(), it.next()) {
            (Some(s), Some(t), None) => (s, t),
            _ => return Err(format!("bad pair '{spec}' (expected \"<s> <t>\")")),
        };
        let s: usize = s.parse().map_err(|_| format!("bad site '{s}'"))?;
        let t: usize = t.parse().map_err(|_| format!("bad site '{t}'"))?;
        let d = oracle.try_distance(s, t).ok_or_else(|| {
            format!("pair ({s}, {t}) out of range (oracle has {} sites)", oracle.n_sites())
        })?;
        println!("{s} {t} {d}");
    }
    Ok(())
}

/// Parses batch query pairs: one `<s> <t>` per line, `#` comments and
/// blank lines ignored, every id checked against `n_sites`. Errors cite
/// `source:line`, and a fully parsed batch needs no further validation.
fn parse_pair_lines(text: &str, source: &str, n_sites: usize) -> Result<Vec<(u32, u32)>, String> {
    let mut pairs = Vec::new();
    for (ln, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (s, t) = match (it.next(), it.next(), it.next()) {
            (Some(s), Some(t), None) => (s, t),
            _ => return Err(format!("{source}:{}: expected '<s> <t>', got '{line}'", ln + 1)),
        };
        let s: u32 = s.parse().map_err(|_| format!("{source}:{}: bad site '{s}'", ln + 1))?;
        let t: u32 = t.parse().map_err(|_| format!("{source}:{}: bad site '{t}'", ln + 1))?;
        if s as usize >= n_sites || t as usize >= n_sites {
            return Err(format!(
                "{source}:{}: pair ({s}, {t}) out of range (oracle has {n_sites} sites)",
                ln + 1
            ));
        }
        pairs.push((s, t));
    }
    Ok(pairs)
}

fn cmd_query_batch(args: &[String]) -> Result<(), String> {
    let mut rest = args.to_vec();
    let oracle = load_oracle(&mut rest)?;
    let pairs_path = take_opt(&mut rest, "--pairs-file");
    let threads: usize = match take_opt(&mut rest, "--threads") {
        Some(t) => t
            .parse()
            .map_err(|_| "--threads needs a non-negative integer (0 = auto)".to_string())?,
        None => 0,
    };
    reject_leftovers(&rest)?;

    let (text, source) = match &pairs_path {
        Some(p) => {
            (std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"))?, p.as_str())
        }
        None => {
            let mut s = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin(), &mut s)
                .map_err(|e| format!("reading stdin: {e}"))?;
            (s, "<stdin>")
        }
    };
    let handle = QueryHandle::new(oracle);
    let pairs = parse_pair_lines(&text, source, handle.n_sites())?;
    if pairs.is_empty() {
        return Err(format!(
            "{source}: no query pairs (one '<s> <t>' per line; \
             '#' comments and blank lines are ignored)"
        ));
    }

    let t0 = std::time::Instant::now();
    // Parsing validated every id, so the unchecked driver is safe.
    let answers = handle.distance_many_par(&pairs, threads);
    let elapsed = t0.elapsed();
    let mut out = String::with_capacity(answers.len() * 24);
    for (&(s, t), d) in pairs.iter().zip(&answers) {
        use std::fmt::Write;
        writeln!(out, "{s} {t} {d}").expect("String writes are infallible");
    }
    print!("{out}");
    // An upper bound: the shard driver spawns fewer workers than resolved
    // when the batch splits into fewer shards.
    eprintln!(
        "{} pairs in {elapsed:.2?} (up to {} workers)",
        pairs.len(),
        geodesic::pool::resolve_threads(threads)
    );
    Ok(())
}

/// Parses one `"<s> <t>"` pair spec against an id bound.
fn parse_pair_spec(spec: &str, n: usize, what: &str) -> Result<(usize, usize), String> {
    let mut it = spec.split_whitespace();
    let (s, t) = match (it.next(), it.next(), it.next()) {
        (Some(s), Some(t), None) => (s, t),
        _ => return Err(format!("bad pair '{spec}' (expected \"<s> <t>\")")),
    };
    let s: usize = s.parse().map_err(|_| format!("bad {what} '{s}'"))?;
    let t: usize = t.parse().map_err(|_| format!("bad {what} '{t}'"))?;
    if s >= n || t >= n {
        return Err(format!("pair ({s}, {t}) out of range ({n} {what}s)"));
    }
    Ok((s, t))
}

/// Shared front half of `query-path` / `query-detour`: build a fresh
/// P2P oracle from `--mesh`/`--pois`/`--eps` (persisted `.seor` images
/// answer distances only — the mesh is needed for routes).
fn build_p2p_cli(rest: &mut Vec<String>) -> Result<P2POracle, String> {
    let mesh_path = require(rest, "--mesh")?;
    let poi_path = require(rest, "--pois")?;
    let eps: f64 =
        require(rest, "--eps")?.parse().map_err(|_| "--eps needs a number".to_string())?;
    let engine = parse_engine(rest)?;
    let threads = parse_threads(rest)?;
    let mesh = load_mesh(&mesh_path)?;
    let pois = load_pois(&poi_path, &mesh)?;
    let cfg = BuildConfig { threads, ..Default::default() };
    P2POracle::build(&mesh, &pois, eps, engine, &cfg).map_err(|e| e.to_string())
}

fn cmd_query_path(args: &[String]) -> Result<(), String> {
    let mut rest = args.to_vec();
    let m: usize = match take_opt(&mut rest, "--steiner-points") {
        Some(s) => {
            s.parse().ok().filter(|&m| m >= 1).ok_or("--steiner-points needs a positive integer")?
        }
        None => 3,
    };
    let at = rest.iter().position(|a| a == "--pairs").ok_or("missing required option --pairs")?;
    let pair_args: Vec<String> = rest.drain(at..).skip(1).collect();
    if pair_args.is_empty() {
        return Err("--pairs needs at least one \"<s> <t>\" argument".into());
    }
    let p2p = build_p2p_cli(&mut rest)?;
    reject_leftovers(&rest)?;
    let pairs = pair_args
        .iter()
        .map(|spec| parse_pair_spec(spec, p2p.n_pois(), "POI"))
        .collect::<Result<Vec<_>, _>>()?;

    let paths = PathIndex::for_p2p(&p2p, m);
    for (s, t) in pairs {
        let sp = p2p.oracle().shortest_path(p2p.site_of_poi(s), p2p.site_of_poi(t), &paths);
        println!("{s} {t} {} {} {}", sp.distance, sp.path.length, sp.path.points.len());
    }
    Ok(())
}

fn cmd_query_detour(args: &[String]) -> Result<(), String> {
    let mut rest = args.to_vec();
    let from: usize = require(&mut rest, "--from")?
        .parse()
        .map_err(|_| "--from needs a POI index".to_string())?;
    let to: usize =
        require(&mut rest, "--to")?.parse().map_err(|_| "--to needs a POI index".to_string())?;
    let delta: f64 = require(&mut rest, "--delta")?
        .parse()
        .ok()
        .filter(|d: &f64| d.is_finite() && *d >= 0.0)
        .ok_or("--delta needs a finite non-negative number")?;
    let p2p = build_p2p_cli(&mut rest)?;
    reject_leftovers(&rest)?;
    for (name, id) in [("--from", from), ("--to", to)] {
        if id >= p2p.n_pois() {
            return Err(format!("{name} {id} out of range ({} POIs)", p2p.n_pois()));
        }
    }
    for p in p2p.oracle().pois_within_detour(p2p.site_of_poi(from), p2p.site_of_poi(to), delta) {
        println!("{} {} {} {}", p.site, p.from_s, p.to_t, p.via());
    }
    Ok(())
}

fn cmd_atlas_build(args: &[String]) -> Result<(), String> {
    let mut rest = args.to_vec();
    let mesh_path = require(&mut rest, "--mesh")?;
    let poi_path = require(&mut rest, "--pois")?;
    let eps: f64 =
        require(&mut rest, "--eps")?.parse().map_err(|_| "--eps needs a number".to_string())?;
    let out_path = require(&mut rest, "--out")?;
    let compress = take_flag(&mut rest, "--compress");
    let engine = parse_engine(&mut rest)?;
    let threads = parse_threads(&mut rest)?;
    let mut grid = TileGridConfig::default();
    if let Some(spec) = take_opt(&mut rest, "--grid") {
        let (nx, ny) = spec
            .split_once('x')
            .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
            .filter(|&(nx, ny)| nx >= 1 && ny >= 1)
            .ok_or_else(|| format!("--grid needs '<nx>x<ny>' (got '{spec}')"))?;
        grid.nx = nx;
        grid.ny = ny;
    }
    if let Some(f) = take_opt(&mut rest, "--overlap") {
        grid.overlap_frac =
            f.parse().map_err(|_| "--overlap needs a fraction in (0, 1)".to_string())?;
    }
    if let Some(k) = take_opt(&mut rest, "--portal-spacing") {
        grid.portal_spacing =
            k.parse().map_err(|_| "--portal-spacing needs a positive integer".to_string())?;
    }
    reject_leftovers(&rest)?;

    let mesh = load_mesh(&mesh_path)?;
    let pois = load_pois(&poi_path, &mesh)?;
    eprintln!(
        "building {}×{} atlas SE(ε={eps}) over {} POIs on {} vertices…",
        grid.nx,
        grid.ny,
        pois.len(),
        mesh.n_vertices()
    );
    let cfg = AtlasConfig {
        grid,
        build: BuildConfig { threads, ..Default::default() },
        path_points_per_edge: None,
    };
    let atlas = Atlas::build(&mesh, &pois, eps, engine, &cfg).map_err(|e| e.to_string())?;
    let s = atlas.build_stats();
    eprintln!(
        "built in {:.2?}: {} tiles ({} sites each incl. portals/guests), {} portals, \
         {} graph edges, {:.1} KiB ({} workers, {} concurrent tiles)",
        s.total,
        s.n_tiles,
        s.tile_sites.iter().map(|n| n.to_string()).collect::<Vec<_>>().join("/"),
        s.n_portals,
        s.portal_edges,
        atlas.storage_bytes() as f64 / 1024.0,
        s.workers,
        s.tile_workers
    );
    let mut f =
        std::fs::File::create(&out_path).map_err(|e| format!("creating {out_path}: {e}"))?;
    if compress { atlas.save_to_compact(&mut f, true) } else { atlas.save_to(&mut f) }
        .map_err(|e| format!("writing {out_path}: {e}"))?;
    println!("{out_path}");
    Ok(())
}

fn cmd_atlas_query(args: &[String]) -> Result<(), String> {
    let mut rest = args.to_vec();
    let path = require(&mut rest, "--atlas")?;
    let pairs_path = take_opt(&mut rest, "--pairs-file");
    let budget: Option<usize> = match take_opt(&mut rest, "--resident-budget") {
        Some(b) => Some(b.parse().map_err(|_| "--resident-budget needs a byte count".to_string())?),
        None => None,
    };
    let threads = parse_threads(&mut rest)?;
    reject_leftovers(&rest)?;

    let atlas = match budget {
        Some(bytes) => Atlas::open_out_of_core(std::path::Path::new(&path), bytes)
            .map_err(|e| format!("loading {path}: {e}"))?,
        None => {
            let mut f = std::fs::File::open(&path).map_err(|e| format!("opening {path}: {e}"))?;
            Atlas::load_from(&mut f).map_err(|e| format!("loading {path}: {e}"))?
        }
    };
    let (text, source) = match &pairs_path {
        Some(p) => {
            (std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"))?, p.as_str())
        }
        None => {
            let mut s = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin(), &mut s)
                .map_err(|e| format!("reading stdin: {e}"))?;
            (s, "<stdin>")
        }
    };
    let handle = AtlasHandle::new(atlas);
    let pairs = parse_pair_lines(&text, source, handle.n_sites())?;
    if pairs.is_empty() {
        return Err(format!(
            "{source}: no query pairs (one '<s> <t>' per line; \
             '#' comments and blank lines are ignored)"
        ));
    }

    let t0 = std::time::Instant::now();
    let answers = handle.distance_many_par(&pairs, threads);
    let elapsed = t0.elapsed();
    let mut out = String::with_capacity(answers.len() * 24);
    for (&(s, t), d) in pairs.iter().zip(&answers) {
        use std::fmt::Write;
        writeln!(out, "{s} {t} {d}").expect("String writes are infallible");
    }
    print!("{out}");
    eprintln!(
        "{} pairs in {elapsed:.2?} (up to {} workers)",
        pairs.len(),
        geodesic::pool::resolve_threads(threads)
    );
    if let Some(store) = handle.atlas().tile_store() {
        let s = store.stats();
        eprintln!(
            "out-of-core: {} hits / {} misses / {} evictions, {} of {} tiles resident \
             ({} / {} bytes)",
            s.hits,
            s.misses,
            s.evictions,
            s.resident_tiles,
            s.n_tiles,
            s.resident_bytes,
            s.budget_bytes
        );
    }
    Ok(())
}

fn cmd_knn(args: &[String]) -> Result<(), String> {
    let mut rest = args.to_vec();
    let oracle = load_oracle(&mut rest)?;
    let site: usize =
        require(&mut rest, "--site")?.parse().map_err(|_| "--site needs an integer".to_string())?;
    let k: usize =
        require(&mut rest, "--k")?.parse().map_err(|_| "--k needs an integer".to_string())?;
    reject_leftovers(&rest)?;
    if site >= oracle.n_sites() {
        return Err(format!("site {site} out of range ({} sites)", oracle.n_sites()));
    }
    let idx = ProximityIndex::new(&oracle);
    for nb in idx.knn(site, k) {
        println!("{} {}", nb.site, nb.distance);
    }
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let mut rest = args.to_vec();
    let preset = match require(&mut rest, "--preset")?.as_str() {
        "bh" => Preset::BearHead,
        "ep" => Preset::EaglePeak,
        "sf" => Preset::SanFrancisco,
        "sf-small" => Preset::SfSmall,
        "bh-low" => Preset::BearHeadLow,
        other => return Err(format!("unknown preset '{other}'")),
    };
    let scale: f64 = match take_opt(&mut rest, "--scale") {
        Some(s) => s.parse().map_err(|_| "--scale needs a number".to_string())?,
        None => 1.0,
    };
    let out = require(&mut rest, "--out")?;
    reject_leftovers(&rest)?;
    let mesh = preset.mesh(scale);
    terrain::io::write_off_file(&mesh, &out).map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!(
        "{}: {} vertices, {} faces → {out}",
        preset.name(),
        mesh.n_vertices(),
        mesh.n_faces()
    );
    println!("{out}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_opt_removes_flag_and_value() {
        let mut v: Vec<String> = ["--a", "1", "--b", "2"].iter().map(|s| s.to_string()).collect();
        assert_eq!(take_opt(&mut v, "--b"), Some("2".into()));
        assert_eq!(v, vec!["--a".to_string(), "1".into()]);
        assert_eq!(take_opt(&mut v, "--missing"), None);
    }

    #[test]
    fn take_opt_rejects_flag_at_end() {
        let mut v: Vec<String> = vec!["--a".into()];
        assert_eq!(take_opt(&mut v, "--a"), None);
    }

    #[test]
    fn leftover_flags_rejected() {
        let v: Vec<String> = vec!["--bogus".into()];
        assert!(reject_leftovers(&v).is_err());
        assert!(reject_leftovers(&[]).is_ok());
    }

    #[test]
    fn pair_specs_parse_and_bound_check() {
        assert_eq!(parse_pair_spec("3 7", 10, "POI").unwrap(), (3, 7));
        assert_eq!(parse_pair_spec(" 0  9 ", 10, "POI").unwrap(), (0, 9));
        for (spec, needle) in [
            ("3", "bad pair"),
            ("1 2 3", "bad pair"),
            ("a 2", "bad POI 'a'"),
            ("3 10", "out of range (10 POIs)"),
        ] {
            let err = parse_pair_spec(spec, 10, "POI").unwrap_err();
            assert!(err.contains(needle), "error '{err}' should contain '{needle}'");
        }
    }

    #[test]
    fn pair_lines_parse_skip_comments_and_locate_errors() {
        let ok = parse_pair_lines("# header\n0 1\n\n  2 3 \n", "f", 10).unwrap();
        assert_eq!(ok, vec![(0, 1), (2, 3)]);
        assert_eq!(parse_pair_lines("", "f", 10).unwrap(), vec![]);
        for (text, needle) in [
            ("0 1\n2\n", "f:2: expected '<s> <t>'"),
            ("0 1 2\n", "f:1: expected '<s> <t>'"),
            ("0 x\n", "f:1: bad site 'x'"),
            ("-1 0\n", "f:1: bad site '-1'"),
            ("0 1\n3 10\n", "f:2: pair (3, 10) out of range"),
        ] {
            let err = parse_pair_lines(text, "f", 10).unwrap_err();
            assert!(err.contains(needle), "error '{err}' should contain '{needle}'");
        }
    }
}
