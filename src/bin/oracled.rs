//! `oracled` — serve a persisted oracle image (`.seor`) or atlas image
//! (`.seat`) over TCP.
//!
//! ```text
//! oracled --image oracle.seor --addr 127.0.0.1:7474
//! ```
//!
//! The image kind is sniffed from the magic bytes. The daemon runs until a
//! client sends the protocol's `SHUTDOWN` verb (`oracle-loadgen
//! --shutdown`), drains every admitted request, prints the final counters,
//! and exits.

use se_oracle::atlas::{Atlas, AtlasHandle};
use se_oracle::net::{Backend, OracleServer, ServeConfig};
use se_oracle::oracle::SeOracle;
use se_oracle::persist::{ATLAS_MAGIC, ORACLE_MAGIC};
use se_oracle::serve::QueryHandle;
use std::io::Write;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
oracled — serve an oracle image over TCP

USAGE:
  oracled --image <file.seor|file.seat> --addr <host:port>
          [--resident-budget <bytes>]  serve a .seat atlas out-of-core:
                                  decode tiles lazily, hold at most this
                                  many decoded bytes resident (error for
                                  .seor images, which are monolithic)
          [--max-batch <pairs>]   target pairs per coalesced batch (default 4096)
          [--max-wait-us <us>]    how long an under-full batch waits (default 200)
          [--queue-cap <n>]       request queue bound; overflow answers Busy
                                  (default 256)
          [--log-level <l>]       structured key=value stderr logging:
                                  error (default), info (connection and
                                  shutdown lifecycle), debug (per-request
                                  noise: Busy rejections, malformed frames)

Stops on the protocol SHUTDOWN verb (`oracle-loadgen --addr <addr> --shutdown`).
The METRICS verb (`oracle-loadgen --addr <addr> --metrics`) returns the full
telemetry registry in text exposition format.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if matches!(args.first().map(String::as_str), Some("--help") | Some("-h")) {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match run(args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

/// Pulls the value following `--name`, removing both from `rest`.
fn take_opt(rest: &mut Vec<String>, name: &str) -> Option<String> {
    let at = rest.iter().position(|a| a == name)?;
    if at + 1 >= rest.len() {
        return None;
    }
    let v = rest.remove(at + 1);
    rest.remove(at);
    Some(v)
}

fn require(rest: &mut Vec<String>, name: &str) -> Result<String, String> {
    take_opt(rest, name).ok_or_else(|| format!("missing required option {name}"))
}

fn reject_leftovers(rest: &[String]) -> Result<(), String> {
    if let Some(stray) = rest.iter().find(|a| a.starts_with("--")) {
        return Err(format!("unknown option '{stray}'\n{USAGE}"));
    }
    Ok(())
}

fn parse<T: std::str::FromStr>(v: &str, what: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("invalid {what}: '{v}'"))
}

/// Loads either image kind, dispatching on the magic bytes — the file
/// never has to be named truthfully. With a resident budget, a `.seat`
/// atlas is opened out-of-core (tiles decode lazily under the budget);
/// a budget on a monolithic `.seor` image is an error.
fn load_backend(path: &str, resident_budget: Option<usize>) -> Result<Backend, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("reading {path}: {e}"))?;
    match bytes.get(..4) {
        Some(m) if m == ORACLE_MAGIC => {
            if resident_budget.is_some() {
                return Err(format!(
                    "{path}: --resident-budget only applies to atlas (.seat) images; \
                     a monolithic oracle image loads whole"
                ));
            }
            let oracle =
                SeOracle::load_bytes(&bytes).map_err(|e| format!("loading {path}: {e}"))?;
            Ok(Backend::Oracle(QueryHandle::new(oracle)))
        }
        Some(m) if m == ATLAS_MAGIC => {
            let atlas = match resident_budget {
                Some(budget) => {
                    drop(bytes);
                    Atlas::open_out_of_core(std::path::Path::new(path), budget)
                        .map_err(|e| format!("loading {path}: {e}"))?
                }
                None => Atlas::load_bytes(&bytes).map_err(|e| format!("loading {path}: {e}"))?,
            };
            Ok(Backend::Atlas(AtlasHandle::new(atlas)))
        }
        _ => Err(format!("{path}: not an oracle (.seor) or atlas (.seat) image")),
    }
}

fn run(args: Vec<String>) -> Result<(), String> {
    let mut rest = args;
    let image = require(&mut rest, "--image")?;
    let addr = require(&mut rest, "--addr")?;
    let resident_budget = match take_opt(&mut rest, "--resident-budget") {
        Some(v) => Some(parse(&v, "--resident-budget")?),
        None => None,
    };
    let mut cfg = ServeConfig::default();
    if let Some(v) = take_opt(&mut rest, "--max-batch") {
        cfg.max_batch_pairs = parse(&v, "--max-batch")?;
    }
    if let Some(v) = take_opt(&mut rest, "--max-wait-us") {
        cfg.max_wait = Duration::from_micros(parse(&v, "--max-wait-us")?);
    }
    if let Some(v) = take_opt(&mut rest, "--queue-cap") {
        cfg.queue_cap = parse(&v, "--queue-cap")?;
    }
    if let Some(v) = take_opt(&mut rest, "--log-level") {
        let level = se_oracle::telemetry::log::parse_level(&v)
            .ok_or_else(|| format!("invalid --log-level: '{v}' (error, info, or debug)"))?;
        se_oracle::telemetry::log::set_level(level);
    }
    reject_leftovers(&rest)?;

    let backend = load_backend(&image, resident_budget)?;
    let kind = match &backend {
        Backend::Oracle(_) => "oracle",
        Backend::Atlas(h) if h.atlas().tile_store().is_some() => "out-of-core atlas",
        Backend::Atlas(_) => "atlas",
    };
    let server = OracleServer::bind(&*addr, backend, cfg.clone())
        .map_err(|e| format!("binding {addr}: {e}"))?;
    let bound = server.local_addr().map_err(|e| format!("local addr: {e}"))?;
    // One parseable line on stdout, flushed, so wrappers (CI smoke, the
    // bench harness) can wait for readiness and scrape the port.
    println!("oracled listening on {bound} ({kind} image {image})");
    let _ = std::io::stdout().flush();

    let stats = server.serve();
    println!("oracled shut down after draining in-flight work");
    println!("  connections:     {}", stats.connections);
    println!("  requests:        {}", stats.requests);
    println!("  pairs:           {}", stats.pairs);
    println!("  batches:         {}", stats.batches);
    println!("  busy rejections: {}", stats.busy_rejections);
    println!("  malformed:       {}", stats.malformed);
    println!("  errors:          {}", stats.errors);
    println!("  max queue depth: {}", stats.max_queue_depth);
    let hist: Vec<String> = stats
        .batch_size_hist
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| format!("<=2^{i}:{c}"))
        .collect();
    println!("  batch sizes:     {}", if hist.is_empty() { "-".into() } else { hist.join(" ") });
    Ok(())
}
