//! SSAD-reuse cache: a source-keyed memo over any [`SiteSpace`].
//!
//! Oracle construction issues many SSAD runs *from the same center*: a
//! partition-tree center re-selected at every deeper layer re-runs its
//! covering SSAD with a halved radius, and the enhanced-edge phase revisits
//! the same centers once per layer they appear in. All engines behind
//! [`SiteSpace`] are deterministic label-setting searches, so a label that
//! is final under a stop bound `r` is **bit-identical** under any larger
//! bound — the longer run processes the same event sequence, merely
//! truncated later (the `radius_stop_finalizes_ball` tests pin this
//! contract per engine). That makes reuse exact, not approximate: a cached
//! wider run answers any narrower query by filtering, and a cached full
//! sweep answers everything.
//!
//! [`CachingSiteSpace`] is `Sync`; concurrent misses on the same source may
//! duplicate work but always store identical values, so results are
//! independent of thread count and interleaving — the property the
//! construction pipeline's determinism guarantee rests on.

use crate::sitespace::SiteSpace;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use terrain::geom::Vec3;

/// One cached SSAD outcome for a source site.
#[derive(Clone)]
enum Entry {
    /// A full sweep: every site's exact distance ([`SiteSpace::all_distances`]).
    Full(Arc<Vec<f64>>),
    /// A bounded sweep stored at its **certified horizon** (see
    /// [`crate::sitespace::Sweep`]): every site within `radius`, ascending
    /// site order. `radius` is infinite when the engine's run was
    /// exhaustive — such an entry answers everything a `Full` entry can
    /// (absent sites are unreachable).
    Bounded { radius: f64, pairs: Arc<Vec<(usize, f64)>> },
}

/// Hit/miss counters of a [`CachingSiteSpace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from memory.
    pub hits: u64,
    /// Queries that ran the underlying engine.
    pub misses: u64,
}

/// A [`SiteSpace`] decorator that memoizes SSAD results by source site.
///
/// * `all_distances` is computed at most once per site, and served for free
///   from a cached bounded sweep whose run turned out exhaustive.
/// * `sites_within(s, r)` is served from a cached full sweep, or from a
///   cached bounded sweep of radius `≥ r`; otherwise it runs once and the
///   widest run per site is kept. Bounded sweeps are stored at the
///   **certified horizon** ([`crate::sitespace::Sweep::horizon`]), which
///   can far exceed — even infinitely — the requested radius.
/// * `distance(a, b)` is served from cached sweeps when possible (a
///   bounded sweep answers when it reaches the partner site), with a pair
///   memo for the remaining point queries (the naive-construction and
///   resolver-fallback path).
pub struct CachingSiteSpace<'a> {
    inner: &'a dyn SiteSpace,
    entries: RwLock<BTreeMap<usize, Entry>>,
    pair_memo: RwLock<BTreeMap<(usize, usize), f64>>,
    hits: AtomicU64,
    misses: AtomicU64,
    /// Mirrors of `hits`/`misses` in the process-wide metrics registry
    /// (`geodesic_cache_{hits,misses}_total`), resolved once here so the
    /// hot counting paths stay single relaxed atomic adds.
    reg_hits: std::sync::Arc<obs::Counter>,
    reg_misses: std::sync::Arc<obs::Counter>,
}

impl<'a> CachingSiteSpace<'a> {
    /// An empty cache over `inner`.
    pub fn new(inner: &'a dyn SiteSpace) -> Self {
        Self {
            inner,
            entries: RwLock::new(BTreeMap::new()),
            pair_memo: RwLock::new(BTreeMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            reg_hits: obs::global().counter("geodesic_cache_hits_total"),
            reg_misses: obs::global().counter("geodesic_cache_misses_total"),
        }
    }

    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
        self.reg_hits.inc();
    }

    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.reg_misses.inc();
    }

    /// Counters so far. Hits and misses from concurrent workers are all
    /// counted; a duplicated concurrent miss counts as two misses.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    fn lookup(&self, site: usize) -> Option<Entry> {
        // lint: allow(panic, "lock poisoning means a builder thread already panicked; propagating is correct")
        self.entries.read().expect("cache lock poisoned").get(&site).cloned()
    }

    /// Inserts `candidate` unless a wider entry is already present (another
    /// worker may have raced us there).
    fn store(&self, site: usize, candidate: Entry) {
        // lint: allow(panic, "lock poisoning means a builder thread already panicked; propagating is correct")
        let mut map = self.entries.write().expect("cache lock poisoned");
        match (map.get(&site), &candidate) {
            (Some(Entry::Full(_)), _) => {}
            (Some(Entry::Bounded { radius: have, .. }), Entry::Bounded { radius, .. })
                if *have >= *radius => {}
            _ => {
                map.insert(site, candidate);
            }
        }
    }
}

impl SiteSpace for CachingSiteSpace<'_> {
    fn n_sites(&self) -> usize {
        self.inner.n_sites()
    }

    fn site_position(&self, site: usize) -> Vec3 {
        self.inner.site_position(site)
    }

    fn sites_within(&self, site: usize, radius: f64) -> Vec<(usize, f64)> {
        match self.lookup(site) {
            Some(Entry::Full(dists)) => {
                self.hit();
                dists
                    .iter()
                    .enumerate()
                    .filter(|&(_, &d)| d <= radius)
                    .map(|(i, &d)| (i, d))
                    .collect()
            }
            Some(Entry::Bounded { radius: have, pairs }) if have >= radius => {
                self.hit();
                pairs.iter().copied().filter(|&(_, d)| d <= radius).collect()
            }
            _ => {
                self.miss();
                // Store the whole sweep at the horizon the engine actually
                // certified — when the bounded run turned out exhaustive
                // (horizon ∞), this one entry answers every later query
                // from `site`, including `all_distances` and `distance`.
                let span = obs::trace::span("ssad", "sites-within");
                let sweep = self.inner.sites_within_horizon(site, radius);
                drop(span);
                let out = sweep.clipped(radius);
                self.store(
                    site,
                    Entry::Bounded { radius: sweep.horizon, pairs: Arc::new(sweep.pairs) },
                );
                out
            }
        }
    }

    fn all_distances(&self, site: usize) -> Vec<f64> {
        match self.lookup(site) {
            Some(Entry::Full(dists)) => {
                self.hit();
                (*dists).clone()
            }
            // An exhaustive bounded sweep knows every distance: absent
            // sites are unreachable. Densify once and upgrade the entry.
            Some(Entry::Bounded { radius, pairs }) if radius.is_infinite() => {
                self.hit();
                let mut dists = vec![f64::INFINITY; self.inner.n_sites()];
                for &(i, d) in pairs.iter() {
                    dists[i] = d;
                }
                self.store(site, Entry::Full(Arc::new(dists.clone())));
                dists
            }
            _ => {
                self.miss();
                let span = obs::trace::span("ssad", "all-distances");
                let dists = self.inner.all_distances(site);
                drop(span);
                self.store(site, Entry::Full(Arc::new(dists.clone())));
                dists
            }
        }
    }

    /// Drops `site`'s retained *finite* bounded sweep. Full sweeps stay:
    /// they are one `Vec<f64>` each and keep serving `distance` point
    /// queries; the finite bounded pair lists are what grow with the
    /// enhanced-edge radii. An exhaustive (infinite-horizon) bounded sweep
    /// also stays, but is densified into a `Full` entry first — same
    /// answers, half the bytes — so retained memory per released site is
    /// bounded by one dense array, exactly as for full sweeps.
    fn release(&self, site: usize) {
        // lint: allow(panic, "lock poisoning means a builder thread already panicked; propagating is correct")
        let mut map = self.entries.write().expect("cache lock poisoned");
        if let Some(Entry::Bounded { radius, pairs }) = map.get(&site) {
            if radius.is_finite() {
                map.remove(&site);
            } else {
                let mut dists = vec![f64::INFINITY; self.inner.n_sites()];
                for &(i, d) in pairs.iter() {
                    dists[i] = d;
                }
                map.insert(site, Entry::Full(Arc::new(dists)));
            }
        }
    }

    fn distance(&self, a: usize, b: usize) -> f64 {
        if a == b {
            return 0.0;
        }
        // A sweep from either endpoint answers exactly when it reaches the
        // partner (bounded labels within the horizon are final), or when it
        // was exhaustive (absent ⇒ unreachable).
        for (s, t) in [(a, b), (b, a)] {
            match self.lookup(s) {
                Some(Entry::Full(dists)) => {
                    self.hit();
                    return dists[t];
                }
                Some(Entry::Bounded { radius, pairs }) => {
                    if let Ok(k) = pairs.binary_search_by_key(&t, |&(i, _)| i) {
                        self.hit();
                        return pairs[k].1;
                    }
                    if radius.is_infinite() {
                        self.hit();
                        return f64::INFINITY;
                    }
                }
                None => {}
            }
        }
        let key = (a.min(b), a.max(b));
        // lint: allow(panic, "lock poisoning means a builder thread already panicked; propagating is correct")
        if let Some(&d) = self.pair_memo.read().expect("cache lock poisoned").get(&key) {
            self.hit();
            return d;
        }
        self.miss();
        let span = obs::trace::span("ssad", "pair-distance");
        let d = self.inner.distance(key.0, key.1);
        drop(span);
        // lint: allow(panic, "lock poisoning means a builder thread already panicked; propagating is correct")
        self.pair_memo.write().expect("cache lock poisoned").insert(key, d);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ich::IchEngine;
    use crate::sitespace::VertexSiteSpace;
    use terrain::gen::diamond_square;

    fn space() -> VertexSiteSpace {
        let mesh = Arc::new(diamond_square(3, 0.6, 2).to_mesh());
        let engine = Arc::new(IchEngine::new(mesh));
        VertexSiteSpace::new(engine, vec![0, 8, 40, 72, 80, 44])
    }

    #[test]
    fn all_distances_cached_and_identical() {
        let raw = space();
        let cached = CachingSiteSpace::new(&raw);
        let first = cached.all_distances(2);
        assert_eq!(first, raw.all_distances(2), "cached result must be bit-identical");
        let again = cached.all_distances(2);
        assert_eq!(first, again);
        assert_eq!(cached.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn narrower_radius_served_from_wider_run() {
        let raw = space();
        let cached = CachingSiteSpace::new(&raw);
        let r_max = raw.all_distances(0).iter().cloned().fold(0.0, f64::max);
        let wide = cached.sites_within(0, r_max * 0.8);
        assert_eq!(wide, raw.sites_within(0, r_max * 0.8));
        assert_eq!(cached.stats().misses, 1);
        // Every narrower query is a hit and bit-identical to a direct run.
        for f in [0.6, 0.4, 0.2, 0.05] {
            let r = r_max * f;
            assert_eq!(cached.sites_within(0, r), raw.sites_within(0, r), "radius factor {f}");
        }
        assert_eq!(cached.stats(), CacheStats { hits: 4, misses: 1 });
    }

    #[test]
    fn wider_radius_upgrades_entry() {
        let raw = space();
        let cached = CachingSiteSpace::new(&raw);
        let r_max = raw.all_distances(3).iter().cloned().fold(0.0, f64::max);
        cached.sites_within(3, r_max * 0.1); // miss, narrow
        let wide = cached.sites_within(3, r_max); // miss again: wider than cached
        assert_eq!(wide, raw.sites_within(3, r_max));
        assert_eq!(cached.stats().misses, 2);
        // Now the widest run serves everything.
        assert_eq!(cached.sites_within(3, r_max * 0.5), raw.sites_within(3, r_max * 0.5));
        assert_eq!(cached.stats().hits, 1);
    }

    #[test]
    fn full_sweep_serves_sites_within_and_distance() {
        let raw = space();
        let cached = CachingSiteSpace::new(&raw);
        let all = cached.all_distances(1); // miss
        let r = all.iter().cloned().fold(0.0, f64::max) * 0.7;
        assert_eq!(cached.sites_within(1, r), raw.sites_within(1, r));
        assert_eq!(cached.distance(1, 4), raw.distance(1, 4));
        assert_eq!(cached.distance(4, 1), raw.distance(1, 4), "reverse lookup uses the sweep");
        assert_eq!(cached.stats(), CacheStats { hits: 3, misses: 1 });
    }

    #[test]
    fn distance_pair_memo() {
        let raw = space();
        let cached = CachingSiteSpace::new(&raw);
        let d = cached.distance(2, 5); // miss
        assert_eq!(d, raw.distance(2, 5));
        assert_eq!(cached.distance(5, 2), d, "symmetric memo hit");
        assert_eq!(cached.distance(2, 2), 0.0, "self distance is free");
        assert_eq!(cached.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn release_drops_bounded_but_keeps_full() {
        let raw = space();
        let cached = CachingSiteSpace::new(&raw);
        let r_max = raw.all_distances(0).iter().cloned().fold(0.0, f64::max);
        cached.sites_within(0, r_max); // miss → bounded entry
        cached.all_distances(1); // miss → full entry
        cached.release(0);
        cached.release(1);
        cached.release(5); // no entry: must be a no-op
                           // Site 0 must recompute (entry gone), site 1 must still hit.
        assert_eq!(cached.sites_within(0, r_max), raw.sites_within(0, r_max));
        assert_eq!(cached.all_distances(1), raw.all_distances(1));
        assert_eq!(cached.stats(), CacheStats { hits: 1, misses: 3 });
    }

    #[test]
    fn exhaustive_bounded_sweep_serves_everything() {
        // A bounded request wide enough to drain the engine is stored at an
        // infinite horizon: later `all_distances` and `distance` calls (and
        // wider `sites_within` calls) never touch the engine again, and
        // `release` keeps the entry.
        let raw = space();
        let cached = CachingSiteSpace::new(&raw);
        let r_max = raw.all_distances(0).iter().cloned().fold(0.0, f64::max);
        cached.sites_within(0, r_max * 16.0); // miss; exhaustive → horizon ∞
        assert_eq!(cached.stats().misses, 1);

        let all = cached.all_distances(0); // served from the sweep
        let fresh = raw.all_distances(0);
        assert_eq!(all.len(), fresh.len());
        for (c, r) in all.iter().zip(&fresh) {
            assert_eq!(c.to_bits(), r.to_bits());
        }
        assert_eq!(cached.distance(0, 4).to_bits(), raw.distance(0, 4).to_bits());
        assert_eq!(cached.sites_within(0, r_max * 32.0), raw.sites_within(0, r_max * 32.0));
        cached.release(0);
        assert_eq!(cached.sites_within(0, r_max).len(), raw.sites_within(0, r_max).len());
        assert_eq!(cached.stats().misses, 1, "everything after the sweep must hit");
    }

    #[test]
    fn bounded_sweep_answers_pair_distances_it_reaches() {
        let raw = space();
        let cached = CachingSiteSpace::new(&raw);
        let all = raw.all_distances(2);
        // Pick the nearest other site and a radius that includes it.
        let (near, d_near) = all
            .iter()
            .copied()
            .enumerate()
            .filter(|&(i, d)| i != 2 && d > 0.0)
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        cached.sites_within(2, d_near * 1.5); // miss: bounded sweep from 2
        let misses = cached.stats().misses;
        // Both query orientations answer from the cached sweep without an
        // engine run. The stored labels are the sweep's 2 → near direction
        // (FP labels of opposite sweep directions may differ in the last
        // ulp, so the reverse query is compared against the forward raw
        // value — same convention as `full_sweep_serves_sites_within_and_
        // distance`).
        assert_eq!(cached.distance(2, near).to_bits(), raw.distance(2, near).to_bits());
        assert_eq!(cached.distance(near, 2).to_bits(), raw.distance(2, near).to_bits());
        assert_eq!(cached.stats().misses, misses, "pair inside the sweep must be a hit");
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let raw = space();
        let cached = CachingSiteSpace::new(&raw);
        let r_max = raw.all_distances(0).iter().cloned().fold(0.0, f64::max);
        let results: Vec<Vec<(usize, f64)>> = crate::pool::run_indexed(4, 16, |i| {
            cached.sites_within(i % 4, r_max * (0.3 + 0.1 * (i / 4) as f64))
        });
        for (i, got) in results.iter().enumerate() {
            let want = raw.sites_within(i % 4, r_max * (0.3 + 0.1 * (i / 4) as f64));
            assert_eq!(*got, want, "query {i}");
        }
        let s = cached.stats();
        assert_eq!(s.hits + s.misses, 16);
    }
}
