//! A minimal binary min-heap keyed by `f64`.
//!
//! `std::collections::BinaryHeap` needs `Ord`, which `f64` lacks; wrapping in
//! a custom struct keyed on a totally-ordered float avoids sprinkling
//! `OrderedFloat`-style adapters through the hot loops. Keys must not be NaN
//! (debug-asserted).

/// A `(key, payload)` min-heap over finite `f64` keys.
#[derive(Debug, Clone)]
pub struct MinHeap<T> {
    items: Vec<(f64, T)>,
}

impl<T> MinHeap<T> {
    pub fn new() -> Self {
        Self { items: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self { items: Vec::with_capacity(cap) }
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Pushes an item. `key` must not be NaN.
    pub fn push(&mut self, key: f64, value: T) {
        debug_assert!(!key.is_nan(), "NaN key pushed to MinHeap");
        self.items.push((key, value));
        self.sift_up(self.items.len() - 1);
    }

    /// Pops the item with the smallest key.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        if self.items.is_empty() {
            return None;
        }
        let last = self.items.len() - 1;
        self.items.swap(0, last);
        let out = self.items.pop();
        if !self.items.is_empty() {
            self.sift_down(0);
        }
        out
    }

    /// The smallest key without removing it.
    pub fn peek_key(&self) -> Option<f64> {
        self.items.first().map(|(k, _)| *k)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.items[i].0 < self.items[parent].0 {
                self.items.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.items.len();
        loop {
            let l = 2 * i + 1;
            let r = l + 1;
            let mut smallest = i;
            if l < n && self.items[l].0 < self.items[smallest].0 {
                smallest = l;
            }
            if r < n && self.items[r].0 < self.items[smallest].0 {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.items.swap(i, smallest);
            i = smallest;
        }
    }
}

impl<T> Default for MinHeap<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_key_order() {
        let mut h = MinHeap::new();
        for (k, v) in [(3.0, 'c'), (1.0, 'a'), (2.0, 'b'), (0.5, 'z'), (2.5, 'y')] {
            h.push(k, v);
        }
        let order: Vec<char> = std::iter::from_fn(|| h.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec!['z', 'a', 'b', 'y', 'c']);
    }

    #[test]
    fn peek_matches_pop() {
        let mut h = MinHeap::new();
        h.push(5.0, 1);
        h.push(2.0, 2);
        assert_eq!(h.peek_key(), Some(2.0));
        assert_eq!(h.pop(), Some((2.0, 2)));
        assert_eq!(h.peek_key(), Some(5.0));
    }

    #[test]
    fn duplicate_keys_all_pop() {
        let mut h = MinHeap::new();
        for i in 0..100 {
            h.push(1.0, i);
        }
        let mut seen = [false; 100];
        while let Some((k, v)) = h.pop() {
            assert_eq!(k, 1.0);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_sequence_sorted() {
        let mut h = MinHeap::new();
        let mut x = 12345u64;
        let mut keys = Vec::new();
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let k = (x >> 11) as f64 / (1u64 << 53) as f64;
            keys.push(k);
            h.push(k, ());
        }
        keys.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for expected in keys {
            assert_eq!(h.pop().unwrap().0, expected);
        }
        assert!(h.is_empty());
    }
}
