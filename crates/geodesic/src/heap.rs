//! Binary min-heaps keyed by `f64` for the label-setting search loops.
//!
//! `std::collections::BinaryHeap` needs `Ord`, which `f64` lacks; custom
//! heaps keyed on a totally-ordered float avoid sprinkling
//! `OrderedFloat`-style adapters through the hot loops. Keys must not be NaN
//! (debug-asserted).
//!
//! Two flavours:
//!
//! * [`MinHeap`] — a plain `(key, payload)` heap. Duplicate pushes for the
//!   same logical entry pile up and must be filtered as stale at pop time.
//! * [`IndexedMinHeap`] — a slot-indexed heap with **decrease-key**: each
//!   slot (a vertex, a window id, …) has at most one live entry, tracked
//!   through a position table. The engines' inner loops
//!   ([`crate::ich::IchEngine`], [`crate::dijkstra::EdgeGraphEngine`]) use
//!   it so stale-entry popping disappears entirely.

/// A `(key, payload)` min-heap over finite `f64` keys.
#[derive(Debug, Clone)]
pub struct MinHeap<T> {
    items: Vec<(f64, T)>,
}

impl<T> MinHeap<T> {
    /// An empty heap.
    pub fn new() -> Self {
        Self { items: Vec::new() }
    }

    /// An empty heap with pre-allocated room for `cap` entries.
    pub fn with_capacity(cap: usize) -> Self {
        Self { items: Vec::with_capacity(cap) }
    }

    /// Number of queued items.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the heap holds no items.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Pushes an item. `key` must not be NaN.
    pub fn push(&mut self, key: f64, value: T) {
        debug_assert!(!key.is_nan(), "NaN key pushed to MinHeap");
        self.items.push((key, value));
        self.sift_up(self.items.len() - 1);
    }

    /// Pops the item with the smallest key.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        if self.items.is_empty() {
            return None;
        }
        let last = self.items.len() - 1;
        self.items.swap(0, last);
        let out = self.items.pop();
        if !self.items.is_empty() {
            self.sift_down(0);
        }
        out
    }

    /// The smallest key without removing it.
    pub fn peek_key(&self) -> Option<f64> {
        self.items.first().map(|(k, _)| *k)
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.items[i].0 < self.items[parent].0 {
                self.items.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.items.len();
        loop {
            let l = 2 * i + 1;
            let r = l + 1;
            let mut smallest = i;
            if l < n && self.items[l].0 < self.items[smallest].0 {
                smallest = l;
            }
            if r < n && self.items[r].0 < self.items[smallest].0 {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.items.swap(i, smallest);
            i = smallest;
        }
    }
}

impl<T> Default for MinHeap<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Sentinel position: the slot has no live heap entry.
const ABSENT: u32 = u32::MAX;

/// A slot-indexed, 4-ary `f64` min-heap with decrease-key.
///
/// Every entry is identified by a dense `u32` *slot* (vertex id, window id,
/// …). A position table maps each slot to its current heap index, so
/// [`IndexedMinHeap::push_or_decrease`] can lower a live entry's key in
/// place instead of pushing a duplicate — the classic "stale entry" pops of
/// a plain Dijkstra loop never happen.
///
/// The heap is 4-ary rather than binary: pops dominate the engines' inner
/// loops, and a fan-out of 4 halves the sift-down depth (and with it the
/// position-table writes) while keeping each level's children in one cache
/// line.
///
/// The table grows on demand, so slots may be allocated while the search
/// runs (the ICH engine numbers windows this way). [`IndexedMinHeap::reset`]
/// reuses both allocations across runs, which is what makes the engines'
/// scratch arenas effective.
#[derive(Debug, Clone, Default)]
pub struct IndexedMinHeap {
    /// `(key, slot)` pairs in 4-ary-heap order.
    items: Vec<(f64, u32)>,
    /// `pos[slot]` = index into `items`, or [`ABSENT`].
    pos: Vec<u32>,
}

impl IndexedMinHeap {
    /// An empty heap with no slots.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the heap and prepares `n_slots` initial slots, reusing both
    /// underlying allocations. Slots beyond `n_slots` may still be pushed
    /// later; the table grows on demand.
    pub fn reset(&mut self, n_slots: usize) {
        self.items.clear();
        self.pos.clear();
        self.pos.resize(n_slots, ABSENT);
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the heap has no live entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether `slot` currently has a live entry.
    #[inline]
    pub fn contains(&self, slot: u32) -> bool {
        self.pos.get(slot as usize).is_some_and(|&p| p != ABSENT)
    }

    /// Inserts `slot` with `key`, or lowers its key if `slot` is already
    /// live with a larger one. A live entry with an equal or smaller key is
    /// left untouched. Returns `true` if the heap changed. `key` must not
    /// be NaN.
    pub fn push_or_decrease(&mut self, slot: u32, key: f64) -> bool {
        debug_assert!(!key.is_nan(), "NaN key pushed to IndexedMinHeap");
        if self.pos.len() <= slot as usize {
            self.pos.resize(slot as usize + 1, ABSENT);
        }
        let p = self.pos[slot as usize];
        if p == ABSENT {
            self.items.push((key, slot));
            self.pos[slot as usize] = (self.items.len() - 1) as u32;
            self.sift_up(self.items.len() - 1);
            true
        } else if key < self.items[p as usize].0 {
            self.items[p as usize].0 = key;
            self.sift_up(p as usize);
            true
        } else {
            false
        }
    }

    /// Pops the entry with the smallest key. The slot becomes absent (and
    /// may be re-inserted later — callers enforce their own "settled"
    /// semantics).
    pub fn pop(&mut self) -> Option<(f64, u32)> {
        if self.items.is_empty() {
            return None;
        }
        let last = self.items.len() - 1;
        self.items.swap(0, last);
        // lint: allow(panic, "invariant: guarded by the is_empty check above")
        let out = self.items.pop().expect("non-empty");
        self.pos[out.1 as usize] = ABSENT;
        if !self.items.is_empty() {
            self.pos[self.items[0].1 as usize] = 0;
            self.sift_down(0);
        }
        Some(out)
    }

    /// The smallest key without removing it.
    pub fn peek_key(&self) -> Option<f64> {
        self.items.first().map(|(k, _)| *k)
    }

    #[inline]
    fn set(&mut self, i: usize, entry: (f64, u32)) {
        self.items[i] = entry;
        self.pos[entry.1 as usize] = i as u32;
    }

    fn sift_up(&mut self, mut i: usize) {
        let entry = self.items[i];
        while i > 0 {
            let parent = (i - 1) / 4;
            if entry.0 < self.items[parent].0 {
                let moved = self.items[parent];
                self.set(i, moved);
                i = parent;
            } else {
                break;
            }
        }
        self.set(i, entry);
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.items.len();
        let entry = self.items[i];
        loop {
            let first = 4 * i + 1;
            if first >= n {
                break;
            }
            let last = (first + 4).min(n);
            let mut smallest = i;
            let mut skey = entry.0;
            for c in first..last {
                let k = self.items[c].0;
                if k < skey {
                    smallest = c;
                    skey = k;
                }
            }
            if smallest == i {
                break;
            }
            let moved = self.items[smallest];
            self.set(i, moved);
            i = smallest;
        }
        self.set(i, entry);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_key_order() {
        let mut h = MinHeap::new();
        for (k, v) in [(3.0, 'c'), (1.0, 'a'), (2.0, 'b'), (0.5, 'z'), (2.5, 'y')] {
            h.push(k, v);
        }
        let order: Vec<char> = std::iter::from_fn(|| h.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec!['z', 'a', 'b', 'y', 'c']);
    }

    #[test]
    fn peek_matches_pop() {
        let mut h = MinHeap::new();
        h.push(5.0, 1);
        h.push(2.0, 2);
        assert_eq!(h.peek_key(), Some(2.0));
        assert_eq!(h.pop(), Some((2.0, 2)));
        assert_eq!(h.peek_key(), Some(5.0));
    }

    #[test]
    fn duplicate_keys_all_pop() {
        let mut h = MinHeap::new();
        for i in 0..100 {
            h.push(1.0, i);
        }
        let mut seen = [false; 100];
        while let Some((k, v)) = h.pop() {
            assert_eq!(k, 1.0);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_sequence_sorted() {
        let mut h = MinHeap::new();
        let mut x = 12345u64;
        let mut keys = Vec::new();
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let k = (x >> 11) as f64 / (1u64 << 53) as f64;
            keys.push(k);
            h.push(k, ());
        }
        keys.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for expected in keys {
            assert_eq!(h.pop().unwrap().0, expected);
        }
        assert!(h.is_empty());
    }

    #[test]
    fn indexed_pops_in_key_order() {
        let mut h = IndexedMinHeap::new();
        h.reset(8);
        for (slot, k) in [(3u32, 3.0), (0, 1.0), (5, 2.0), (7, 0.5), (1, 2.5)] {
            assert!(h.push_or_decrease(slot, k));
        }
        let order: Vec<u32> = std::iter::from_fn(|| h.pop().map(|(_, s)| s)).collect();
        assert_eq!(order, vec![7, 0, 5, 1, 3]);
    }

    #[test]
    fn indexed_decrease_key_reorders() {
        let mut h = IndexedMinHeap::new();
        h.reset(4);
        h.push_or_decrease(0, 10.0);
        h.push_or_decrease(1, 5.0);
        h.push_or_decrease(2, 7.0);
        // Lower slot 0 below everything; raise attempts are ignored.
        assert!(h.push_or_decrease(0, 1.0));
        assert!(!h.push_or_decrease(1, 6.0), "increase must be a no-op");
        assert!(!h.push_or_decrease(1, 5.0), "equal key must be a no-op");
        assert_eq!(h.pop(), Some((1.0, 0)));
        assert_eq!(h.pop(), Some((5.0, 1)));
        assert_eq!(h.pop(), Some((7.0, 2)));
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn indexed_one_live_entry_per_slot() {
        let mut h = IndexedMinHeap::new();
        h.reset(2);
        for k in [9.0, 4.0, 6.0, 2.0] {
            h.push_or_decrease(0, k);
        }
        assert_eq!(h.len(), 1, "duplicates must collapse onto one entry");
        assert_eq!(h.pop(), Some((2.0, 0)));
        assert!(h.is_empty());
        assert!(!h.contains(0));
    }

    #[test]
    fn indexed_slots_grow_on_demand() {
        let mut h = IndexedMinHeap::new();
        h.reset(1);
        h.push_or_decrease(0, 3.0);
        h.push_or_decrease(100, 1.0); // far beyond the initial table
        assert!(h.contains(100));
        assert_eq!(h.pop(), Some((1.0, 100)));
        assert_eq!(h.pop(), Some((3.0, 0)));
    }

    #[test]
    fn indexed_reset_reuses_cleanly() {
        let mut h = IndexedMinHeap::new();
        h.reset(4);
        h.push_or_decrease(1, 1.0);
        h.push_or_decrease(2, 2.0);
        h.pop();
        h.reset(4);
        assert!(h.is_empty());
        assert!(!h.contains(1) && !h.contains(2));
        h.push_or_decrease(2, 5.0);
        assert_eq!(h.pop(), Some((5.0, 2)));
    }

    #[test]
    fn indexed_matches_plain_heap_on_random_run() {
        // Drive both heaps with the same slot/key stream (keys only ever
        // decrease per slot); the settled pop order must agree with the
        // stale-filtered plain heap.
        let mut ih = IndexedMinHeap::new();
        ih.reset(64);
        let mut ph = MinHeap::new();
        let mut best = vec![f64::INFINITY; 64];
        let mut x = 99u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let slot = ((x >> 33) % 64) as u32;
            let k = (x >> 11) as f64 / (1u64 << 53) as f64;
            if k < best[slot as usize] {
                best[slot as usize] = k;
                ih.push_or_decrease(slot, k);
                ph.push(k, slot);
            }
        }
        let mut settled = [false; 64];
        while let Some((k, s)) = ph.pop() {
            if settled[s as usize] || k > best[s as usize] {
                continue; // stale
            }
            settled[s as usize] = true;
            assert_eq!(ih.pop(), Some((k, s)));
        }
        assert!(ih.is_empty());
    }
}
