//! Shortest-path *reconstruction*: polylines on the terrain surface.
//!
//! The SE oracle answers distance queries only (the paper's scope — \[12\]
//! observes that "geodesic distance queries are intrinsically easier than
//! geodesic path queries"), but several of its motivating applications
//! (hiking routes, vehicle planning, §1.1) want the route itself. This
//! module reconstructs approximate geodesic paths over a
//! [`SteinerGraph`]: the returned polyline lies on the surface (every
//! segment is an along-edge run or a face-crossing chord), so its length is
//! always an upper bound on the true geodesic distance that converges to it
//! as the Steiner density grows.
//!
//! With `m = 0` the graph degenerates to the mesh edge graph, giving the
//! cheap network-path approximation.

use crate::heap::IndexedMinHeap;
use crate::steiner::{NodeId, SteinerGraph};
use terrain::geom::Vec3;
use terrain::VertexId;

/// A polyline on the terrain surface.
#[derive(Debug, Clone, PartialEq)]
pub struct SurfacePath {
    /// Path points from source to destination (inclusive; `≥ 1` points —
    /// a single point when source == destination).
    pub points: Vec<Vec3>,
    /// Sum of segment lengths.
    pub length: f64,
}

impl SurfacePath {
    /// Builds a path from its points, computing the length.
    pub fn from_points(points: Vec<Vec3>) -> Self {
        // The empty f64 sum is IEEE `-0.0`; `abs` normalises single-point
        // paths to plain zero (segment lengths are never negative).
        // lint: allow(h2, "sequential sum over the polyline windows in index order — fixed evaluation order")
        let length = points.windows(2).map(|w| w[0].dist(w[1])).sum::<f64>().abs();
        Self { points, length }
    }

    /// Number of segments (`points − 1`, or 0 for a degenerate path).
    pub fn n_segments(&self) -> usize {
        self.points.len().saturating_sub(1)
    }

    /// The point at arc-length parameter `t ∈ [0, length]` along the path
    /// (clamped at the ends). Useful for sampling waypoints.
    pub fn point_at(&self, t: f64) -> Vec3 {
        if self.points.len() == 1 || t <= 0.0 {
            return self.points[0];
        }
        let mut remaining = t;
        for w in self.points.windows(2) {
            let seg = w[0].dist(w[1]);
            if remaining <= seg {
                let f = if seg > 0.0 { remaining / seg } else { 0.0 };
                return w[0].lerp(w[1], f);
            }
            remaining -= seg;
        }
        // lint: allow(panic, "invariant: SurfacePath construction rejects empty point lists")
        *self.points.last().expect("non-empty path")
    }

    /// Drops interior points that are collinear with their neighbours,
    /// shortening the representation without changing the geometry.
    /// Along-edge Steiner chains collapse to single segments.
    ///
    /// The guarantee is on the **original polyline**: every dropped point
    /// stays within `tol` of the chord that replaced it, so the simplified
    /// path never deviates from the input by more than `tol` anywhere.
    /// (Testing each candidate only against its immediate neighbours would
    /// let sub-`tol` deviations compound — a long gentle arc could collapse
    /// with total deviation far beyond `tol`.)
    pub fn simplify_collinear(&self, tol: f64) -> SurfacePath {
        if self.points.len() <= 2 {
            return self.clone();
        }
        let mut out = vec![self.points[0]];
        // Index of the last kept *original* point: the running chord starts
        // there and may only swallow point `i` if every original point it
        // would replace lies within `tol` of the extended chord.
        let mut anchor = 0usize;
        for i in 1..self.points.len() - 1 {
            let a = self.points[anchor];
            let c = self.points[i + 1];
            let within = (anchor + 1..=i).all(|j| dist_point_segment(self.points[j], a, c) <= tol);
            if !within {
                out.push(self.points[i]);
                anchor = i;
            }
        }
        // lint: allow(panic, "invariant: SurfacePath construction rejects empty point lists")
        out.push(*self.points.last().expect("non-empty"));
        SurfacePath::from_points(out)
    }
}

/// Distance from `p` to the closed segment `a → b`.
fn dist_point_segment(p: Vec3, a: Vec3, b: Vec3) -> f64 {
    let ab = b - a;
    let len2 = ab.dot(ab);
    if len2 <= 0.0 {
        return p.dist(a);
    }
    let t = ((p - a).dot(ab) / len2).clamp(0.0, 1.0);
    p.dist(a.lerp(b, t))
}

/// Reconstructs the shortest `s → t` path on the Steiner graph.
///
/// Returns `None` when `t` is unreachable (cannot happen on the connected
/// meshes [`terrain::TerrainMesh`] validates, but the contract is explicit
/// for forward compatibility with partial graphs).
pub fn shortest_path(graph: &SteinerGraph, s: NodeId, t: NodeId) -> Option<SurfacePath> {
    let (nodes, dist) = shortest_node_sequence(graph, s, t)?;
    let points: Vec<Vec3> = nodes.iter().map(|&nd| graph.position(nd)).collect();
    let path = SurfacePath::from_points(points);
    debug_assert!((path.length - dist).abs() <= 1e-9 * (1.0 + path.length));
    Some(path)
}

/// Dijkstra + backtrack: the graph-shortest `s → t` node sequence and its
/// graph length. `None` when `t` is unreachable.
fn shortest_node_sequence(
    graph: &SteinerGraph,
    s: NodeId,
    t: NodeId,
) -> Option<(Vec<NodeId>, f64)> {
    if s == t {
        return Some((vec![s], 0.0));
    }
    let n = graph.n_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<NodeId> = vec![NodeId::MAX; n];
    let mut heap = IndexedMinHeap::new();
    heap.reset(n);
    dist[s as usize] = 0.0;
    heap.push_or_decrease(s, 0.0);
    while let Some((key, v)) = heap.pop() {
        if v == t {
            break;
        }
        for (u, w) in graph.neighbors(v) {
            let nd = key + w;
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                prev[u as usize] = v;
                heap.push_or_decrease(u, nd);
            }
        }
    }
    if dist[t as usize].is_infinite() {
        return None;
    }
    let mut nodes = vec![t];
    let mut cur = t;
    while cur != s {
        cur = prev[cur as usize];
        debug_assert_ne!(cur, NodeId::MAX, "broken predecessor chain");
        nodes.push(cur);
    }
    nodes.reverse();
    Some((nodes, dist[t as usize]))
}

/// Shortest path between two mesh *vertices* (vertices keep their ids as
/// graph nodes).
pub fn shortest_vertex_path(graph: &SteinerGraph, s: VertexId, t: VertexId) -> Option<SurfacePath> {
    shortest_path(graph, s as NodeId, t as NodeId)
}

/// [`shortest_path`] followed by straightening: each Steiner waypoint is
/// slid along its host mesh edge to the position minimising the length of
/// its two incident segments (the classic string-pulling step, constrained
/// to the edge sequence the graph path found), swept until the length
/// converges.
///
/// Sliding preserves the on-surface invariant: consecutive path points
/// always share a mesh face, every host edge belongs to that (convex)
/// face, so the connecting segments stay inside it. The result is never
/// longer than the raw graph path and, crucially, sheds the *quantisation*
/// error of the discrete Steiner placement — without straightening, a pair
/// of near-coincident points separated by a mesh edge must detour to the
/// nearest discrete edge point, an additive error of up to half the
/// Steiner spacing that no relative bound survives. Mesh vertices
/// (including the endpoints) never move.
pub fn shortest_path_straightened(
    graph: &SteinerGraph,
    s: NodeId,
    t: NodeId,
) -> Option<SurfacePath> {
    let (nodes, _) = shortest_node_sequence(graph, s, t)?;
    Some(straighten_on_edges(graph, &nodes))
}

/// [`shortest_path_straightened`] between two mesh *vertices*.
pub fn shortest_vertex_path_straightened(
    graph: &SteinerGraph,
    s: VertexId,
    t: VertexId,
) -> Option<SurfacePath> {
    shortest_path_straightened(graph, s as NodeId, t as NodeId)
}

/// Coordinate-descent straightening over a graph node sequence: interior
/// Steiner nodes slide along their host edge (closed-form per-point
/// optimum), vertices stay put. Deterministic: fixed sweep order, fixed
/// convergence rule, pure arithmetic.
fn straighten_on_edges(graph: &SteinerGraph, nodes: &[NodeId]) -> SurfacePath {
    let mut pts: Vec<Vec3> = nodes.iter().map(|&nd| graph.position(nd)).collect();
    if pts.len() > 2 {
        let mesh = graph.mesh();
        let nv = mesh.n_vertices();
        let m = graph.points_per_edge();
        // Host segment of each waypoint: `None` pins it (mesh vertices and
        // the two endpoints), `Some((a, b))` lets it slide along edge a–b.
        let hosts: Vec<Option<(Vec3, Vec3)>> = nodes
            .iter()
            .enumerate()
            .map(|(k, &nd)| {
                let i = nd as usize;
                if k == 0 || k == nodes.len() - 1 || i < nv || m == 0 {
                    None
                } else {
                    let e = ((i - nv) / m) as terrain::EdgeId;
                    let [va, vb] = mesh.edge(e).v;
                    Some((mesh.vertex(va), mesh.vertex(vb)))
                }
            })
            .collect();
        let mut len: f64 = pts.windows(2).map(|w| w[0].dist(w[1])).sum();
        for _ in 0..64 {
            for i in 1..pts.len() - 1 {
                if let Some((a, b)) = hosts[i] {
                    pts[i] = optimal_edge_point(pts[i - 1], pts[i + 1], a, b);
                }
            }
            let new_len: f64 = pts.windows(2).map(|w| w[0].dist(w[1])).sum();
            let converged = len - new_len <= 1e-12 * len;
            len = new_len;
            if converged {
                break;
            }
        }
        // Sliding can park a waypoint exactly on its neighbour (e.g. at a
        // shared vertex); collapse those zero-length segments.
        pts.dedup();
    }
    SurfacePath::from_points(pts)
}

/// The point `q` on segment `a → b` minimising `|p − q| + |q − n|`
/// (convex; solved by the mirror construction in the (along-edge,
/// radial-distance) plane, then clamped to the segment).
fn optimal_edge_point(p: Vec3, n: Vec3, a: Vec3, b: Vec3) -> Vec3 {
    let d = b - a;
    let l2 = d.dot(d);
    if l2 <= 0.0 {
        return a;
    }
    let l = l2.sqrt();
    // Arc-length coordinates of the two anchors along the edge line, and
    // their radial distances from it.
    let sp = (p - a).dot(d) / l;
    let sn = (n - a).dot(d) / l;
    let rp = p.dist(a.lerp(b, sp / l));
    let rn = n.dist(a.lerp(b, sn / l));
    let x = if rp + rn > 0.0 {
        // Straight line from (sp, rp) to (sn, −rn) crosses the edge axis
        // at the reflection optimum.
        sp + rp * (sn - sp) / (rp + rn)
    } else {
        // Both anchors on the edge line: any point between them is optimal.
        0.5 * (sp + sn)
    };
    a.lerp(b, (x / l).clamp(0.0, 1.0))
}

/// Traces a near-exact geodesic path by steepest descent over an *exact*
/// distance field (per-vertex labels from
/// [`crate::engine::GeodesicEngine::ssad`] with [`crate::engine::Stop::Exhaust`]).
///
/// Within each face the field is interpolated linearly and the trace
/// marches straight against its gradient, crossing edges until it reaches
/// a face incident to the source — the classic fast-marching backtrace.
/// Where the linear model stalls (saddle vertices, sliver faces) the trace
/// falls back to hopping to the best-labelled neighbouring vertex, so it
/// always terminates.
///
/// The polyline lies on the surface, so its length upper-bounds the true
/// geodesic distance; with exact labels the gap is the per-face
/// interpolation error, which vanishes on planar regions entirely.
///
/// # Panics
/// Panics if `dist.len() != mesh.n_vertices()` or if the labels of
/// `source`/`target` are not finite (run the SSAD to exhaustion first).
pub fn trace_descent_path(
    mesh: &terrain::TerrainMesh,
    dist: &[f64],
    source: VertexId,
    target: VertexId,
) -> SurfacePath {
    use terrain::FaceId;
    assert_eq!(dist.len(), mesh.n_vertices(), "label array does not match the mesh");
    assert!(
        dist[source as usize].is_finite() && dist[target as usize].is_finite(),
        "source/target labels must be finite (run SSAD to exhaustion)"
    );
    let src_pos = mesh.vertex(source);
    let mut pts = vec![mesh.vertex(target)];
    if source == target {
        return SurfacePath::from_points(pts);
    }

    // Location of the current trace point: a vertex, or a point on an edge
    // (with the face it just came out of, to avoid bouncing back).
    enum Loc {
        Vertex(VertexId),
        Edge { e: terrain::EdgeId, from: FaceId },
    }
    let mut loc = Loc::Vertex(target);
    let mut pos = mesh.vertex(target);
    let mut d_cur = dist[target as usize];
    // All tolerances are relative to the path scale `dist[target]` so the
    // trace behaves identically on metre-scale and micrometre-scale meshes.
    let scale = 1e-12 * d_cur.abs();
    let max_steps = 8 * mesh.n_faces() + 64;

    'outer: for _ in 0..max_steps {
        // Candidate faces to march through.
        let faces: Vec<FaceId> = match loc {
            Loc::Vertex(v) => {
                if v == source {
                    break;
                }
                mesh.vertex_faces(v).to_vec()
            }
            Loc::Edge { e, from } => match mesh.other_face(e, from) {
                Some(g) => vec![g],
                None => Vec::new(), // boundary: fall through to vertex hop
            },
        };

        // If any candidate face touches the source, finish with the
        // in-face straight segment (faces are planar).
        for &f in &faces {
            if mesh.face(f).contains(&source) {
                pts.push(src_pos);
                break 'outer;
            }
        }

        // March against the face gradient; keep the best strict descent.
        let mut best: Option<(f64, Vec3, terrain::EdgeId, FaceId)> = None;
        for &f in &faces {
            let Some((exit_d, exit_p, exit_e)) = face_descent_exit(mesh, dist, f, pos) else {
                continue;
            };
            if exit_d < d_cur - scale && best.as_ref().is_none_or(|(bd, ..)| exit_d < *bd) {
                best = Some((exit_d, exit_p, exit_e, f));
            }
        }
        if let Some((exit_d, exit_p, exit_e, f)) = best {
            pts.push(exit_p);
            pos = exit_p;
            d_cur = exit_d;
            loc = Loc::Edge { e: exit_e, from: f };
            continue;
        }

        // Fallback: hop to the best-labelled nearby vertex.
        let hop: Option<VertexId> = match loc {
            Loc::Vertex(v) => mesh
                .vertex_edges(v)
                .iter()
                .map(|&e| {
                    let [a, b] = mesh.edge(e).v;
                    if a == v {
                        b
                    } else {
                        a
                    }
                })
                .filter(|&u| dist[u as usize] < d_cur - scale)
                .min_by(|&x, &y| dist[x as usize].total_cmp(&dist[y as usize])),
            Loc::Edge { e, .. } => {
                let [a, b] = mesh.edge(e).v;
                [a, b]
                    .into_iter()
                    .filter(|&u| dist[u as usize] < d_cur - scale)
                    .min_by(|&x, &y| dist[x as usize].total_cmp(&dist[y as usize]))
            }
        };
        match hop {
            Some(u) => {
                pts.push(mesh.vertex(u));
                pos = mesh.vertex(u);
                d_cur = dist[u as usize];
                loc = Loc::Vertex(u);
                if u == source {
                    break;
                }
            }
            None => break, // numerically stuck: close the path below
        }
    }

    // Close the polyline at the exact source position. The tolerance is
    // relative to the path scale: an absolute cutoff would append a
    // near-duplicate endpoint on large meshes and skip closing entirely on
    // tiny ones. Within tolerance the last point is *snapped* to the source
    // (no degenerate closing segment); beyond it a closing segment is added.
    let close_tol = 1e-9 * dist[target as usize];
    match pts.last().copied() {
        Some(p) if p.dist(src_pos) <= close_tol => {
            // lint: allow(panic, "invariant: a traced path always contains the target point")
            *pts.last_mut().expect("non-empty") = src_pos;
        }
        _ => pts.push(src_pos),
    }
    pts.reverse();
    SurfacePath::from_points(pts)
}

/// Marches from `pos` against the gradient of the linear interpolant of
/// `dist` over face `f`, returning the exit `(label, point, edge)` where
/// the ray leaves the face. `None` when the gradient is degenerate or the
/// ray exits through `pos` itself.
fn face_descent_exit(
    mesh: &terrain::TerrainMesh,
    dist: &[f64],
    f: terrain::FaceId,
    pos: Vec3,
) -> Option<(f64, Vec3, terrain::EdgeId)> {
    let [va, vb, vc] = mesh.face(f);
    let (pa, pb, pc) = (mesh.vertex(va), mesh.vertex(vb), mesh.vertex(vc));
    let (da, db, dc) = (dist[va as usize], dist[vb as usize], dist[vc as usize]);
    if !(da.is_finite() && db.is_finite() && dc.is_finite()) {
        return None;
    }

    // Orthonormal in-face frame at pa.
    let u = pb - pa;
    let e1 = u.normalized()?;
    let w = pc - pa;
    let w_perp = w - e1 * w.dot(e1);
    let e2 = w_perp.normalized()?;
    let to2 = |p: Vec3| {
        let d = p - pa;
        (d.dot(e1), d.dot(e2))
    };
    let (bx, _) = to2(pb);
    let (cx, cy) = to2(pc);
    // Solve g·(b2) = db−da, g·(c2) = dc−da with b2 = (bx, 0).
    if bx.abs() < 1e-300 || cy.abs() < 1e-300 {
        return None;
    }
    let gx = (db - da) / bx;
    let gy = ((dc - da) - gx * cx) / cy;
    let norm = (gx * gx + gy * gy).sqrt();
    if norm < 1e-300 {
        return None;
    }
    let dir = (-gx / norm, -gy / norm);

    let (px, py) = to2(pos);
    // Intersect the ray with the three boundary segments.
    let corners2 = [to2(pa), (bx, 0.0), (cx, cy)];
    let corners3 = [pa, pb, pc];
    let verts = [va, vb, vc];
    let mut best: Option<(f64, f64, usize)> = None; // (ray t, seg s, side)
    for side in 0..3 {
        let (x0, y0) = corners2[side];
        let (x1, y1) = corners2[(side + 1) % 3];
        // Solve p + t·dir = a + s·(b − a).
        let (ex, ey) = (x1 - x0, y1 - y0);
        let det = dir.0 * (-ey) - dir.1 * (-ex);
        if det.abs() < 1e-300 {
            continue;
        }
        let (rx, ry) = (x0 - px, y0 - py);
        let t = (rx * (-ey) - ry * (-ex)) / det;
        let s = (dir.0 * ry - dir.1 * rx) / det;
        let seg_len = (ex * ex + ey * ey).sqrt();
        if t > 1e-9 * (1.0 + seg_len)
            && (-1e-9..=1.0 + 1e-9).contains(&s)
            && best.is_none_or(|(bt, ..)| t < bt)
        {
            best = Some((t, s.clamp(0.0, 1.0), side));
        }
    }
    let (_, s, side) = best?;
    let a3 = corners3[side];
    let b3 = corners3[(side + 1) % 3];
    let exit_p = a3.lerp(b3, s);
    let d0 = dist[verts[side] as usize];
    let d1 = dist[verts[(side + 1) % 3] as usize];
    let exit_d = d0 + (d1 - d0) * s;
    let e = mesh.edge_between(verts[side], verts[(side + 1) % 3])?;
    Some((exit_d, exit_p, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steiner::GraphStop;
    use std::sync::Arc;
    use terrain::gen::{diamond_square, Heightfield};

    fn flat_graph(m: usize) -> SteinerGraph {
        SteinerGraph::with_points_per_edge(Arc::new(Heightfield::flat(5, 5, 1.0, 1.0).to_mesh()), m)
    }

    #[test]
    fn straightening_never_lengthens_and_respects_the_geodesic_floor() {
        // Flat mesh: the true geodesic is the straight planar segment, so
        // it floors every on-surface path.
        let mesh = Arc::new(Heightfield::flat(6, 6, 1.0, 1.0).to_mesh());
        let g = SteinerGraph::with_points_per_edge(mesh.clone(), 3);
        for (s, t) in [(0u32, 35u32), (0, 29), (2, 33), (6, 17)] {
            let raw = shortest_vertex_path(&g, s, t).unwrap();
            let straight = shortest_vertex_path_straightened(&g, s, t).unwrap();
            let chord = mesh.vertex(s).dist(mesh.vertex(t));
            assert!(
                straight.length <= raw.length + 1e-12,
                "({s},{t}): straightened {} longer than raw {}",
                straight.length,
                raw.length
            );
            assert!(
                straight.length >= chord - 1e-9,
                "({s},{t}): straightened {} below the planar geodesic {chord}",
                straight.length
            );
            assert_eq!(straight.points[0], mesh.vertex(s));
            assert_eq!(*straight.points.last().unwrap(), mesh.vertex(t));
        }
    }

    #[test]
    fn straightening_collapses_edge_quantisation() {
        // Two points a hair either side of an interior mesh edge: the raw
        // Steiner path must detour to a discrete edge point (an additive
        // error of up to half the Steiner spacing), while straightening
        // slides the crossing to the mirror optimum — here the straight
        // planar segment.
        use terrain::poi::SurfacePoint;
        use terrain::refine::insert_surface_points;
        let mesh = Heightfield::flat(3, 3, 1.0, 1.0).to_mesh();
        let (e, f, other) = (0..mesh.n_edges() as terrain::EdgeId)
            .find_map(|e| {
                let f = mesh.edge(e).faces[0];
                mesh.other_face(e, f).map(|g| (e, f, g))
            })
            .expect("interior edge");
        let centroid = |f: terrain::FaceId| {
            let [a, b, c] = mesh.face(f);
            (mesh.vertex(a) + mesh.vertex(b) + mesh.vertex(c)) * (1.0 / 3.0)
        };
        let [ea, eb] = mesh.edge(e).v;
        let mid = mesh.vertex(ea).lerp(mesh.vertex(eb), 0.43);
        let pois = [
            SurfacePoint { face: f, pos: mid.lerp(centroid(f), 0.04) },
            SurfacePoint { face: other, pos: mid.lerp(centroid(other), 0.04) },
        ];
        let refined = insert_surface_points(&mesh, &pois, None).unwrap();
        let (s, t) = (refined.poi_vertices[0], refined.poi_vertices[1]);
        let g = SteinerGraph::with_points_per_edge(Arc::new(refined.mesh), 3);
        let chord = pois[0].pos.dist(pois[1].pos);
        let raw = shortest_vertex_path(&g, s, t).unwrap();
        let straight = shortest_vertex_path_straightened(&g, s, t).unwrap();
        assert!(raw.length > 2.0 * chord, "fixture must exhibit quantisation: {}", raw.length);
        assert!(
            (straight.length - chord).abs() <= 1e-9 * (1.0 + chord),
            "straightened {} should reach the planar optimum {chord}",
            straight.length
        );
    }

    #[test]
    fn optimal_edge_point_matches_scan() {
        // The closed-form mirror point beats (or ties) a dense parameter
        // scan, including clamped configurations.
        let a = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
        let b = Vec3 { x: 2.0, y: 0.0, z: 0.5 };
        for (p, n) in [
            (Vec3 { x: 0.3, y: 1.0, z: 0.0 }, Vec3 { x: 1.4, y: -2.0, z: 0.3 }),
            (Vec3 { x: -1.0, y: 0.5, z: 0.0 }, Vec3 { x: -2.0, y: -0.5, z: 0.0 }), // clamp at a
            (Vec3 { x: 3.0, y: 0.2, z: 0.5 }, Vec3 { x: 4.0, y: -0.1, z: 0.5 }),   // clamp at b
            (Vec3 { x: 0.5, y: 0.0, z: 0.125 }, Vec3 { x: 1.5, y: 0.0, z: 0.375 }), // on-line
        ] {
            let q = optimal_edge_point(p, n, a, b);
            let best = q.dist(p) + q.dist(n);
            for k in 0..=1000 {
                let cand = a.lerp(b, k as f64 / 1000.0);
                assert!(
                    best <= cand.dist(p) + cand.dist(n) + 1e-9,
                    "scan found a better point at t={}",
                    k as f64 / 1000.0
                );
            }
        }
    }

    #[test]
    fn path_length_matches_dijkstra_distance() {
        let mesh = Arc::new(diamond_square(4, 0.6, 3).to_mesh());
        let g = SteinerGraph::with_points_per_edge(mesh.clone(), 2);
        let full = g.dijkstra(0, GraphStop::Exhaust);
        for t in [5u32, 17, 40, (mesh.n_vertices() - 1) as u32] {
            let p = shortest_path(&g, 0, t).unwrap();
            assert!(
                (p.length - full.dist[t as usize]).abs() < 1e-9,
                "t={t}: path {} vs dijkstra {}",
                p.length,
                full.dist[t as usize]
            );
            // Endpoints are correct.
            assert_eq!(p.points[0], g.position(0));
            assert_eq!(*p.points.last().unwrap(), g.position(t));
        }
    }

    #[test]
    fn degenerate_same_node() {
        let g = flat_graph(1);
        let p = shortest_path(&g, 7, 7).unwrap();
        assert_eq!(p.length, 0.0);
        assert_eq!(p.points.len(), 1);
        assert_eq!(p.n_segments(), 0);
    }

    #[test]
    fn every_segment_is_short_relative_to_path() {
        // Segments connect adjacent graph nodes; none can exceed the
        // mesh diameter and the chain must be contiguous.
        let g = flat_graph(2);
        let p = shortest_vertex_path(&g, 0, 24).unwrap();
        assert!(p.points.len() >= 2);
        for w in p.points.windows(2) {
            assert!(w[0].dist(w[1]) > 0.0, "zero-length segment");
            assert!(w[0].dist(w[1]) <= 2.0, "suspiciously long hop");
        }
    }

    #[test]
    fn flat_path_converges_to_straight_line() {
        let exact = 32f64.sqrt();
        let mut prev = f64::INFINITY;
        for m in [0usize, 1, 4] {
            let g = flat_graph(m);
            let p = shortest_vertex_path(&g, 0, 24).unwrap();
            assert!(p.length >= exact - 1e-9);
            assert!(p.length <= prev + 1e-12, "length must not grow with m");
            prev = p.length;
        }
        assert!(prev < exact * 1.03, "m=4 still {prev} vs {exact}");
    }

    #[test]
    fn point_at_interpolates() {
        let p = SurfacePath::from_points(vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(1.0, 1.0, 0.0),
        ]);
        assert_eq!(p.length, 2.0);
        assert_eq!(p.point_at(0.0), Vec3::new(0.0, 0.0, 0.0));
        assert_eq!(p.point_at(0.5), Vec3::new(0.5, 0.0, 0.0));
        assert_eq!(p.point_at(1.5), Vec3::new(1.0, 0.5, 0.0));
        assert_eq!(p.point_at(99.0), Vec3::new(1.0, 1.0, 0.0));
    }

    #[test]
    fn simplify_collapses_collinear_runs() {
        let p = SurfacePath::from_points(vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(0.5, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(1.0, 1.0, 0.0),
        ]);
        let s = p.simplify_collinear(1e-12);
        assert_eq!(s.points.len(), 3);
        assert!((s.length - p.length).abs() < 1e-12);
    }

    #[test]
    fn descent_trace_on_flat_grid_is_straight() {
        use crate::engine::{GeodesicEngine, Stop};
        use crate::ich::IchEngine;
        let mesh = Arc::new(Heightfield::flat(6, 6, 1.0, 1.0).to_mesh());
        let eng = IchEngine::new(mesh.clone());
        let r = eng.ssad(0, Stop::Exhaust);
        let p = trace_descent_path(&mesh, &r.dist, 0, 35);
        let exact = 50f64.sqrt();
        assert!((p.length - exact).abs() < 1e-6 * exact, "flat trace {} vs {exact}", p.length);
        assert_eq!(p.points[0], mesh.vertex(0));
        assert_eq!(*p.points.last().unwrap(), mesh.vertex(35));
    }

    #[test]
    fn descent_trace_matches_tent_closed_form() {
        use crate::engine::{GeodesicEngine, Stop};
        use crate::ich::IchEngine;
        let mesh = Arc::new(terrain::gen::tent(9, 9, 1.0, 1.0, 2.0).to_mesh());
        let eng = IchEngine::new(mesh.clone());
        let a = 4u32 * 9; // (0, 4)
        let b = a + 8; // (8, 4)
        let r = eng.ssad(a, Stop::Exhaust);
        let p = trace_descent_path(&mesh, &r.dist, a, b);
        let exact = 2.0 * 20f64.sqrt();
        assert!((p.length - exact).abs() < 1e-4 * exact, "tent trace {} vs {exact}", p.length);
    }

    #[test]
    fn descent_trace_bounds_on_fractal_terrain() {
        use crate::engine::{GeodesicEngine, Stop};
        use crate::ich::IchEngine;
        let mesh = Arc::new(diamond_square(4, 0.7, 31).to_mesh());
        let eng = IchEngine::new(mesh.clone());
        let src = 3u32;
        let r = eng.ssad(src, Stop::Exhaust);
        for t in [40u32, 120, 200, 280] {
            let p = trace_descent_path(&mesh, &r.dist, src, t);
            // The polyline is on-surface, so ≥ the exact distance; the
            // per-face linear interpolation keeps it close.
            assert!(
                p.length >= r.dist[t as usize] - 1e-9,
                "t={t}: {} below exact {}",
                p.length,
                r.dist[t as usize]
            );
            assert!(
                p.length <= r.dist[t as usize] * 1.05 + 1e-9,
                "t={t}: trace {} too loose vs {}",
                p.length,
                r.dist[t as usize]
            );
            assert_eq!(p.points[0], mesh.vertex(src));
            assert_eq!(*p.points.last().unwrap(), mesh.vertex(t));
        }
    }

    #[test]
    fn descent_trace_degenerate_and_adjacent() {
        use crate::engine::{GeodesicEngine, Stop};
        use crate::ich::IchEngine;
        let mesh = Arc::new(Heightfield::flat(4, 4, 1.0, 1.0).to_mesh());
        let eng = IchEngine::new(mesh.clone());
        let r = eng.ssad(5, Stop::Exhaust);
        // Same vertex.
        let p = trace_descent_path(&mesh, &r.dist, 5, 5);
        assert_eq!(p.length, 0.0);
        // Adjacent vertex: single segment.
        let p = trace_descent_path(&mesh, &r.dist, 5, 6);
        assert!((p.length - 1.0).abs() < 1e-9, "adjacent trace {}", p.length);
    }

    /// Max distance from any point of `original` to the polyline `simplified`.
    fn max_deviation(original: &SurfacePath, simplified: &SurfacePath) -> f64 {
        original
            .points
            .iter()
            .map(|&p| {
                simplified
                    .points
                    .windows(2)
                    .map(|w| dist_point_segment(p, w[0], w[1]))
                    .fold(f64::INFINITY, f64::min)
            })
            .fold(0.0, f64::max)
    }

    #[test]
    fn simplify_bounds_deviation_on_gentle_arcs() {
        // A long gentle circular arc: every consecutive-triple detour is far
        // below `tol`, but the sagitta of the whole arc is ~0.01 — four
        // orders of magnitude above it. Chord-compounding simplification
        // collapses the arc almost entirely; the fixed version must keep the
        // original polyline within `tol` everywhere.
        let n = 3000usize;
        let pts: Vec<Vec3> = (0..=n)
            .map(|i| {
                let th = i as f64 * 1e-4;
                Vec3::new(th.cos(), th.sin(), 0.0)
            })
            .collect();
        let p = SurfacePath::from_points(pts);
        let tol = 1e-6;
        let s = p.simplify_collinear(tol);
        assert!(s.points.len() < p.points.len(), "nothing simplified at all");
        assert_eq!(s.points[0], p.points[0]);
        assert_eq!(s.points.last(), p.points.last());
        let dev = max_deviation(&p, &s);
        assert!(dev <= tol * (1.0 + 1e-9), "arc deviates {dev} from the simplified path");
        // Length can only shrink, and only by the deviation budget.
        assert!(s.length <= p.length + 1e-12);
    }

    #[test]
    fn descent_trace_is_scale_invariant() {
        use crate::engine::{GeodesicEngine, Stop};
        use crate::ich::IchEngine;
        // Identical flat grids at 1e7 (metre-and-up regime) and 1e-7
        // (micro regime) spacing: the trace must behave identically —
        // exact endpoints, straight-line length, no degenerate slivers.
        for s in [1e7, 1e-7] {
            let mesh = Arc::new(Heightfield::flat(6, 6, s, s).to_mesh());
            let eng = IchEngine::new(mesh.clone());
            let r = eng.ssad(0, Stop::Exhaust);
            let p = trace_descent_path(&mesh, &r.dist, 0, 35);
            let exact = 50f64.sqrt() * s;
            assert!(
                (p.length - exact).abs() <= 1e-6 * exact,
                "scale {s}: trace {} vs {exact}",
                p.length
            );
            assert_eq!(p.points[0], mesh.vertex(0), "scale {s}: wrong start");
            assert_eq!(*p.points.last().unwrap(), mesh.vertex(35), "scale {s}: wrong end");
            for w in p.points.windows(2) {
                assert!(
                    w[0].dist(w[1]) > 1e-9 * p.length,
                    "scale {s}: near-duplicate point on the trace"
                );
            }
        }
    }

    #[test]
    fn descent_trace_closes_on_tiny_mesh_with_degenerate_field() {
        // A constant label field never descends, so the trace breaks
        // immediately at the target and relies on the closing step. On a
        // 1e-10-scale mesh every point is within the old absolute 1e-9
        // cutoff, which skipped closing and returned a path that never
        // reached the source.
        let mesh = Heightfield::flat(4, 4, 1e-10, 1e-10).to_mesh();
        let labels = vec![1e-10; mesh.n_vertices()];
        let p = trace_descent_path(&mesh, &labels, 0, 15);
        assert_eq!(p.points[0], mesh.vertex(0), "path must start at the source");
        assert_eq!(*p.points.last().unwrap(), mesh.vertex(15));
        let chord = mesh.vertex(0).dist(mesh.vertex(15));
        assert!((p.length - chord).abs() <= 1e-12 * chord, "degenerate close is the chord");
    }

    #[test]
    fn simplified_path_keeps_length_on_real_terrain() {
        let mesh = Arc::new(diamond_square(3, 0.7, 11).to_mesh());
        let g = SteinerGraph::with_points_per_edge(mesh, 3);
        let p = shortest_vertex_path(&g, 0, 60).unwrap();
        let s = p.simplify_collinear(1e-9);
        assert!(s.points.len() <= p.points.len());
        assert!((s.length - p.length).abs() <= 1e-6 * (1.0 + p.length));
        assert_eq!(s.points[0], p.points[0]);
        assert_eq!(s.points.last(), p.points.last());
    }
}
