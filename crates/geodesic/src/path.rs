//! Shortest-path *reconstruction*: polylines on the terrain surface.
//!
//! The SE oracle answers distance queries only (the paper's scope — \[12\]
//! observes that "geodesic distance queries are intrinsically easier than
//! geodesic path queries"), but several of its motivating applications
//! (hiking routes, vehicle planning, §1.1) want the route itself. This
//! module reconstructs approximate geodesic paths over a
//! [`SteinerGraph`]: the returned polyline lies on the surface (every
//! segment is an along-edge run or a face-crossing chord), so its length is
//! always an upper bound on the true geodesic distance that converges to it
//! as the Steiner density grows.
//!
//! With `m = 0` the graph degenerates to the mesh edge graph, giving the
//! cheap network-path approximation.

use crate::heap::MinHeap;
use crate::steiner::{NodeId, SteinerGraph};
use terrain::geom::Vec3;
use terrain::VertexId;

/// A polyline on the terrain surface.
#[derive(Debug, Clone, PartialEq)]
pub struct SurfacePath {
    /// Path points from source to destination (inclusive; `≥ 1` points —
    /// a single point when source == destination).
    pub points: Vec<Vec3>,
    /// Sum of segment lengths.
    pub length: f64,
}

impl SurfacePath {
    /// Builds a path from its points, computing the length.
    pub fn from_points(points: Vec<Vec3>) -> Self {
        let length = points.windows(2).map(|w| w[0].dist(w[1])).sum();
        Self { points, length }
    }

    /// Number of segments (`points − 1`, or 0 for a degenerate path).
    pub fn n_segments(&self) -> usize {
        self.points.len().saturating_sub(1)
    }

    /// The point at arc-length parameter `t ∈ [0, length]` along the path
    /// (clamped at the ends). Useful for sampling waypoints.
    pub fn point_at(&self, t: f64) -> Vec3 {
        if self.points.len() == 1 || t <= 0.0 {
            return self.points[0];
        }
        let mut remaining = t;
        for w in self.points.windows(2) {
            let seg = w[0].dist(w[1]);
            if remaining <= seg {
                let f = if seg > 0.0 { remaining / seg } else { 0.0 };
                return w[0].lerp(w[1], f);
            }
            remaining -= seg;
        }
        *self.points.last().expect("non-empty path")
    }

    /// Drops interior points that are collinear with their neighbours
    /// (within `tol` of the straight chord), shortening the representation
    /// without changing the geometry. Along-edge Steiner chains collapse to
    /// single segments.
    pub fn simplify_collinear(&self, tol: f64) -> SurfacePath {
        if self.points.len() <= 2 {
            return self.clone();
        }
        let mut out = vec![self.points[0]];
        for i in 1..self.points.len() - 1 {
            let a = *out.last().expect("non-empty");
            let b = self.points[i];
            let c = self.points[i + 1];
            let direct = a.dist(c);
            let through = a.dist(b) + b.dist(c);
            if through - direct > tol {
                out.push(b);
            }
        }
        out.push(*self.points.last().expect("non-empty"));
        SurfacePath::from_points(out)
    }
}

/// Reconstructs the shortest `s → t` path on the Steiner graph.
///
/// Returns `None` when `t` is unreachable (cannot happen on the connected
/// meshes [`terrain::TerrainMesh`] validates, but the contract is explicit
/// for forward compatibility with partial graphs).
pub fn shortest_path(graph: &SteinerGraph, s: NodeId, t: NodeId) -> Option<SurfacePath> {
    if s == t {
        return Some(SurfacePath { points: vec![graph.position(s)], length: 0.0 });
    }
    let n = graph.n_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<NodeId> = vec![NodeId::MAX; n];
    let mut heap: MinHeap<NodeId> = MinHeap::with_capacity(64);
    dist[s as usize] = 0.0;
    heap.push(0.0, s);
    while let Some((key, v)) = heap.pop() {
        if key > dist[v as usize] {
            continue;
        }
        if v == t {
            break;
        }
        for (u, w) in graph.neighbors(v) {
            let nd = key + w;
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                prev[u as usize] = v;
                heap.push(nd, u);
            }
        }
    }
    if dist[t as usize].is_infinite() {
        return None;
    }
    let mut nodes = vec![t];
    let mut cur = t;
    while cur != s {
        cur = prev[cur as usize];
        debug_assert_ne!(cur, NodeId::MAX, "broken predecessor chain");
        nodes.push(cur);
    }
    nodes.reverse();
    let points: Vec<Vec3> = nodes.iter().map(|&nd| graph.position(nd)).collect();
    let path = SurfacePath::from_points(points);
    debug_assert!((path.length - dist[t as usize]).abs() <= 1e-9 * (1.0 + path.length));
    Some(path)
}

/// Shortest path between two mesh *vertices* (vertices keep their ids as
/// graph nodes).
pub fn shortest_vertex_path(graph: &SteinerGraph, s: VertexId, t: VertexId) -> Option<SurfacePath> {
    shortest_path(graph, s as NodeId, t as NodeId)
}

/// Traces a near-exact geodesic path by steepest descent over an *exact*
/// distance field (per-vertex labels from
/// [`crate::engine::GeodesicEngine::ssad`] with [`crate::engine::Stop::Exhaust`]).
///
/// Within each face the field is interpolated linearly and the trace
/// marches straight against its gradient, crossing edges until it reaches
/// a face incident to the source — the classic fast-marching backtrace.
/// Where the linear model stalls (saddle vertices, sliver faces) the trace
/// falls back to hopping to the best-labelled neighbouring vertex, so it
/// always terminates.
///
/// The polyline lies on the surface, so its length upper-bounds the true
/// geodesic distance; with exact labels the gap is the per-face
/// interpolation error, which vanishes on planar regions entirely.
///
/// # Panics
/// Panics if `dist.len() != mesh.n_vertices()` or if the labels of
/// `source`/`target` are not finite (run the SSAD to exhaustion first).
pub fn trace_descent_path(
    mesh: &terrain::TerrainMesh,
    dist: &[f64],
    source: VertexId,
    target: VertexId,
) -> SurfacePath {
    use terrain::FaceId;
    assert_eq!(dist.len(), mesh.n_vertices(), "label array does not match the mesh");
    assert!(
        dist[source as usize].is_finite() && dist[target as usize].is_finite(),
        "source/target labels must be finite (run SSAD to exhaustion)"
    );
    let src_pos = mesh.vertex(source);
    let mut pts = vec![mesh.vertex(target)];
    if source == target {
        return SurfacePath::from_points(pts);
    }

    // Location of the current trace point: a vertex, or a point on an edge
    // (with the face it just came out of, to avoid bouncing back).
    enum Loc {
        Vertex(VertexId),
        Edge { e: terrain::EdgeId, from: FaceId },
    }
    let mut loc = Loc::Vertex(target);
    let mut pos = mesh.vertex(target);
    let mut d_cur = dist[target as usize];
    let scale = 1e-12 * (1.0 + d_cur.abs());
    let max_steps = 8 * mesh.n_faces() + 64;

    'outer: for _ in 0..max_steps {
        // Candidate faces to march through.
        let faces: Vec<FaceId> = match loc {
            Loc::Vertex(v) => {
                if v == source {
                    break;
                }
                mesh.vertex_faces(v).to_vec()
            }
            Loc::Edge { e, from } => match mesh.other_face(e, from) {
                Some(g) => vec![g],
                None => Vec::new(), // boundary: fall through to vertex hop
            },
        };

        // If any candidate face touches the source, finish with the
        // in-face straight segment (faces are planar).
        for &f in &faces {
            if mesh.face(f).contains(&source) {
                pts.push(src_pos);
                break 'outer;
            }
        }

        // March against the face gradient; keep the best strict descent.
        let mut best: Option<(f64, Vec3, terrain::EdgeId, FaceId)> = None;
        for &f in &faces {
            let Some((exit_d, exit_p, exit_e)) = face_descent_exit(mesh, dist, f, pos) else {
                continue;
            };
            if exit_d < d_cur - scale && best.as_ref().is_none_or(|(bd, ..)| exit_d < *bd) {
                best = Some((exit_d, exit_p, exit_e, f));
            }
        }
        if let Some((exit_d, exit_p, exit_e, f)) = best {
            pts.push(exit_p);
            pos = exit_p;
            d_cur = exit_d;
            loc = Loc::Edge { e: exit_e, from: f };
            continue;
        }

        // Fallback: hop to the best-labelled nearby vertex.
        let hop: Option<VertexId> = match loc {
            Loc::Vertex(v) => mesh
                .vertex_edges(v)
                .iter()
                .map(|&e| {
                    let [a, b] = mesh.edge(e).v;
                    if a == v {
                        b
                    } else {
                        a
                    }
                })
                .filter(|&u| dist[u as usize] < d_cur - scale)
                .min_by(|&x, &y| dist[x as usize].total_cmp(&dist[y as usize])),
            Loc::Edge { e, .. } => {
                let [a, b] = mesh.edge(e).v;
                [a, b]
                    .into_iter()
                    .filter(|&u| dist[u as usize] < d_cur - scale)
                    .min_by(|&x, &y| dist[x as usize].total_cmp(&dist[y as usize]))
            }
        };
        match hop {
            Some(u) => {
                pts.push(mesh.vertex(u));
                pos = mesh.vertex(u);
                d_cur = dist[u as usize];
                loc = Loc::Vertex(u);
                if u == source {
                    break;
                }
            }
            None => break, // numerically stuck: close the path below
        }
    }

    if pts.last().map(|p| p.dist(src_pos) > 1e-9) == Some(true) {
        pts.push(src_pos);
    }
    pts.reverse();
    SurfacePath::from_points(pts)
}

/// Marches from `pos` against the gradient of the linear interpolant of
/// `dist` over face `f`, returning the exit `(label, point, edge)` where
/// the ray leaves the face. `None` when the gradient is degenerate or the
/// ray exits through `pos` itself.
fn face_descent_exit(
    mesh: &terrain::TerrainMesh,
    dist: &[f64],
    f: terrain::FaceId,
    pos: Vec3,
) -> Option<(f64, Vec3, terrain::EdgeId)> {
    let [va, vb, vc] = mesh.face(f);
    let (pa, pb, pc) = (mesh.vertex(va), mesh.vertex(vb), mesh.vertex(vc));
    let (da, db, dc) = (dist[va as usize], dist[vb as usize], dist[vc as usize]);
    if !(da.is_finite() && db.is_finite() && dc.is_finite()) {
        return None;
    }

    // Orthonormal in-face frame at pa.
    let u = pb - pa;
    let e1 = u.normalized()?;
    let w = pc - pa;
    let w_perp = w - e1 * w.dot(e1);
    let e2 = w_perp.normalized()?;
    let to2 = |p: Vec3| {
        let d = p - pa;
        (d.dot(e1), d.dot(e2))
    };
    let (bx, _) = to2(pb);
    let (cx, cy) = to2(pc);
    // Solve g·(b2) = db−da, g·(c2) = dc−da with b2 = (bx, 0).
    if bx.abs() < 1e-300 || cy.abs() < 1e-300 {
        return None;
    }
    let gx = (db - da) / bx;
    let gy = ((dc - da) - gx * cx) / cy;
    let norm = (gx * gx + gy * gy).sqrt();
    if norm < 1e-300 {
        return None;
    }
    let dir = (-gx / norm, -gy / norm);

    let (px, py) = to2(pos);
    // Intersect the ray with the three boundary segments.
    let corners2 = [to2(pa), (bx, 0.0), (cx, cy)];
    let corners3 = [pa, pb, pc];
    let verts = [va, vb, vc];
    let mut best: Option<(f64, f64, usize)> = None; // (ray t, seg s, side)
    for side in 0..3 {
        let (x0, y0) = corners2[side];
        let (x1, y1) = corners2[(side + 1) % 3];
        // Solve p + t·dir = a + s·(b − a).
        let (ex, ey) = (x1 - x0, y1 - y0);
        let det = dir.0 * (-ey) - dir.1 * (-ex);
        if det.abs() < 1e-300 {
            continue;
        }
        let (rx, ry) = (x0 - px, y0 - py);
        let t = (rx * (-ey) - ry * (-ex)) / det;
        let s = (dir.0 * ry - dir.1 * rx) / det;
        let seg_len = (ex * ex + ey * ey).sqrt();
        if t > 1e-9 * (1.0 + seg_len)
            && (-1e-9..=1.0 + 1e-9).contains(&s)
            && best.is_none_or(|(bt, ..)| t < bt)
        {
            best = Some((t, s.clamp(0.0, 1.0), side));
        }
    }
    let (_, s, side) = best?;
    let a3 = corners3[side];
    let b3 = corners3[(side + 1) % 3];
    let exit_p = a3.lerp(b3, s);
    let d0 = dist[verts[side] as usize];
    let d1 = dist[verts[(side + 1) % 3] as usize];
    let exit_d = d0 + (d1 - d0) * s;
    let e = mesh.edge_between(verts[side], verts[(side + 1) % 3])?;
    Some((exit_d, exit_p, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steiner::GraphStop;
    use std::sync::Arc;
    use terrain::gen::{diamond_square, Heightfield};

    fn flat_graph(m: usize) -> SteinerGraph {
        SteinerGraph::with_points_per_edge(Arc::new(Heightfield::flat(5, 5, 1.0, 1.0).to_mesh()), m)
    }

    #[test]
    fn path_length_matches_dijkstra_distance() {
        let mesh = Arc::new(diamond_square(4, 0.6, 3).to_mesh());
        let g = SteinerGraph::with_points_per_edge(mesh.clone(), 2);
        let full = g.dijkstra(0, GraphStop::Exhaust);
        for t in [5u32, 17, 40, (mesh.n_vertices() - 1) as u32] {
            let p = shortest_path(&g, 0, t).unwrap();
            assert!(
                (p.length - full.dist[t as usize]).abs() < 1e-9,
                "t={t}: path {} vs dijkstra {}",
                p.length,
                full.dist[t as usize]
            );
            // Endpoints are correct.
            assert_eq!(p.points[0], g.position(0));
            assert_eq!(*p.points.last().unwrap(), g.position(t));
        }
    }

    #[test]
    fn degenerate_same_node() {
        let g = flat_graph(1);
        let p = shortest_path(&g, 7, 7).unwrap();
        assert_eq!(p.length, 0.0);
        assert_eq!(p.points.len(), 1);
        assert_eq!(p.n_segments(), 0);
    }

    #[test]
    fn every_segment_is_short_relative_to_path() {
        // Segments connect adjacent graph nodes; none can exceed the
        // mesh diameter and the chain must be contiguous.
        let g = flat_graph(2);
        let p = shortest_vertex_path(&g, 0, 24).unwrap();
        assert!(p.points.len() >= 2);
        for w in p.points.windows(2) {
            assert!(w[0].dist(w[1]) > 0.0, "zero-length segment");
            assert!(w[0].dist(w[1]) <= 2.0, "suspiciously long hop");
        }
    }

    #[test]
    fn flat_path_converges_to_straight_line() {
        let exact = 32f64.sqrt();
        let mut prev = f64::INFINITY;
        for m in [0usize, 1, 4] {
            let g = flat_graph(m);
            let p = shortest_vertex_path(&g, 0, 24).unwrap();
            assert!(p.length >= exact - 1e-9);
            assert!(p.length <= prev + 1e-12, "length must not grow with m");
            prev = p.length;
        }
        assert!(prev < exact * 1.03, "m=4 still {prev} vs {exact}");
    }

    #[test]
    fn point_at_interpolates() {
        let p = SurfacePath::from_points(vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(1.0, 1.0, 0.0),
        ]);
        assert_eq!(p.length, 2.0);
        assert_eq!(p.point_at(0.0), Vec3::new(0.0, 0.0, 0.0));
        assert_eq!(p.point_at(0.5), Vec3::new(0.5, 0.0, 0.0));
        assert_eq!(p.point_at(1.5), Vec3::new(1.0, 0.5, 0.0));
        assert_eq!(p.point_at(99.0), Vec3::new(1.0, 1.0, 0.0));
    }

    #[test]
    fn simplify_collapses_collinear_runs() {
        let p = SurfacePath::from_points(vec![
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(0.5, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(1.0, 1.0, 0.0),
        ]);
        let s = p.simplify_collinear(1e-12);
        assert_eq!(s.points.len(), 3);
        assert!((s.length - p.length).abs() < 1e-12);
    }

    #[test]
    fn descent_trace_on_flat_grid_is_straight() {
        use crate::engine::{GeodesicEngine, Stop};
        use crate::ich::IchEngine;
        let mesh = Arc::new(Heightfield::flat(6, 6, 1.0, 1.0).to_mesh());
        let eng = IchEngine::new(mesh.clone());
        let r = eng.ssad(0, Stop::Exhaust);
        let p = trace_descent_path(&mesh, &r.dist, 0, 35);
        let exact = 50f64.sqrt();
        assert!((p.length - exact).abs() < 1e-6 * exact, "flat trace {} vs {exact}", p.length);
        assert_eq!(p.points[0], mesh.vertex(0));
        assert_eq!(*p.points.last().unwrap(), mesh.vertex(35));
    }

    #[test]
    fn descent_trace_matches_tent_closed_form() {
        use crate::engine::{GeodesicEngine, Stop};
        use crate::ich::IchEngine;
        let mesh = Arc::new(terrain::gen::tent(9, 9, 1.0, 1.0, 2.0).to_mesh());
        let eng = IchEngine::new(mesh.clone());
        let a = 4u32 * 9; // (0, 4)
        let b = a + 8; // (8, 4)
        let r = eng.ssad(a, Stop::Exhaust);
        let p = trace_descent_path(&mesh, &r.dist, a, b);
        let exact = 2.0 * 20f64.sqrt();
        assert!((p.length - exact).abs() < 1e-4 * exact, "tent trace {} vs {exact}", p.length);
    }

    #[test]
    fn descent_trace_bounds_on_fractal_terrain() {
        use crate::engine::{GeodesicEngine, Stop};
        use crate::ich::IchEngine;
        let mesh = Arc::new(diamond_square(4, 0.7, 31).to_mesh());
        let eng = IchEngine::new(mesh.clone());
        let src = 3u32;
        let r = eng.ssad(src, Stop::Exhaust);
        for t in [40u32, 120, 200, 280] {
            let p = trace_descent_path(&mesh, &r.dist, src, t);
            // The polyline is on-surface, so ≥ the exact distance; the
            // per-face linear interpolation keeps it close.
            assert!(
                p.length >= r.dist[t as usize] - 1e-9,
                "t={t}: {} below exact {}",
                p.length,
                r.dist[t as usize]
            );
            assert!(
                p.length <= r.dist[t as usize] * 1.05 + 1e-9,
                "t={t}: trace {} too loose vs {}",
                p.length,
                r.dist[t as usize]
            );
            assert_eq!(p.points[0], mesh.vertex(src));
            assert_eq!(*p.points.last().unwrap(), mesh.vertex(t));
        }
    }

    #[test]
    fn descent_trace_degenerate_and_adjacent() {
        use crate::engine::{GeodesicEngine, Stop};
        use crate::ich::IchEngine;
        let mesh = Arc::new(Heightfield::flat(4, 4, 1.0, 1.0).to_mesh());
        let eng = IchEngine::new(mesh.clone());
        let r = eng.ssad(5, Stop::Exhaust);
        // Same vertex.
        let p = trace_descent_path(&mesh, &r.dist, 5, 5);
        assert_eq!(p.length, 0.0);
        // Adjacent vertex: single segment.
        let p = trace_descent_path(&mesh, &r.dist, 5, 6);
        assert!((p.length - 1.0).abs() < 1e-9, "adjacent trace {}", p.length);
    }

    #[test]
    fn simplified_path_keeps_length_on_real_terrain() {
        let mesh = Arc::new(diamond_square(3, 0.7, 11).to_mesh());
        let g = SteinerGraph::with_points_per_edge(mesh, 3);
        let p = shortest_vertex_path(&g, 0, 60).unwrap();
        let s = p.simplify_collinear(1e-9);
        assert!(s.points.len() <= p.points.len());
        assert!((s.length - p.length).abs() <= 1e-6 * (1.0 + p.length));
        assert_eq!(s.points[0], p.points[0]);
        assert_eq!(s.points.last(), p.points.last());
    }
}
