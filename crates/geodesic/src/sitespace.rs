//! Site spaces: the metric interface the SE oracle is built against.
//!
//! The oracle's construction needs exactly three geodesic primitives over
//! its site set `P` (§3.2/§3.5 of the paper):
//!
//! 1. full SSAD from a site until all sites are covered (root radius `r₀`),
//! 2. bounded SSAD returning every site within a radius (point covering,
//!    parent search, enhanced edges),
//! 3. a single site-to-site distance (the naive construction).
//!
//! [`VertexSiteSpace`] realises these over mesh vertices with any
//! [`GeodesicEngine`]; [`GraphSiteSpace`] realises them over Steiner-graph
//! nodes (the A2A oracle of Appendix C builds SE over Steiner points).

use crate::engine::{GeodesicEngine, Stop};
use crate::steiner::{GraphStop, NodeId, SteinerGraph};
use std::sync::Arc;
use terrain::geom::Vec3;
use terrain::VertexId;

/// A bounded sweep from one site, carrying the finality horizon the engine
/// actually certified.
///
/// `horizon ≥` the requested radius always; it is **infinite** when the
/// underlying search drained exhaustively (common when the request radius
/// already covers the surface, e.g. top partition-tree layers and the wide
/// enhanced-edge disks). Caching layers store sweeps at their horizon
/// rather than the requested radius, so one wide run can answer *any*
/// later query from the same site.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// `(site, dist)` pairs with `dist ≤ horizon`, ascending site index.
    /// Every site within `horizon` appears; when `horizon` is infinite,
    /// sites absent from the list are unreachable.
    pub pairs: Vec<(usize, f64)>,
    /// The certified finality horizon (≥ the requested radius).
    pub horizon: f64,
}

impl Sweep {
    /// The pairs at distance ≤ `radius` (a narrower filter of this sweep).
    pub fn clipped(&self, radius: f64) -> Vec<(usize, f64)> {
        debug_assert!(radius <= self.horizon);
        self.pairs.iter().copied().filter(|&(_, d)| d <= radius).collect()
    }
}

/// A finite set of sites in a geodesic metric space.
pub trait SiteSpace: Send + Sync {
    /// Number of sites.
    fn n_sites(&self) -> usize;

    /// Position of a site in ambient 3-space (used by heuristics such as
    /// the greedy point-selection grid; never by distance computations).
    fn site_position(&self, site: usize) -> Vec3;

    /// Exact distances from `site` to every site within `radius`:
    /// `(site, dist)` pairs with `dist ≤ radius`, all such sites included
    /// (including `site` itself at distance 0).
    fn sites_within(&self, site: usize, radius: f64) -> Vec<(usize, f64)>;

    /// Like [`Self::sites_within`], but returns the whole [`Sweep`] up to
    /// the engine's certified horizon instead of clipping at `radius`.
    /// The default wraps `sites_within` with `horizon = radius`; spaces
    /// whose engines report tightened horizons override it.
    fn sites_within_horizon(&self, site: usize, radius: f64) -> Sweep {
        Sweep { pairs: self.sites_within(site, radius), horizon: radius }
    }

    /// Distances from `site` to all sites (full SSAD).
    fn all_distances(&self, site: usize) -> Vec<f64>;

    /// Distance between two sites.
    fn distance(&self, a: usize, b: usize) -> f64;

    /// Hint that the caller is done issuing sweep queries from `site` for
    /// now. A plain space has nothing to free (the default is a no-op);
    /// caching decorators drop `site`'s retained sweep so construction
    /// memory stays bounded by the live working set, not the whole build.
    fn release(&self, site: usize) {
        let _ = site;
    }
}

/// Sites are mesh vertices; distances come from a [`GeodesicEngine`].
pub struct VertexSiteSpace {
    engine: Arc<dyn GeodesicEngine>,
    sites: Vec<VertexId>,
}

impl VertexSiteSpace {
    /// `sites` must be distinct vertices (the oracle deduplicates POIs
    /// first, per §2 of the paper).
    pub fn new(engine: Arc<dyn GeodesicEngine>, sites: Vec<VertexId>) -> Self {
        debug_assert!(
            {
                let mut s = sites.clone();
                s.sort_unstable();
                s.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate site vertices"
        );
        Self { engine, sites }
    }

    /// The site vertices, in site-index order.
    pub fn sites(&self) -> &[VertexId] {
        &self.sites
    }

    /// The geodesic engine distances come from.
    pub fn engine(&self) -> &Arc<dyn GeodesicEngine> {
        &self.engine
    }
}

impl SiteSpace for VertexSiteSpace {
    fn n_sites(&self) -> usize {
        self.sites.len()
    }

    fn site_position(&self, site: usize) -> Vec3 {
        self.engine.mesh().vertex(self.sites[site])
    }

    fn sites_within(&self, site: usize, radius: f64) -> Vec<(usize, f64)> {
        self.sites_within_horizon(site, radius).clipped(radius)
    }

    fn sites_within_horizon(&self, site: usize, radius: f64) -> Sweep {
        let r = self.engine.ssad(self.sites[site], Stop::Radius(radius));
        // Labels ≤ the run's own horizon are final, and label-setting
        // engines produce them bit-identically under any wider stop — so
        // the whole finalized ball is as reusable as the requested one.
        // Unreachable sites (infinite labels) stay absent even when the
        // horizon is infinite — the `Sweep` absence convention.
        let horizon = r.finalized;
        let pairs = self
            .sites
            .iter()
            .enumerate()
            .filter_map(|(i, &v)| {
                let d = r.dist[v as usize];
                (d.is_finite() && d <= horizon).then_some((i, d))
            })
            .collect();
        Sweep { pairs, horizon }
    }

    fn all_distances(&self, site: usize) -> Vec<f64> {
        let r = self.engine.ssad(self.sites[site], Stop::Targets(&self.sites));
        self.sites.iter().map(|&v| r.dist[v as usize]).collect()
    }

    fn distance(&self, a: usize, b: usize) -> f64 {
        self.engine.distance(self.sites[a], self.sites[b])
    }
}

/// Sites are Steiner-graph nodes; distances are graph distances.
pub struct GraphSiteSpace {
    graph: Arc<SteinerGraph>,
    sites: Vec<NodeId>,
}

impl GraphSiteSpace {
    /// A site space over `graph` whose sites are the listed nodes.
    pub fn new(graph: Arc<SteinerGraph>, sites: Vec<NodeId>) -> Self {
        Self { graph, sites }
    }

    /// The site nodes, in site-index order.
    pub fn sites(&self) -> &[NodeId] {
        &self.sites
    }

    /// The Steiner graph distances come from.
    pub fn graph(&self) -> &Arc<SteinerGraph> {
        &self.graph
    }
}

impl SiteSpace for GraphSiteSpace {
    fn n_sites(&self) -> usize {
        self.sites.len()
    }

    fn site_position(&self, site: usize) -> Vec3 {
        self.graph.position(self.sites[site])
    }

    fn sites_within(&self, site: usize, radius: f64) -> Vec<(usize, f64)> {
        self.sites_within_horizon(site, radius).clipped(radius)
    }

    fn sites_within_horizon(&self, site: usize, radius: f64) -> Sweep {
        let r = self.graph.dijkstra(self.sites[site], GraphStop::Radius(radius));
        let horizon = r.finalized;
        let pairs = self
            .sites
            .iter()
            .enumerate()
            .filter_map(|(i, &v)| {
                let d = r.dist[v as usize];
                (d.is_finite() && d <= horizon).then_some((i, d))
            })
            .collect();
        Sweep { pairs, horizon }
    }

    fn all_distances(&self, site: usize) -> Vec<f64> {
        let r = self.graph.dijkstra(self.sites[site], GraphStop::Targets(&self.sites));
        self.sites.iter().map(|&v| r.dist[v as usize]).collect()
    }

    fn distance(&self, a: usize, b: usize) -> f64 {
        self.graph.distance(self.sites[a], self.sites[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ich::IchEngine;
    use terrain::gen::diamond_square;

    fn space() -> VertexSiteSpace {
        let mesh = Arc::new(diamond_square(3, 0.6, 2).to_mesh());
        let engine = Arc::new(IchEngine::new(mesh));
        VertexSiteSpace::new(engine, vec![0, 8, 40, 72, 80, 44])
    }

    #[test]
    fn vertex_space_consistency() {
        let s = space();
        assert_eq!(s.n_sites(), 6);
        let all = s.all_distances(0);
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], 0.0);
        for (i, &d) in all.iter().enumerate().skip(1) {
            assert!(d.is_finite());
            assert!((s.distance(0, i) - d).abs() < 1e-9, "site {i}");
        }
    }

    #[test]
    fn sites_within_agrees_with_all_distances() {
        let s = space();
        let all = s.all_distances(2);
        let radius = all.iter().cloned().fold(0.0, f64::max) * 0.6;
        let near = s.sites_within(2, radius);
        for (i, d) in &near {
            assert!((all[*i] - d).abs() < 1e-9);
            assert!(*d <= radius);
        }
        // Every site within the radius appears.
        let found: Vec<usize> = near.iter().map(|(i, _)| *i).collect();
        for (i, &d) in all.iter().enumerate() {
            assert_eq!(found.contains(&i), d <= radius, "site {i} at {d}");
        }
        // Self appears at distance 0.
        assert!(near.iter().any(|&(i, d)| i == 2 && d == 0.0));
    }

    #[test]
    fn graph_space_consistency() {
        let mesh = Arc::new(diamond_square(3, 0.6, 4).to_mesh());
        let graph = Arc::new(SteinerGraph::with_points_per_edge(mesh.clone(), 1));
        let nv = mesh.n_vertices() as NodeId;
        let sites = vec![0 as NodeId, 5, nv, nv + 3, nv + 10];
        let s = GraphSiteSpace::new(graph, sites);
        let all = s.all_distances(1);
        for (i, &d) in all.iter().enumerate() {
            assert!((s.distance(1, i) - d).abs() < 1e-9);
        }
        let r = all.iter().cloned().fold(0.0, f64::max) * 0.5;
        for (i, d) in s.sites_within(1, r) {
            assert!((all[i] - d).abs() < 1e-9 && d <= r);
        }
    }

    #[test]
    fn positions_match_mesh() {
        let mesh = Arc::new(diamond_square(3, 0.6, 2).to_mesh());
        let engine = Arc::new(IchEngine::new(mesh.clone()));
        let s = VertexSiteSpace::new(engine, vec![3, 17]);
        assert_eq!(s.site_position(0), mesh.vertex(3));
        assert_eq!(s.site_position(1), mesh.vertex(17));
    }
}
