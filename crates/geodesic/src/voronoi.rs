//! Geodesic Voronoi partitions: assign every graph node to its nearest
//! site by surface distance.
//!
//! The proximity applications the paper builds on distance queries (§1.1:
//! nearest-neighbour search, catchment/influence regions for game portals,
//! receiver coverage for wildlife telemetry) all reduce to the question
//! "which site is nearest to *here*?" asked for every location at once.
//! One multi-source Dijkstra over the Steiner graph answers it in a single
//! sweep — `O((N + mE) log)` total instead of one SSAD per site.

use crate::heap::MinHeap;
use crate::steiner::{NodeId, SteinerGraph};

/// Sentinel for unassigned nodes (unreachable; cannot happen on validated
/// meshes, kept explicit for forward compatibility).
pub const NO_SITE: u32 = u32::MAX;

/// Result of [`geodesic_voronoi`].
#[derive(Debug, Clone)]
pub struct VoronoiResult {
    /// For every graph node, the index (into the input `sites` slice) of
    /// its nearest site; ties broken toward the smaller site index.
    pub site_of_node: Vec<u32>,
    /// Distance from every node to its assigned site.
    pub dist: Vec<f64>,
}

impl VoronoiResult {
    /// Nodes assigned to `site`, in node-id order.
    pub fn cell(&self, site: u32) -> impl Iterator<Item = NodeId> + '_ {
        self.site_of_node
            .iter()
            .enumerate()
            .filter(move |&(_, &s)| s == site)
            .map(|(n, _)| n as NodeId)
    }

    /// Number of nodes per site cell.
    pub fn cell_sizes(&self, n_sites: usize) -> Vec<usize> {
        let mut out = vec![0usize; n_sites];
        for &s in &self.site_of_node {
            if s != NO_SITE {
                out[s as usize] += 1;
            }
        }
        out
    }
}

/// Computes the geodesic Voronoi partition of all graph nodes around
/// `sites` (graph node ids; mesh vertices keep their ids).
///
/// Duplicate site nodes are allowed: the node is assigned to the earliest
/// of its coinciding sites, matching the tie-break everywhere else.
///
/// # Panics
/// Panics if `sites` is empty or contains an out-of-range node id.
pub fn geodesic_voronoi(graph: &SteinerGraph, sites: &[NodeId]) -> VoronoiResult {
    assert!(!sites.is_empty(), "need at least one site");
    let n = graph.n_nodes();
    let mut dist = vec![f64::INFINITY; n];
    let mut site_of_node = vec![NO_SITE; n];
    let mut heap: MinHeap<NodeId> = MinHeap::with_capacity(sites.len().max(64));

    for (i, &s) in sites.iter().enumerate() {
        assert!((s as usize) < n, "site node {s} out of range");
        // First site wins co-located duplicates (dist 0 already set).
        if dist[s as usize] > 0.0 || site_of_node[s as usize] == NO_SITE {
            dist[s as usize] = 0.0;
            if site_of_node[s as usize] == NO_SITE {
                site_of_node[s as usize] = i as u32;
                heap.push(0.0, s);
            }
        }
    }

    while let Some((key, v)) = heap.pop() {
        if key > dist[v as usize] {
            continue;
        }
        let owner = site_of_node[v as usize];
        for (u, w) in graph.neighbors(v) {
            let nd = key + w;
            let better = nd < dist[u as usize]
                || (nd == dist[u as usize] && owner < site_of_node[u as usize]);
            if better {
                dist[u as usize] = nd;
                site_of_node[u as usize] = owner;
                heap.push(nd, u);
            }
        }
    }
    VoronoiResult { site_of_node, dist }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::steiner::GraphStop;
    use std::sync::Arc;
    use terrain::gen::{diamond_square, Heightfield};

    fn graph(seed: u64, m: usize) -> SteinerGraph {
        SteinerGraph::with_points_per_edge(Arc::new(diamond_square(3, 0.6, seed).to_mesh()), m)
    }

    #[test]
    fn assignment_matches_per_site_dijkstra() {
        let g = graph(3, 1);
        let sites: Vec<NodeId> = vec![0, 17, 44, 70];
        let v = geodesic_voronoi(&g, &sites);
        // Reference: one Dijkstra per site.
        let rows: Vec<Vec<f64>> =
            sites.iter().map(|&s| g.dijkstra(s, GraphStop::Exhaust).dist).collect();
        for node in 0..g.n_nodes() {
            let (best_site, best_d) = rows
                .iter()
                .map(|row| row[node])
                .enumerate()
                .min_by(|a, b| (a.1, a.0).partial_cmp(&(b.1, b.0)).unwrap())
                .unwrap();
            assert_eq!(
                v.site_of_node[node], best_site as u32,
                "node {node}: assigned {} vs true nearest {best_site}",
                v.site_of_node[node]
            );
            assert!(
                (v.dist[node] - best_d).abs() < 1e-9,
                "node {node}: dist {} vs {best_d}",
                v.dist[node]
            );
        }
    }

    #[test]
    fn cells_partition_all_nodes() {
        let g = graph(5, 2);
        let sites: Vec<NodeId> = vec![2, 33, 61];
        let v = geodesic_voronoi(&g, &sites);
        let sizes = v.cell_sizes(sites.len());
        assert_eq!(sizes.iter().sum::<usize>(), g.n_nodes());
        for (i, &s) in sites.iter().enumerate() {
            assert_eq!(v.site_of_node[s as usize], i as u32, "site owns itself");
            assert_eq!(v.dist[s as usize], 0.0);
            assert!(sizes[i] >= 1);
            // cell() agrees with cell_sizes().
            assert_eq!(v.cell(i as u32).count(), sizes[i]);
        }
    }

    #[test]
    fn single_site_owns_everything() {
        let g = graph(7, 0);
        let v = geodesic_voronoi(&g, &[13]);
        assert!(v.site_of_node.iter().all(|&s| s == 0));
        let full = g.dijkstra(13, GraphStop::Exhaust);
        for node in 0..g.n_nodes() {
            assert!((v.dist[node] - full.dist[node]).abs() < 1e-12);
        }
    }

    #[test]
    fn duplicate_sites_resolve_to_first() {
        let g = graph(9, 0);
        let v = geodesic_voronoi(&g, &[20, 20, 55]);
        assert_eq!(v.site_of_node[20], 0, "duplicate assigned to first occurrence");
        // The duplicate site index 1 owns no node.
        assert_eq!(v.cell_sizes(3)[1], 0);
    }

    #[test]
    fn flat_grid_cells_are_euclidean_nearest() {
        // On a flat dense grid with vertex sites, graph-Voronoi cells
        // approximate planar nearest-neighbour regions: check the four
        // corners against their closest site.
        let mesh = Arc::new(Heightfield::flat(9, 9, 1.0, 1.0).to_mesh());
        let g = SteinerGraph::with_points_per_edge(mesh.clone(), 2);
        let sites: Vec<NodeId> = vec![0, 8, 72, 80]; // the four corners
        let v = geodesic_voronoi(&g, &sites);
        for (i, &s) in sites.iter().enumerate() {
            assert_eq!(v.site_of_node[s as usize], i as u32);
        }
        // Center vertex (4,4) is equidistant from all four corners in
        // exact arithmetic. Floating summation order differs per corner,
        // so any owner is legitimate — but the assigned distance must be
        // the common optimum.
        let center = 4 * 9 + 4;
        let best =
            sites.iter().map(|&s| g.distance(s, center as NodeId)).fold(f64::INFINITY, f64::min);
        assert!((v.dist[center] - best).abs() < 1e-9, "{} vs {best}", v.dist[center]);
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn empty_sites_panic() {
        let g = graph(11, 0);
        let _ = geodesic_voronoi(&g, &[]);
    }
}
