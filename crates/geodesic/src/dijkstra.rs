//! Edge-graph Dijkstra: network distance along mesh edges.
//!
//! The cheapest geodesic surrogate — an upper bound on the true surface
//! distance (every edge path lies on the surface but geodesics may cross
//! face interiors). Useful as a fast engine for large sweeps and as a
//! sanity bound in tests: `euclidean ≤ geodesic ≤ edge-graph`.

use crate::engine::{GeodesicEngine, SsadResult, SsadStats, Stop};
use crate::heap::MinHeap;
use std::sync::Arc;
use terrain::{TerrainMesh, VertexId};

/// Dijkstra over the mesh's vertex–edge graph.
#[derive(Debug, Clone)]
pub struct EdgeGraphEngine {
    mesh: Arc<TerrainMesh>,
}

impl EdgeGraphEngine {
    pub fn new(mesh: Arc<TerrainMesh>) -> Self {
        Self { mesh }
    }
}

impl GeodesicEngine for EdgeGraphEngine {
    fn name(&self) -> &'static str {
        "edge-graph"
    }

    fn mesh(&self) -> &TerrainMesh {
        &self.mesh
    }

    fn ssad(&self, source: VertexId, stop: Stop<'_>) -> SsadResult {
        let mesh = &*self.mesh;
        let n = mesh.n_vertices();
        let mut dist = vec![f64::INFINITY; n];
        let mut heap: MinHeap<VertexId> = MinHeap::with_capacity(64);
        let mut stats = SsadStats::default();
        dist[source as usize] = 0.0;
        heap.push(0.0, source);

        let mut watcher = StopWatcher::new(stop, &dist);
        let mut stopped = false;
        while let Some((key, v)) = heap.pop() {
            if key > dist[v as usize] {
                continue; // stale entry
            }
            stats.events_processed += 1;
            stats.max_key = key;
            if watcher.done(key, &dist) {
                stopped = true;
                break;
            }
            for &e in mesh.vertex_edges(v) {
                let edge = mesh.edge(e);
                let u = if edge.v[0] == v { edge.v[1] } else { edge.v[0] };
                let nd = key + mesh.edge_len(e);
                if nd < dist[u as usize] {
                    dist[u as usize] = nd;
                    watcher.on_relax(u, nd);
                    heap.push(nd, u);
                    stats.events_created += 1;
                }
            }
        }
        let finalized = watcher.finalized(stopped, &dist);
        SsadResult { dist, finalized, stats }
    }
}

/// Shared stop-criterion bookkeeping for label-setting searches.
///
/// Pops arrive in non-decreasing key order, so:
/// * `Radius(r)`: stop once a pop's key exceeds `r` — every label `≤ r` is
///   final;
/// * `Targets`: stop once all targets are reached *and* the current key is
///   at least the largest target label (labels below the key are final).
pub(crate) struct StopWatcher<'a> {
    stop: Stop<'a>,
    remaining: usize,
    is_target: Vec<bool>,
    max_target_label: f64,
}

impl<'a> StopWatcher<'a> {
    pub fn new(stop: Stop<'a>, dist: &[f64]) -> Self {
        let (remaining, is_target) = match stop {
            Stop::Targets(ts) => {
                let mut flags = vec![false; dist.len()];
                let mut rem = 0;
                for &t in ts {
                    if !flags[t as usize] {
                        flags[t as usize] = true;
                        if dist[t as usize].is_infinite() {
                            rem += 1;
                        }
                    }
                }
                (rem, flags)
            }
            _ => (0, Vec::new()),
        };
        Self { stop, remaining, is_target, max_target_label: f64::INFINITY }
    }

    /// Must be called whenever a label is improved.
    #[inline]
    pub fn on_relax(&mut self, v: VertexId, _new_dist: f64) {
        if !self.is_target.is_empty() && self.is_target[v as usize] && self.remaining > 0 {
            // First time this target becomes finite. (Labels only improve,
            // so a second improvement doesn't decrement again.)
            self.remaining -= 1;
            if self.remaining == 0 {
                self.max_target_label = f64::NEG_INFINITY; // recompute lazily in done()
            }
        }
    }

    /// The finality horizon of the finished run (see
    /// [`crate::engine::SsadResult::finalized`]): labels at or below it are
    /// exact. `stopped` says whether the loop broke on [`Self::done`]
    /// (`false` = the queue drained, so every reached label is final).
    /// `Radius` always reports `r`, never infinity: engines such as ICH
    /// prune eagerly beyond the bound, so a drained queue does not imply
    /// global finality there.
    pub fn finalized(&self, stopped: bool, dist: &[f64]) -> f64 {
        match self.stop {
            Stop::Radius(r) => r,
            Stop::Exhaust => f64::INFINITY,
            Stop::Targets(ts) => {
                if stopped {
                    ts.iter().map(|&t| dist[t as usize]).fold(0.0, f64::max)
                } else {
                    f64::INFINITY
                }
            }
        }
    }

    /// Whether the search may stop before processing an event with `key`.
    #[inline]
    pub fn done(&mut self, key: f64, dist: &[f64]) -> bool {
        match self.stop {
            Stop::Exhaust => false,
            Stop::Radius(r) => key > r,
            Stop::Targets(ts) => {
                if self.remaining > 0 {
                    return false;
                }
                if self.max_target_label == f64::NEG_INFINITY {
                    self.max_target_label =
                        ts.iter().map(|&t| dist[t as usize]).fold(0.0, f64::max);
                }
                key >= self.max_target_label
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use terrain::gen::Heightfield;

    fn flat(n: usize) -> Arc<TerrainMesh> {
        Arc::new(Heightfield::flat(n, n, 1.0, 1.0).to_mesh())
    }

    #[test]
    fn distances_on_flat_grid() {
        let m = flat(4);
        let eng = EdgeGraphEngine::new(m.clone());
        let r = eng.ssad(0, Stop::Exhaust);
        // Vertex 0 at (0,0); vertex 5 at (1,1): diagonal edge may or may not
        // exist depending on the alternating split, but the graph distance is
        // at most 2 and at least sqrt(2).
        assert_eq!(r.dist[0], 0.0);
        let d5 = r.dist[5];
        assert!(d5 >= 2f64.sqrt() - 1e-12 && d5 <= 2.0 + 1e-12, "{d5}");
        // Far corner (3,3) = vertex 15: graph distance ≥ Euclidean.
        assert!(r.dist[15] >= (18f64).sqrt() - 1e-12);
        assert!(r.dist.iter().all(|d| d.is_finite()));
    }

    #[test]
    fn symmetric() {
        let m = flat(5);
        let eng = EdgeGraphEngine::new(m);
        for (a, b) in [(0u32, 24u32), (3, 20), (7, 13)] {
            assert!((eng.distance(a, b) - eng.distance(b, a)).abs() < 1e-12);
        }
    }

    #[test]
    fn radius_stop_finalizes_ball() {
        let m = flat(6);
        let eng = EdgeGraphEngine::new(m);
        let full = eng.ssad(0, Stop::Exhaust);
        let partial = eng.ssad(0, Stop::Radius(2.5));
        for v in 0..full.dist.len() {
            if full.dist[v] <= 2.5 {
                assert_eq!(full.dist[v], partial.dist[v], "vertex {v}");
            }
        }
        // The search did less work than the full run.
        assert!(partial.stats.events_processed < full.stats.events_processed);
    }

    #[test]
    fn target_stop_is_exact() {
        let m = flat(6);
        let eng = EdgeGraphEngine::new(m);
        let full = eng.ssad(7, Stop::Exhaust);
        let targets = [0u32, 35, 17];
        let part = eng.ssad(7, Stop::Targets(&targets));
        for &t in &targets {
            assert_eq!(part.dist[t as usize], full.dist[t as usize]);
        }
    }

    #[test]
    fn distance_to_self_is_zero() {
        let m = flat(3);
        let eng = EdgeGraphEngine::new(m);
        assert_eq!(eng.distance(4, 4), 0.0);
    }

    #[test]
    fn duplicate_targets_handled() {
        let m = flat(4);
        let eng = EdgeGraphEngine::new(m);
        let targets = [5u32, 5, 5];
        let r = eng.ssad(0, Stop::Targets(&targets));
        assert!(r.dist[5].is_finite());
    }
}
