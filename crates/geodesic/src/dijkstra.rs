//! Edge-graph Dijkstra: network distance along mesh edges.
//!
//! The cheapest geodesic surrogate — an upper bound on the true surface
//! distance (every edge path lies on the surface but geodesics may cross
//! face interiors). Useful as a fast engine for large sweeps and as a
//! sanity bound in tests: `euclidean ≤ geodesic ≤ edge-graph`.

use crate::engine::{GeodesicEngine, SsadResult, SsadStats, Stop};
use crate::heap::IndexedMinHeap;
use std::sync::Arc;
use terrain::{TerrainMesh, VertexId};

/// Dijkstra over the mesh's vertex–edge graph.
#[derive(Debug, Clone)]
pub struct EdgeGraphEngine {
    mesh: Arc<TerrainMesh>,
}

impl EdgeGraphEngine {
    /// A Dijkstra engine over `mesh`'s vertex–edge graph.
    pub fn new(mesh: Arc<TerrainMesh>) -> Self {
        Self { mesh }
    }
}

impl GeodesicEngine for EdgeGraphEngine {
    fn name(&self) -> &'static str {
        "edge-graph"
    }

    fn mesh(&self) -> &TerrainMesh {
        &self.mesh
    }

    fn ssad(&self, source: VertexId, stop: Stop<'_>) -> SsadResult {
        let mesh = &*self.mesh;
        let n = mesh.n_vertices();
        let mut dist = vec![f64::INFINITY; n];
        let mut heap = IndexedMinHeap::new();
        heap.reset(n);
        let mut stats = SsadStats::default();
        dist[source as usize] = 0.0;
        heap.push_or_decrease(source, 0.0);

        let mut watcher = StopWatcher::new(stop, &dist);
        let mut stopped = false;
        let mut pruned = false;
        let mut bound = watcher.prune_bound(&dist);
        while let Some((key, v)) = heap.pop() {
            // The indexed heap holds one entry per vertex, decreased in
            // place on every relaxation — no stale entries to filter.
            debug_assert_eq!(key, dist[v as usize]);
            stats.events_processed += 1;
            stats.max_key = key;
            if watcher.done(key, &dist) {
                stopped = true;
                break;
            }
            bound = bound.min(watcher.prune_bound(&dist));
            for &e in mesh.vertex_edges(v) {
                let edge = mesh.edge(e);
                let u = if edge.v[0] == v { edge.v[1] } else { edge.v[0] };
                let nd = key + mesh.edge_len(e);
                if nd < dist[u as usize] {
                    if nd > bound {
                        // Beyond every label this run promises as final:
                        // the relaxation cannot matter. `finalized` reports
                        // the pruned horizon.
                        pruned = true;
                        continue;
                    }
                    dist[u as usize] = nd;
                    watcher.on_relax(u, nd);
                    heap.push_or_decrease(u, nd);
                    stats.events_created += 1;
                }
            }
        }
        let finalized = watcher.finalized(stopped, pruned, &dist);
        SsadResult { dist, finalized, stats }
    }
}

/// Shared stop-criterion bookkeeping for label-setting searches.
///
/// Pops arrive in non-decreasing key order, so:
/// * `Radius(r)`: stop once a pop's key exceeds `r` — every label `≤ r` is
///   final;
/// * `Targets`: stop once all targets are reached *and* the current key is
///   at least the largest target label (labels below the key are final).
///
/// Beyond stopping, the watcher hands engines a **prune bound**
/// ([`Self::prune_bound`]): a key threshold above which new work (windows,
/// edge relaxations, pseudo-sources) cannot affect any label the run
/// promises as final. For `Radius` that bound is fixed; for `Targets` it
/// activates once every target is reached and then tracks the largest
/// target label as labels improve — the search horizon tightens while the
/// run drains.
pub(crate) struct StopWatcher<'a> {
    stop: Stop<'a>,
    /// Targets not yet reached (their label is still infinite).
    remaining: usize,
    /// `uncounted[v]`: `v` is a target that has not yet been counted
    /// reached. Cleared per target on its first relaxation.
    uncounted: Vec<bool>,
    /// `is_target[v]` (immutable after construction).
    is_target: Vec<bool>,
    /// Largest target label; `NEG_INFINITY` marks "recompute lazily" after
    /// a target's label changed.
    max_target_label: f64,
    /// Cached prune bound (slack-scaled horizon).
    bound: f64,
}

/// Relative slack applied to prune bounds so labels *exactly at* the
/// horizon survive SSAD roundoff (same convention as the tree build's
/// search radius).
const BOUND_SLACK: f64 = 1e-12;

fn slacked(h: f64) -> f64 {
    h * (1.0 + BOUND_SLACK) + 1e-300
}

impl<'a> StopWatcher<'a> {
    pub fn new(stop: Stop<'a>, dist: &[f64]) -> Self {
        let (remaining, uncounted, is_target) = match stop {
            Stop::Targets(ts) => {
                let mut flags = vec![false; dist.len()];
                let mut pending = vec![false; dist.len()];
                let mut rem = 0;
                for &t in ts {
                    if !flags[t as usize] {
                        flags[t as usize] = true;
                        if dist[t as usize].is_infinite() {
                            pending[t as usize] = true;
                            rem += 1;
                        }
                    }
                }
                (rem, pending, flags)
            }
            _ => (0, Vec::new(), Vec::new()),
        };
        let bound = match stop {
            Stop::Radius(r) => slacked(r),
            _ => f64::INFINITY,
        };
        Self { stop, remaining, uncounted, is_target, max_target_label: f64::INFINITY, bound }
    }

    /// Must be called whenever a label is improved.
    #[inline]
    pub fn on_relax(&mut self, v: VertexId, _new_dist: f64) {
        if !self.is_target.is_empty() && self.is_target[v as usize] {
            if self.uncounted[v as usize] {
                self.uncounted[v as usize] = false;
                self.remaining -= 1;
            }
            if self.remaining == 0 {
                // A target label changed: the horizon (and with it the
                // prune bound) must be recomputed lazily.
                self.max_target_label = f64::NEG_INFINITY;
            }
        }
    }

    /// Recomputes the target horizon and prune bound if marked stale.
    #[inline]
    fn refresh(&mut self, dist: &[f64]) {
        if self.max_target_label == f64::NEG_INFINITY {
            if let Stop::Targets(ts) = self.stop {
                self.max_target_label = ts.iter().map(|&t| dist[t as usize]).fold(0.0, f64::max);
                self.bound = slacked(self.max_target_label);
            }
        }
    }

    /// The current prune bound: events/relaxations with a key above it
    /// cannot affect any label at or below the promised finality horizon,
    /// so engines may drop them. Monotonically non-increasing over a run.
    #[inline]
    pub fn prune_bound(&mut self, dist: &[f64]) -> f64 {
        if self.remaining > 0 {
            return f64::INFINITY; // targets outstanding: no horizon yet
        }
        self.refresh(dist);
        self.bound
    }

    /// The finality horizon of the finished run (see
    /// [`crate::engine::SsadResult::finalized`]): labels at or below it are
    /// exact. `stopped` says whether the loop broke on [`Self::done`];
    /// `pruned` whether the engine ever dropped work via
    /// [`Self::prune_bound`] (or its own radius bound). When neither
    /// happened the queue drained exhaustively, so *every* reached label is
    /// final and the horizon is infinite — even under `Radius`/`Targets`.
    /// That tightened horizon is what lets the SSAD-reuse cache serve
    /// wider later queries from a narrower run.
    pub fn finalized(&self, stopped: bool, pruned: bool, dist: &[f64]) -> f64 {
        if !stopped && !pruned {
            return f64::INFINITY;
        }
        match self.stop {
            Stop::Radius(r) => r,
            Stop::Exhaust => f64::INFINITY,
            Stop::Targets(ts) => ts.iter().map(|&t| dist[t as usize]).fold(0.0, f64::max),
        }
    }

    /// Whether the search may stop before processing an event with `key`.
    #[inline]
    pub fn done(&mut self, key: f64, dist: &[f64]) -> bool {
        match self.stop {
            Stop::Exhaust => false,
            Stop::Radius(r) => key > r,
            Stop::Targets(_) => {
                if self.remaining > 0 {
                    return false;
                }
                self.refresh(dist);
                key >= self.max_target_label
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use terrain::gen::Heightfield;

    fn flat(n: usize) -> Arc<TerrainMesh> {
        Arc::new(Heightfield::flat(n, n, 1.0, 1.0).to_mesh())
    }

    #[test]
    fn distances_on_flat_grid() {
        let m = flat(4);
        let eng = EdgeGraphEngine::new(m.clone());
        let r = eng.ssad(0, Stop::Exhaust);
        // Vertex 0 at (0,0); vertex 5 at (1,1): diagonal edge may or may not
        // exist depending on the alternating split, but the graph distance is
        // at most 2 and at least sqrt(2).
        assert_eq!(r.dist[0], 0.0);
        let d5 = r.dist[5];
        assert!(d5 >= 2f64.sqrt() - 1e-12 && d5 <= 2.0 + 1e-12, "{d5}");
        // Far corner (3,3) = vertex 15: graph distance ≥ Euclidean.
        assert!(r.dist[15] >= (18f64).sqrt() - 1e-12);
        assert!(r.dist.iter().all(|d| d.is_finite()));
    }

    #[test]
    fn symmetric() {
        let m = flat(5);
        let eng = EdgeGraphEngine::new(m);
        for (a, b) in [(0u32, 24u32), (3, 20), (7, 13)] {
            assert!((eng.distance(a, b) - eng.distance(b, a)).abs() < 1e-12);
        }
    }

    #[test]
    fn radius_stop_finalizes_ball() {
        let m = flat(6);
        let eng = EdgeGraphEngine::new(m);
        let full = eng.ssad(0, Stop::Exhaust);
        let partial = eng.ssad(0, Stop::Radius(2.5));
        for v in 0..full.dist.len() {
            if full.dist[v] <= 2.5 {
                assert_eq!(full.dist[v], partial.dist[v], "vertex {v}");
            }
        }
        // The search did less work than the full run.
        assert!(partial.stats.events_processed < full.stats.events_processed);
    }

    #[test]
    fn target_stop_is_exact() {
        let m = flat(6);
        let eng = EdgeGraphEngine::new(m);
        let full = eng.ssad(7, Stop::Exhaust);
        let targets = [0u32, 35, 17];
        let part = eng.ssad(7, Stop::Targets(&targets));
        for &t in &targets {
            assert_eq!(part.dist[t as usize], full.dist[t as usize]);
        }
    }

    #[test]
    fn distance_to_self_is_zero() {
        let m = flat(3);
        let eng = EdgeGraphEngine::new(m);
        assert_eq!(eng.distance(4, 4), 0.0);
    }

    #[test]
    fn duplicate_targets_handled() {
        let m = flat(4);
        let eng = EdgeGraphEngine::new(m);
        let targets = [5u32, 5, 5];
        let r = eng.ssad(0, Stop::Targets(&targets));
        assert!(r.dist[5].is_finite());
    }
}
