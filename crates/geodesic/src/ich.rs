//! Exact geodesic SSAD via continuous Dijkstra (window propagation).
//!
//! This is the reproduction's stand-in for the exact shortest-path
//! algorithms the paper leans on (\[26\] Mitchell–Mount–Papadimitriou,
//! \[6\] Chen–Han, \[34\] Xin–Wang's improved Chen–Han). It follows the
//! ICH recipe:
//!
//! * *windows* — intervals on mesh edges recording the unfolded distance to
//!   a (pseudo-)source — propagate across faces in a best-first order;
//! * *vertex labels* are relaxed whenever a window reaches an edge endpoint
//!   or an apex vertex falls inside a window's cone;
//! * *pseudo-sources* spawn at saddle and boundary vertices when they
//!   settle, restarting circular wavefronts there (geodesics only bend at
//!   such vertices);
//! * windows dominated by through-vertex paths are pruned (the one-sided
//!   monotonicity argument documented on `Search::dominated` makes the
//!   endpoint tests sound).
//!
//! Because every event key is a valid lower bound on anything the event can
//! produce, the search is label-setting: when the queue's key passes a
//! vertex's label, that label is final. This yields exactly the two SSAD
//! stopping criteria of §3.2 Implementation Detail 2 of the paper.
//!
//! Distances returned at vertices are **exact** surface geodesic distances
//! (up to floating-point error), verified in the test-suite against closed
//! forms on planes, tents and unfolded strips, and against converging
//! Steiner-graph upper bounds on fractal terrain.
//!
//! # Hot-path design
//!
//! Oracle construction runs this engine hundreds of times per build, so
//! the per-run machinery is built for repetition:
//!
//! * a **scratch arena** per engine recycles the window list, the event
//!   heap, and the pseudo-source flags across runs (checked out of a pool,
//!   so concurrent runs never serialize);
//! * one **indexed 4-ary heap** ([`crate::heap::IndexedMinHeap`]) holds
//!   both event kinds — pseudo-source openings keyed by vertex (decreased
//!   in place as labels improve, so stale entries never exist) and
//!   windows keyed past the vertex range (insert-once);
//! * **horizon pruning**: candidate windows and pseudo-sources whose best
//!   offer exceeds the stop criterion's prune bound are dropped at
//!   creation. Under [`Stop::Radius`] the bound is fixed; under
//!   [`Stop::Targets`] it activates once every target is reached and then
//!   tracks the shrinking largest target label. A run that drains its
//!   queue without ever pruning certifies an infinite
//!   [`SsadResult::finalized`] horizon, which the SSAD-reuse cache
//!   exploits to serve wider later queries.

use crate::dijkstra::StopWatcher;
use crate::engine::{GeodesicEngine, SsadResult, SsadStats, Stop};
use crate::heap::IndexedMinHeap;
use std::sync::{Arc, Mutex};
use terrain::geom::{ray_segment_intersection, unfold_point, Vec2};
use terrain::{EdgeId, FaceId, TerrainMesh, VertexId, NO_FACE};

/// Relative tolerance for window-interval arithmetic (scaled by edge length).
const LEN_EPS: f64 = 1e-11;
/// Slack used when testing domination of a window by vertex labels.
const DOM_EPS: f64 = 1e-12;

/// A window: the trace of a pencil of unfolded straight-line paths from a
/// pseudo-source crossing one mesh edge.
#[derive(Debug, Clone, Copy)]
struct Window {
    edge: EdgeId,
    /// Face the window propagates into (opposite the pseudo-source side).
    to_face: FaceId,
    /// Interval along the edge's canonical `v[0] → v[1]` direction.
    b0: f64,
    b1: f64,
    /// Unfolded distances from the pseudo-source to the interval endpoints.
    d0: f64,
    d1: f64,
    /// Distance from the real source to the pseudo-source.
    sigma: f64,
    /// Cached planar pseudo-source position ([`Window::source_2d`]),
    /// computed once at window creation and reused at propagation.
    src: Vec2,
}

impl Window {
    /// Planar pseudo-source position in the frame where the edge occupies
    /// `[0, L] × {0}` and the source side is `y ≥ 0`.
    ///
    /// Positions on the edge line determine the source only up to
    /// reflection, and reflection preserves all distances used downstream,
    /// so fixing `y ≥ 0` is sound.
    fn source_2d(b0: f64, b1: f64, d0: f64, d1: f64) -> Vec2 {
        let db = b1 - b0;
        let sx = (d0 * d0 - d1 * d1 + b1 * b1 - b0 * b0) / (2.0 * db);
        let sy2 = d0 * d0 - (sx - b0) * (sx - b0);
        Vec2::new(sx, if sy2 > 0.0 { sy2.sqrt() } else { 0.0 })
    }

    /// Smallest distance this window offers to any point of its interval.
    fn min_dist(&self) -> f64 {
        let s = self.src;
        let d = if s.x < self.b0 {
            self.d0
        } else if s.x > self.b1 {
            self.d1
        } else {
            s.y
        };
        self.sigma + d
    }
}

/// Reusable per-run buffers: window storage, the event heap, and the
/// pseudo-source flags.
///
/// Oracle construction issues an `IchEngine` run per cache miss — hundreds
/// per build — and the window list alone can grow to tens of thousands of
/// entries per run. Recycling these buffers keeps every run after the first
/// allocation-free on the hot path (only the returned `dist` array is
/// fresh, since the caller owns it).
#[derive(Debug, Default)]
struct Scratch {
    spawned: Vec<bool>,
    windows: Vec<Window>,
    heap: IndexedMinHeap,
}

/// Exact continuous-Dijkstra geodesic engine.
///
/// The engine is `Send + Sync`; concurrent [`GeodesicEngine::ssad`] calls
/// are fine (construction pools do exactly that). Each run checks a scratch
/// buffer out of a shared pool and returns it afterwards, so the arena
/// reuse never serializes concurrent runs — at worst a fresh scratch is
/// allocated.
#[derive(Debug)]
pub struct IchEngine {
    mesh: Arc<TerrainMesh>,
    /// Hard cap on created windows; exceeding it indicates a pathological
    /// input (or a bug) and panics rather than exhausting memory.
    max_windows: usize,
    /// Pool of recycled per-run buffers (never larger than the peak number
    /// of concurrent runs).
    scratch: Mutex<Vec<Scratch>>,
}

impl Clone for IchEngine {
    /// Clones share the mesh but start with an empty scratch pool (scratch
    /// is a pure accelerator, never part of the engine's observable state).
    fn clone(&self) -> Self {
        Self { mesh: self.mesh.clone(), max_windows: self.max_windows, scratch: Mutex::default() }
    }
}

impl IchEngine {
    /// An exact engine over `mesh` with the default window budget.
    pub fn new(mesh: Arc<TerrainMesh>) -> Self {
        Self { mesh, max_windows: 200_000_000, scratch: Mutex::default() }
    }

    /// Overrides the window cap (mainly for tests).
    pub fn with_max_windows(mesh: Arc<TerrainMesh>, max_windows: usize) -> Self {
        Self { mesh, max_windows, scratch: Mutex::default() }
    }
}

impl GeodesicEngine for IchEngine {
    fn name(&self) -> &'static str {
        "ich-exact"
    }

    fn mesh(&self) -> &TerrainMesh {
        &self.mesh
    }

    fn ssad(&self, source: VertexId, stop: Stop<'_>) -> SsadResult {
        let mut scratch =
            // lint: allow(panic, "scratch-arena lock; poisoning means a sibling engine run already panicked")
            self.scratch.lock().expect("scratch pool poisoned").pop().unwrap_or_default();
        let result = Search::new(&self.mesh, self.max_windows, &mut scratch).run(source, stop);
        // lint: allow(panic, "scratch-arena lock; poisoning means a sibling engine run already panicked")
        self.scratch.lock().expect("scratch pool poisoned").push(scratch);
        result
    }
}

/// Event-slot layout in the indexed heap: slots `0..n_vertices` are
/// pseudo-source openings (decrease-key as labels improve), slots
/// `n_vertices + i` are window `i` propagations (insert-once).
struct Search<'m> {
    mesh: &'m TerrainMesh,
    dist: Vec<f64>,
    scratch: &'m mut Scratch,
    stats: SsadStats,
    /// Current prune bound: candidate windows and pseudo-sources whose best
    /// offer exceeds it are dropped eagerly. Fixed under [`Stop::Radius`];
    /// tightens dynamically under [`Stop::Targets`] once every target is
    /// reached (see [`StopWatcher::prune_bound`]).
    bound: f64,
    /// Whether anything was dropped via `bound` — if not, a drained queue
    /// means the run was exhaustive and the finality horizon is infinite.
    pruned: bool,
    max_windows: usize,
}

impl<'m> Search<'m> {
    fn new(mesh: &'m TerrainMesh, max_windows: usize, scratch: &'m mut Scratch) -> Self {
        let n = mesh.n_vertices();
        scratch.spawned.clear();
        scratch.spawned.resize(n, false);
        scratch.windows.clear();
        scratch.heap.reset(n);
        Self {
            mesh,
            dist: vec![f64::INFINITY; n],
            scratch,
            stats: SsadStats::default(),
            bound: f64::INFINITY,
            pruned: false,
            max_windows,
        }
    }

    fn run(mut self, source: VertexId, stop: Stop<'_>) -> SsadResult {
        let n = self.mesh.n_vertices() as u32;
        self.dist[source as usize] = 0.0;
        let mut watcher = StopWatcher::new(stop, &self.dist);
        watcher.on_relax(source, 0.0);
        self.bound = watcher.prune_bound(&self.dist);
        self.open_pseudo_source(source, 0.0, &mut watcher);

        let mut stopped = false;
        while let Some((key, slot)) = self.scratch.heap.pop() {
            self.stats.events_processed += 1;
            self.stats.max_key = key;
            if watcher.done(key, &self.dist) {
                stopped = true;
                break;
            }
            self.bound = self.bound.min(watcher.prune_bound(&self.dist));
            if slot < n {
                // Pseudo-source opening. The heap entry's key is decreased
                // in lockstep with the label, so it is never stale.
                let v = slot;
                debug_assert!(!self.scratch.spawned[v as usize]);
                debug_assert_eq!(key, self.dist[v as usize]);
                self.scratch.spawned[v as usize] = true;
                let d = self.dist[v as usize];
                self.open_pseudo_source(v, d, &mut watcher);
            } else {
                let w = self.scratch.windows[(slot - n) as usize];
                if key > self.bound {
                    // The bound tightened after this window was enqueued.
                    self.pruned = true;
                    continue;
                }
                if self.dominated(&w) {
                    continue;
                }
                self.propagate(&w, &mut watcher);
            }
        }

        let finalized = watcher.finalized(stopped, self.pruned, &self.dist);
        SsadResult { dist: self.dist, finalized, stats: self.stats }
    }

    /// Lowers `dist[v]`; schedules (or re-keys) a pseudo-source opening when
    /// `v` is a saddle or boundary vertex.
    fn relax(&mut self, v: VertexId, nd: f64, watcher: &mut StopWatcher<'_>) {
        if nd < self.dist[v as usize] {
            self.dist[v as usize] = nd;
            watcher.on_relax(v, nd);
            if !self.scratch.spawned[v as usize] && self.mesh.is_pseudo_source_vertex(v) {
                if nd <= self.bound {
                    self.scratch.heap.push_or_decrease(v, nd);
                } else {
                    self.pruned = true;
                }
            }
        }
    }

    /// Emits the circular wavefront of a (pseudo-)source at vertex `v`:
    /// direct relaxations along incident edges plus one full-edge window per
    /// incident face.
    fn open_pseudo_source(&mut self, v: VertexId, d: f64, watcher: &mut StopWatcher<'_>) {
        for &e in self.mesh.vertex_edges(v) {
            let edge = self.mesh.edge(e);
            let u = if edge.v[0] == v { edge.v[1] } else { edge.v[0] };
            self.relax(u, d + self.mesh.edge_len(e), watcher);
        }
        for &f in self.mesh.vertex_faces(v) {
            let e = self
                .mesh
                .face_edges(f)
                .into_iter()
                .find(|&e| {
                    let ev = self.mesh.edge(e).v;
                    ev[0] != v && ev[1] != v
                })
                // lint: allow(panic, "invariant: every validated mesh face has an edge opposite each vertex")
                .expect("face has an edge opposite each vertex");
            let ev = self.mesh.edge(e).v;
            let pv = self.mesh.vertex(v);
            let b1 = self.mesh.edge_len(e);
            let d0 = pv.dist(self.mesh.vertex(ev[0]));
            let d1 = pv.dist(self.mesh.vertex(ev[1]));
            let w = Window {
                edge: e,
                to_face: self.mesh.other_face(e, f).unwrap_or(NO_FACE),
                b0: 0.0,
                b1,
                d0,
                d1,
                sigma: d,
                src: Window::source_2d(0.0, b1, d0, d1),
            };
            self.add_window(w, watcher);
        }
    }

    /// Whether through-endpoint paths dominate `w` everywhere on its
    /// interval.
    ///
    /// With the source at `(sx, sy)` and the edge on the x-axis,
    /// `g(p) = σ + |S − p| − (label(v0) + p)` is non-increasing in `p`
    /// (its derivative is `(p − sx)/|S − p| − 1 ≤ 0`), so domination by the
    /// left endpoint only needs checking at `p = b1`; symmetrically the
    /// right endpoint only needs checking at `p = b0`.
    fn dominated(&self, w: &Window) -> bool {
        let ev = self.mesh.edge(w.edge).v;
        let len = self.mesh.edge_len(w.edge);
        let la = self.dist[ev[0] as usize];
        let lb = self.dist[ev[1] as usize];
        let scale = w.sigma + w.d0 + w.d1 + len;
        la + w.b1 <= w.sigma + w.d1 + DOM_EPS * scale
            || lb + (len - w.b0) <= w.sigma + w.d0 + DOM_EPS * scale
    }

    /// Validates, prunes, relaxes endpoint labels, and enqueues a window.
    fn add_window(&mut self, w: Window, watcher: &mut StopWatcher<'_>) {
        let len = self.mesh.edge_len(w.edge);
        if !(w.b0.is_finite() && w.b1.is_finite() && w.d0.is_finite() && w.d1.is_finite()) {
            return;
        }
        if w.b1 - w.b0 < LEN_EPS * len {
            return;
        }
        // Valid path lengths through the window's nearest interval point,
        // completed along the edge — always safe upper bounds.
        let ev = self.mesh.edge(w.edge).v;
        self.relax(ev[0], w.sigma + w.d0 + w.b0, watcher);
        self.relax(ev[1], w.sigma + w.d1 + (len - w.b1), watcher);

        let key = w.min_dist();
        if key > self.bound {
            // Lower bound beyond the search horizon: the window cannot
            // improve any label the run promises as final.
            self.pruned = true;
            return;
        }
        if self.dominated(&w) {
            return;
        }
        if w.to_face == NO_FACE {
            return; // boundary: nothing to propagate into
        }
        assert!(
            self.scratch.windows.len() < self.max_windows,
            "ICH window budget ({}) exhausted — pathological mesh or bug",
            self.max_windows
        );
        let idx = self.scratch.windows.len() as u32;
        self.scratch.windows.push(w);
        self.stats.events_created += 1;
        let slot = self.mesh.n_vertices() as u32 + idx;
        self.scratch.heap.push_or_decrease(slot, key);
    }

    /// Unfolds `w` across its `to_face` and emits the clipped child windows.
    fn propagate(&mut self, w: &Window, watcher: &mut StopWatcher<'_>) {
        let g = w.to_face;
        let ev = self.mesh.edge(w.edge).v;
        let (va, vb) = (ev[0], ev[1]);
        let len = self.mesh.edge_len(w.edge);
        let opp = self.mesh.opposite_vertex(g, w.edge);

        let a2 = Vec2::ZERO;
        let b2 = Vec2::new(len, 0.0);
        let c2 = unfold_point(
            self.mesh.vertex(va),
            self.mesh.vertex(vb),
            self.mesh.vertex(opp),
            a2,
            b2,
            -1.0,
        );
        let s = w.src;
        let dir0 = Vec2::new(w.b0, 0.0) - s;
        let dir1 = Vec2::new(w.b1, 0.0) - s;
        let dir_c = c2 - s;

        // Cone membership of the apex: inside ⟺ dir0 ⪯ dirC ⪯ dir1 in the
        // clockwise-from-left ordering (cross(u, v) ≥ 0 ⟺ u left of v for
        // downward directions).
        let c_after_left = dir0.cross(dir_c) >= 0.0;
        let c_before_right = dir_c.cross(dir1) >= 0.0;

        let i0l = ray_segment_intersection(s, dir0, a2, c2);
        let i1l = ray_segment_intersection(s, dir1, a2, c2);
        let i0r = ray_segment_intersection(s, dir0, c2, b2);
        let i1r = ray_segment_intersection(s, dir1, c2, b2);

        if c_after_left && c_before_right {
            // Apex inside the cone: illuminate both far edges and the apex.
            self.relax(opp, w.sigma + dir_c.norm(), watcher);
            let u_start = i0l.map_or(0.0, |(_, u)| u);
            self.emit(g, va, opp, a2, c2, u_start, 1.0, s, w.sigma, watcher);
            let u_end = i1r.map_or(1.0, |(_, u)| u);
            self.emit(g, opp, vb, c2, b2, 0.0, u_end, s, w.sigma, watcher);
        } else if !c_after_left {
            // Apex left of the cone: all light lands on the right far edge.
            let u_s = i0r.map_or(0.0, |(_, u)| u);
            let u_e = i1r.map_or(1.0, |(_, u)| u);
            self.emit(g, opp, vb, c2, b2, u_s, u_e, s, w.sigma, watcher);
        } else {
            // Apex right of the cone: all light lands on the left far edge.
            let u_s = i0l.map_or(0.0, |(_, u)| u);
            let u_e = i1l.map_or(1.0, |(_, u)| u);
            self.emit(g, va, opp, a2, c2, u_s, u_e, s, w.sigma, watcher);
        }
    }

    /// Builds the child window on the edge `from_v → to_v` of face `g`
    /// (unfolded endpoints `pa → pb`), lit on parameters `[u_lo, u_hi]`.
    #[allow(clippy::too_many_arguments)]
    fn emit(
        &mut self,
        g: FaceId,
        from_v: VertexId,
        to_v: VertexId,
        pa: Vec2,
        pb: Vec2,
        u_lo: f64,
        u_hi: f64,
        s: Vec2,
        sigma: f64,
        watcher: &mut StopWatcher<'_>,
    ) {
        // Deliberately `!(> 0.0)` rather than `<= 0.0`: a NaN window (from a
        // degenerate unfolding) must also bail out.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(u_hi - u_lo > 0.0) {
            return;
        }
        let e =
            // lint: allow(panic, "invariant: windows propagate only across edges of the face being unfolded")
            self.mesh.edge_between(from_v, to_v).expect("face edge exists between its vertices");
        let len = self.mesh.edge_len(e);
        let p_lo = pa + (pb - pa) * u_lo;
        let p_hi = pa + (pb - pa) * u_hi;
        let d_lo = s.dist(p_lo);
        let d_hi = s.dist(p_hi);
        let ev = self.mesh.edge(e).v;
        let (b0, b1, d0, d1) = if ev[0] == from_v {
            (u_lo * len, u_hi * len, d_lo, d_hi)
        } else {
            ((1.0 - u_hi) * len, (1.0 - u_lo) * len, d_hi, d_lo)
        };
        let (b0, b1) = (b0.max(0.0), b1.min(len));
        let w = Window {
            edge: e,
            to_face: self.mesh.other_face(e, g).unwrap_or(NO_FACE),
            b0,
            b1,
            d0,
            d1,
            sigma,
            src: Window::source_2d(b0, b1, d0, d1),
        };
        self.add_window(w, watcher);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::EdgeGraphEngine;
    use terrain::gen::{diamond_square, tent, Heightfield};

    fn ich(mesh: TerrainMesh) -> IchEngine {
        IchEngine::new(Arc::new(mesh))
    }

    #[test]
    fn flat_grid_matches_euclidean() {
        // On a flat terrain the geodesic distance is the planar Euclidean
        // distance — the strongest end-to-end correctness test.
        let m = Heightfield::flat(7, 7, 1.0, 1.0).to_mesh();
        let eng = ich(m);
        let r = eng.ssad(0, Stop::Exhaust);
        for j in 0..7usize {
            for i in 0..7usize {
                let v = j * 7 + i;
                let expect = ((i * i + j * j) as f64).sqrt();
                assert!(
                    (r.dist[v] - expect).abs() < 1e-9,
                    "vertex ({i},{j}): got {} want {expect}",
                    r.dist[v]
                );
            }
        }
    }

    #[test]
    fn flat_grid_interior_source() {
        let m = Heightfield::flat(9, 9, 0.5, 0.5).to_mesh();
        let eng = ich(m);
        let src = 4 * 9 + 4; // center
        let r = eng.ssad(src as u32, Stop::Exhaust);
        for j in 0..9usize {
            for i in 0..9usize {
                let v = j * 9 + i;
                let dx = (i as f64 - 4.0) * 0.5;
                let dy = (j as f64 - 4.0) * 0.5;
                let expect = (dx * dx + dy * dy).sqrt();
                assert!(
                    (r.dist[v] - expect).abs() < 1e-9,
                    "vertex ({i},{j}): got {} want {expect}",
                    r.dist[v]
                );
            }
        }
    }

    #[test]
    fn tent_unfolds_exactly() {
        // Tent with ridge at x = 4, slope length s = sqrt(16 + h^2) per side.
        // Geodesic between two points at the same y on opposite feet
        // unfolds to a straight line of length 2 s (same y), and the
        // distance from a foot to the ridge top at the same y is s.
        let h = 3.0;
        let hf = tent(9, 5, 1.0, 1.0, h);
        let m = hf.to_mesh();
        let eng = ich(m);
        let slope = (16.0 + h * h).sqrt();
        // Vertex ids: (i, j) -> j*9 + i. Foot left (0, 2) = 18; ridge (4, 2)
        // = 22; foot right (8, 2) = 26.
        let r = eng.ssad(18, Stop::Exhaust);
        assert!((r.dist[22] - slope).abs() < 1e-9, "to ridge: {}", r.dist[22]);
        assert!((r.dist[26] - 2.0 * slope).abs() < 1e-9, "across: {}", r.dist[26]);
    }

    #[test]
    fn tent_cross_ridge_diagonal() {
        // Between (x=3, y=1) and (x=5, y=3) on a tent with ridge x=4:
        // unfold both slopes into a plane; the unfolded horizontal span is
        // the along-slope distance. With dx measured along each slope,
        // slope factor k = sqrt(1 + (h/4)^2) per unit x.
        let h = 2.0;
        let hf = tent(9, 5, 1.0, 1.0, h);
        let m = hf.to_mesh();
        let eng = ich(m);
        let k = (1.0 + (h / 4.0) * (h / 4.0)).sqrt();
        let a = 9 + 3; // (3, 1)
        let b = 3 * 9 + 5; // (5, 3)

        // Unfolded x-span: (4 - 3)·k + (5 - 4)·k = 2k; y-span: 2.
        let expect = ((2.0 * k) * (2.0 * k) + 4.0).sqrt();
        let d = eng.distance(a as u32, b as u32);
        assert!((d - expect).abs() < 1e-9, "got {d} want {expect}");
    }

    #[test]
    fn geodesic_at_least_euclidean_at_most_graph() {
        let m = diamond_square(4, 0.65, 31).to_mesh();
        let mesh = Arc::new(m);
        let exact = IchEngine::new(mesh.clone());
        let graph = EdgeGraphEngine::new(mesh.clone());
        let r_exact = exact.ssad(0, Stop::Exhaust);
        let r_graph = graph.ssad(0, Stop::Exhaust);
        for v in 0..mesh.n_vertices() {
            let eu = mesh.vertex(0).dist(mesh.vertex(v as u32));
            assert!(
                r_exact.dist[v] >= eu - 1e-9,
                "v{v}: geodesic {} < euclidean {eu}",
                r_exact.dist[v]
            );
            assert!(
                r_exact.dist[v] <= r_graph.dist[v] + 1e-9,
                "v{v}: geodesic {} > graph {}",
                r_exact.dist[v],
                r_graph.dist[v]
            );
        }
    }

    #[test]
    fn symmetry_on_fractal() {
        let m = diamond_square(3, 0.6, 7).to_mesh();
        let eng = ich(m);
        for (a, b) in [(0u32, 80u32), (12, 77), (40, 44)] {
            let ab = eng.distance(a, b);
            let ba = eng.distance(b, a);
            assert!((ab - ba).abs() < 1e-9, "d({a},{b})={ab} but d({b},{a})={ba}");
        }
    }

    #[test]
    fn radius_stop_matches_full_run() {
        let m = diamond_square(4, 0.6, 13).to_mesh();
        let eng = ich(m);
        let full = eng.ssad(100, Stop::Exhaust);
        let radius = 4.0;
        let part = eng.ssad(100, Stop::Radius(radius));
        for v in 0..full.dist.len() {
            if full.dist[v] <= radius {
                assert!(
                    (part.dist[v] - full.dist[v]).abs() < 1e-9,
                    "v{v}: {} vs {}",
                    part.dist[v],
                    full.dist[v]
                );
            }
        }
        assert!(part.stats.events_processed <= full.stats.events_processed);
    }

    #[test]
    fn targets_stop_matches_full_run() {
        let m = diamond_square(4, 0.6, 19).to_mesh();
        let eng = ich(m);
        let full = eng.ssad(3, Stop::Exhaust);
        let targets: Vec<u32> = vec![288, 144, 12, 250];
        let part = eng.ssad(3, Stop::Targets(&targets));
        for &t in &targets {
            assert!((part.dist[t as usize] - full.dist[t as usize]).abs() < 1e-9, "target {t}");
        }
    }

    #[test]
    fn triangle_inequality_samples() {
        let m = diamond_square(3, 0.7, 23).to_mesh();
        let eng = ich(m);
        let pts = [0u32, 15, 40, 62, 80];
        let mut d = vec![vec![0.0; pts.len()]; pts.len()];
        for (i, &a) in pts.iter().enumerate() {
            let r = eng.ssad(a, Stop::Targets(&pts));
            for (j, &b) in pts.iter().enumerate() {
                d[i][j] = r.dist[b as usize];
            }
        }
        for i in 0..pts.len() {
            assert!(d[i][i].abs() < 1e-12);
            for j in 0..pts.len() {
                for k in 0..pts.len() {
                    assert!(
                        d[i][j] <= d[i][k] + d[k][j] + 1e-9,
                        "triangle violated: d[{i}][{j}]={} > {} + {}",
                        d[i][j],
                        d[i][k],
                        d[k][j]
                    );
                }
            }
        }
    }

    #[test]
    fn steep_terrain_exceeds_euclidean_substantially() {
        // A rough fractal surface must have geodesics measurably longer than
        // straight-line 3-D distance for far pairs (the paper cites ratios
        // up to 300%; we only assert it is non-trivially larger).
        let mut hf = diamond_square(5, 0.75, 3);
        hf.scale_heights(3.0);
        let m = hf.to_mesh();
        let n = m.n_vertices();
        let mesh = Arc::new(m);
        let eng = IchEngine::new(mesh.clone());
        let r = eng.ssad(0, Stop::Targets(&[(n - 1) as u32]));
        let geo = r.dist[n - 1];
        let eu = mesh.vertex(0).dist(mesh.vertex((n - 1) as u32));
        assert!(geo > eu * 1.02, "geodesic {geo} vs euclidean {eu}");
    }
}
