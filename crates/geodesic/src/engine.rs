//! The engine abstraction: every geodesic backend exposes the paper's SSAD
//! (single-source all-destination) primitive with its two stopping criteria.
//!
//! §3.2 Implementation Detail 2 of the paper defines both flavours: one that
//! "executes until the search region of the algorithm covers all points in
//! P" and one that stops once "the distance between the boundary of the
//! search region and `p` is greater than `r`". The SE oracle is written
//! against this trait, so it can be built with the exact continuous-Dijkstra
//! engine (faithful, slower) or with graph-approximation engines (for
//! large-scale sweeps).

use terrain::{TerrainMesh, VertexId};

/// Stopping criterion for an SSAD run.
#[derive(Debug, Clone, Copy)]
pub enum Stop<'a> {
    /// Run until every listed target vertex has a final label.
    Targets(&'a [VertexId]),
    /// Run until every vertex within geodesic distance `r` has a final
    /// label. Labels larger than `r` in the result are upper bounds only.
    Radius(f64),
    /// Propagate until exhaustion: all labels final.
    Exhaust,
}

/// Counters describing the work an SSAD run performed.
#[derive(Debug, Clone, Copy, Default)]
pub struct SsadStats {
    /// Windows propagated (ICH) or queue pops (graph engines).
    pub events_processed: u64,
    /// Windows created (ICH) or edge relaxations (graph engines).
    pub events_created: u64,
    /// The largest settled key when the run stopped.
    pub max_key: f64,
}

/// Result of an SSAD run: a dense per-vertex label array.
#[derive(Debug, Clone)]
pub struct SsadResult {
    /// `dist[v]` is the geodesic distance from the source to vertex `v`.
    /// `f64::INFINITY` if `v` was not reached before the stop criterion
    /// fired. Under [`Stop::Radius`], labels `≤ r` are final; larger finite
    /// labels are valid upper bounds but not necessarily tight.
    pub dist: Vec<f64>,
    /// Finality horizon: every label `≤ finalized` is exact. At least the
    /// stop criterion's promise — `r` for [`Stop::Radius`], infinity for an
    /// exhausted search, the largest target label for [`Stop::Targets`] —
    /// but engines report a **wider** horizon when they can certify one: a
    /// bounded run that drains its queue without ever pruning against the
    /// bound was exhaustive, so its horizon is infinite. The SSAD-reuse
    /// cache leans on this to serve wider later queries from nominally
    /// narrower runs.
    pub finalized: f64,
    /// Work counters of the run.
    pub stats: SsadStats,
}

/// Error of [`SsadResult::try_within`]: the requested radius exceeds the
/// run's finality horizon, so labels in `(finalized, radius]` would be
/// upper bounds rather than final distances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HorizonExceeded {
    /// The radius the caller asked for.
    pub requested: f64,
    /// The horizon the run actually certified ([`SsadResult::finalized`]).
    pub finalized: f64,
}

impl std::fmt::Display for HorizonExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "within({}) exceeds the finalized horizon {}: labels beyond it are upper bounds, \
             not final — re-run the SSAD with a wider stop",
            self.requested, self.finalized
        )
    }
}

impl std::error::Error for HorizonExceeded {}

impl SsadResult {
    /// All vertices with final labels within `radius`, as `(vertex, dist)`.
    ///
    /// `radius` is **clamped** to [`Self::finalized`] — in every build
    /// profile — so the iterator never yields a non-final label: asking for
    /// more than the run certified silently narrows the answer to what is
    /// actually final. Callers that must know whether the clamp fired (a
    /// narrowed answer is *wrong* for them, e.g. covering sweeps that trust
    /// completeness at `radius`) should use [`Self::try_within`] instead.
    pub fn within(&self, radius: f64) -> impl Iterator<Item = (VertexId, f64)> + '_ {
        let r = radius.min(self.finalized);
        self.dist.iter().enumerate().filter(move |(_, &d)| d <= r).map(|(v, &d)| (v as VertexId, d))
    }

    /// Checked variant of [`Self::within`]: errs with [`HorizonExceeded`]
    /// when `radius` exceeds [`Self::finalized`] instead of clamping.
    pub fn try_within(
        &self,
        radius: f64,
    ) -> Result<impl Iterator<Item = (VertexId, f64)> + '_, HorizonExceeded> {
        if radius > self.finalized {
            return Err(HorizonExceeded { requested: radius, finalized: self.finalized });
        }
        Ok(self
            .dist
            .iter()
            .enumerate()
            .filter(move |(_, &d)| d <= radius)
            .map(|(v, &d)| (v as VertexId, d)))
    }
}

/// A geodesic-distance backend bound to one mesh.
///
/// # Determinism
///
/// Every engine in this crate is a deterministic label-setting search:
/// `ssad` called twice with the same `(source, stop)` returns bit-identical
/// labels, and a label that is final under one stop criterion is
/// bit-identical under any *wider* criterion (the wider run processes the
/// same event sequence, merely truncated later). The SSAD-reuse cache
/// ([`crate::cache::CachingSiteSpace`]) and the construction pipeline's
/// thread-count-independence guarantee both rest on this contract; the
/// `radius_stop_*` tests pin it per engine.
pub trait GeodesicEngine: Send + Sync {
    /// Short identifier used in experiment output.
    fn name(&self) -> &'static str;

    /// The mesh this engine answers queries on.
    fn mesh(&self) -> &TerrainMesh;

    /// Runs SSAD from `source` under the given stopping criterion.
    fn ssad(&self, source: VertexId, stop: Stop<'_>) -> SsadResult;

    /// Distance between two vertices (early-terminating SSAD).
    fn distance(&self, s: VertexId, t: VertexId) -> f64 {
        if s == t {
            return 0.0;
        }
        self.ssad(s, Stop::Targets(&[t])).dist[t as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ich::IchEngine;
    use std::sync::Arc;
    use terrain::gen::diamond_square;

    fn radius_result() -> (SsadResult, f64) {
        let mesh = Arc::new(diamond_square(3, 0.6, 41).to_mesh());
        let eng = IchEngine::new(mesh);
        let full = eng.ssad(0, Stop::Exhaust);
        let reach = full.dist.iter().cloned().fold(0.0, f64::max);
        let r = reach * 0.4;
        (eng.ssad(0, Stop::Radius(r)), r)
    }

    #[test]
    fn within_clamps_to_finalized_in_every_profile() {
        let (res, r) = radius_result();
        assert!(res.finalized >= r);
        // Ask beyond the horizon: the answer must silently narrow to the
        // horizon — identical to asking for the horizon itself.
        let over: Vec<(u32, f64)> = res.within(res.finalized * 4.0).collect();
        let at: Vec<(u32, f64)> = res.within(res.finalized).collect();
        assert_eq!(over, at, "clamped query must equal the horizon query");
        for &(_, d) in &over {
            assert!(d <= res.finalized);
        }
    }

    #[test]
    fn try_within_rejects_beyond_horizon() {
        let (res, r) = radius_result();
        let err = res.try_within(res.finalized * 2.0).err().expect("must reject");
        assert_eq!(err.finalized, res.finalized);
        assert_eq!(err.requested, res.finalized * 2.0);
        let msg = err.to_string();
        assert!(msg.contains("finalized horizon"), "actionable message: {msg}");

        // At or below the horizon it matches the unchecked variant.
        let ok: Vec<(u32, f64)> = res.try_within(r).expect("within horizon").collect();
        let unchecked: Vec<(u32, f64)> = res.within(r).collect();
        assert_eq!(ok, unchecked);
    }

    #[test]
    fn exhaustive_bounded_run_reports_infinite_horizon() {
        // A radius far beyond the reach drains the queue without ever
        // pruning: the engine certifies global finality.
        let mesh = Arc::new(diamond_square(3, 0.6, 43).to_mesh());
        let eng = IchEngine::new(mesh);
        let full = eng.ssad(5, Stop::Exhaust);
        let reach = full.dist.iter().cloned().fold(0.0, f64::max);
        let wide = eng.ssad(5, Stop::Radius(reach * 8.0));
        assert!(
            wide.finalized.is_infinite(),
            "drained un-pruned run must certify an infinite horizon, got {}",
            wide.finalized
        );
        for v in 0..full.dist.len() {
            assert_eq!(wide.dist[v].to_bits(), full.dist[v].to_bits(), "v{v}");
        }
    }
}
