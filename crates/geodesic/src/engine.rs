//! The engine abstraction: every geodesic backend exposes the paper's SSAD
//! (single-source all-destination) primitive with its two stopping criteria.
//!
//! §3.2 Implementation Detail 2 of the paper defines both flavours: one that
//! "executes until the search region of the algorithm covers all points in
//! P" and one that stops once "the distance between the boundary of the
//! search region and `p` is greater than `r`". The SE oracle is written
//! against this trait, so it can be built with the exact continuous-Dijkstra
//! engine (faithful, slower) or with graph-approximation engines (for
//! large-scale sweeps).

use terrain::{TerrainMesh, VertexId};

/// Stopping criterion for an SSAD run.
#[derive(Debug, Clone, Copy)]
pub enum Stop<'a> {
    /// Run until every listed target vertex has a final label.
    Targets(&'a [VertexId]),
    /// Run until every vertex within geodesic distance `r` has a final
    /// label. Labels larger than `r` in the result are upper bounds only.
    Radius(f64),
    /// Propagate until exhaustion: all labels final.
    Exhaust,
}

/// Counters describing the work an SSAD run performed.
#[derive(Debug, Clone, Copy, Default)]
pub struct SsadStats {
    /// Windows propagated (ICH) or queue pops (graph engines).
    pub events_processed: u64,
    /// Windows created (ICH) or edge relaxations (graph engines).
    pub events_created: u64,
    /// The largest settled key when the run stopped.
    pub max_key: f64,
}

/// Result of an SSAD run: a dense per-vertex label array.
#[derive(Debug, Clone)]
pub struct SsadResult {
    /// `dist[v]` is the geodesic distance from the source to vertex `v`.
    /// `f64::INFINITY` if `v` was not reached before the stop criterion
    /// fired. Under [`Stop::Radius`], labels `≤ r` are final; larger finite
    /// labels are valid upper bounds but not necessarily tight.
    pub dist: Vec<f64>,
    /// Finality horizon: every label `≤ finalized` is exact. Set by the
    /// engine from the stop criterion — `r` for [`Stop::Radius`], infinity
    /// for an exhausted search, the largest target label for
    /// [`Stop::Targets`].
    pub finalized: f64,
    pub stats: SsadStats,
}

impl SsadResult {
    /// All vertices with final labels within `radius`, as `(vertex, dist)`.
    ///
    /// `radius` must not exceed [`Self::finalized`] — beyond it labels are
    /// upper bounds only, not final. Debug builds assert this; release
    /// builds clamp to the finalized horizon, so the iterator never yields
    /// a non-final label.
    pub fn within(&self, radius: f64) -> impl Iterator<Item = (VertexId, f64)> + '_ {
        debug_assert!(
            radius <= self.finalized,
            "within({radius}) exceeds the finalized horizon {}: labels beyond it are \
             upper bounds, not final — re-run the SSAD with a wider stop",
            self.finalized
        );
        let r = radius.min(self.finalized);
        self.dist.iter().enumerate().filter(move |(_, &d)| d <= r).map(|(v, &d)| (v as VertexId, d))
    }
}

/// A geodesic-distance backend bound to one mesh.
pub trait GeodesicEngine: Send + Sync {
    /// Short identifier used in experiment output.
    fn name(&self) -> &'static str;

    /// The mesh this engine answers queries on.
    fn mesh(&self) -> &TerrainMesh;

    /// Runs SSAD from `source` under the given stopping criterion.
    fn ssad(&self, source: VertexId, stop: Stop<'_>) -> SsadResult;

    /// Distance between two vertices (early-terminating SSAD).
    fn distance(&self, s: VertexId, t: VertexId) -> f64 {
        if s == t {
            return 0.0;
        }
        self.ssad(s, Stop::Targets(&[t])).dist[t as usize]
    }
}
