//! Geodesic shortest-path engines on terrain surfaces.
//!
//! The paper's SE oracle is built on repeated SSAD (single-source
//! all-destination) geodesic computations with bounded search regions. This
//! crate provides three interchangeable backends behind
//! [`engine::GeodesicEngine`]:
//!
//! * [`ich::IchEngine`] — **exact** continuous-Dijkstra window propagation
//!   in the style of Chen–Han / Xin–Wang (the paper's references [6, 34]);
//! * [`dijkstra::EdgeGraphEngine`] — network distance along mesh edges
//!   (cheap upper bound);
//! * [`steiner::SteinerEngine`] — Dijkstra over a Steiner-point graph
//!   `G_ε` ([`steiner::SteinerGraph`]), the substrate shared by the
//!   SP-Oracle and K-Algo baselines and the A2A oracle of Appendix C.
//!
//! [`sitespace::SiteSpace`] narrows an engine to the three primitives the
//! oracle construction needs over its POI set.
//!
//! ```
//! use std::sync::Arc;
//! use geodesic::engine::{GeodesicEngine, Stop};
//! use geodesic::ich::IchEngine;
//! use terrain::gen::Heightfield;
//!
//! let mesh = Arc::new(Heightfield::flat(5, 5, 1.0, 1.0).to_mesh());
//! let engine = IchEngine::new(mesh);
//! // Exact geodesic on a flat grid is planar Euclidean distance.
//! let d = engine.distance(0, 24); // (0,0) to (4,4)
//! assert!((d - 32f64.sqrt()).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod dijkstra;
pub mod engine;
pub mod heap;
pub mod ich;
pub mod path;
pub mod pool;
pub mod sitespace;
pub mod steiner;
pub mod voronoi;

pub use cache::{CacheStats, CachingSiteSpace};
pub use dijkstra::EdgeGraphEngine;
pub use engine::{GeodesicEngine, SsadResult, SsadStats, Stop};
pub use ich::IchEngine;
pub use path::{
    shortest_path, shortest_path_straightened, shortest_vertex_path,
    shortest_vertex_path_straightened, trace_descent_path, SurfacePath,
};
pub use pool::{resolve_threads, run_indexed};
pub use sitespace::{GraphSiteSpace, SiteSpace, VertexSiteSpace};
pub use steiner::{SteinerEngine, SteinerGraph};
pub use voronoi::{geodesic_voronoi, VoronoiResult};
