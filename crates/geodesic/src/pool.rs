//! The construction worker pool: scoped threads over an atomic work-queue
//! index.
//!
//! Every parallelizable phase of oracle construction (partition-tree point
//! covering, enhanced-edge SSADs, baseline all-pairs sweeps) is a bag of
//! independent per-item jobs whose *results* must come back in a
//! deterministic order. [`run_indexed`] provides exactly that: workers pull
//! the next item index from a shared atomic counter (so uneven job costs
//! balance dynamically, unlike static chunking) and the caller receives the
//! results in item order regardless of which worker ran what.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a user-facing thread count: `0` means auto-detect via
/// [`std::thread::available_parallelism`] (falling back to 1 when the
/// platform cannot report it); any other value is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        // lint: allow(d2, "thread-count autodetect only; results are bit-identical across thread counts (tests/parallel_build.rs)")
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        threads
    }
}

/// Runs `f(i)` for every `i in 0..n` on up to `threads` scoped workers
/// (`0` = auto-detect) and returns the results in index order.
///
/// Work is distributed through an atomic queue index, so long-running items
/// do not stall a statically assigned chunk. `f` must be safe to call
/// concurrently from multiple threads; determinism of the *output* is
/// guaranteed by ordering alone, so `f` itself must be deterministic per
/// index for end-to-end reproducibility.
pub fn run_indexed<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = resolve_threads(threads).min(n);
    // Pool telemetry: one batch, `n` jobs, `threads` workers actually
    // spawned (0 extra workers on the inline path). Counting happens once
    // per batch, off every job's hot path.
    let reg = obs::global();
    reg.counter("geodesic_pool_batches_total").inc();
    reg.counter("geodesic_pool_jobs_total").add(n as u64);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    reg.counter("geodesic_pool_workers_total").add(threads as u64);

    let next = AtomicUsize::new(0);
    let mut tagged: Vec<(usize, T)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i)));
                    }
                    local
                })
            })
            .collect();
        // lint: allow(panic, "worker panics must propagate to the caller; join fails only on panic")
        handles.into_iter().flat_map(|h| h.join().expect("construction worker panicked")).collect()
    });

    tagged.sort_unstable_by_key(|&(i, _)| i);
    debug_assert!(tagged.iter().enumerate().all(|(k, &(i, _))| k == i));
    tagged.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn resolve_zero_is_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(1), 1);
        assert_eq!(resolve_threads(7), 7);
    }

    #[test]
    fn results_in_index_order() {
        for threads in [1usize, 2, 4, 9] {
            let out = run_indexed(threads, 100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let calls = AtomicU64::new(0);
        let out = run_indexed(4, 57, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 57);
        assert_eq!(out.len(), 57);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(run_indexed::<usize, _>(4, 0, |i| i).is_empty());
        assert_eq!(run_indexed(4, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn more_threads_than_items() {
        assert_eq!(run_indexed(64, 3, |i| i), vec![0, 1, 2]);
    }
}
