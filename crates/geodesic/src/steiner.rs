//! Steiner-point graphs `G_ε` over a terrain mesh.
//!
//! The fixed-placement scheme the paper attributes to the baselines [2, 3,
//! 12, 19]: `m` evenly spaced Steiner points are added to every edge, and
//! every pair of boundary nodes of a face that do not lie on the same edge
//! is connected by the face-crossing chord (a straight, on-surface segment).
//! Same-edge nodes are chained with consecutive collinear links, which is
//! exact. Shortest paths on `G_ε` are on-surface paths, hence upper bounds
//! of the geodesic distance, converging to it as `m` grows.
//!
//! This graph is the substrate of the SP-Oracle and K-Algo baselines, of
//! the A2A oracle of Appendix C, and of the fast approximate
//! [`SteinerEngine`].

// lint: query-path
use crate::engine::{GeodesicEngine, SsadResult, SsadStats, Stop};
use crate::heap::IndexedMinHeap;
use std::sync::Arc;
use terrain::geom::Vec3;
use terrain::{EdgeId, FaceId, TerrainMesh, VertexId};

/// Node index in a [`SteinerGraph`]: mesh vertices first (`0..N`), then
/// `m` Steiner nodes per edge.
pub type NodeId = u32;

/// A graph over mesh vertices plus per-edge Steiner points.
#[derive(Debug, Clone)]
pub struct SteinerGraph {
    mesh: Arc<TerrainMesh>,
    /// Steiner points per edge.
    m: usize,
    /// Positions of all nodes (vertices then Steiner points).
    positions: Vec<Vec3>,
    /// CSR adjacency.
    adj_off: Vec<u32>,
    adj_dat: Vec<(NodeId, f64)>,
}

impl SteinerGraph {
    /// Builds the graph with `m` Steiner points per edge (`m ≥ 0`).
    pub fn with_points_per_edge(mesh: Arc<TerrainMesh>, m: usize) -> Self {
        let nv = mesh.n_vertices();
        let ne = mesh.n_edges();
        let n_nodes = nv + ne * m;
        let mut positions = Vec::with_capacity(n_nodes);
        positions.extend_from_slice(mesh.vertices());
        for e in 0..ne as EdgeId {
            let [a, b] = mesh.edge(e).v;
            let pa = mesh.vertex(a);
            let pb = mesh.vertex(b);
            for i in 0..m {
                let t = (i + 1) as f64 / (m + 1) as f64;
                positions.push(pa.lerp(pb, t));
            }
        }

        // Collect undirected arcs, then build CSR with both directions.
        let mut arcs: Vec<(NodeId, NodeId, f64)> = Vec::new();
        let edge_node = |e: EdgeId, i: usize| (nv + (e as usize) * m + i) as NodeId;

        // Along-edge chains (consecutive nodes; collinear partial sums are
        // exact, so longer same-edge hops are unnecessary).
        for e in 0..ne as EdgeId {
            let [a, b] = mesh.edge(e).v;
            let mut chain: Vec<NodeId> = Vec::with_capacity(m + 2);
            chain.push(a);
            for i in 0..m {
                chain.push(edge_node(e, i));
            }
            chain.push(b);
            for pair in chain.windows(2) {
                let w = positions[pair[0] as usize].dist(positions[pair[1] as usize]);
                arcs.push((pair[0], pair[1], w));
            }
        }

        // Face-crossing chords: vertex ↔ opposite-edge nodes and
        // Steiner ↔ Steiner on distinct edges.
        for f in 0..mesh.n_faces() as FaceId {
            let fe = mesh.face_edges(f);
            let fv = mesh.face(f);
            // Vertex to Steiner nodes of the opposite edge.
            for &v in &fv {
                for &e in &fe {
                    let ev = mesh.edge(e).v;
                    if ev[0] == v || ev[1] == v {
                        continue; // same-edge: covered by the chain
                    }
                    for i in 0..m {
                        let n = edge_node(e, i);
                        let w = positions[v as usize].dist(positions[n as usize]);
                        arcs.push((v, n, w));
                    }
                }
            }
            // Steiner-Steiner across distinct edges of the face.
            for ei in 0..3 {
                for ej in ei + 1..3 {
                    for i in 0..m {
                        for j in 0..m {
                            let u = edge_node(fe[ei], i);
                            let v = edge_node(fe[ej], j);
                            let w = positions[u as usize].dist(positions[v as usize]);
                            arcs.push((u, v, w));
                        }
                    }
                }
            }
        }

        // CSR.
        let mut off = vec![0u32; n_nodes + 1];
        for &(a, b, _) in &arcs {
            off[a as usize + 1] += 1;
            off[b as usize + 1] += 1;
        }
        for i in 0..n_nodes {
            off[i + 1] += off[i];
        }
        let mut dat = vec![(0 as NodeId, 0.0f64); off[n_nodes] as usize];
        let mut cursor = off.clone();
        for &(a, b, w) in &arcs {
            dat[cursor[a as usize] as usize] = (b, w);
            cursor[a as usize] += 1;
            dat[cursor[b as usize] as usize] = (a, w);
            cursor[b as usize] += 1;
        }
        Self { mesh, m, positions, adj_off: off, adj_dat: dat }
    }

    /// Chooses `m` from an error parameter following the baselines' sizing
    /// `m = Θ(1/√ε · log(1/ε))` (\[12\] §4.2.1 of the paper), capped to keep
    /// construction tractable; the cap is reported by
    /// [`SteinerGraph::points_per_edge`].
    pub fn for_epsilon(mesh: Arc<TerrainMesh>, eps: f64) -> Self {
        let m = points_per_edge_for_epsilon(eps);
        Self::with_points_per_edge(mesh, m)
    }

    /// Number of Steiner points on each edge.
    pub fn points_per_edge(&self) -> usize {
        self.m
    }

    /// Total node count (mesh vertices + Steiner points).
    pub fn n_nodes(&self) -> usize {
        self.positions.len()
    }

    /// Total directed arc count.
    pub fn n_arcs(&self) -> usize {
        self.adj_dat.len()
    }

    /// The underlying terrain mesh.
    pub fn mesh(&self) -> &Arc<TerrainMesh> {
        &self.mesh
    }

    /// Position of node `n` in ambient 3-space.
    pub fn position(&self, n: NodeId) -> Vec3 {
        self.positions[n as usize]
    }

    /// The Steiner node ids lying on edge `e`.
    pub fn edge_nodes(&self, e: EdgeId) -> impl Iterator<Item = NodeId> + '_ {
        let base = self.mesh.n_vertices() + (e as usize) * self.m;
        (base..base + self.m).map(|i| i as NodeId)
    }

    /// All nodes on the boundary of face `f`: its 3 vertices and the
    /// Steiner nodes of its 3 edges.
    pub fn face_nodes(&self, f: FaceId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(3 + 3 * self.m);
        out.extend(self.mesh.face(f));
        for e in self.mesh.face_edges(f) {
            out.extend(self.edge_nodes(e));
        }
        out
    }

    /// Neighbours of a node with edge weights.
    pub fn neighbors(&self, n: NodeId) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        let lo = self.adj_off[n as usize] as usize;
        let hi = self.adj_off[n as usize + 1] as usize;
        self.adj_dat[lo..hi].iter().copied()
    }

    /// Dijkstra from `source` over the Steiner graph.
    ///
    /// `stop` semantics mirror [`GeodesicEngine::ssad`], with targets given
    /// as node ids. Returns dense per-node labels.
    pub fn dijkstra(&self, source: NodeId, stop: GraphStop<'_>) -> GraphResult {
        let n = self.n_nodes();
        let mut dist = vec![f64::INFINITY; n];
        let mut heap = IndexedMinHeap::new();
        heap.reset(n);
        dist[source as usize] = 0.0;
        heap.push_or_decrease(source, 0.0);
        let mut pops = 0u64;

        let mut remaining = 0usize;
        let mut is_target = Vec::new();
        if let GraphStop::Targets(ts) = stop {
            is_target = vec![false; n];
            for &t in ts {
                if !is_target[t as usize] {
                    is_target[t as usize] = true;
                    remaining += 1;
                }
            }
            if is_target[source as usize] {
                remaining -= 1;
            }
        }
        let mut max_target = f64::INFINITY;

        let mut stopped = false;
        // Decrease-key keeps at most one live entry per node, so every pop
        // is a settled node — no stale-entry filter. The relaxation sequence
        // (and therefore every label and the pop count) is identical to the
        // old lazy-deletion binary heap.
        while let Some((key, v)) = heap.pop() {
            pops += 1;
            match stop {
                GraphStop::Radius(r) if key > r => {
                    stopped = true;
                }
                GraphStop::Targets(ts) if remaining == 0 => {
                    if max_target.is_infinite() {
                        max_target = ts.iter().map(|&t| dist[t as usize]).fold(0.0, f64::max);
                    }
                    if key >= max_target {
                        stopped = true;
                    }
                }
                _ => {}
            }
            if stopped {
                break;
            }
            let lo = self.adj_off[v as usize] as usize;
            let hi = self.adj_off[v as usize + 1] as usize;
            for &(u, w) in &self.adj_dat[lo..hi] {
                let nd = key + w;
                if nd < dist[u as usize] {
                    if !is_target.is_empty()
                        && is_target[u as usize]
                        && dist[u as usize].is_infinite()
                    {
                        remaining -= 1;
                    }
                    dist[u as usize] = nd;
                    heap.push_or_decrease(u, nd);
                }
            }
        }
        // Dijkstra never drops relaxations, so a drained queue (no early
        // stop) means every reached label is final, whatever the stop
        // criterion asked for.
        let finalized = if !stopped {
            f64::INFINITY
        } else {
            match stop {
                GraphStop::Radius(r) => r,
                GraphStop::Exhaust => f64::INFINITY,
                GraphStop::Targets(ts) => ts.iter().map(|&t| dist[t as usize]).fold(0.0, f64::max),
            }
        };
        GraphResult { dist, pops, finalized }
    }

    /// Graph distance between two nodes.
    pub fn distance(&self, s: NodeId, t: NodeId) -> f64 {
        if s == t {
            return 0.0;
        }
        self.dijkstra(s, GraphStop::Targets(&[t])).dist[t as usize]
    }

    /// Heap bytes of the graph structure.
    pub fn storage_bytes(&self) -> usize {
        use std::mem::size_of;
        self.positions.len() * size_of::<Vec3>()
            + self.adj_off.len() * size_of::<u32>()
            + self.adj_dat.len() * size_of::<(NodeId, f64)>()
    }
}

/// The baselines' per-edge Steiner count for an error parameter ε, capped
/// at 24 points per edge.
pub fn points_per_edge_for_epsilon(eps: f64) -> usize {
    assert!(eps > 0.0, "ε must be positive");
    let raw = (1.0 / eps.sqrt()) * (1.0 / eps).ln().max(1.0);
    (raw.ceil() as usize).clamp(1, 24)
}

/// Stop criterion for [`SteinerGraph::dijkstra`] (node-id domain).
#[derive(Debug, Clone, Copy)]
pub enum GraphStop<'a> {
    /// Run until every listed node has a final label.
    Targets(&'a [NodeId]),
    /// Run until every node within graph distance `r` has a final label.
    Radius(f64),
    /// Propagate until exhaustion: all labels final.
    Exhaust,
}

/// Dense result of a Steiner-graph Dijkstra.
#[derive(Debug, Clone)]
pub struct GraphResult {
    /// Graph distance per node (`f64::INFINITY` if unreached).
    pub dist: Vec<f64>,
    /// Queue pops performed.
    pub pops: u64,
    /// Finality horizon: labels `≤ finalized` are final graph distances
    /// (same contract as [`crate::engine::SsadResult::finalized`]).
    pub finalized: f64,
}

/// [`GeodesicEngine`] adapter: approximate geodesics via the Steiner graph.
///
/// Vertex labels are Steiner-graph distances — upper bounds within the
/// graph's approximation factor. Suitable for large-scale oracle sweeps
/// where the exact engine would dominate runtime.
#[derive(Debug, Clone)]
pub struct SteinerEngine {
    graph: SteinerGraph,
}

impl SteinerEngine {
    /// An engine answering vertex queries from `graph`.
    pub fn new(graph: SteinerGraph) -> Self {
        Self { graph }
    }

    /// The underlying Steiner graph.
    pub fn graph(&self) -> &SteinerGraph {
        &self.graph
    }
}

impl GeodesicEngine for SteinerEngine {
    fn name(&self) -> &'static str {
        "steiner-graph"
    }

    fn mesh(&self) -> &TerrainMesh {
        self.graph.mesh()
    }

    fn ssad(&self, source: VertexId, stop: Stop<'_>) -> SsadResult {
        let gstop = match stop {
            // `VertexId` and `NodeId` are both `u32`; mesh vertices keep
            // their ids as graph nodes.
            Stop::Targets(ts) => GraphStop::Targets(ts),
            Stop::Radius(r) => GraphStop::Radius(r),
            Stop::Exhaust => GraphStop::Exhaust,
        };
        let r = self.graph.dijkstra(source as NodeId, gstop);
        let nv = self.graph.mesh().n_vertices();
        let mut dist = r.dist;
        // The graph run's own horizon transfers: targets are vertex ids and
        // survive the truncation below.
        let finalized = r.finalized;
        dist.truncate(nv);
        SsadResult {
            dist,
            finalized,
            stats: SsadStats { events_processed: r.pops, events_created: 0, max_key: 0.0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ich::IchEngine;
    use terrain::gen::{diamond_square, Heightfield};

    #[test]
    fn node_and_arc_counts() {
        let m = Arc::new(Heightfield::flat(3, 3, 1.0, 1.0).to_mesh());
        let ne = m.n_edges();
        let g = SteinerGraph::with_points_per_edge(m.clone(), 2);
        assert_eq!(g.n_nodes(), m.n_vertices() + 2 * ne);
        assert!(g.n_arcs() > 0);
        // m = 0 degenerates to the edge graph.
        let g0 = SteinerGraph::with_points_per_edge(m.clone(), 0);
        assert_eq!(g0.n_nodes(), m.n_vertices());
        assert_eq!(g0.n_arcs(), 2 * ne);
    }

    #[test]
    fn zero_points_equals_edge_graph() {
        use crate::dijkstra::EdgeGraphEngine;
        let mesh = Arc::new(diamond_square(3, 0.6, 5).to_mesh());
        let g = SteinerGraph::with_points_per_edge(mesh.clone(), 0);
        let eg = EdgeGraphEngine::new(mesh.clone());
        let a = g.dijkstra(0, GraphStop::Exhaust);
        let b = eg.ssad(0, Stop::Exhaust);
        for v in 0..mesh.n_vertices() {
            assert!((a.dist[v] - b.dist[v]).abs() < 1e-9, "v{v}");
        }
    }

    #[test]
    fn flat_grid_converges_to_euclidean() {
        let mesh = Arc::new(Heightfield::flat(5, 5, 1.0, 1.0).to_mesh());
        let target = 24usize; // corner (4,4)
        let exact = (32f64).sqrt();
        let mut prev_err = f64::INFINITY;
        for m in [0usize, 1, 3, 6] {
            let g = SteinerGraph::with_points_per_edge(mesh.clone(), m);
            let d = g.dijkstra(0, GraphStop::Exhaust).dist[target];
            let err = d - exact;
            assert!(err >= -1e-9, "graph distance below geodesic at m={m}");
            assert!(err <= prev_err + 1e-12, "error must not grow with m");
            prev_err = err;
        }
        assert!(prev_err < 0.08, "m=6 error too large: {prev_err}");
    }

    #[test]
    fn upper_bounds_exact_geodesic() {
        let mesh = Arc::new(diamond_square(4, 0.6, 77).to_mesh());
        let g = SteinerGraph::with_points_per_edge(mesh.clone(), 3);
        let exact = IchEngine::new(mesh.clone());
        let rg = g.dijkstra(5, GraphStop::Exhaust);
        let re = exact.ssad(5, Stop::Exhaust);
        let mut worst = 0.0f64;
        for v in 0..mesh.n_vertices() {
            assert!(
                rg.dist[v] >= re.dist[v] - 1e-9,
                "v{v}: steiner {} below exact {}",
                rg.dist[v],
                re.dist[v]
            );
            if re.dist[v] > 1e-9 {
                worst = worst.max(rg.dist[v] / re.dist[v]);
            }
        }
        // With m=3 the approximation should be within a few percent.
        assert!(worst < 1.10, "worst ratio {worst}");
    }

    #[test]
    fn engine_adapter_matches_graph() {
        let mesh = Arc::new(diamond_square(3, 0.5, 3).to_mesh());
        let g = SteinerGraph::with_points_per_edge(mesh.clone(), 2);
        let eng = SteinerEngine::new(g.clone());
        let via_engine = eng.ssad(7, Stop::Exhaust);
        let via_graph = g.dijkstra(7, GraphStop::Exhaust);
        for v in 0..mesh.n_vertices() {
            assert_eq!(via_engine.dist[v], via_graph.dist[v]);
        }
        assert_eq!(via_engine.dist.len(), mesh.n_vertices());
    }

    #[test]
    fn face_nodes_complete() {
        let mesh = Arc::new(Heightfield::flat(3, 3, 1.0, 1.0).to_mesh());
        let g = SteinerGraph::with_points_per_edge(mesh.clone(), 2);
        let nodes = g.face_nodes(0);
        assert_eq!(nodes.len(), 3 + 3 * 2);
        // All positions lie on the face plane (flat terrain: z = 0).
        for &n in &nodes {
            assert!(g.position(n).z.abs() < 1e-12);
        }
    }

    #[test]
    fn epsilon_sizing_monotone() {
        let m1 = points_per_edge_for_epsilon(0.25);
        let m2 = points_per_edge_for_epsilon(0.05);
        assert!(m2 >= m1);
        assert!(m1 >= 1);
        assert!(points_per_edge_for_epsilon(1e-9) <= 24);
    }

    #[test]
    fn targets_stop_matches_exhaust() {
        let mesh = Arc::new(diamond_square(3, 0.6, 9).to_mesh());
        let g = SteinerGraph::with_points_per_edge(mesh.clone(), 2);
        let full = g.dijkstra(0, GraphStop::Exhaust);
        let t: NodeId = (mesh.n_vertices() + 5) as NodeId; // a Steiner node
        let part = g.dijkstra(0, GraphStop::Targets(&[t]));
        assert!((part.dist[t as usize] - full.dist[t as usize]).abs() < 1e-12);
    }
}
