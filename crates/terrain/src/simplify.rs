//! Mesh scaling tools for the paper's Effect-of-N experiment.
//!
//! The paper scales `N` two ways: (1) an *enlarged* BearHead produced by
//! adding a vertex at every face's geometric center ("we added a new vertex
//! on its geometric center and add a new edge between the new vertex and
//! each of the three vertices on the face"), and (2) simplified variants of
//! that enlarged mesh via the surface-simplification algorithm of Liu & Wong
//! \[24\]. We reproduce (1) exactly; for (2) we provide both heightfield
//! resampling ([`crate::gen::Heightfield::resample`]) and a general
//! edge-collapse decimator ([`decimate_to`]) that works on any terrain
//! mesh, not just grid-derived ones.

use crate::geom::triangle_area;
use crate::mesh::{FaceId, MeshError, TerrainMesh, VertexId};
use std::collections::BinaryHeap;

/// The paper's face-centroid enlargement: every face gains a centroid vertex
/// and is split into three. `N' = N + F`, `F' = 3F`.
pub fn enlarge_by_centroids(mesh: &TerrainMesh) -> TerrainMesh {
    let mut verts = mesh.vertices().to_vec();
    let mut faces = Vec::with_capacity(mesh.n_faces() * 3);
    for f in 0..mesh.n_faces() as FaceId {
        let [a, b, c] = mesh.face(f);
        let p = verts.len() as u32;
        verts.push(mesh.face_centroid(f));
        faces.push([a, b, p]);
        faces.push([b, c, p]);
        faces.push([c, a, p]);
    }
    // lint: allow(panic, "invariant: centroid enlargement preserves mesh validity")
    TerrainMesh::new(verts, faces).expect("centroid enlargement preserves validity")
}

/// Repeats [`enlarge_by_centroids`] until the mesh has at least
/// `target_vertices` vertices.
pub fn enlarge_to(mesh: &TerrainMesh, target_vertices: usize) -> TerrainMesh {
    let mut m = mesh.clone();
    while m.n_vertices() < target_vertices {
        m = enlarge_by_centroids(&m);
    }
    m
}

/// Errors from decimation.
#[derive(Debug)]
pub enum DecimateError {
    /// Target below the minimum useful mesh (or above the input size —
    /// decimation only shrinks).
    BadTarget { target: usize, n_vertices: usize },
    /// No further edge satisfies the validity conditions; the partially
    /// decimated mesh still exceeded the target. Carries the reachable
    /// vertex count.
    Stuck { reached: usize },
    /// The rebuilt mesh failed validation (should not happen — the link
    /// condition and orientation checks are designed to prevent it; a
    /// report means a decimator bug, surfaced rather than masked).
    Invalid(MeshError),
}

impl std::fmt::Display for DecimateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecimateError::BadTarget { target, n_vertices } => {
                write!(f, "target {target} not in [4, {n_vertices}] (decimation only shrinks)")
            }
            DecimateError::Stuck { reached } => {
                write!(f, "no collapsible edges left at {reached} vertices")
            }
            DecimateError::Invalid(e) => write!(f, "decimated mesh failed validation: {e}"),
        }
    }
}

impl std::error::Error for DecimateError {}

/// Min-heap entry: collapse candidates ordered by edge length (shortest
/// first — the cheapest geometric error for terrain surfaces).
#[derive(PartialEq)]
struct Candidate {
    len: f64,
    a: VertexId,
    b: VertexId,
}

impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse for a min-heap on length; ties by vertex ids for
        // determinism.
        other.len.total_cmp(&self.len).then_with(|| (other.a, other.b).cmp(&(self.a, self.b)))
    }
}

/// Shortest-edge-collapse decimation down to (at most) `target_vertices`.
///
/// Interior edges are collapsed into their midpoints, shortest first,
/// subject to
///
/// * the **link condition** (the common neighbours of the endpoints are
///   exactly the two opposite vertices), which preserves manifoldness;
/// * both endpoints being interior vertices, which freezes the terrain
///   boundary rectangle;
/// * no surviving incident triangle degenerating or flipping its x–y
///   orientation, which preserves the heightfield property and the
///   consistent winding [`TerrainMesh::new`] revalidates.
///
/// The result covers the same footprint with the same boundary, so the
/// Effect-of-N sweep (Fig 10) compares like with like.
pub fn decimate_to(
    mesh: &TerrainMesh,
    target_vertices: usize,
) -> Result<TerrainMesh, DecimateError> {
    if target_vertices < 4 || target_vertices > mesh.n_vertices() {
        return Err(DecimateError::BadTarget {
            target: target_vertices,
            n_vertices: mesh.n_vertices(),
        });
    }
    let mut verts = mesh.vertices().to_vec();
    let mut faces: Vec<Option<[VertexId; 3]>> = mesh.faces().iter().map(|&f| Some(f)).collect();
    let mut vertex_faces: Vec<Vec<u32>> = vec![Vec::new(); verts.len()];
    for (fi, f) in mesh.faces().iter().enumerate() {
        for &v in f {
            vertex_faces[v as usize].push(fi as u32);
        }
    }
    let mut alive = vec![true; verts.len()];
    let mut is_boundary: Vec<bool> =
        (0..verts.len()).map(|v| mesh.is_boundary_vertex(v as u32)).collect();
    let mut n_alive = verts.len();

    let mut heap: BinaryHeap<Candidate> = BinaryHeap::new();
    for e in 0..mesh.n_edges() as u32 {
        let edge = mesh.edge(e);
        if !edge.is_boundary() {
            heap.push(Candidate { len: mesh.edge_len(e), a: edge.v[0], b: edge.v[1] });
        }
    }

    let neighbors = |vertex_faces: &Vec<Vec<u32>>,
                     faces: &Vec<Option<[VertexId; 3]>>,
                     v: VertexId|
     -> Vec<VertexId> {
        let mut out = Vec::new();
        for &fi in &vertex_faces[v as usize] {
            if let Some(f) = faces[fi as usize] {
                for &u in &f {
                    if u != v && !out.contains(&u) {
                        out.push(u);
                    }
                }
            }
        }
        out
    };

    while n_alive > target_vertices {
        let Some(c) = heap.pop() else {
            return Err(DecimateError::Stuck { reached: n_alive });
        };
        let (a, b) = (c.a, c.b);
        if !alive[a as usize] || !alive[b as usize] {
            continue; // stale entry
        }
        if is_boundary[a as usize] || is_boundary[b as usize] {
            continue;
        }
        // Re-check length (positions move as collapses proceed).
        let cur_len = verts[a as usize].dist(verts[b as usize]);
        if (cur_len - c.len).abs() > 1e-12 * (1.0 + cur_len) {
            if cur_len > c.len {
                heap.push(Candidate { len: cur_len, a, b });
            }
            continue;
        }
        // Shared faces of the edge (must still be adjacent).
        let shared: Vec<u32> = vertex_faces[a as usize]
            .iter()
            .copied()
            .filter(|&fi| {
                faces[fi as usize].map(|f| f.contains(&a) && f.contains(&b)).unwrap_or(false)
            })
            .collect();
        if shared.len() != 2 {
            continue; // edge vanished or became boundary-like
        }
        // Link condition: common neighbours of a and b are exactly the two
        // opposite vertices of the shared faces.
        let na = neighbors(&vertex_faces, &faces, a);
        let nb = neighbors(&vertex_faces, &faces, b);
        let common: Vec<VertexId> = na.iter().copied().filter(|v| nb.contains(v)).collect();
        if common.len() != 2 {
            continue;
        }
        // Trial position: midpoint.
        let mid = verts[a as usize].lerp(verts[b as usize], 0.5);
        // Surviving faces must stay non-degenerate and keep x–y winding.
        let mut ok = true;
        for &v in &[a, b] {
            for &fi in &vertex_faces[v as usize] {
                let Some(f) = faces[fi as usize] else { continue };
                if f.contains(&a) && f.contains(&b) {
                    continue; // will be removed
                }
                let p = |u: VertexId| if u == a || u == b { mid } else { verts[u as usize] };
                let [x, y, z] = f;
                let (p0, p1, p2) = (p(x), p(y), p(z));
                if triangle_area(p0, p1, p2) < 1e-12 {
                    ok = false;
                    break;
                }
                let before = xy_signed_area(
                    verts[x as usize].x,
                    verts[x as usize].y,
                    verts[y as usize].x,
                    verts[y as usize].y,
                    verts[z as usize].x,
                    verts[z as usize].y,
                );
                let after = xy_signed_area(p0.x, p0.y, p1.x, p1.y, p2.x, p2.y);
                if before.signum() != after.signum() || after.abs() < 1e-14 {
                    ok = false;
                    break;
                }
            }
            if !ok {
                break;
            }
        }
        if !ok {
            continue;
        }

        // Commit: move a to the midpoint, retire b, rewrite b's faces.
        verts[a as usize] = mid;
        alive[b as usize] = false;
        n_alive -= 1;
        for &fi in &shared {
            faces[fi as usize] = None;
        }
        let b_faces = std::mem::take(&mut vertex_faces[b as usize]);
        for fi in b_faces {
            if let Some(f) = faces[fi as usize].as_mut() {
                for u in f.iter_mut() {
                    if *u == b {
                        *u = a;
                    }
                }
                vertex_faces[a as usize].push(fi);
            }
        }
        // b was interior; a stays interior (boundary set unchanged).
        is_boundary[a as usize] = false;

        // Refresh candidates around the moved vertex.
        for u in neighbors(&vertex_faces, &faces, a) {
            if alive[u as usize] && !is_boundary[u as usize] {
                heap.push(Candidate {
                    len: verts[a as usize].dist(verts[u as usize]),
                    a: a.min(u),
                    b: a.max(u),
                });
            }
        }
    }

    // Compact and rebuild.
    let mut remap = vec![u32::MAX; verts.len()];
    let mut out_verts = Vec::with_capacity(n_alive);
    for (v, &live) in alive.iter().enumerate() {
        if live {
            remap[v] = out_verts.len() as u32;
            out_verts.push(verts[v]);
        }
    }
    let out_faces: Vec<[VertexId; 3]> = faces
        .iter()
        .flatten()
        .map(|f| [remap[f[0] as usize], remap[f[1] as usize], remap[f[2] as usize]])
        .collect();
    TerrainMesh::new(out_verts, out_faces).map_err(DecimateError::Invalid)
}

fn xy_signed_area(ax: f64, ay: f64, bx: f64, by: f64, cx: f64, cy: f64) -> f64 {
    (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{diamond_square, Heightfield};

    #[test]
    fn enlargement_counts() {
        let m = Heightfield::flat(3, 3, 1.0, 1.0).to_mesh();
        let e = enlarge_by_centroids(&m);
        assert_eq!(e.n_vertices(), m.n_vertices() + m.n_faces());
        assert_eq!(e.n_faces(), 3 * m.n_faces());
    }

    #[test]
    fn enlargement_preserves_area_and_bbox() {
        let m = diamond_square(4, 0.6, 3).to_mesh();
        let e = enlarge_by_centroids(&m);
        let (sa, sb) = (m.stats(), e.stats());
        // Centroid lies on the face plane, so area is exactly preserved.
        assert!((sa.total_area - sb.total_area).abs() < 1e-6 * sa.total_area);
        assert_eq!(sa.bbox, sb.bbox);
    }

    #[test]
    fn enlarge_to_reaches_target() {
        let m = Heightfield::flat(3, 3, 1.0, 1.0).to_mesh();
        let e = enlarge_to(&m, 200);
        assert!(e.n_vertices() >= 200);
    }

    #[test]
    fn enlarge_to_noop_when_already_large() {
        let m = Heightfield::flat(5, 5, 1.0, 1.0).to_mesh();
        let e = enlarge_to(&m, 10);
        assert_eq!(e.n_vertices(), m.n_vertices());
    }

    #[test]
    fn decimate_reaches_target_and_stays_valid() {
        let m = diamond_square(4, 0.6, 7).to_mesh(); // 289 vertices
        let n0 = m.n_vertices();
        let d = decimate_to(&m, n0 / 2).expect("decimation");
        assert!(d.n_vertices() <= n0 / 2);
        // Result re-validated by TerrainMesh::new inside decimate_to;
        // additionally the Euler characteristic of a disk must hold.
        assert_eq!(
            d.n_vertices() as i64 - d.n_edges() as i64 + d.n_faces() as i64,
            1,
            "Euler characteristic changed"
        );
    }

    #[test]
    fn decimate_preserves_footprint_and_boundary() {
        let m = diamond_square(4, 0.7, 9).to_mesh();
        let d = decimate_to(&m, m.n_vertices() / 2).unwrap();
        let (sa, sb) = (m.stats(), d.stats());
        assert!((sa.bbox.0.x - sb.bbox.0.x).abs() < 1e-9);
        assert!((sa.bbox.1.x - sb.bbox.1.x).abs() < 1e-9);
        assert!((sa.bbox.0.y - sb.bbox.0.y).abs() < 1e-9);
        assert!((sa.bbox.1.y - sb.bbox.1.y).abs() < 1e-9);
        // Area changes only modestly (collapses flatten relief slightly).
        assert!((sb.total_area / sa.total_area - 1.0).abs() < 0.2);
    }

    #[test]
    fn decimate_keeps_geodesics_in_the_ballpark() {
        use crate::locate::FaceLocator;
        // Distances between far-apart locations shrink/grow only by the
        // geometric error of halving the resolution.
        let m = diamond_square(4, 0.5, 11).to_mesh();
        let d = decimate_to(&m, m.n_vertices() * 2 / 3).unwrap();
        // Compare corner-to-corner straight-line bounds via mesh stats: on
        // both meshes any surface path between bbox corners is at least
        // the xy diagonal and at most a small multiple of it.
        let loc = FaceLocator::build(&d);
        let s = d.stats();
        assert!(loc
            .locate(&d, (s.bbox.0.x + s.bbox.1.x) / 2.0, (s.bbox.0.y + s.bbox.1.y) / 2.0)
            .is_some());
    }

    #[test]
    fn decimate_rejects_bad_targets() {
        let m = Heightfield::flat(4, 4, 1.0, 1.0).to_mesh();
        assert!(matches!(decimate_to(&m, 2), Err(DecimateError::BadTarget { .. })));
        assert!(matches!(decimate_to(&m, 100), Err(DecimateError::BadTarget { .. })));
    }

    #[test]
    fn decimate_flat_grid_keeps_it_flat() {
        let m = Heightfield::flat(8, 8, 1.0, 1.0).to_mesh();
        let d = decimate_to(&m, 40).unwrap();
        for v in 0..d.n_vertices() as u32 {
            assert!(d.vertex(v).z.abs() < 1e-12, "decimation moved z off the plane");
        }
        assert!(d.n_vertices() <= 40);
    }

    #[test]
    fn decimate_on_boundary_only_mesh_reports_stuck() {
        // A mesh where every vertex is on the boundary (single strip) has
        // no collapsible interior edges.
        let m = Heightfield::flat(5, 2, 1.0, 1.0).to_mesh();
        match decimate_to(&m, 4) {
            Err(DecimateError::Stuck { reached }) => assert_eq!(reached, m.n_vertices()),
            other => panic!("expected Stuck, got {other:?}"),
        }
    }

    #[test]
    fn enlarge_then_decimate_round_trip() {
        // The Fig-10 recipe: enlarge, then simplify back down.
        let m = diamond_square(3, 0.6, 13).to_mesh();
        let big = enlarge_by_centroids(&m);
        let back = decimate_to(&big, m.n_vertices()).unwrap();
        assert!(back.n_vertices() <= m.n_vertices());
        assert!(back.n_vertices() >= 4);
    }
}
