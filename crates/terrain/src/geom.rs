//! Geometric primitives: 3-D/2-D vectors, triangles, and the planar
//! unfolding used by geodesic window propagation.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A point / vector in 3-D Euclidean space.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f64,
    pub y: f64,
    pub z: f64,
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    #[inline]
    pub fn dist(self, o: Vec3) -> f64 {
        (self - o).norm()
    }

    #[inline]
    pub fn dist_sq(self, o: Vec3) -> f64 {
        (self - o).norm_sq()
    }

    /// Unit vector in the same direction; `None` for (near-)zero vectors.
    pub fn normalized(self) -> Option<Vec3> {
        let n = self.norm();
        if n < 1e-300 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Projection of the point onto the x–y plane.
    #[inline]
    pub fn xy(self) -> Vec2 {
        Vec2::new(self.x, self.y)
    }

    /// Component-wise linear interpolation `self + t·(o − self)`.
    #[inline]
    pub fn lerp(self, o: Vec3, t: f64) -> Vec3 {
        self + (o - self) * t
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    #[inline]
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}
impl Sub for Vec3 {
    type Output = Vec3;
    #[inline]
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}
impl Mul<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}
impl Div<f64> for Vec3 {
    type Output = Vec3;
    #[inline]
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}
impl Neg for Vec3 {
    type Output = Vec3;
    #[inline]
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// A point / vector in the plane (used for unfolded triangle fans).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    pub x: f64,
    pub y: f64,
}

impl Vec2 {
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    #[inline]
    pub fn dot(self, o: Vec2) -> f64 {
        self.x * o.x + self.y * o.y
    }

    /// The z-component of the 3-D cross product (signed parallelogram area).
    #[inline]
    pub fn cross(self, o: Vec2) -> f64 {
        self.x * o.y - self.y * o.x
    }

    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    #[inline]
    pub fn dist(self, o: Vec2) -> f64 {
        (self - o).norm()
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x + o.x, self.y + o.y)
    }
}
impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x - o.x, self.y - o.y)
    }
}
impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, s: f64) -> Vec2 {
        Vec2::new(self.x * s, self.y * s)
    }
}

/// Area of the 3-D triangle `(a, b, c)`.
pub fn triangle_area(a: Vec3, b: Vec3, c: Vec3) -> f64 {
    0.5 * (b - a).cross(c - a).norm()
}

/// Interior angle of the triangle at vertex `at` (radians, in `[0, π]`).
pub fn triangle_angle(at: Vec3, b: Vec3, c: Vec3) -> f64 {
    let u = b - at;
    let v = c - at;
    let nu = u.norm();
    let nv = v.norm();
    if nu < 1e-300 || nv < 1e-300 {
        return 0.0;
    }
    (u.dot(v) / (nu * nv)).clamp(-1.0, 1.0).acos()
}

/// Unfolds the apex of a triangle into the plane of an already-unfolded edge.
///
/// Edge endpoints `a3`/`b3` in 3-D correspond to the planar points `a2`/`b2`.
/// Returns the planar image of `c3` on the side of line `a2b2` selected by
/// `side` (`+1.0` → positive half-plane w.r.t. the edge direction `b2 − a2`,
/// `-1.0` → negative). Distances from `c` to `a` and `b` are preserved, which
/// is exactly the isometry geodesic unfolding requires.
pub fn unfold_point(a3: Vec3, b3: Vec3, c3: Vec3, a2: Vec2, b2: Vec2, side: f64) -> Vec2 {
    let l = a3.dist(b3);
    debug_assert!(l > 0.0, "degenerate edge in unfold_point");
    let da = c3.dist(a3);
    let db = c3.dist(b3);
    // Coordinates of c in the frame with a at the origin and b at (l, 0):
    // x from the law of cosines, y from the Pythagorean remainder.
    let x = (da * da - db * db + l * l) / (2.0 * l);
    let y2 = da * da - x * x;
    let y = if y2 > 0.0 { y2.sqrt() } else { 0.0 };
    let ex = (b2 - a2) * (1.0 / l);
    let ey = Vec2::new(-ex.y, ex.x); // left normal of the edge direction
    a2 + ex * x + ey * (y * side)
}

/// Intersection parameter of the ray `origin + t·dir` with the segment
/// `p + u·(q − p)`, `u ∈ [0, 1]`, `t > 0`. Returns `(t, u)` when the ray
/// crosses the segment's supporting line inside the segment.
pub fn ray_segment_intersection(origin: Vec2, dir: Vec2, p: Vec2, q: Vec2) -> Option<(f64, f64)> {
    let s = q - p;
    let denom = dir.cross(s);
    if denom.abs() < 1e-30 {
        return None; // parallel
    }
    let diff = p - origin;
    let t = diff.cross(s) / denom;
    let u = diff.cross(dir) / denom;
    if t > 0.0 && (-1e-12..=1.0 + 1e-12).contains(&u) {
        Some((t, u.clamp(0.0, 1.0)))
    } else {
        None
    }
}

/// Barycentric coordinates of `p` with respect to triangle `(a, b, c)`
/// projected onto the x–y plane. Coordinates sum to 1; all non-negative
/// (within tolerance) iff the projection of `p` lies inside the projected
/// triangle.
pub fn barycentric_xy(p: Vec2, a: Vec2, b: Vec2, c: Vec2) -> Option<[f64; 3]> {
    let v0 = b - a;
    let v1 = c - a;
    let v2 = p - a;
    let den = v0.cross(v1);
    if den.abs() < 1e-30 {
        return None; // degenerate in projection
    }
    let w1 = v2.cross(v1) / den;
    let w2 = v0.cross(v2) / den;
    Some([1.0 - w1 - w2, w1, w2])
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn vec3_algebra() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-1.0, 0.5, 2.0);
        assert!((a.dot(b) - (-1.0 + 1.0 + 6.0)).abs() < EPS);
        let c = a.cross(b);
        assert!(c.dot(a).abs() < EPS && c.dot(b).abs() < EPS);
        assert!(((a + b) - Vec3::new(0.0, 2.5, 5.0)).norm() < EPS);
        assert!(((a - b) - Vec3::new(2.0, 1.5, 1.0)).norm() < EPS);
        assert!(((a * 2.0) - Vec3::new(2.0, 4.0, 6.0)).norm() < EPS);
        assert!(((a / 2.0) - Vec3::new(0.5, 1.0, 1.5)).norm() < EPS);
        assert!(((-a) + a).norm() < EPS);
    }

    #[test]
    fn normalization() {
        assert!(Vec3::ZERO.normalized().is_none());
        let n = Vec3::new(3.0, 4.0, 0.0).normalized().unwrap();
        assert!((n.norm() - 1.0).abs() < EPS);
        assert!((n.x - 0.6).abs() < EPS && (n.y - 0.8).abs() < EPS);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert!(a.lerp(b, 0.0).dist(a) < EPS);
        assert!(a.lerp(b, 1.0).dist(b) < EPS);
        assert!(a.lerp(b, 0.5).dist(Vec3::new(1.0, 2.0, 3.0)) < EPS);
    }

    #[test]
    fn triangle_area_right_triangle() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(3.0, 0.0, 0.0);
        let c = Vec3::new(0.0, 4.0, 0.0);
        assert!((triangle_area(a, b, c) - 6.0).abs() < EPS);
    }

    #[test]
    fn triangle_angles_sum_to_pi() {
        let a = Vec3::new(0.1, 0.0, 0.3);
        let b = Vec3::new(2.0, 0.4, -0.7);
        let c = Vec3::new(0.9, 3.0, 1.1);
        let sum = triangle_angle(a, b, c) + triangle_angle(b, c, a) + triangle_angle(c, a, b);
        assert!((sum - std::f64::consts::PI).abs() < 1e-9);
    }

    #[test]
    fn degenerate_angle_is_zero() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        assert_eq!(triangle_angle(a, a, Vec3::new(1.0, 0.0, 0.0)), 0.0);
    }

    #[test]
    fn unfold_preserves_distances() {
        let a3 = Vec3::new(0.0, 0.0, 0.0);
        let b3 = Vec3::new(2.0, 0.0, 1.0);
        let c3 = Vec3::new(0.5, 1.5, -0.3);
        let a2 = Vec2::new(1.0, 1.0);
        let dir = Vec2::new(0.6, 0.8); // unit
        let b2 = a2 + dir * a3.dist(b3);
        for side in [1.0, -1.0] {
            let c2 = unfold_point(a3, b3, c3, a2, b2, side);
            assert!((c2.dist(a2) - c3.dist(a3)).abs() < 1e-9);
            assert!((c2.dist(b2) - c3.dist(b3)).abs() < 1e-9);
        }
        // The two sides give mirror images across the edge line.
        let cp = unfold_point(a3, b3, c3, a2, b2, 1.0);
        let cm = unfold_point(a3, b3, c3, a2, b2, -1.0);
        let e = (b2 - a2) * (1.0 / a2.dist(b2));
        assert!((e.cross(cp - a2) + e.cross(cm - a2)).abs() < 1e-9);
    }

    #[test]
    fn ray_segment_basic_hit_and_miss() {
        let o = Vec2::new(0.0, 0.0);
        let d = Vec2::new(1.0, 0.0);
        let hit = ray_segment_intersection(o, d, Vec2::new(2.0, -1.0), Vec2::new(2.0, 1.0));
        let (t, u) = hit.expect("should hit");
        assert!((t - 2.0).abs() < EPS && (u - 0.5).abs() < EPS);
        // Behind the origin.
        assert!(
            ray_segment_intersection(o, d, Vec2::new(-2.0, -1.0), Vec2::new(-2.0, 1.0)).is_none()
        );
        // Parallel.
        assert!(ray_segment_intersection(o, d, Vec2::new(0.0, 1.0), Vec2::new(5.0, 1.0)).is_none());
        // Outside the segment.
        assert!(ray_segment_intersection(o, d, Vec2::new(2.0, 1.0), Vec2::new(2.0, 3.0)).is_none());
    }

    #[test]
    fn barycentric_inside_outside() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(1.0, 0.0);
        let c = Vec2::new(0.0, 1.0);
        let w = barycentric_xy(Vec2::new(0.25, 0.25), a, b, c).unwrap();
        assert!(w.iter().all(|&x| x > 0.0));
        assert!((w.iter().sum::<f64>() - 1.0).abs() < EPS);
        let w = barycentric_xy(Vec2::new(2.0, 2.0), a, b, c).unwrap();
        assert!(w.iter().any(|&x| x < 0.0));
        // Degenerate triangle in projection.
        assert!(barycentric_xy(Vec2::new(0.0, 0.0), a, b, b).is_none());
    }

    #[test]
    fn barycentric_reconstructs_point() {
        let a = Vec2::new(0.3, -0.2);
        let b = Vec2::new(2.1, 0.4);
        let c = Vec2::new(1.0, 1.9);
        let p = Vec2::new(1.1, 0.6);
        let w = barycentric_xy(p, a, b, c).unwrap();
        let r = a * w[0] + b * w[1] + c * w[2];
        assert!(r.dist(p) < 1e-12);
    }
}
