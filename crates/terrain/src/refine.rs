//! Mesh refinement: inserting surface points as vertices.
//!
//! POIs are arbitrary points on the terrain surface (§2 of the paper).
//! Inserting each POI as a mesh vertex (splitting its containing face or
//! edge) leaves the surface — and therefore every geodesic distance —
//! unchanged, while letting the SSAD algorithms report exact distances *at*
//! the POIs as ordinary vertex labels. This mirrors how the paper's SSAD
//! "computes the geodesic distances of all points in P on each face
//! expanded" without special-casing face interiors downstream.

use crate::geom::{barycentric_xy, Vec3};
use crate::mesh::{FaceId, MeshError, TerrainMesh, VertexId, NO_FACE};
use crate::poi::SurfacePoint;
use std::collections::BTreeMap;

/// Result of [`insert_surface_points`].
#[derive(Debug)]
pub struct RefineResult {
    /// The refined mesh (re-validated).
    pub mesh: TerrainMesh,
    /// For each input point, the vertex that now realises it. Co-located
    /// inputs map to the same vertex.
    pub poi_vertices: Vec<VertexId>,
}

/// Inserts each surface point as a mesh vertex.
///
/// Points within `tol` of an existing vertex snap to it; points within
/// `tol` of an edge split the edge (and both incident faces); interior
/// points split their face 1→3. Pass `tol = None` for an automatic
/// tolerance of `1e-9 ×` the bounding-box diagonal.
pub fn insert_surface_points(
    mesh: &TerrainMesh,
    points: &[SurfacePoint],
    tol: Option<f64>,
) -> Result<RefineResult, MeshError> {
    let stats = mesh.stats();
    let diag = stats.bbox.0.dist(stats.bbox.1);
    let tol = tol.unwrap_or(1e-9 * diag.max(1e-300));

    let mut r = Refiner::new(mesh);
    let poi_vertices: Vec<VertexId> = points.iter().map(|p| r.insert(p, tol)).collect();
    let mesh = TerrainMesh::new(r.verts, r.faces)?;
    Ok(RefineResult { mesh, poi_vertices })
}

/// One face *version* in the split history. Slot reuse makes face ids
/// ambiguous across splits (the first child of every split keeps its
/// parent's slot), so point location walks this append-only version tree
/// instead: version ids are unique, children are always strictly newer
/// versions, and the walk terminates structurally.
struct FaceVersion {
    verts: [VertexId; 3],
    /// The `faces` slot this version occupies while live.
    slot: FaceId,
    /// Version ids of the replacement faces (empty while live).
    children: Vec<u32>,
}

struct Refiner {
    verts: Vec<Vec3>,
    faces: Vec<[VertexId; 3]>,
    /// Append-only split history; versions `0..n_faces` are the original
    /// faces, in slot order.
    versions: Vec<FaceVersion>,
    /// Live version occupying each face slot.
    version_of_slot: Vec<u32>,
    /// Live undirected edge → incident faces (`NO_FACE` on boundary).
    edge_faces: BTreeMap<(VertexId, VertexId), [FaceId; 2]>,
}

impl Refiner {
    fn new(mesh: &TerrainMesh) -> Self {
        let verts = mesh.vertices().to_vec();
        let faces = mesh.faces().to_vec();
        let versions = faces
            .iter()
            .enumerate()
            .map(|(slot, &verts)| FaceVersion { verts, slot: slot as FaceId, children: Vec::new() })
            .collect();
        let version_of_slot = (0..faces.len() as u32).collect();
        let mut edge_faces = BTreeMap::new();
        for e in 0..mesh.n_edges() as u32 {
            let edge = mesh.edge(e);
            edge_faces.insert((edge.v[0], edge.v[1]), edge.faces);
        }
        Self { verts, faces, versions, version_of_slot, edge_faces }
    }

    fn insert(&mut self, p: &SurfacePoint, tol: f64) -> VertexId {
        // `p.face` is an original-mesh face id == its version id.
        let leaf = self.locate(p.face, p.pos);
        let f = self.versions[leaf as usize].slot;
        let [a, b, c] = self.faces[f as usize];

        // Vertex snap.
        for &v in &[a, b, c] {
            if self.verts[v as usize].dist(p.pos) <= tol {
                return v;
            }
        }

        // Edge proximity: distance from p to each 3-D edge segment.
        let corners = [a, b, c];
        for i in 0..3 {
            let u = corners[i];
            let v = corners[(i + 1) % 3];
            let (q, t) = closest_on_segment(self.verts[u as usize], self.verts[v as usize], p.pos);
            if q.dist(p.pos) <= tol && t > 0.0 && t < 1.0 {
                return self.split_edge(f, u, v, q);
            }
        }

        self.split_face(f, p.pos)
    }

    /// Walks the split history from version `v0` down to the live version
    /// containing `pos` (by x–y barycentric containment; terrain faces are
    /// xy-injective). Children hold strictly larger version ids, so the
    /// walk always terminates.
    fn locate(&self, v0: u32, pos: Vec3) -> u32 {
        let mut at = v0;
        while !self.versions[at as usize].children.is_empty() {
            let kids = &self.versions[at as usize].children;
            let mut best = kids[0];
            let mut best_w = f64::NEG_INFINITY;
            for &k in kids {
                let [a, b, c] = self.versions[k as usize].verts;
                if let Some(w) = barycentric_xy(
                    pos.xy(),
                    self.verts[a as usize].xy(),
                    self.verts[b as usize].xy(),
                    self.verts[c as usize].xy(),
                ) {
                    let mw = w[0].min(w[1]).min(w[2]);
                    if mw > best_w {
                        best_w = mw;
                        best = k;
                    }
                }
            }
            debug_assert!(best > at, "version tree must be append-only");
            at = best;
        }
        at
    }

    /// Retires the live version of `slot` in favour of `verts`, recording
    /// it as a child of the retired version; returns nothing. The caller
    /// updates `self.faces[slot]` itself.
    fn new_version(&mut self, parent: u32, slot: FaceId, verts: [VertexId; 3]) -> u32 {
        let id = self.versions.len() as u32;
        self.versions.push(FaceVersion { verts, slot, children: Vec::new() });
        self.versions[parent as usize].children.push(id);
        self.version_of_slot[slot as usize] = id;
        id
    }

    /// 1→3 split of the live face in slot `f` at interior point `pos`.
    fn split_face(&mut self, f: FaceId, pos: Vec3) -> VertexId {
        let parent = self.version_of_slot[f as usize];
        let [a, b, c] = self.faces[f as usize];
        let p = self.push_vertex(pos);
        let f2 = self.faces.len() as FaceId;
        let f3 = f2 + 1;
        self.faces[f as usize] = [a, b, p];
        self.faces.push([b, c, p]);
        self.faces.push([c, a, p]);
        self.version_of_slot.extend([0, 0]); // filled by new_version below
        self.new_version(parent, f, [a, b, p]);
        self.new_version(parent, f2, [b, c, p]);
        self.new_version(parent, f3, [c, a, p]);
        self.replace_edge_face(b, c, f, f2);
        self.replace_edge_face(c, a, f, f3);
        self.edge_faces.insert(ekey(a, p), [f, f3]);
        self.edge_faces.insert(ekey(b, p), [f, f2]);
        self.edge_faces.insert(ekey(c, p), [f2, f3]);
        p
    }

    /// Splits edge `(u, v)` of the live face in slot `f` at point `pos`
    /// (on the segment), splitting the neighbouring face too when one
    /// exists.
    fn split_edge(&mut self, f: FaceId, u: VertexId, v: VertexId, pos: Vec3) -> VertexId {
        let p = self.push_vertex(pos);
        let g = {
            let fs = self.edge_faces[&ekey(u, v)];
            if fs[0] == f {
                fs[1]
            } else {
                fs[0]
            }
        };
        self.edge_faces.remove(&ekey(u, v));

        // Split f = (u, v, c) → (u, p, c) + (p, v, c), in f's own winding.
        let f_parent = self.version_of_slot[f as usize];
        let fverts = self.faces[f as usize];
        let (fu, fv, fc) = rotate_to_edge(fverts, u, v);
        let f_new = self.faces.len() as FaceId;
        self.faces[f as usize] = [fu, p, fc];
        self.faces.push([p, fv, fc]);
        self.version_of_slot.push(0);
        self.new_version(f_parent, f, [fu, p, fc]);
        self.new_version(f_parent, f_new, [p, fv, fc]);
        self.replace_edge_face(fv, fc, f, f_new);
        self.edge_faces.insert(ekey(p, fc), [f, f_new]);

        if g == NO_FACE {
            self.edge_faces.insert(ekey(fu, p), [f, NO_FACE]);
            self.edge_faces.insert(ekey(p, fv), [f_new, NO_FACE]);
        } else {
            // g traverses the edge as (v, u); split symmetrically.
            let g_parent = self.version_of_slot[g as usize];
            let gverts = self.faces[g as usize];
            let (gv, gu, gd) = rotate_to_edge(gverts, v, u);
            debug_assert_eq!((gv, gu), (fv, fu));
            let g_new = self.faces.len() as FaceId;
            self.faces[g as usize] = [gv, p, gd];
            self.faces.push([p, gu, gd]);
            self.version_of_slot.push(0);
            self.new_version(g_parent, g, [gv, p, gd]);
            self.new_version(g_parent, g_new, [p, gu, gd]);
            self.replace_edge_face(gu, gd, g, g_new);
            self.edge_faces.insert(ekey(p, gd), [g, g_new]);
            self.edge_faces.insert(ekey(fu, p), [f, g_new]);
            self.edge_faces.insert(ekey(p, fv), [f_new, g]);
        }
        p
    }

    fn push_vertex(&mut self, pos: Vec3) -> VertexId {
        let id = self.verts.len() as VertexId;
        self.verts.push(pos);
        id
    }

    fn replace_edge_face(&mut self, a: VertexId, b: VertexId, old: FaceId, new: FaceId) {
        let entry = self
            .edge_faces
            .get_mut(&ekey(a, b))
            .unwrap_or_else(|| panic!("edge ({a},{b}) missing during refinement"));
        if entry[0] == old {
            entry[0] = new;
        } else {
            debug_assert_eq!(entry[1], old);
            entry[1] = new;
        }
    }
}

#[inline]
fn ekey(a: VertexId, b: VertexId) -> (VertexId, VertexId) {
    (a.min(b), a.max(b))
}

/// Rotates the face's vertex triple so it starts with directed edge
/// `(u, v)`; returns `(u, v, other)`.
fn rotate_to_edge(f: [VertexId; 3], u: VertexId, v: VertexId) -> (VertexId, VertexId, VertexId) {
    for i in 0..3 {
        if f[i] == u && f[(i + 1) % 3] == v {
            return (u, v, f[(i + 2) % 3]);
        }
    }
    panic!("face {f:?} does not traverse edge ({u}, {v})");
}

/// Closest point on segment `ab` to `p`, with its parameter `t ∈ [0, 1]`.
fn closest_on_segment(a: Vec3, b: Vec3, p: Vec3) -> (Vec3, f64) {
    let ab = b - a;
    let denom = ab.norm_sq();
    if denom < 1e-300 {
        return (a, 0.0);
    }
    let t = ((p - a).dot(ab) / denom).clamp(0.0, 1.0);
    (a + ab * t, t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{diamond_square, Heightfield};
    use crate::locate::FaceLocator;
    use crate::poi::{sample_uniform, SurfacePoint};

    #[test]
    fn interior_insert_splits_face() {
        let m = Heightfield::flat(2, 2, 1.0, 1.0).to_mesh();
        let p = SurfacePoint { face: 0, pos: m.face_centroid(0) };
        let r = insert_surface_points(&m, &[p], None).unwrap();
        assert_eq!(r.mesh.n_vertices(), 5);
        assert_eq!(r.mesh.n_faces(), 4);
        assert_eq!(r.poi_vertices, vec![4]);
        assert!(r.mesh.vertex(4).dist(p.pos) < 1e-12);
    }

    #[test]
    fn vertex_snap_returns_existing() {
        let m = Heightfield::flat(3, 3, 1.0, 1.0).to_mesh();
        let pos = m.vertex(4);
        let face = m.vertex_faces(4)[0];
        let r = insert_surface_points(&m, &[SurfacePoint { face, pos }], None).unwrap();
        assert_eq!(r.poi_vertices, vec![4]);
        assert_eq!(r.mesh.n_vertices(), m.n_vertices());
        assert_eq!(r.mesh.n_faces(), m.n_faces());
    }

    #[test]
    fn interior_edge_split_updates_both_faces() {
        let m = Heightfield::flat(2, 2, 1.0, 1.0).to_mesh();
        // The diagonal edge of the unit quad.
        let e = (0..m.n_edges() as u32).find(|&e| !m.edge(e).is_boundary()).unwrap();
        let [u, v] = m.edge(e).v;
        let mid = m.vertex(u).lerp(m.vertex(v), 0.5);
        let f = m.edge(e).faces[0];
        let r = insert_surface_points(&m, &[SurfacePoint { face: f, pos: mid }], None).unwrap();
        assert_eq!(r.mesh.n_vertices(), 5);
        assert_eq!(r.mesh.n_faces(), 4);
        assert!(r.mesh.vertex(r.poi_vertices[0]).dist(mid) < 1e-12);
    }

    #[test]
    fn boundary_edge_split_works() {
        let m = Heightfield::flat(2, 2, 1.0, 1.0).to_mesh();
        let e = (0..m.n_edges() as u32).find(|&e| m.edge(e).is_boundary()).unwrap();
        let [u, v] = m.edge(e).v;
        let mid = m.vertex(u).lerp(m.vertex(v), 0.4);
        let f = m.edge(e).faces[0];
        let r = insert_surface_points(&m, &[SurfacePoint { face: f, pos: mid }], None).unwrap();
        assert_eq!(r.mesh.n_vertices(), 5);
        assert_eq!(r.mesh.n_faces(), 3);
    }

    #[test]
    fn duplicate_points_map_to_same_vertex() {
        let m = Heightfield::flat(3, 3, 1.0, 1.0).to_mesh();
        let p = SurfacePoint { face: 0, pos: m.face_centroid(0) };
        let r = insert_surface_points(&m, &[p, p], None).unwrap();
        assert_eq!(r.poi_vertices[0], r.poi_vertices[1]);
    }

    #[test]
    fn many_points_in_same_face_all_resolve() {
        let m = Heightfield::flat(2, 2, 2.0, 2.0).to_mesh();
        // Several interior points of face 0, inserted sequentially —
        // later ones must relocate into the split children.
        let [a, b, c] = m.face_points(0);
        let pts: Vec<SurfacePoint> =
            [(0.5, 0.3, 0.2), (0.2, 0.5, 0.3), (0.3, 0.2, 0.5), (0.4, 0.4, 0.2)]
                .iter()
                .map(|&(wa, wb, wc)| SurfacePoint { face: 0, pos: a * wa + b * wb + c * wc })
                .collect();
        let r = insert_surface_points(&m, &pts, None).unwrap();
        assert_eq!(r.mesh.n_vertices(), 4 + 4);
        for (i, p) in pts.iter().enumerate() {
            assert!(r.mesh.vertex(r.poi_vertices[i]).dist(p.pos) < 1e-12);
        }
    }

    #[test]
    fn bulk_insert_on_fractal_preserves_surface() {
        let m = diamond_square(4, 0.6, 17).to_mesh();
        let pois = sample_uniform(&m, 150, 23);
        let r = insert_surface_points(&m, &pois, None).unwrap();
        assert!(r.mesh.n_vertices() <= m.n_vertices() + 150);
        // Total area is invariant under refinement.
        let before = m.stats().total_area;
        let after = r.mesh.stats().total_area;
        assert!((before - after).abs() < 1e-6 * before);
        // Every POI is realised exactly.
        for (p, &v) in pois.iter().zip(&r.poi_vertices) {
            assert!(r.mesh.vertex(v).dist(p.pos) < 1e-9);
        }
    }

    #[test]
    fn refined_mesh_supports_relocation_via_locator() {
        // Locator built on the refined mesh still resolves the POIs.
        let m = diamond_square(3, 0.5, 5).to_mesh();
        let pois = sample_uniform(&m, 40, 7);
        let r = insert_surface_points(&m, &pois, None).unwrap();
        let loc = FaceLocator::build(&r.mesh);
        for p in &pois {
            let (_, q) = loc.locate(&r.mesh, p.pos.x, p.pos.y).unwrap();
            assert!(q.dist(p.pos) < 1e-9);
        }
    }
}
