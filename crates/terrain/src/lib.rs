//! Triangulated terrain (TIN) substrate for geodesic distance oracles.
//!
//! This crate provides everything below the geodesic layer of the
//! reproduction of *Distance Oracle on Terrain Surface* (Wei, Wong, Long,
//! Mount — SIGMOD 2017):
//!
//! * [`mesh::TerrainMesh`] — a validated indexed triangle mesh with full
//!   adjacency (manifold, consistently oriented, connected);
//! * [`gen`] — synthetic terrain generation (diamond-square fractals,
//!   Gaussian hills, closed-form test shapes) and the named dataset
//!   [`gen::Preset`]s standing in for the paper's BearHead / EaglePeak /
//!   San-Francisco-South DEM tiles;
//! * [`poi`] — POI sampling (uniform, clustered, the paper's
//!   Normal-distribution up-scaling) and de-duplication;
//! * [`locate::FaceLocator`] — `(x, y)` → surface-point projection;
//! * [`refine`] — inserting POIs as mesh vertices without changing the
//!   surface;
//! * [`simplify`] — the paper's face-centroid enlargement for Effect-of-N
//!   sweeps;
//! * [`tile`] — grid partitioning into overlapping sub-mesh tiles with
//!   seam portal vertices (the substrate of the atlas oracle);
//! * [`io`] — OFF-format input/output;
//! * [`dem`] — ESRI ASCII grid (`.asc`) DEM import/export.
//!
//! # Quick example
//!
//! ```
//! use terrain::gen::Preset;
//! use terrain::poi::sample_uniform;
//! use terrain::refine::insert_surface_points;
//!
//! let mesh = Preset::SfSmall.mesh(0.2);
//! let pois = sample_uniform(&mesh, 10, 42);
//! let refined = insert_surface_points(&mesh, &pois, None).unwrap();
//! assert_eq!(refined.poi_vertices.len(), 10);
//! ```

#![forbid(unsafe_code)]
pub mod dem;
pub mod gen;
pub mod geom;
pub mod io;
pub mod locate;
pub mod mesh;
pub mod poi;
pub mod refine;
pub mod simplify;
pub mod tile;

pub use geom::{Vec2, Vec3};
pub use mesh::{Edge, EdgeId, FaceId, MeshError, MeshStats, TerrainMesh, VertexId, NO_FACE};
pub use poi::SurfacePoint;
pub use tile::{Tile, TileError, TileGridConfig, TilePartition};
