//! Tiled mesh partitioning: cutting one terrain into a grid of
//! overlapping, self-contained sub-meshes with designated **portal**
//! vertices on the seams.
//!
//! The SE oracle is built and queried as one monolith, which caps the mesh
//! size one construction can digest. Planar-graph distance oracles scale
//! past that by decomposing the graph into pieces and routing queries
//! through the piece boundaries (Kawarabayashi–Klein–Sommer's linear-space
//! pieces, Gu–Xu's portal-based oracles). This module provides the terrain
//! half of that recipe:
//!
//! * [`TilePartition::build`] cuts the mesh's `(x, y)` bounding box into an
//!   `nx × ny` grid of cells and assembles, per cell, a sub-mesh of every
//!   face whose centroid falls in the cell *expanded by an overlap margin*.
//!   The overlap gives each tile a fringe of shared geometry, so geodesics
//!   that hug a seam stay (approximately) representable inside a single
//!   tile and seam vertices exist in **both** adjacent tiles.
//! * Each [`Tile`] is a fully validated [`TerrainMesh`] plus the id
//!   remapping tables (local ↔ global vertices and faces).
//! * [`TilePartition::portals`] is a spaced subset of seam vertices, each
//!   present in at least the two tiles it separates — the routing sites a
//!   cross-tile distance query travels through. Spacing trades accuracy
//!   (denser portals ≈ shorter detours) against per-tile oracle size.
//!
//! Everything here is deterministic: face assignment, vertex remapping and
//! portal selection depend only on the mesh and the [`TileGridConfig`].

use crate::geom::Vec3;
use crate::mesh::{FaceId, MeshError, TerrainMesh, VertexId};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Grid-tiling parameters.
#[derive(Debug, Clone, Copy)]
pub struct TileGridConfig {
    /// Grid columns (along x).
    pub nx: usize,
    /// Grid rows (along y).
    pub ny: usize,
    /// Overlap margin as a fraction of the cell width/height. Faces whose
    /// centroid lies within the margin of a neighbouring cell join that
    /// tile too; larger margins shorten cross-seam detours at the cost of
    /// bigger tiles.
    pub overlap_frac: f64,
    /// Portal spacing along a seam: one portal per this many distinct
    /// seam-axis positions (mesh rows/columns for grid TINs). `1` keeps
    /// every candidate position.
    pub portal_spacing: usize,
}

impl Default for TileGridConfig {
    fn default() -> Self {
        Self { nx: 2, ny: 2, overlap_frac: 0.15, portal_spacing: 8 }
    }
}

/// Failures while partitioning a mesh into tiles.
#[derive(Debug)]
pub enum TileError {
    /// The configuration is structurally invalid (message says how).
    BadConfig(&'static str),
    /// A grid cell (plus its margin) contains no face; the grid is too
    /// fine for the mesh footprint.
    EmptyTile { ix: usize, iy: usize },
    /// A tile's face subset does not form a valid mesh (typically
    /// disconnected: the overlap band pinched off an island). Coarsen the
    /// grid or raise the overlap.
    Submesh { ix: usize, iy: usize, source: MeshError },
    /// Two side-adjacent tiles share no vertex, so no portal can join
    /// them; raise `overlap_frac` above the local face size.
    NoSharedFringe { a: (usize, usize), b: (usize, usize) },
}

impl fmt::Display for TileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TileError::BadConfig(msg) => write!(f, "invalid tile grid: {msg}"),
            TileError::EmptyTile { ix, iy } => {
                write!(f, "tile ({ix}, {iy}) contains no face; use a coarser grid")
            }
            TileError::Submesh { ix, iy, source } => {
                write!(f, "tile ({ix}, {iy}) is not a valid sub-mesh: {source}")
            }
            TileError::NoSharedFringe { a, b } => write!(
                f,
                "adjacent tiles ({}, {}) and ({}, {}) share no fringe vertex; \
                 raise overlap_frac",
                a.0, a.1, b.0, b.1
            ),
        }
    }
}

impl std::error::Error for TileError {}

/// One grid tile: a validated sub-mesh plus the id remapping tables.
#[derive(Debug, Clone)]
pub struct Tile {
    /// Grid column.
    pub ix: usize,
    /// Grid row.
    pub iy: usize,
    /// The tile's own mesh (vertices/faces re-indexed from 0).
    pub mesh: Arc<TerrainMesh>,
    /// Global vertex id of each local vertex, strictly ascending.
    global_of_vertex: Vec<VertexId>,
    /// Global face id of each local face, strictly ascending.
    global_of_face: Vec<FaceId>,
}

impl Tile {
    /// Global vertex ids, indexed by local vertex id (strictly ascending).
    pub fn global_vertices(&self) -> &[VertexId] {
        &self.global_of_vertex
    }

    /// Global face ids, indexed by local face id (strictly ascending).
    pub fn global_faces(&self) -> &[FaceId] {
        &self.global_of_face
    }

    /// Local id of global vertex `v`, if the tile contains it.
    pub fn local_vertex(&self, v: VertexId) -> Option<VertexId> {
        self.global_of_vertex.binary_search(&v).ok().map(|i| i as VertexId)
    }

    /// Global id of local vertex `v`.
    pub fn global_vertex(&self, v: VertexId) -> VertexId {
        self.global_of_vertex[v as usize]
    }
}

/// A complete grid partition: tiles plus the selected portal vertices.
#[derive(Debug, Clone)]
pub struct TilePartition {
    cfg: TileGridConfig,
    /// Row-major tiles: index `iy * nx + ix`.
    tiles: Vec<Tile>,
    /// Selected portal vertices (global ids, strictly ascending, distinct).
    portals: Vec<VertexId>,
    x0: f64,
    y0: f64,
    cell_w: f64,
    cell_h: f64,
}

impl TilePartition {
    /// Partitions `mesh` into `cfg.nx × cfg.ny` overlapping tiles and
    /// selects seam portals.
    pub fn build(mesh: &TerrainMesh, cfg: &TileGridConfig) -> Result<Self, TileError> {
        if cfg.nx == 0 || cfg.ny == 0 {
            return Err(TileError::BadConfig("nx and ny must be at least 1"));
        }
        if cfg.portal_spacing == 0 {
            return Err(TileError::BadConfig("portal_spacing must be at least 1"));
        }
        if !(cfg.overlap_frac > 0.0 && cfg.overlap_frac < 1.0) && cfg.nx * cfg.ny > 1 {
            return Err(TileError::BadConfig("overlap_frac must be in (0, 1)"));
        }

        let (mut lo_x, mut hi_x) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut lo_y, mut hi_y) = (f64::INFINITY, f64::NEG_INFINITY);
        for v in mesh.vertices() {
            lo_x = lo_x.min(v.x);
            hi_x = hi_x.max(v.x);
            lo_y = lo_y.min(v.y);
            hi_y = hi_y.max(v.y);
        }
        if (cfg.nx > 1 && hi_x - lo_x <= 0.0) || (cfg.ny > 1 && hi_y - lo_y <= 0.0) {
            return Err(TileError::BadConfig("grid axis spans zero extent"));
        }
        let cell_w = (hi_x - lo_x) / cfg.nx as f64;
        let cell_h = (hi_y - lo_y) / cfg.ny as f64;
        let margin_x = cfg.overlap_frac * cell_w;
        let margin_y = cfg.overlap_frac * cell_h;

        // Assign every face to each tile whose expanded cell contains its
        // centroid. Faces iterate in global order, so per-tile face lists
        // come out strictly ascending.
        let mut tile_faces: Vec<Vec<FaceId>> = vec![Vec::new(); cfg.nx * cfg.ny];
        let span = |c: f64, origin: f64, cell: f64, margin: f64, n: usize| -> (usize, usize) {
            if n == 1 {
                return (0, 0);
            }
            let lo = ((c - origin - margin) / cell).floor().max(0.0) as usize;
            let hi = ((c - origin + margin) / cell).floor().max(0.0) as usize;
            (lo.min(n - 1), hi.min(n - 1))
        };
        for f in 0..mesh.n_faces() as FaceId {
            let c = mesh.face_centroid(f);
            let (i0, i1) = span(c.x, lo_x, cell_w, margin_x, cfg.nx);
            let (j0, j1) = span(c.y, lo_y, cell_h, margin_y, cfg.ny);
            for j in j0..=j1 {
                for i in i0..=i1 {
                    tile_faces[j * cfg.nx + i].push(f);
                }
            }
        }

        let mut tiles = Vec::with_capacity(cfg.nx * cfg.ny);
        for iy in 0..cfg.ny {
            for ix in 0..cfg.nx {
                let faces = &tile_faces[iy * cfg.nx + ix];
                if faces.is_empty() {
                    return Err(TileError::EmptyTile { ix, iy });
                }
                let vert_set: BTreeSet<VertexId> =
                    faces.iter().flat_map(|&f| mesh.face(f)).collect();
                let global_of_vertex: Vec<VertexId> = vert_set.into_iter().collect();
                let local_of = |v: VertexId| {
                    // lint: allow(panic, "invariant: local vertex ids come from the same collected set")
                    global_of_vertex.binary_search(&v).expect("face vertex collected") as VertexId
                };
                let vertices: Vec<Vec3> =
                    global_of_vertex.iter().map(|&v| mesh.vertex(v)).collect();
                let local_faces: Vec<[VertexId; 3]> =
                    faces.iter().map(|&f| mesh.face(f).map(local_of)).collect();
                let sub = TerrainMesh::new(vertices, local_faces)
                    .map_err(|source| TileError::Submesh { ix, iy, source })?;
                tiles.push(Tile {
                    ix,
                    iy,
                    mesh: Arc::new(sub),
                    global_of_vertex,
                    global_of_face: faces.clone(),
                });
            }
        }

        let portals = select_portals(mesh, cfg, &tiles, lo_x, lo_y, cell_w, cell_h)?;
        Ok(Self { cfg: *cfg, tiles, portals, x0: lo_x, y0: lo_y, cell_w, cell_h })
    }

    /// The configuration the partition was built with.
    pub fn config(&self) -> &TileGridConfig {
        &self.cfg
    }

    /// Number of tiles (`nx × ny`).
    pub fn n_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// All tiles in row-major order (index `iy * nx + ix`).
    pub fn tiles(&self) -> &[Tile] {
        &self.tiles
    }

    /// Tile at row-major index `i`.
    pub fn tile(&self, i: usize) -> &Tile {
        &self.tiles[i]
    }

    /// Selected portal vertices (global ids, strictly ascending).
    pub fn portals(&self) -> &[VertexId] {
        &self.portals
    }

    /// Row-major index of the tile whose **core cell** (no margin)
    /// contains `p`'s `(x, y)` position, clamping points on or outside the
    /// boundary into the nearest cell. This is the unique *home tile* of a
    /// point, independent of which overlapping tiles also contain it.
    pub fn home_tile(&self, p: Vec3) -> usize {
        let clamp = |c: f64, origin: f64, cell: f64, n: usize| -> usize {
            if n == 1 || cell <= 0.0 {
                return 0;
            }
            (((c - origin) / cell).floor().max(0.0) as usize).min(n - 1)
        };
        let i = clamp(p.x, self.x0, self.cell_w, self.cfg.nx);
        let j = clamp(p.y, self.y0, self.cell_h, self.cfg.ny);
        j * self.cfg.nx + i
    }
}

/// Selects seam portals: for every side-adjacent tile pair, the vertices
/// both tiles contain are grouped by their exact coordinate **along** the
/// seam, every `portal_spacing`-th group (plus the last) contributes its
/// candidate nearest the seam line. Deterministic; returns the deduplicated
/// union, ascending.
fn select_portals(
    mesh: &TerrainMesh,
    cfg: &TileGridConfig,
    tiles: &[Tile],
    x0: f64,
    y0: f64,
    cell_w: f64,
    cell_h: f64,
) -> Result<Vec<VertexId>, TileError> {
    let mut chosen: BTreeSet<VertexId> = BTreeSet::new();
    let mut seam = |a: &Tile, b: &Tile, seam_coord: f64, vertical: bool| {
        // Sorted-list intersection: both id lists are strictly ascending.
        let (mut i, mut j) = (0usize, 0usize);
        let (va, vb) = (a.global_vertices(), b.global_vertices());
        let mut shared: Vec<VertexId> = Vec::new();
        while i < va.len() && j < vb.len() {
            match va[i].cmp(&vb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    shared.push(va[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        if shared.is_empty() {
            return Err(TileError::NoSharedFringe { a: (a.ix, a.iy), b: (b.ix, b.iy) });
        }
        // Along-seam coordinate, then distance to the seam line, then id.
        let key = |v: VertexId| {
            let p = mesh.vertex(v);
            if vertical {
                (p.y, (p.x - seam_coord).abs())
            } else {
                (p.x, (p.y - seam_coord).abs())
            }
        };
        shared.sort_by(|&u, &v| {
            let (au, pu) = key(u);
            let (av, pv) = key(v);
            au.total_cmp(&av).then(pu.total_cmp(&pv)).then(u.cmp(&v))
        });
        // Group heads: the first (closest-to-seam) vertex of each distinct
        // along-seam position.
        let mut heads: Vec<VertexId> = Vec::new();
        let mut last_axis: Option<f64> = None;
        for &v in &shared {
            let (axis, _) = key(v);
            if last_axis != Some(axis) {
                heads.push(v);
                last_axis = Some(axis);
            }
        }
        for (k, &v) in heads.iter().enumerate() {
            if k % cfg.portal_spacing == 0 || k + 1 == heads.len() {
                chosen.insert(v);
            }
        }
        Ok(())
    };

    for t in tiles {
        if t.ix + 1 < cfg.nx {
            let right = &tiles[t.iy * cfg.nx + t.ix + 1];
            seam(t, right, x0 + (t.ix + 1) as f64 * cell_w, true)?;
        }
        if t.iy + 1 < cfg.ny {
            let above = &tiles[(t.iy + 1) * cfg.nx + t.ix];
            seam(t, above, y0 + (t.iy + 1) as f64 * cell_h, false)?;
        }
    }
    Ok(chosen.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{diamond_square, Heightfield};

    fn grid_mesh() -> TerrainMesh {
        Heightfield::flat(9, 9, 8.0, 8.0).to_mesh()
    }

    fn fractal() -> TerrainMesh {
        diamond_square(4, 0.6, 7).to_mesh()
    }

    #[test]
    fn single_tile_is_whole_mesh() {
        let mesh = grid_mesh();
        let cfg = TileGridConfig { nx: 1, ny: 1, ..Default::default() };
        let p = TilePartition::build(&mesh, &cfg).unwrap();
        assert_eq!(p.n_tiles(), 1);
        assert!(p.portals().is_empty(), "a single tile needs no portals");
        let t = p.tile(0);
        assert_eq!(t.mesh.n_vertices(), mesh.n_vertices());
        assert_eq!(t.mesh.n_faces(), mesh.n_faces());
        assert_eq!(p.home_tile(mesh.vertex(17)), 0);
    }

    #[test]
    fn two_by_two_covers_every_face_and_overlaps() {
        let mesh = fractal();
        let p = TilePartition::build(&mesh, &TileGridConfig::default()).unwrap();
        assert_eq!(p.n_tiles(), 4);
        // Every face appears in at least one tile; overlap makes the face
        // total strictly larger than the mesh's.
        let mut seen = vec![false; mesh.n_faces()];
        let mut total = 0usize;
        for t in p.tiles() {
            total += t.global_faces().len();
            for &f in t.global_faces() {
                seen[f as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some face belongs to no tile");
        assert!(total > mesh.n_faces(), "tiles must overlap");
        // Each tile is strictly smaller than the whole mesh.
        for t in p.tiles() {
            assert!(t.mesh.n_faces() < mesh.n_faces(), "tile ({}, {})", t.ix, t.iy);
        }
    }

    #[test]
    fn remapping_round_trips_geometry() {
        let mesh = fractal();
        let p = TilePartition::build(&mesh, &TileGridConfig::default()).unwrap();
        for t in p.tiles() {
            for local in 0..t.mesh.n_vertices() as VertexId {
                let g = t.global_vertex(local);
                assert_eq!(t.local_vertex(g), Some(local));
                assert_eq!(t.mesh.vertex(local), mesh.vertex(g));
            }
            assert_eq!(t.local_vertex(VertexId::MAX), None);
            // Faces carry the same (re-indexed) corners.
            for (lf, &gf) in t.global_faces().iter().enumerate() {
                let want = mesh.face(gf).map(|v| t.local_vertex(v).unwrap());
                assert_eq!(t.mesh.face(lf as FaceId), want);
            }
        }
    }

    #[test]
    fn portals_live_in_every_adjacent_tile_pair() {
        let mesh = fractal();
        let p = TilePartition::build(&mesh, &TileGridConfig::default()).unwrap();
        assert!(!p.portals().is_empty());
        for &v in p.portals() {
            let owners = p.tiles().iter().filter(|t| t.local_vertex(v).is_some()).count();
            assert!(owners >= 2, "portal {v} lives in {owners} tile(s)");
        }
        // Each side-adjacent pair shares at least one portal.
        for t in p.tiles() {
            for (dx, dy) in [(1usize, 0usize), (0, 1)] {
                if t.ix + dx >= 2 || t.iy + dy >= 2 {
                    continue;
                }
                let nb = p.tile((t.iy + dy) * 2 + t.ix + dx);
                let joint = p
                    .portals()
                    .iter()
                    .filter(|&&v| t.local_vertex(v).is_some() && nb.local_vertex(v).is_some())
                    .count();
                assert!(joint >= 1, "tiles ({},{}) and ({},{})", t.ix, t.iy, nb.ix, nb.iy);
            }
        }
    }

    #[test]
    fn wider_spacing_selects_fewer_portals() {
        let mesh = grid_mesh();
        let dense = TilePartition::build(
            &mesh,
            &TileGridConfig { portal_spacing: 1, ..Default::default() },
        )
        .unwrap();
        let sparse = TilePartition::build(
            &mesh,
            &TileGridConfig { portal_spacing: 6, ..Default::default() },
        )
        .unwrap();
        assert!(sparse.portals().len() < dense.portals().len());
        // Sparse portals are a subset of the dense candidates' tiles'
        // shared fringes, so they also live in ≥ 2 tiles each.
        for &v in sparse.portals() {
            assert!(sparse.tiles().iter().filter(|t| t.local_vertex(v).is_some()).count() >= 2);
        }
    }

    #[test]
    fn home_tile_matches_core_cell() {
        let mesh = grid_mesh(); // 9×9 grid over 64×64 units
        let cfg = TileGridConfig { nx: 2, ny: 2, ..Default::default() };
        let p = TilePartition::build(&mesh, &cfg).unwrap();
        assert_eq!(p.home_tile(Vec3::new(1.0, 1.0, 0.0)), 0);
        assert_eq!(p.home_tile(Vec3::new(63.0, 1.0, 5.0)), 1);
        assert_eq!(p.home_tile(Vec3::new(1.0, 63.0, -2.0)), 2);
        assert_eq!(p.home_tile(Vec3::new(63.0, 63.0, 0.0)), 3);
        // Out-of-range points clamp to the nearest cell.
        assert_eq!(p.home_tile(Vec3::new(-10.0, -10.0, 0.0)), 0);
        assert_eq!(p.home_tile(Vec3::new(1e6, 1e6, 0.0)), 3);
    }

    #[test]
    fn every_vertex_is_in_its_home_tile() {
        let mesh = fractal();
        let p = TilePartition::build(&mesh, &TileGridConfig::default()).unwrap();
        for v in 0..mesh.n_vertices() as VertexId {
            let home = p.home_tile(mesh.vertex(v));
            assert!(
                p.tile(home).local_vertex(v).is_some(),
                "vertex {v} missing from its home tile {home}"
            );
        }
    }

    #[test]
    fn bad_configs_rejected() {
        let mesh = grid_mesh();
        for cfg in [
            TileGridConfig { nx: 0, ..Default::default() },
            TileGridConfig { ny: 0, ..Default::default() },
            TileGridConfig { portal_spacing: 0, ..Default::default() },
            TileGridConfig { overlap_frac: 0.0, ..Default::default() },
            TileGridConfig { overlap_frac: 1.5, ..Default::default() },
        ] {
            assert!(
                matches!(TilePartition::build(&mesh, &cfg), Err(TileError::BadConfig(_))),
                "{cfg:?} accepted"
            );
        }
    }

    #[test]
    fn too_fine_a_grid_reports_empty_tile() {
        // 2 × 2 vertices = 2 faces cannot fill an 8 × 8 grid of cells.
        let mesh = Heightfield::flat(2, 2, 1.0, 1.0).to_mesh();
        let cfg = TileGridConfig { nx: 8, ny: 8, overlap_frac: 0.01, ..Default::default() };
        assert!(matches!(
            TilePartition::build(&mesh, &cfg),
            Err(TileError::EmptyTile { .. }) | Err(TileError::NoSharedFringe { .. })
        ));
    }
}
