//! ESRI ASCII grid (`.asc`) import/export for heightfields.
//!
//! The paper's datasets were DEM tiles from `data.geocomm.com` (long dead);
//! USGS and most national mapping agencies still distribute DEMs in the
//! ESRI ASCII interchange format, so supporting it lets a user run this
//! library on the *actual* BearHead/EaglePeak quadrangles if they obtain
//! them elsewhere. Format:
//!
//! ```text
//! ncols         4
//! nrows         3
//! xllcorner     0.0
//! yllcorner     0.0
//! cellsize      30.0
//! NODATA_value  -9999          (optional)
//! 10.0 11.2 9.8 10.5           (rows top-to-bottom)
//! ...
//! ```

use crate::gen::Heightfield;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors from `.asc` parsing.
#[derive(Debug)]
pub enum DemError {
    Io(io::Error),
    Parse {
        line: usize,
        msg: String,
    },
    /// Grid smaller than 2×2 cannot triangulate.
    TooSmall {
        ncols: usize,
        nrows: usize,
    },
    /// Every cell is NODATA — nothing to interpolate from.
    AllNoData,
}

impl std::fmt::Display for DemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DemError::Io(e) => write!(f, "I/O error: {e}"),
            DemError::Parse { line, msg } => write!(f, "ASC parse error at line {line}: {msg}"),
            DemError::TooSmall { ncols, nrows } => {
                write!(f, "grid {ncols}×{nrows} too small (need ≥ 2×2)")
            }
            DemError::AllNoData => write!(f, "grid contains only NODATA cells"),
        }
    }
}

impl std::error::Error for DemError {}

impl From<io::Error> for DemError {
    fn from(e: io::Error) -> Self {
        DemError::Io(e)
    }
}

/// Reads an ESRI ASCII grid into a [`Heightfield`].
///
/// `NODATA` cells are filled with the mean of their valid 8-neighbours
/// (iterated until the grid is complete), which keeps isolated sensor
/// dropouts from punching holes in the surface; a fully-NODATA grid is an
/// error.
pub fn read_asc<R: Read>(reader: R) -> Result<Heightfield, DemError> {
    let mut lines = BufReader::new(reader).lines().enumerate();

    let mut header: Vec<(String, f64)> = Vec::new();
    let mut data_first: Option<(usize, String)> = None;
    for (ln, line) in &mut lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        let mut it = t.split_whitespace();
        let key = it.next().expect("non-empty line");
        if key.chars().next().is_some_and(|c| c.is_ascii_alphabetic()) {
            let val: f64 =
                it.next().and_then(|v| v.parse().ok()).ok_or_else(|| DemError::Parse {
                    line: ln + 1,
                    msg: format!("header '{key}' needs a numeric value"),
                })?;
            header.push((key.to_ascii_lowercase(), val));
        } else {
            data_first = Some((ln, t.to_string()));
            break;
        }
    }

    let get = |name: &str| header.iter().find(|(k, _)| k == name).map(|&(_, v)| v);
    let ncols =
        get("ncols").ok_or(DemError::Parse { line: 1, msg: "missing ncols".into() })? as usize;
    let nrows =
        get("nrows").ok_or(DemError::Parse { line: 1, msg: "missing nrows".into() })? as usize;
    if ncols < 2 || nrows < 2 {
        return Err(DemError::TooSmall { ncols, nrows });
    }
    let cellsize =
        get("cellsize").ok_or(DemError::Parse { line: 1, msg: "missing cellsize".into() })?;
    if !(cellsize > 0.0 && cellsize.is_finite()) {
        return Err(DemError::Parse { line: 1, msg: "cellsize must be positive".into() });
    }
    let nodata = get("nodata_value");

    // Collect exactly ncols × nrows values, top row first.
    let mut vals: Vec<f64> = Vec::with_capacity(ncols * nrows);
    let push_line = |ln: usize, text: &str, vals: &mut Vec<f64>| -> Result<(), DemError> {
        for tok in text.split_whitespace() {
            let v: f64 = tok.parse().map_err(|_| DemError::Parse {
                line: ln + 1,
                msg: format!("bad height '{tok}'"),
            })?;
            vals.push(v);
        }
        Ok(())
    };
    if let Some((ln, text)) = data_first {
        push_line(ln, &text, &mut vals)?;
    }
    let mut last_ln = 0usize;
    for (ln, line) in &mut lines {
        last_ln = ln;
        push_line(ln, &line?, &mut vals)?;
        if vals.len() >= ncols * nrows {
            break;
        }
    }
    if vals.len() != ncols * nrows {
        return Err(DemError::Parse {
            line: last_ln + 1,
            msg: format!("expected {} heights, found {}", ncols * nrows, vals.len()),
        });
    }

    // Rows arrive top-to-bottom; Heightfield's j axis grows with y, so
    // flip. Mark NODATA as NaN for the fill pass.
    let is_nodata = |v: f64| nodata.is_some_and(|nd| (v - nd).abs() < 1e-9) || !v.is_finite();
    let mut hf = Heightfield::flat(ncols, nrows, cellsize, cellsize);
    let mut holes = 0usize;
    for j in 0..nrows {
        for i in 0..ncols {
            let v = vals[(nrows - 1 - j) * ncols + i];
            if is_nodata(v) {
                hf.set(i, j, f64::NAN);
                holes += 1;
            } else {
                hf.set(i, j, v);
            }
        }
    }
    if holes == ncols * nrows {
        return Err(DemError::AllNoData);
    }
    fill_nodata(&mut hf, ncols, nrows);
    Ok(hf)
}

/// Iteratively replaces NaN cells with the mean of their valid neighbours.
fn fill_nodata(hf: &mut Heightfield, ncols: usize, nrows: usize) {
    loop {
        let mut fixes: Vec<(usize, usize, f64)> = Vec::new();
        let mut remaining = false;
        for j in 0..nrows {
            for i in 0..ncols {
                if !hf.h(i, j).is_nan() {
                    continue;
                }
                let mut sum = 0.0;
                let mut cnt = 0usize;
                for dj in -1i64..=1 {
                    for di in -1i64..=1 {
                        let (ni, nj) = (i as i64 + di, j as i64 + dj);
                        if (di, dj) == (0, 0)
                            || ni < 0
                            || nj < 0
                            || ni >= ncols as i64
                            || nj >= nrows as i64
                        {
                            continue;
                        }
                        let v = hf.h(ni as usize, nj as usize);
                        if !v.is_nan() {
                            sum += v;
                            cnt += 1;
                        }
                    }
                }
                if cnt > 0 {
                    fixes.push((i, j, sum / cnt as f64));
                } else {
                    remaining = true;
                }
            }
        }
        if fixes.is_empty() {
            debug_assert!(!remaining, "fill_nodata made no progress");
            return;
        }
        for (i, j, v) in fixes {
            hf.set(i, j, v);
        }
        if !remaining {
            return;
        }
    }
}

/// Writes a [`Heightfield`] as an ESRI ASCII grid. Requires square cells
/// (`dx == dy`), which is what [`read_asc`] produces.
pub fn write_asc<W: Write>(hf: &Heightfield, mut w: W) -> io::Result<()> {
    assert!(
        (hf.dx - hf.dy).abs() <= 1e-9 * hf.dx.max(hf.dy),
        "ESRI ASCII grids require square cells (dx = {}, dy = {})",
        hf.dx,
        hf.dy
    );
    writeln!(w, "ncols        {}", hf.nx)?;
    writeln!(w, "nrows        {}", hf.ny)?;
    writeln!(w, "xllcorner    0.0")?;
    writeln!(w, "yllcorner    0.0")?;
    writeln!(w, "cellsize     {}", hf.dx)?;
    for j in (0..hf.ny).rev() {
        let row: Vec<String> = (0..hf.nx).map(|i| format!("{}", hf.h(i, j))).collect();
        writeln!(w, "{}", row.join(" "))?;
    }
    Ok(())
}

/// Reads an `.asc` file from disk.
pub fn read_asc_file<P: AsRef<Path>>(path: P) -> Result<Heightfield, DemError> {
    read_asc(std::fs::File::open(path)?)
}

/// Writes an `.asc` file to disk.
pub fn write_asc_file<P: AsRef<Path>>(hf: &Heightfield, path: P) -> io::Result<()> {
    write_asc(hf, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::diamond_square;

    const SAMPLE: &str = "\
ncols         4
nrows         3
xllcorner     100.0
yllcorner     200.0
cellsize      30.0
1 2 3 4
5 6 7 8
9 10 11 12
";

    #[test]
    fn parses_sample_grid() {
        let hf = read_asc(SAMPLE.as_bytes()).unwrap();
        assert_eq!((hf.nx, hf.ny), (4, 3));
        assert_eq!(hf.dx, 30.0);
        // Top file row is the highest-y row of the heightfield.
        assert_eq!(hf.h(0, 2), 1.0);
        assert_eq!(hf.h(3, 2), 4.0);
        assert_eq!(hf.h(0, 0), 9.0);
        assert_eq!(hf.h(3, 0), 12.0);
        // Result triangulates.
        let mesh = hf.to_mesh();
        assert_eq!(mesh.n_vertices(), 12);
    }

    #[test]
    fn nodata_cells_filled_from_neighbours() {
        let text = "\
ncols 3
nrows 3
cellsize 10
NODATA_value -9999
1 1 1
1 -9999 1
1 1 1
";
        let hf = read_asc(text.as_bytes()).unwrap();
        assert_eq!(hf.h(1, 1), 1.0, "hole must be filled with the neighbour mean");
        for j in 0..3 {
            for i in 0..3 {
                assert!(!hf.h(i, j).is_nan());
            }
        }
    }

    #[test]
    fn contiguous_nodata_region_fills_inward() {
        let text = "\
ncols 4
nrows 4
cellsize 1
NODATA_value -1
2 2 2 2
2 -1 -1 2
2 -1 -1 2
2 2 2 2
";
        let hf = read_asc(text.as_bytes()).unwrap();
        for j in 0..4 {
            for i in 0..4 {
                assert!((hf.h(i, j) - 2.0).abs() < 1e-9, "({i},{j}) = {}", hf.h(i, j));
            }
        }
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            read_asc("ncols 1\nnrows 5\ncellsize 1\n0\n".as_bytes()),
            Err(DemError::TooSmall { .. })
        ));
        assert!(read_asc("nrows 3\ncellsize 1\n1 2 3\n".as_bytes()).is_err());
        assert!(read_asc("ncols 2\nnrows 2\ncellsize 0\n1 1 1 1\n".as_bytes()).is_err());
        // Wrong value count.
        assert!(matches!(
            read_asc("ncols 2\nnrows 2\ncellsize 1\n1 2 3\n".as_bytes()),
            Err(DemError::Parse { .. })
        ));
        // Garbage height.
        assert!(read_asc("ncols 2\nnrows 2\ncellsize 1\n1 2 x 4\n".as_bytes()).is_err());
        // Everything NODATA.
        assert!(matches!(
            read_asc("ncols 2\nnrows 2\ncellsize 1\nNODATA_value 0\n0 0 0 0\n".as_bytes()),
            Err(DemError::AllNoData)
        ));
    }

    #[test]
    fn roundtrip_preserves_heights() {
        let hf = diamond_square(3, 0.6, 5);
        let mut buf = Vec::new();
        write_asc(&hf, &mut buf).unwrap();
        let back = read_asc(buf.as_slice()).unwrap();
        assert_eq!((back.nx, back.ny), (hf.nx, hf.ny));
        for j in 0..hf.ny {
            for i in 0..hf.nx {
                assert!(
                    (back.h(i, j) - hf.h(i, j)).abs() < 1e-12,
                    "({i},{j}): {} vs {}",
                    back.h(i, j),
                    hf.h(i, j)
                );
            }
        }
    }

    #[test]
    fn values_spread_across_many_lines_parse() {
        // Writers are allowed to wrap rows arbitrarily.
        let text = "ncols 2\nnrows 2\ncellsize 1\n1\n2\n3 4\n";
        let hf = read_asc(text.as_bytes()).unwrap();
        assert_eq!(hf.h(0, 1), 1.0);
        assert_eq!(hf.h(1, 0), 4.0);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("terrain-dem-test-{}.asc", std::process::id()));
        let hf = diamond_square(2, 0.5, 9);
        write_asc_file(&hf, &path).unwrap();
        let back = read_asc_file(&path).unwrap();
        assert_eq!((back.nx, back.ny), (hf.nx, hf.ny));
        std::fs::remove_file(&path).ok();
    }
}
