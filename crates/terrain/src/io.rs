//! OFF-format mesh I/O.
//!
//! The Object File Format is the lingua franca of the geometry-processing
//! datasets the paper draws on; supporting it lets users run the oracle on
//! real DEM-derived meshes when they have them.

use crate::geom::Vec3;
use crate::mesh::{MeshError, TerrainMesh};
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors from OFF parsing.
#[derive(Debug)]
pub enum OffError {
    Io(io::Error),
    Parse { line: usize, msg: String },
    Mesh(MeshError),
}

impl std::fmt::Display for OffError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OffError::Io(e) => write!(f, "I/O error: {e}"),
            OffError::Parse { line, msg } => write!(f, "OFF parse error at line {line}: {msg}"),
            OffError::Mesh(e) => write!(f, "invalid mesh: {e}"),
        }
    }
}

impl std::error::Error for OffError {}

impl From<io::Error> for OffError {
    fn from(e: io::Error) -> Self {
        OffError::Io(e)
    }
}

/// Reads an OFF mesh from a reader. Triangle faces only.
pub fn read_off<R: Read>(reader: R) -> Result<TerrainMesh, OffError> {
    let br = BufReader::new(reader);
    let mut tokens: Vec<(usize, String)> = Vec::new();
    for (ln, line) in br.lines().enumerate() {
        let line = line?;
        let body = line.split('#').next().unwrap_or("");
        for tok in body.split_whitespace() {
            tokens.push((ln + 1, tok.to_string()));
        }
    }
    let mut pos = 0usize;
    let mut next = |what: &str| -> Result<(usize, String), OffError> {
        let t = tokens.get(pos).cloned().ok_or_else(|| OffError::Parse {
            line: tokens.last().map_or(0, |t| t.0),
            msg: format!("unexpected end of file, expected {what}"),
        })?;
        pos += 1;
        Ok(t)
    };

    let (ln, magic) = next("OFF header")?;
    if magic != "OFF" {
        return Err(OffError::Parse { line: ln, msg: format!("expected 'OFF', got '{magic}'") });
    }
    let parse_usize = |(ln, s): (usize, String), what: &str| -> Result<usize, OffError> {
        s.parse().map_err(|_| OffError::Parse { line: ln, msg: format!("bad {what}: '{s}'") })
    };
    let parse_f64 = |(ln, s): (usize, String)| -> Result<f64, OffError> {
        s.parse().map_err(|_| OffError::Parse { line: ln, msg: format!("bad number: '{s}'") })
    };
    let nv = parse_usize(next("vertex count")?, "vertex count")?;
    let nf = parse_usize(next("face count")?, "face count")?;
    let _ne = parse_usize(next("edge count")?, "edge count")?;

    let mut verts = Vec::with_capacity(nv);
    for _ in 0..nv {
        let x = parse_f64(next("x")?)?;
        let y = parse_f64(next("y")?)?;
        let z = parse_f64(next("z")?)?;
        verts.push(Vec3::new(x, y, z));
    }
    let mut faces = Vec::with_capacity(nf);
    for _ in 0..nf {
        let (ln, k) = next("face arity")?;
        if k != "3" {
            return Err(OffError::Parse {
                line: ln,
                msg: format!("only triangle faces supported, got arity {k}"),
            });
        }
        let a = parse_usize(next("face index")?, "face index")? as u32;
        let b = parse_usize(next("face index")?, "face index")? as u32;
        let c = parse_usize(next("face index")?, "face index")? as u32;
        faces.push([a, b, c]);
    }
    TerrainMesh::new(verts, faces).map_err(OffError::Mesh)
}

/// Writes a mesh in OFF format.
pub fn write_off<W: Write>(mesh: &TerrainMesh, mut writer: W) -> io::Result<()> {
    let mut s = String::new();
    let _ = writeln!(s, "OFF");
    let _ = writeln!(s, "{} {} {}", mesh.n_vertices(), mesh.n_faces(), mesh.n_edges());
    for v in mesh.vertices() {
        let _ = writeln!(s, "{} {} {}", v.x, v.y, v.z);
    }
    for f in mesh.faces() {
        let _ = writeln!(s, "3 {} {} {}", f[0], f[1], f[2]);
    }
    writer.write_all(s.as_bytes())
}

/// Convenience: read from a file path.
pub fn read_off_file<P: AsRef<Path>>(path: P) -> Result<TerrainMesh, OffError> {
    read_off(std::fs::File::open(path)?)
}

/// Convenience: write to a file path.
pub fn write_off_file<P: AsRef<Path>>(mesh: &TerrainMesh, path: P) -> io::Result<()> {
    write_off(mesh, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::diamond_square;

    #[test]
    fn roundtrip_preserves_everything() {
        let m = diamond_square(3, 0.5, 1).to_mesh();
        let mut buf = Vec::new();
        write_off(&m, &mut buf).unwrap();
        let m2 = read_off(&buf[..]).unwrap();
        assert_eq!(m.n_vertices(), m2.n_vertices());
        assert_eq!(m.n_faces(), m2.n_faces());
        for (a, b) in m.vertices().iter().zip(m2.vertices()) {
            assert!(a.dist(*b) < 1e-12);
        }
        assert_eq!(m.faces(), m2.faces());
    }

    #[test]
    fn parses_comments_and_whitespace() {
        let src =
            "OFF # header\n# full comment line\n3 1 3\n0 0 0\n1 0 0  # inline\n0 1 0\n3 0 1 2\n";
        let m = read_off(src.as_bytes()).unwrap();
        assert_eq!(m.n_vertices(), 3);
        assert_eq!(m.n_faces(), 1);
    }

    #[test]
    fn rejects_bad_magic() {
        let r = read_off("PLY\n".as_bytes());
        assert!(matches!(r, Err(OffError::Parse { .. })));
    }

    #[test]
    fn rejects_non_triangles() {
        let src = "OFF\n4 1 4\n0 0 0\n1 0 0\n1 1 0\n0 1 0\n4 0 1 2 3\n";
        let r = read_off(src.as_bytes());
        assert!(matches!(r, Err(OffError::Parse { .. })));
    }

    #[test]
    fn rejects_truncated() {
        let src = "OFF\n3 1 3\n0 0 0\n1 0 0\n";
        let r = read_off(src.as_bytes());
        assert!(matches!(r, Err(OffError::Parse { .. })));
    }

    #[test]
    fn surfaces_mesh_validation_errors() {
        // Degenerate face (repeated vertex).
        let src = "OFF\n3 1 3\n0 0 0\n1 0 0\n0 1 0\n3 0 1 1\n";
        let r = read_off(src.as_bytes());
        assert!(matches!(r, Err(OffError::Mesh(_))));
    }
}
