//! Points-of-interest (POIs) on the terrain surface.
//!
//! The paper's experiments draw POIs from OpenStreetMap extracts; we
//! substitute clustered random sampling (real POIs cluster around
//! settlements and trails) plus the paper's own Normal-distribution POI
//! up-scaling procedure from §5.2.1, reproduced verbatim: fit a Normal to
//! the existing POI cloud, draw `(x, y)` points, discard those outside the
//! footprint, and project survivors onto the surface.

use crate::geom::Vec3;
use crate::locate::FaceLocator;
use crate::mesh::{FaceId, TerrainMesh};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A point on the terrain surface, tagged with its containing face.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurfacePoint {
    pub face: FaceId,
    pub pos: Vec3,
}

/// Samples `n` POIs uniformly over the surface (area-weighted face choice,
/// uniform barycentric position within the face).
pub fn sample_uniform(mesh: &TerrainMesh, n: usize, seed: u64) -> Vec<SurfacePoint> {
    let mut rng = StdRng::seed_from_u64(seed);
    let cdf = area_cdf(mesh);
    (0..n).map(|_| sample_on_face(mesh, pick_face(&cdf, &mut rng), &mut rng)).collect()
}

/// Samples `n` POIs from `k` Gaussian clusters (settlement-like pattern).
/// Cluster centers are uniform over the footprint; per-cluster spread is
/// `spread_frac` of the footprint diagonal. Points falling outside the
/// terrain are redrawn.
pub fn sample_clustered(
    mesh: &TerrainMesh,
    locator: &FaceLocator,
    n: usize,
    k: usize,
    spread_frac: f64,
    seed: u64,
) -> Vec<SurfacePoint> {
    assert!(k >= 1, "need at least one cluster");
    let mut rng = StdRng::seed_from_u64(seed);
    let s = mesh.stats();
    let (lo, hi) = s.bbox;
    let diag = ((hi.x - lo.x).powi(2) + (hi.y - lo.y).powi(2)).sqrt();
    let spread = spread_frac * diag;
    let centers: Vec<(f64, f64)> =
        (0..k).map(|_| (rng.random_range(lo.x..hi.x), rng.random_range(lo.y..hi.y))).collect();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let (cx, cy) = centers[rng.random_range(0..k)];
        let (gx, gy) = gaussian_pair(&mut rng);
        let x = cx + gx * spread;
        let y = cy + gy * spread;
        if let Some((face, pos)) = locator.locate(mesh, x, y) {
            out.push(SurfacePoint { face, pos });
        }
    }
    out
}

/// The paper's POI up-scaling (§5.2.1): given an existing POI set, draw
/// `target_n − |existing|` extra points from `N(μ, σ²)` fitted to the
/// existing x/y coordinates, discarding draws outside the terrain, and
/// project each survivor onto the surface. Returns `existing ∪ new`.
pub fn scale_pois(
    mesh: &TerrainMesh,
    locator: &FaceLocator,
    existing: &[SurfacePoint],
    target_n: usize,
    seed: u64,
) -> Vec<SurfacePoint> {
    assert!(!existing.is_empty(), "need a seed POI set to fit the Normal");
    if target_n <= existing.len() {
        return existing[..target_n].to_vec();
    }
    let n0 = existing.len() as f64;
    // lint: allow(h2, "sequential sum over the POI slice in index order — fixed evaluation order")
    let mean_x = existing.iter().map(|p| p.pos.x).sum::<f64>() / n0;
    // lint: allow(h2, "sequential sum over the POI slice in index order — fixed evaluation order")
    let mean_y = existing.iter().map(|p| p.pos.y).sum::<f64>() / n0;
    // The paper normalises the variance by n (the target count); we follow
    // the standard sample variance over the existing set, which preserves
    // the cloud shape.
    // lint: allow(h2, "sequential sum over the POI slice in index order — fixed evaluation order")
    let var_x = existing.iter().map(|p| (p.pos.x - mean_x).powi(2)).sum::<f64>() / n0;
    // lint: allow(h2, "sequential sum over the POI slice in index order — fixed evaluation order")
    let var_y = existing.iter().map(|p| (p.pos.y - mean_y).powi(2)).sum::<f64>() / n0;
    let (sx, sy) = (var_x.sqrt().max(1e-9), var_y.sqrt().max(1e-9));

    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = existing.to_vec();
    while out.len() < target_n {
        let (gx, gy) = gaussian_pair(&mut rng);
        let x = mean_x + gx * sx;
        let y = mean_y + gy * sy;
        if let Some((face, pos)) = locator.locate(mesh, x, y) {
            out.push(SurfacePoint { face, pos });
        }
    }
    out
}

/// All mesh vertices as POIs — the V2V query setting of the paper
/// ("the original POIs are discarded, and we treat all vertices as POIs").
pub fn vertices_as_pois(mesh: &TerrainMesh) -> Vec<SurfacePoint> {
    (0..mesh.n_vertices() as u32)
        .map(|v| SurfacePoint { face: mesh.vertex_faces(v)[0], pos: mesh.vertex(v) })
        .collect()
}

/// Removes POIs that coincide within `tol` (the paper assumes no duplicate
/// POIs, merging co-located ones in "a simple preprocessing step" — this is
/// that step). Keeps first occurrences; order otherwise preserved.
pub fn dedup_pois(pois: &[SurfacePoint], tol: f64) -> Vec<SurfacePoint> {
    let mut out: Vec<SurfacePoint> = Vec::with_capacity(pois.len());
    // Grid hash on xy for near-duplicate detection.
    use std::collections::BTreeMap;
    let cell = tol.max(1e-300);
    let mut grid: BTreeMap<(i64, i64), Vec<usize>> = BTreeMap::new();
    'next: for p in pois {
        // Tiny tolerances make coordinates/cell huge; the float→int cast
        // saturates, so neighbour offsets must saturate too.
        let ci = (p.pos.x / cell).floor() as i64;
        let cj = (p.pos.y / cell).floor() as i64;
        for di in -1i64..=1 {
            for dj in -1i64..=1 {
                if let Some(bucket) = grid.get(&(ci.saturating_add(di), cj.saturating_add(dj))) {
                    for &idx in bucket {
                        if out[idx].pos.dist(p.pos) <= tol {
                            continue 'next;
                        }
                    }
                }
            }
        }
        grid.entry((ci, cj)).or_default().push(out.len());
        out.push(*p);
    }
    out
}

fn area_cdf(mesh: &TerrainMesh) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(mesh.n_faces());
    let mut acc = 0.0;
    for f in 0..mesh.n_faces() as FaceId {
        let [a, b, c] = mesh.face_points(f);
        acc += crate::geom::triangle_area(a, b, c);
        cdf.push(acc);
    }
    cdf
}

fn pick_face(cdf: &[f64], rng: &mut StdRng) -> FaceId {
    let total = *cdf.last().unwrap();
    let t = rng.random_range(0.0..total);
    cdf.partition_point(|&x| x < t) as FaceId
}

fn sample_on_face(mesh: &TerrainMesh, f: FaceId, rng: &mut StdRng) -> SurfacePoint {
    let [a, b, c] = mesh.face_points(f);
    // Uniform barycentric via square-root trick.
    let r1: f64 = rng.random_range(0.0..1.0);
    let r2: f64 = rng.random_range(0.0..1.0);
    let s = r1.sqrt();
    let (wa, wb, wc) = (1.0 - s, s * (1.0 - r2), s * r2);
    SurfacePoint { face: f, pos: a * wa + b * wb + c * wc }
}

/// A standard-normal pair via Box–Muller.
fn gaussian_pair(rng: &mut StdRng) -> (f64, f64) {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let t = 2.0 * std::f64::consts::PI * u2;
    (r * t.cos(), r * t.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{diamond_square, Heightfield};
    use crate::geom::{barycentric_xy, Vec2};

    fn mesh() -> TerrainMesh {
        diamond_square(4, 0.55, 11).to_mesh()
    }

    #[test]
    fn uniform_pois_lie_on_their_faces() {
        let m = mesh();
        let pois = sample_uniform(&m, 200, 5);
        assert_eq!(pois.len(), 200);
        for p in &pois {
            let [a, b, c] = m.face_points(p.face);
            let w = barycentric_xy(Vec2::new(p.pos.x, p.pos.y), a.xy(), b.xy(), c.xy())
                .expect("non-degenerate face");
            assert!(w.iter().all(|&v| v >= -1e-9), "POI outside its face: {w:?}");
            let z = a.z * w[0] + b.z * w[1] + c.z * w[2];
            assert!((z - p.pos.z).abs() < 1e-9);
        }
    }

    #[test]
    fn uniform_sampling_is_deterministic() {
        let m = mesh();
        let a = sample_uniform(&m, 50, 1);
        let b = sample_uniform(&m, 50, 1);
        assert_eq!(a, b);
        let c = sample_uniform(&m, 50, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn clustered_pois_inside_footprint() {
        let m = mesh();
        let loc = FaceLocator::build(&m);
        let pois = sample_clustered(&m, &loc, 120, 4, 0.05, 3);
        assert_eq!(pois.len(), 120);
        let s = m.stats();
        for p in &pois {
            assert!(p.pos.x >= s.bbox.0.x - 1e-9 && p.pos.x <= s.bbox.1.x + 1e-9);
            assert!(p.pos.y >= s.bbox.0.y - 1e-9 && p.pos.y <= s.bbox.1.y + 1e-9);
        }
    }

    #[test]
    fn clustered_pois_actually_cluster() {
        let m = mesh();
        let loc = FaceLocator::build(&m);
        let tight = sample_clustered(&m, &loc, 100, 2, 0.01, 7);
        let spread = sample_uniform(&m, 100, 7);
        let mean_pair_dist = |ps: &[SurfacePoint]| {
            let mut sum = 0.0;
            let mut cnt = 0.0;
            for i in 0..ps.len() {
                for j in i + 1..ps.len() {
                    sum += ps[i].pos.dist(ps[j].pos);
                    cnt += 1.0;
                }
            }
            sum / cnt
        };
        assert!(mean_pair_dist(&tight) < mean_pair_dist(&spread) * 0.8);
    }

    #[test]
    fn scale_pois_grows_and_preserves_prefix() {
        let m = mesh();
        let loc = FaceLocator::build(&m);
        let seed_pois = sample_uniform(&m, 30, 9);
        let scaled = scale_pois(&m, &loc, &seed_pois, 100, 13);
        assert_eq!(scaled.len(), 100);
        assert_eq!(&scaled[..30], &seed_pois[..]);
        // Truncation path.
        let truncated = scale_pois(&m, &loc, &seed_pois, 10, 13);
        assert_eq!(truncated.len(), 10);
        assert_eq!(&truncated[..], &seed_pois[..10]);
    }

    #[test]
    fn v2v_pois_are_all_vertices() {
        let m = Heightfield::flat(4, 3, 1.0, 1.0).to_mesh();
        let pois = vertices_as_pois(&m);
        assert_eq!(pois.len(), m.n_vertices());
        for (v, p) in pois.iter().enumerate() {
            assert_eq!(p.pos, m.vertex(v as u32));
            // Tagged face is genuinely incident.
            assert!(m.face(p.face).contains(&(v as u32)));
        }
    }

    #[test]
    fn dedup_removes_coincident() {
        let m = mesh();
        let mut pois = sample_uniform(&m, 20, 21);
        pois.push(pois[3]); // exact duplicate
        let mut nearby = pois[5];
        nearby.pos.x += 1e-12;
        pois.push(nearby); // near duplicate
        let deduped = dedup_pois(&pois, 1e-9);
        assert_eq!(deduped.len(), 20);
        // Without tolerance everything distinct survives.
        let all = dedup_pois(&pois[..20], 0.0);
        assert_eq!(all.len(), 20);
    }

    #[test]
    fn gaussian_pair_moments() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let (a, b) = gaussian_pair(&mut rng);
            sum += a + b;
            sum2 += a * a + b * b;
        }
        let mean = sum / (2.0 * n as f64);
        let var = sum2 / (2.0 * n as f64);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
