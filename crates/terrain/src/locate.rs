//! Point location: projecting an `(x, y)` coordinate onto the terrain
//! surface.
//!
//! Terrains are heightfield graphs, so the vertical projection hits exactly
//! one face (up to shared edges). The paper generates A2A queries this way
//! (§5.1: "generated a 2D coordinate (x, y) ... and then computed the point
//! on the terrain surface whose projection on the x-y plane is (x, y)") and
//! its POI-scaling procedure projects synthetic 2-D points the same way.

use crate::geom::{barycentric_xy, Vec2, Vec3};
use crate::mesh::{FaceId, TerrainMesh};

/// A uniform-grid spatial index over face footprints for `O(1)` expected
/// point location.
#[derive(Debug, Clone)]
pub struct FaceLocator {
    min: Vec2,
    inv_cell: f64,
    nx: usize,
    ny: usize,
    /// CSR: faces overlapping each cell.
    cell_off: Vec<u32>,
    cell_dat: Vec<FaceId>,
}

impl FaceLocator {
    /// Builds the index; ~1 face per cell on average.
    pub fn build(mesh: &TerrainMesh) -> Self {
        let s = mesh.stats();
        let (lo, hi) = s.bbox;
        let w = (hi.x - lo.x).max(1e-12);
        let h = (hi.y - lo.y).max(1e-12);
        let target_cells = mesh.n_faces().max(1);
        let cell = (w * h / target_cells as f64).sqrt().max(1e-12);
        let nx = ((w / cell).ceil() as usize).max(1);
        let ny = ((h / cell).ceil() as usize).max(1);
        let inv_cell = 1.0 / cell;
        let min = Vec2::new(lo.x, lo.y);

        let clamp_ix = |x: f64| -> usize {
            (((x - min.x) * inv_cell) as isize).clamp(0, nx as isize - 1) as usize
        };
        let clamp_iy = |y: f64| -> usize {
            (((y - min.y) * inv_cell) as isize).clamp(0, ny as isize - 1) as usize
        };

        // Count then fill (CSR) over face xy-bounding boxes.
        let mut counts = vec![0u32; nx * ny + 1];
        let face_range = |f: FaceId| {
            let [a, b, c] = mesh.face_points(f);
            let x0 = clamp_ix(a.x.min(b.x).min(c.x));
            let x1 = clamp_ix(a.x.max(b.x).max(c.x));
            let y0 = clamp_iy(a.y.min(b.y).min(c.y));
            let y1 = clamp_iy(a.y.max(b.y).max(c.y));
            (x0, x1, y0, y1)
        };
        for f in 0..mesh.n_faces() as FaceId {
            let (x0, x1, y0, y1) = face_range(f);
            for j in y0..=y1 {
                for i in x0..=x1 {
                    counts[j * nx + i + 1] += 1;
                }
            }
        }
        for i in 0..nx * ny {
            counts[i + 1] += counts[i];
        }
        let mut dat = vec![0u32; counts[nx * ny] as usize];
        let mut cursor = counts.clone();
        for f in 0..mesh.n_faces() as FaceId {
            let (x0, x1, y0, y1) = face_range(f);
            for j in y0..=y1 {
                for i in x0..=x1 {
                    let c = j * nx + i;
                    dat[cursor[c] as usize] = f;
                    cursor[c] += 1;
                }
            }
        }
        Self { min, inv_cell, nx, ny, cell_off: counts, cell_dat: dat }
    }

    /// Finds the face whose x–y footprint contains `(x, y)` and the surface
    /// point above it. Returns `None` outside the terrain footprint.
    pub fn locate(&self, mesh: &TerrainMesh, x: f64, y: f64) -> Option<(FaceId, Vec3)> {
        let ix =
            (((x - self.min.x) * self.inv_cell) as isize).clamp(0, self.nx as isize - 1) as usize;
        let iy =
            (((y - self.min.y) * self.inv_cell) as isize).clamp(0, self.ny as isize - 1) as usize;
        let cell = iy * self.nx + ix;
        let lo = self.cell_off[cell] as usize;
        let hi = self.cell_off[cell + 1] as usize;
        let p = Vec2::new(x, y);
        let mut best: Option<(FaceId, Vec3, f64)> = None;
        for &f in &self.cell_dat[lo..hi] {
            let [a, b, c] = mesh.face_points(f);
            if let Some(w) = barycentric_xy(p, a.xy(), b.xy(), c.xy()) {
                let min_w = w[0].min(w[1]).min(w[2]);
                if min_w >= -1e-9 {
                    let z = a.z * w[0] + b.z * w[1] + c.z * w[2];
                    // Prefer the most interior containment (ties on shared
                    // edges resolve deterministically).
                    if best.is_none_or(|(_, _, bw)| min_w > bw) {
                        best = Some((f, Vec3::new(x, y, z), min_w));
                    }
                }
            }
        }
        best.map(|(f, p, _)| (f, p))
    }

    /// Heap bytes used by the index.
    pub fn storage_bytes(&self) -> usize {
        (self.cell_off.len() + self.cell_dat.len()) * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{diamond_square, Heightfield};

    #[test]
    fn locates_cell_centers_on_flat_grid() {
        let m = Heightfield::flat(5, 5, 1.0, 1.0).to_mesh();
        let loc = FaceLocator::build(&m);
        for j in 0..4 {
            for i in 0..4 {
                let x = i as f64 + 0.3;
                let y = j as f64 + 0.3;
                let (f, p) = loc.locate(&m, x, y).expect("inside footprint");
                assert!(p.z.abs() < 1e-12);
                // The located face really contains the point.
                let [a, b, c] = m.face_points(f);
                let w = barycentric_xy(Vec2::new(x, y), a.xy(), b.xy(), c.xy()).unwrap();
                assert!(w.iter().all(|&v| v >= -1e-9));
            }
        }
    }

    #[test]
    fn outside_footprint_is_none() {
        let m = Heightfield::flat(3, 3, 1.0, 1.0).to_mesh();
        let loc = FaceLocator::build(&m);
        assert!(loc.locate(&m, -0.5, 0.5).is_none());
        assert!(loc.locate(&m, 0.5, 2.5).is_none());
        assert!(loc.locate(&m, 100.0, 100.0).is_none());
    }

    #[test]
    fn z_matches_heightfield_on_fractal() {
        let hf = diamond_square(5, 0.6, 9);
        let m = hf.to_mesh();
        let loc = FaceLocator::build(&m);
        // Grid points must hit exactly the stored height.
        for j in [0usize, 7, 31] {
            for i in [0usize, 13, 32] {
                let (_, p) = loc
                    .locate(&m, i as f64 * hf.dx, j as f64 * hf.dy)
                    .expect("grid point on surface");
                assert!((p.z - hf.h(i, j)).abs() < 1e-9, "at ({i},{j})");
            }
        }
    }

    #[test]
    fn vertex_and_edge_points_resolve() {
        let m = Heightfield::flat(3, 3, 1.0, 1.0).to_mesh();
        let loc = FaceLocator::build(&m);
        // Exactly on a vertex.
        assert!(loc.locate(&m, 1.0, 1.0).is_some());
        // Exactly on an edge.
        assert!(loc.locate(&m, 0.5, 0.0).is_some());
    }
}
