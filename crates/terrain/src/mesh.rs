//! The triangulated-irregular-network (TIN) terrain mesh.
//!
//! A [`TerrainMesh`] is an indexed triangle mesh with full adjacency
//! (edge ↔ face ↔ vertex), validated on construction: manifold edges,
//! consistent face orientation, no degenerate faces, single connected
//! component. These are exactly the assumptions the geodesic algorithms
//! (continuous Dijkstra) and the paper's SSAD subroutine rely on.

use crate::geom::{triangle_angle, triangle_area, Vec3};
use std::collections::BTreeMap;
use std::fmt;

/// Index of a vertex in [`TerrainMesh::vertices`].
pub type VertexId = u32;
/// Index of a face in [`TerrainMesh::faces`].
pub type FaceId = u32;
/// Index of an undirected edge.
pub type EdgeId = u32;

/// Sentinel for "no face" on boundary edges.
pub const NO_FACE: FaceId = u32::MAX;

/// An undirected mesh edge with its (at most two) incident faces.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Endpoints with `v[0] < v[1]`.
    pub v: [VertexId; 2],
    /// Incident faces; `faces[1] == NO_FACE` for boundary edges.
    pub faces: [FaceId; 2],
}

impl Edge {
    /// Whether this edge lies on the mesh boundary.
    #[inline]
    pub fn is_boundary(&self) -> bool {
        self.faces[1] == NO_FACE
    }
}

/// Errors detected while building a mesh.
#[derive(Debug, Clone, PartialEq)]
pub enum MeshError {
    /// Fewer than one face or three vertices.
    Empty,
    /// A face references a vertex index `>= vertex count`.
    IndexOutOfBounds { face: usize, index: u32 },
    /// A face repeats a vertex or has (near-)zero area.
    DegenerateFace { face: usize },
    /// More than two faces share an edge.
    NonManifoldEdge { v: [VertexId; 2] },
    /// Two faces traverse a shared edge in the same direction.
    InconsistentOrientation { v: [VertexId; 2] },
    /// The face graph has more than one connected component.
    Disconnected { components: usize },
}

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshError::Empty => write!(f, "mesh has no faces or fewer than 3 vertices"),
            MeshError::IndexOutOfBounds { face, index } => {
                write!(f, "face {face} references out-of-bounds vertex {index}")
            }
            MeshError::DegenerateFace { face } => write!(f, "face {face} is degenerate"),
            MeshError::NonManifoldEdge { v } => {
                write!(f, "edge ({}, {}) has more than two incident faces", v[0], v[1])
            }
            MeshError::InconsistentOrientation { v } => {
                write!(f, "faces around edge ({}, {}) are inconsistently oriented", v[0], v[1])
            }
            MeshError::Disconnected { components } => {
                write!(f, "mesh has {components} connected components (expected 1)")
            }
        }
    }
}

impl std::error::Error for MeshError {}

/// Aggregate statistics of a mesh (Table 2 of the paper reports these).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshStats {
    pub n_vertices: usize,
    pub n_edges: usize,
    pub n_faces: usize,
    /// Total surface area.
    pub total_area: f64,
    /// Axis-aligned bounding box (min, max).
    pub bbox: (Vec3, Vec3),
    pub mean_edge_len: f64,
    pub min_edge_len: f64,
    pub max_edge_len: f64,
    /// Minimum inner angle over all faces (the paper's θ).
    pub min_inner_angle: f64,
}

/// A validated triangulated terrain surface with adjacency.
#[derive(Debug, Clone)]
pub struct TerrainMesh {
    vertices: Vec<Vec3>,
    faces: Vec<[VertexId; 3]>,
    edges: Vec<Edge>,
    /// `face_edges[f][i]` is the edge between `faces[f][i]` and
    /// `faces[f][(i + 1) % 3]`.
    face_edges: Vec<[EdgeId; 3]>,
    edge_len: Vec<f64>,
    /// CSR adjacency vertex → incident faces.
    v_face_off: Vec<u32>,
    v_face_dat: Vec<FaceId>,
    /// CSR adjacency vertex → incident edges.
    v_edge_off: Vec<u32>,
    v_edge_dat: Vec<EdgeId>,
    /// Sum of incident face angles per vertex (saddle detection).
    angle_sum: Vec<f64>,
    boundary_vertex: Vec<bool>,
    edge_map: BTreeMap<(VertexId, VertexId), EdgeId>,
}

impl TerrainMesh {
    /// Builds and validates a mesh from raw vertex positions and faces.
    pub fn new(vertices: Vec<Vec3>, faces: Vec<[VertexId; 3]>) -> Result<Self, MeshError> {
        if faces.is_empty() || vertices.len() < 3 {
            return Err(MeshError::Empty);
        }
        let nv = vertices.len() as u32;
        for (fi, f) in faces.iter().enumerate() {
            for &v in f {
                if v >= nv {
                    return Err(MeshError::IndexOutOfBounds { face: fi, index: v });
                }
            }
            if f[0] == f[1] || f[1] == f[2] || f[0] == f[2] {
                return Err(MeshError::DegenerateFace { face: fi });
            }
            let area = triangle_area(
                vertices[f[0] as usize],
                vertices[f[1] as usize],
                vertices[f[2] as usize],
            );
            if !(area.is_finite() && area > 1e-30) {
                return Err(MeshError::DegenerateFace { face: fi });
            }
        }

        // Edge table. Track traversal direction per incident face for the
        // orientation check: in a consistently oriented manifold every
        // interior edge is traversed once in each direction.
        let mut edge_map: BTreeMap<(VertexId, VertexId), EdgeId> = BTreeMap::new();
        let mut edges: Vec<Edge> = Vec::with_capacity(faces.len() * 3 / 2);
        let mut edge_dirs: Vec<[bool; 2]> = Vec::new(); // true = traversed as (v0 → v1)
        let mut face_edges: Vec<[EdgeId; 3]> = vec![[0; 3]; faces.len()];
        for (fi, f) in faces.iter().enumerate() {
            for i in 0..3 {
                let a = f[i];
                let b = f[(i + 1) % 3];
                let key = (a.min(b), a.max(b));
                let forward = a == key.0;
                match edge_map.get(&key) {
                    None => {
                        let id = edges.len() as EdgeId;
                        edge_map.insert(key, id);
                        edges.push(Edge { v: [key.0, key.1], faces: [fi as FaceId, NO_FACE] });
                        edge_dirs.push([forward, false]);
                        face_edges[fi][i] = id;
                    }
                    Some(&id) => {
                        let e = &mut edges[id as usize];
                        if e.faces[1] != NO_FACE {
                            return Err(MeshError::NonManifoldEdge { v: e.v });
                        }
                        if edge_dirs[id as usize][0] == forward {
                            return Err(MeshError::InconsistentOrientation { v: e.v });
                        }
                        e.faces[1] = fi as FaceId;
                        edge_dirs[id as usize][1] = forward;
                        face_edges[fi][i] = id;
                    }
                }
            }
        }

        // Connectivity over the face graph.
        let components = count_components(faces.len(), &edges);
        if components != 1 {
            return Err(MeshError::Disconnected { components });
        }

        let edge_len: Vec<f64> = edges
            .iter()
            .map(|e| vertices[e.v[0] as usize].dist(vertices[e.v[1] as usize]))
            .collect();

        // CSR vertex → faces.
        let (v_face_off, v_face_dat) = build_csr(
            vertices.len(),
            faces
                .iter()
                .enumerate()
                .flat_map(|(fi, f)| f.iter().map(move |&v| (v as usize, fi as u32))),
        );
        // CSR vertex → edges.
        let (v_edge_off, v_edge_dat) = build_csr(
            vertices.len(),
            edges
                .iter()
                .enumerate()
                .flat_map(|(ei, e)| e.v.iter().map(move |&v| (v as usize, ei as u32))),
        );

        let mut angle_sum = vec![0.0f64; vertices.len()];
        for f in &faces {
            for i in 0..3 {
                let at = f[i];
                let b = f[(i + 1) % 3];
                let c = f[(i + 2) % 3];
                angle_sum[at as usize] += triangle_angle(
                    vertices[at as usize],
                    vertices[b as usize],
                    vertices[c as usize],
                );
            }
        }

        let mut boundary_vertex = vec![false; vertices.len()];
        for e in &edges {
            if e.is_boundary() {
                boundary_vertex[e.v[0] as usize] = true;
                boundary_vertex[e.v[1] as usize] = true;
            }
        }

        Ok(Self {
            vertices,
            faces,
            edges,
            face_edges,
            edge_len,
            v_face_off,
            v_face_dat,
            v_edge_off,
            v_edge_dat,
            angle_sum,
            boundary_vertex,
            edge_map,
        })
    }

    // ------------------------------------------------------------------
    // Basic accessors
    // ------------------------------------------------------------------

    #[inline]
    pub fn n_vertices(&self) -> usize {
        self.vertices.len()
    }
    #[inline]
    pub fn n_faces(&self) -> usize {
        self.faces.len()
    }
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    #[inline]
    pub fn vertex(&self, v: VertexId) -> Vec3 {
        self.vertices[v as usize]
    }

    #[inline]
    pub fn vertices(&self) -> &[Vec3] {
        &self.vertices
    }

    #[inline]
    pub fn face(&self, f: FaceId) -> [VertexId; 3] {
        self.faces[f as usize]
    }

    #[inline]
    pub fn faces(&self) -> &[[VertexId; 3]] {
        &self.faces
    }

    /// The three corner positions of face `f`.
    #[inline]
    pub fn face_points(&self, f: FaceId) -> [Vec3; 3] {
        let [a, b, c] = self.faces[f as usize];
        [self.vertices[a as usize], self.vertices[b as usize], self.vertices[c as usize]]
    }

    #[inline]
    pub fn edge(&self, e: EdgeId) -> Edge {
        self.edges[e as usize]
    }

    #[inline]
    pub fn edge_len(&self, e: EdgeId) -> f64 {
        self.edge_len[e as usize]
    }

    /// The edge between `faces[f][i]` and `faces[f][(i+1)%3]`.
    #[inline]
    pub fn face_edges(&self, f: FaceId) -> [EdgeId; 3] {
        self.face_edges[f as usize]
    }

    /// The undirected edge connecting `a` and `b`, if any.
    #[inline]
    pub fn edge_between(&self, a: VertexId, b: VertexId) -> Option<EdgeId> {
        self.edge_map.get(&(a.min(b), a.max(b))).copied()
    }

    /// Faces incident to vertex `v`.
    #[inline]
    pub fn vertex_faces(&self, v: VertexId) -> &[FaceId] {
        let lo = self.v_face_off[v as usize] as usize;
        let hi = self.v_face_off[v as usize + 1] as usize;
        &self.v_face_dat[lo..hi]
    }

    /// Edges incident to vertex `v`.
    #[inline]
    pub fn vertex_edges(&self, v: VertexId) -> &[EdgeId] {
        let lo = self.v_edge_off[v as usize] as usize;
        let hi = self.v_edge_off[v as usize + 1] as usize;
        &self.v_edge_dat[lo..hi]
    }

    /// The face on the other side of `e` from `f` (`None` on the boundary).
    #[inline]
    pub fn other_face(&self, e: EdgeId, f: FaceId) -> Option<FaceId> {
        let fs = self.edges[e as usize].faces;
        let o = if fs[0] == f { fs[1] } else { fs[0] };
        (o != NO_FACE).then_some(o)
    }

    /// The vertex of face `f` not on edge `e`.
    pub fn opposite_vertex(&self, f: FaceId, e: EdgeId) -> VertexId {
        let ev = self.edges[e as usize].v;
        let fv = self.faces[f as usize];
        for &v in &fv {
            if v != ev[0] && v != ev[1] {
                return v;
            }
        }
        unreachable!("edge {e} not incident to face {f}")
    }

    /// Sum of incident face angles at `v` (radians). Interior flat vertices
    /// have `2π`; saddles exceed `2π`.
    #[inline]
    pub fn vertex_angle_sum(&self, v: VertexId) -> f64 {
        self.angle_sum[v as usize]
    }

    /// Whether geodesic paths may bend at `v`: saddle vertices
    /// (angle sum > 2π) and boundary vertices.
    #[inline]
    pub fn is_pseudo_source_vertex(&self, v: VertexId) -> bool {
        self.boundary_vertex[v as usize]
            || self.angle_sum[v as usize] > 2.0 * std::f64::consts::PI - 1e-9
    }

    #[inline]
    pub fn is_boundary_vertex(&self, v: VertexId) -> bool {
        self.boundary_vertex[v as usize]
    }

    /// Centroid of face `f`.
    pub fn face_centroid(&self, f: FaceId) -> Vec3 {
        let [a, b, c] = self.face_points(f);
        (a + b + c) / 3.0
    }

    /// Aggregate mesh statistics.
    pub fn stats(&self) -> MeshStats {
        let mut lo = self.vertices[0];
        let mut hi = self.vertices[0];
        for v in &self.vertices {
            lo = Vec3::new(lo.x.min(v.x), lo.y.min(v.y), lo.z.min(v.z));
            hi = Vec3::new(hi.x.max(v.x), hi.y.max(v.y), hi.z.max(v.z));
        }
        let total_area: f64 = (0..self.n_faces() as FaceId)
            .map(|f| {
                let [a, b, c] = self.face_points(f);
                triangle_area(a, b, c)
            })
            .sum();
        let mut min_inner_angle = f64::INFINITY;
        for f in &self.faces {
            for i in 0..3 {
                let ang = triangle_angle(
                    self.vertices[f[i] as usize],
                    self.vertices[f[(i + 1) % 3] as usize],
                    self.vertices[f[(i + 2) % 3] as usize],
                );
                min_inner_angle = min_inner_angle.min(ang);
            }
        }
        let sum_len: f64 = self.edge_len.iter().sum();
        let min_edge_len = self.edge_len.iter().cloned().fold(f64::INFINITY, f64::min);
        let max_edge_len = self.edge_len.iter().cloned().fold(0.0, f64::max);
        MeshStats {
            n_vertices: self.n_vertices(),
            n_edges: self.n_edges(),
            n_faces: self.n_faces(),
            total_area,
            bbox: (lo, hi),
            mean_edge_len: sum_len / self.n_edges() as f64,
            min_edge_len,
            max_edge_len,
            min_inner_angle,
        }
    }

    /// Consumes the mesh, returning the raw vertex and face arrays.
    pub fn into_raw(self) -> (Vec<Vec3>, Vec<[VertexId; 3]>) {
        (self.vertices, self.faces)
    }

    /// Heap bytes used by the mesh.
    pub fn storage_bytes(&self) -> usize {
        use std::mem::size_of;
        self.vertices.len() * size_of::<Vec3>()
            + self.faces.len() * size_of::<[VertexId; 3]>()
            + self.edges.len() * (size_of::<Edge>() + size_of::<f64>())
            + self.face_edges.len() * size_of::<[EdgeId; 3]>()
            + (self.v_face_off.len() + self.v_edge_off.len()) * size_of::<u32>()
            + (self.v_face_dat.len() + self.v_edge_dat.len()) * size_of::<u32>()
            + self.angle_sum.len() * size_of::<f64>()
            + self.boundary_vertex.len()
            + self.edge_map.len() * (size_of::<(VertexId, VertexId)>() + size_of::<EdgeId>())
    }
}

/// Builds a CSR adjacency from `(bucket, item)` pairs.
fn build_csr(
    n_buckets: usize,
    pairs: impl Iterator<Item = (usize, u32)> + Clone,
) -> (Vec<u32>, Vec<u32>) {
    let mut off = vec![0u32; n_buckets + 1];
    for (b, _) in pairs.clone() {
        off[b + 1] += 1;
    }
    for i in 0..n_buckets {
        off[i + 1] += off[i];
    }
    let mut dat = vec![0u32; off[n_buckets] as usize];
    let mut cursor = off.clone();
    for (b, item) in pairs {
        dat[cursor[b] as usize] = item;
        cursor[b] += 1;
    }
    (off, dat)
}

fn count_components(n_faces: usize, edges: &[Edge]) -> usize {
    let mut parent: Vec<u32> = (0..n_faces as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for e in edges {
        if !e.is_boundary() {
            let (a, b) = (find(&mut parent, e.faces[0]), find(&mut parent, e.faces[1]));
            if a != b {
                parent[a as usize] = b;
            }
        }
    }
    (0..n_faces as u32).filter(|&f| find(&mut parent, f) == f).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two triangles sharing an edge: (0,1,2) and (1,3,2), consistently
    /// oriented.
    pub(crate) fn two_triangles() -> TerrainMesh {
        TerrainMesh::new(
            vec![
                Vec3::new(0.0, 0.0, 0.0),
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(1.0, 1.0, 0.0),
            ],
            vec![[0, 1, 2], [1, 3, 2]],
        )
        .unwrap()
    }

    #[test]
    fn builds_two_triangle_mesh() {
        let m = two_triangles();
        assert_eq!(m.n_vertices(), 4);
        assert_eq!(m.n_faces(), 2);
        assert_eq!(m.n_edges(), 5);
        let shared = m.edge_between(1, 2).unwrap();
        assert!(!m.edge(shared).is_boundary());
        assert_eq!(m.other_face(shared, 0), Some(1));
        assert_eq!(m.other_face(shared, 1), Some(0));
        assert_eq!(m.opposite_vertex(0, shared), 0);
        assert_eq!(m.opposite_vertex(1, shared), 3);
        // All other edges are boundary.
        let b = (0..m.n_edges() as EdgeId).filter(|&e| m.edge(e).is_boundary()).count();
        assert_eq!(b, 4);
    }

    #[test]
    fn rejects_empty() {
        let r = TerrainMesh::new(vec![], vec![]);
        assert!(matches!(r, Err(MeshError::Empty)));
    }

    #[test]
    fn rejects_out_of_bounds() {
        let r = TerrainMesh::new(
            vec![Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0)],
            vec![[0, 1, 7]],
        );
        assert!(matches!(r, Err(MeshError::IndexOutOfBounds { face: 0, index: 7 })));
    }

    #[test]
    fn rejects_degenerate_faces() {
        let r = TerrainMesh::new(
            vec![Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), Vec3::new(0.0, 1.0, 0.0)],
            vec![[0, 1, 1]],
        );
        assert!(matches!(r, Err(MeshError::DegenerateFace { face: 0 })));
        // Zero area (collinear).
        let r = TerrainMesh::new(
            vec![Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0), Vec3::new(2.0, 0.0, 0.0)],
            vec![[0, 1, 2]],
        );
        assert!(matches!(r, Err(MeshError::DegenerateFace { face: 0 })));
    }

    #[test]
    fn rejects_non_manifold() {
        let r = TerrainMesh::new(
            vec![
                Vec3::ZERO,
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
                Vec3::new(1.0, 1.0, 1.0),
            ],
            vec![[0, 1, 2], [1, 0, 3], [0, 1, 4]],
        );
        assert!(matches!(r, Err(MeshError::NonManifoldEdge { .. })));
    }

    #[test]
    fn rejects_inconsistent_orientation() {
        // Second face traverses edge (1,2) in the same direction as the first.
        let r = TerrainMesh::new(
            vec![
                Vec3::ZERO,
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(1.0, 1.0, 0.0),
            ],
            vec![[0, 1, 2], [1, 2, 3]],
        );
        assert!(matches!(r, Err(MeshError::InconsistentOrientation { .. })));
    }

    #[test]
    fn rejects_disconnected() {
        let r = TerrainMesh::new(
            vec![
                Vec3::ZERO,
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(5.0, 5.0, 0.0),
                Vec3::new(6.0, 5.0, 0.0),
                Vec3::new(5.0, 6.0, 0.0),
            ],
            vec![[0, 1, 2], [3, 4, 5]],
        );
        assert!(matches!(r, Err(MeshError::Disconnected { components: 2 })));
    }

    #[test]
    fn vertex_adjacency() {
        let m = two_triangles();
        assert_eq!(m.vertex_faces(0), &[0]);
        let mut f1: Vec<_> = m.vertex_faces(1).to_vec();
        f1.sort_unstable();
        assert_eq!(f1, vec![0, 1]);
        assert_eq!(m.vertex_edges(3).len(), 2);
        assert_eq!(m.vertex_edges(1).len(), 3);
    }

    #[test]
    fn angle_sums_flat_quad() {
        let m = two_triangles();
        // Corner vertices: 90°; the two shared-diagonal vertices: 90° (45+45).
        assert!((m.vertex_angle_sum(0) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((m.vertex_angle_sum(3) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((m.vertex_angle_sum(1) - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        // All four are boundary vertices here.
        for v in 0..4 {
            assert!(m.is_boundary_vertex(v));
            assert!(m.is_pseudo_source_vertex(v));
        }
    }

    #[test]
    fn stats_are_sane() {
        let m = two_triangles();
        let s = m.stats();
        assert_eq!(s.n_vertices, 4);
        assert_eq!(s.n_faces, 2);
        assert!((s.total_area - 1.0).abs() < 1e-12);
        assert!((s.bbox.1.x - 1.0).abs() < 1e-12);
        assert!((s.min_inner_angle - std::f64::consts::FRAC_PI_4).abs() < 1e-12);
        assert!((s.min_edge_len - 1.0).abs() < 1e-12);
        assert!((s.max_edge_len - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn storage_is_positive_and_scales() {
        let m = two_triangles();
        assert!(m.storage_bytes() > 100);
    }
}
