//! Synthetic terrain generation.
//!
//! The paper evaluates on three real DEM tiles (BearHead, EaglePeak, San
//! Francisco South) downloaded from `data.geocomm.com` — a source that no
//! longer serves them. Per the reproduction's substitution rule we generate
//! deterministic fractal terrains whose footprint aspect ratios match Table 2
//! and whose roughness puts the geodesic/Euclidean distance ratio in the
//! regime the paper describes. Every compared algorithm consumes the same
//! mesh, so the relative behaviour the figures report is preserved.

use crate::geom::Vec3;
use crate::mesh::TerrainMesh;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A regular-grid heightfield; the intermediate representation from which
/// grid TINs are triangulated and resampled.
#[derive(Debug, Clone)]
pub struct Heightfield {
    /// Samples along x.
    pub nx: usize,
    /// Samples along y.
    pub ny: usize,
    /// Grid spacing along x.
    pub dx: f64,
    /// Grid spacing along y.
    pub dy: f64,
    /// Row-major heights (`ny` rows of `nx`).
    pub heights: Vec<f64>,
}

impl Heightfield {
    /// A flat heightfield (useful for tests: geodesic == 2-D Euclidean).
    pub fn flat(nx: usize, ny: usize, dx: f64, dy: f64) -> Self {
        assert!(nx >= 2 && ny >= 2, "heightfield needs at least 2×2 samples");
        Self { nx, ny, dx, dy, heights: vec![0.0; nx * ny] }
    }

    #[inline]
    pub fn h(&self, i: usize, j: usize) -> f64 {
        self.heights[j * self.nx + i]
    }

    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.heights[j * self.nx + i] = v;
    }

    /// Bilinear interpolation at continuous grid coordinates.
    pub fn sample(&self, x: f64, y: f64) -> f64 {
        let gx = (x / self.dx).clamp(0.0, (self.nx - 1) as f64);
        let gy = (y / self.dy).clamp(0.0, (self.ny - 1) as f64);
        let i0 = (gx.floor() as usize).min(self.nx - 2);
        let j0 = (gy.floor() as usize).min(self.ny - 2);
        let fx = gx - i0 as f64;
        let fy = gy - j0 as f64;
        let h00 = self.h(i0, j0);
        let h10 = self.h(i0 + 1, j0);
        let h01 = self.h(i0, j0 + 1);
        let h11 = self.h(i0 + 1, j0 + 1);
        h00 * (1.0 - fx) * (1.0 - fy)
            + h10 * fx * (1.0 - fy)
            + h01 * (1.0 - fx) * fy
            + h11 * fx * fy
    }

    /// Resamples to a different resolution over the same footprint
    /// (bilinear). This is the reproduction's stand-in for the surface
    /// simplification of Liu & Wong \[24\] used by the paper's Effect-of-N
    /// experiment: it produces meshes of varying `N` covering the same
    /// region.
    pub fn resample(&self, nx: usize, ny: usize) -> Heightfield {
        assert!(nx >= 2 && ny >= 2);
        let w = (self.nx - 1) as f64 * self.dx;
        let h = (self.ny - 1) as f64 * self.dy;
        let mut out = Heightfield::flat(nx, ny, w / (nx - 1) as f64, h / (ny - 1) as f64);
        for j in 0..ny {
            for i in 0..nx {
                let v = self.sample(i as f64 * out.dx, j as f64 * out.dy);
                out.set(i, j, v);
            }
        }
        out
    }

    /// Triangulates into a TIN with alternating diagonals (isotropic).
    pub fn to_mesh(&self) -> TerrainMesh {
        let mut vertices = Vec::with_capacity(self.nx * self.ny);
        for j in 0..self.ny {
            for i in 0..self.nx {
                vertices.push(Vec3::new(i as f64 * self.dx, j as f64 * self.dy, self.h(i, j)));
            }
        }
        let v = |i: usize, j: usize| (j * self.nx + i) as u32;
        let mut faces = Vec::with_capacity(2 * (self.nx - 1) * (self.ny - 1));
        for j in 0..self.ny - 1 {
            for i in 0..self.nx - 1 {
                let (v00, v10, v01, v11) = (v(i, j), v(i + 1, j), v(i, j + 1), v(i + 1, j + 1));
                if (i + j) % 2 == 0 {
                    faces.push([v00, v10, v11]);
                    faces.push([v00, v11, v01]);
                } else {
                    faces.push([v00, v10, v01]);
                    faces.push([v10, v11, v01]);
                }
            }
        }
        // lint: allow(panic, "invariant: grid triangulation always forms a valid manifold mesh")
        TerrainMesh::new(vertices, faces).expect("grid triangulation is always valid")
    }

    /// Multiplies all heights by `s`.
    pub fn scale_heights(&mut self, s: f64) {
        for h in &mut self.heights {
            *h *= s;
        }
    }

    /// `(min, max)` height.
    pub fn height_range(&self) -> (f64, f64) {
        let lo = self.heights.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = self.heights.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        (lo, hi)
    }
}

/// Diamond-square fractal terrain on a `(2^k + 1)²` grid.
///
/// `roughness ∈ (0, 1)` controls the per-level amplitude decay (higher =
/// rougher). Deterministic in `seed`.
pub fn diamond_square(k: u32, roughness: f64, seed: u64) -> Heightfield {
    assert!((1..=14).contains(&k), "k must be in [1, 14]");
    assert!(roughness > 0.0 && roughness < 1.0);
    let n = (1usize << k) + 1;
    let mut hf = Heightfield::flat(n, n, 1.0, 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut amp = 1.0f64;
    // Seed corners.
    for &(i, j) in &[(0, 0), (n - 1, 0), (0, n - 1), (n - 1, n - 1)] {
        let r: f64 = rng.random_range(-1.0..1.0);
        hf.set(i, j, r * amp);
    }
    let mut step = n - 1;
    while step > 1 {
        let half = step / 2;
        // Diamond step.
        for j in (half..n).step_by(step) {
            for i in (half..n).step_by(step) {
                let avg = (hf.h(i - half, j - half)
                    + hf.h(i + half, j - half)
                    + hf.h(i - half, j + half)
                    + hf.h(i + half, j + half))
                    / 4.0;
                let r: f64 = rng.random_range(-1.0..1.0);
                hf.set(i, j, avg + r * amp);
            }
        }
        // Square step.
        for j in (0..n).step_by(half) {
            let start = if (j / half).is_multiple_of(2) { half } else { 0 };
            for i in (start..n).step_by(step) {
                let mut sum = 0.0;
                let mut cnt = 0.0;
                if i >= half {
                    sum += hf.h(i - half, j);
                    cnt += 1.0;
                }
                if i + half < n {
                    sum += hf.h(i + half, j);
                    cnt += 1.0;
                }
                if j >= half {
                    sum += hf.h(i, j - half);
                    cnt += 1.0;
                }
                if j + half < n {
                    sum += hf.h(i, j + half);
                    cnt += 1.0;
                }
                let r: f64 = rng.random_range(-1.0..1.0);
                hf.set(i, j, sum / cnt + r * amp);
            }
        }
        amp *= roughness;
        step = half;
    }
    hf
}

/// A sum of Gaussian hills over a flat grid — smooth synthetic relief with
/// controllable saddle structure.
pub fn gaussian_hills(
    nx: usize,
    ny: usize,
    dx: f64,
    dy: f64,
    n_hills: usize,
    amplitude: f64,
    seed: u64,
) -> Heightfield {
    let mut hf = Heightfield::flat(nx, ny, dx, dy);
    let mut rng = StdRng::seed_from_u64(seed);
    let w = (nx - 1) as f64 * dx;
    let h = (ny - 1) as f64 * dy;
    let hills: Vec<(f64, f64, f64, f64)> = (0..n_hills)
        .map(|_| {
            let cx = rng.random_range(0.0..w);
            let cy = rng.random_range(0.0..h);
            let sigma = rng.random_range(0.08..0.25) * w.min(h);
            let a = rng.random_range(0.3..1.0)
                * amplitude
                * if rng.random_bool(0.3) { -1.0 } else { 1.0 };
            (cx, cy, sigma, a)
        })
        .collect();
    for j in 0..ny {
        for i in 0..nx {
            let x = i as f64 * dx;
            let y = j as f64 * dy;
            let mut z = 0.0;
            for &(cx, cy, sigma, a) in &hills {
                let d2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
                z += a * (-d2 / (2.0 * sigma * sigma)).exp();
            }
            hf.set(i, j, z);
        }
    }
    hf
}

/// A "tent" surface: two inclined planes meeting along the ridge `x = w/2`.
/// Geodesic distances across the ridge have a closed form (unfold the two
/// planes), which the exact-geodesic tests exploit.
pub fn tent(nx: usize, ny: usize, dx: f64, dy: f64, ridge_height: f64) -> Heightfield {
    let mut hf = Heightfield::flat(nx, ny, dx, dy);
    let w = (nx - 1) as f64 * dx;
    for j in 0..ny {
        for i in 0..nx {
            let x = i as f64 * dx;
            let t = 1.0 - (2.0 * x / w - 1.0).abs();
            hf.set(i, j, ridge_height * t);
        }
    }
    hf
}

/// The named dataset presets standing in for the paper's Table 2 datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Preset {
    /// BearHead-like: 14 km × 10 km footprint.
    BearHead,
    /// EaglePeak-like: 10.7 km × 14 km footprint.
    EaglePeak,
    /// San-Francisco-South-like: 14 km × 11.1 km footprint.
    SanFrancisco,
    /// The paper's "smaller version of SF": ≈1k vertices.
    SfSmall,
    /// Low-resolution BearHead (the paper's 30 m-resolution variant).
    BearHeadLow,
}

impl Preset {
    /// Footprint in meters `(width, height)` from Table 2.
    pub fn footprint(self) -> (f64, f64) {
        match self {
            Preset::BearHead => (14_000.0, 10_000.0),
            Preset::EaglePeak => (10_700.0, 14_000.0),
            Preset::SanFrancisco => (14_000.0, 11_100.0),
            Preset::SfSmall => (1_400.0, 1_110.0),
            Preset::BearHeadLow => (14_000.0, 10_000.0),
        }
    }

    /// Deterministic per-preset RNG seed (different relief per dataset).
    pub fn seed(self) -> u64 {
        match self {
            Preset::BearHead => 0xBEA4_0001,
            Preset::EaglePeak => 0xEA61_0002,
            Preset::SanFrancisco => 0x5F00_0003,
            Preset::SfSmall => 0x5F00_0004,
            Preset::BearHeadLow => 0xBEA4_0005,
        }
    }

    /// Default vertex budget at `scale = 1.0`. The paper's datasets have
    /// 1.4 M / 1.5 M / 170 k / 1 k / 150 k vertices; defaults here are scaled
    /// down so the full experiment suite runs on a laptop, and `scale`
    /// raises them back up.
    pub fn base_vertices(self) -> usize {
        match self {
            Preset::BearHead => 40_000,
            Preset::EaglePeak => 40_000,
            Preset::SanFrancisco => 20_000,
            Preset::SfSmall => 1_000,
            Preset::BearHeadLow => 10_000,
        }
    }

    /// Builds the preset heightfield with `scale × base_vertices()` vertices.
    pub fn heightfield(self, scale: f64) -> Heightfield {
        let (w, h) = self.footprint();
        let target = (self.base_vertices() as f64 * scale).max(16.0);
        // Choose nx/ny matching the aspect ratio with nx·ny ≈ target.
        let aspect = w / h;
        let ny = (target / aspect).sqrt().round().max(4.0) as usize;
        let nx = (target / ny as f64).round().max(4.0) as usize;
        // Fractal base sampled down to the requested resolution.
        let k = 8; // 257×257 master grid
        let mut base = diamond_square(k, 0.58, self.seed());
        // Height amplitude: mountainous for BH/EP, gentler for SF.
        let relief = match self {
            Preset::BearHead | Preset::BearHeadLow => 0.12 * w,
            Preset::EaglePeak => 0.14 * w,
            Preset::SanFrancisco | Preset::SfSmall => 0.06 * w,
        };
        let (lo, hi) = base.height_range();
        let span = (hi - lo).max(1e-9);
        base.scale_heights(relief / span);
        let mut hf = base.resample(nx, ny);
        hf.dx = w / (nx - 1) as f64;
        hf.dy = h / (ny - 1) as f64;
        hf
    }

    /// Builds the preset mesh.
    pub fn mesh(self, scale: f64) -> TerrainMesh {
        self.heightfield(scale).to_mesh()
    }

    /// Human-readable name matching the paper's abbreviations.
    pub fn name(self) -> &'static str {
        match self {
            Preset::BearHead => "BH",
            Preset::EaglePeak => "EP",
            Preset::SanFrancisco => "SF",
            Preset::SfSmall => "SF-small",
            Preset::BearHeadLow => "BH-low",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_grid_triangulates() {
        let m = Heightfield::flat(5, 4, 1.0, 2.0).to_mesh();
        assert_eq!(m.n_vertices(), 20);
        assert_eq!(m.n_faces(), 2 * 4 * 3);
        let s = m.stats();
        assert!((s.total_area - 4.0 * 6.0).abs() < 1e-9);
        assert!((s.bbox.1.x - 4.0).abs() < 1e-12);
        assert!((s.bbox.1.y - 6.0).abs() < 1e-12);
    }

    #[test]
    fn diamond_square_is_deterministic() {
        let a = diamond_square(4, 0.5, 7);
        let b = diamond_square(4, 0.5, 7);
        assert_eq!(a.heights, b.heights);
        let c = diamond_square(4, 0.5, 8);
        assert_ne!(a.heights, c.heights);
        assert_eq!(a.nx, 17);
    }

    #[test]
    fn diamond_square_meshes_validate() {
        for seed in 0..3 {
            let hf = diamond_square(5, 0.6, seed);
            let m = hf.to_mesh();
            assert_eq!(m.n_vertices(), 33 * 33);
        }
    }

    #[test]
    fn sample_matches_grid_points() {
        let hf = diamond_square(3, 0.5, 1);
        for j in 0..hf.ny {
            for i in 0..hf.nx {
                let s = hf.sample(i as f64 * hf.dx, j as f64 * hf.dy);
                assert!((s - hf.h(i, j)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn resample_preserves_footprint_and_flatness() {
        let hf = Heightfield::flat(9, 9, 1.0, 1.0);
        let r = hf.resample(5, 3);
        assert_eq!(r.nx, 5);
        assert_eq!(r.ny, 3);
        assert!((r.dx * 4.0 - 8.0).abs() < 1e-12);
        assert!((r.dy * 2.0 - 8.0).abs() < 1e-12);
        assert!(r.heights.iter().all(|&h| h.abs() < 1e-12));
    }

    #[test]
    fn resample_identity_roundtrip() {
        let hf = diamond_square(4, 0.5, 3);
        let r = hf.resample(hf.nx, hf.ny);
        for (a, b) in hf.heights.iter().zip(&r.heights) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn tent_ridge_height() {
        let hf = tent(9, 5, 1.0, 1.0, 3.0);
        let mid = 4; // x = 4 = w/2
        for j in 0..5 {
            assert!((hf.h(mid, j) - 3.0).abs() < 1e-12);
            assert!(hf.h(0, j).abs() < 1e-12);
            assert!(hf.h(8, j).abs() < 1e-12);
        }
    }

    #[test]
    fn gaussian_hills_bounded() {
        let hf = gaussian_hills(17, 17, 1.0, 1.0, 8, 5.0, 42);
        let (lo, hi) = hf.height_range();
        assert!(lo > -40.0 && hi < 40.0);
        assert!(hi > lo);
        let _ = hf.to_mesh();
    }

    #[test]
    fn presets_build_and_match_footprint() {
        for p in [Preset::SfSmall, Preset::BearHeadLow] {
            let m = p.mesh(1.0);
            let s = m.stats();
            let (w, h) = p.footprint();
            assert!((s.bbox.1.x - s.bbox.0.x - w).abs() < 1e-6, "{}", p.name());
            assert!((s.bbox.1.y - s.bbox.0.y - h).abs() < 1e-6, "{}", p.name());
            let n = m.n_vertices() as f64;
            let target = p.base_vertices() as f64;
            assert!(n > target * 0.7 && n < target * 1.4, "{} has {n} vertices", p.name());
        }
    }

    #[test]
    fn preset_scale_changes_vertex_count() {
        let small = Preset::SfSmall.mesh(1.0).n_vertices();
        let big = Preset::SfSmall.mesh(4.0).n_vertices();
        assert!(big as f64 > small as f64 * 2.5);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_heightfield_panics() {
        let _ = Heightfield::flat(1, 5, 1.0, 1.0);
    }
}
