//! Largest-capacity-dimension estimation (Appendix A).
//!
//! The paper's Theorem 2/3 bounds are parameterized by β, the largest
//! capacity dimension of the POI set under the geodesic metric:
//! `β = max_{p, r} 0.5·log₂( M(r/2, B(p,r)) / M(2r, B(p,r)) )` with
//! `M(2r, B(p,r)) = 2`, where `M(r', S)` is the `r'`-packing number. The
//! paper reports β ∈ [1.3, 1.5] on its terrains; this estimator lets the
//! experiment harness report the same quantity for ours.
//!
//! Packing numbers are estimated with greedy maximal packings (a standard
//! 2-approximation); ball membership and pairwise distances use the
//! supplied [`SiteSpace`], so callers choose the accuracy/cost trade-off
//! via their engine. Ball samples are capped to keep the SSAD count
//! bounded.
//!
//! Like oracle construction, the estimator reads all distances through an
//! SSAD-reuse cache ([`CachingSiteSpace`]) and fans the per-center work
//! out on [`geodesic::pool`] workers: center picks come from one
//! sequential stream and each center's subsampling RNG is a pure function
//! of `(seed, center index)`, so the estimate is **bit-identical for
//! every thread count** — the same contract the construction pipeline
//! keeps.

use geodesic::cache::CachingSiteSpace;
use geodesic::sitespace::SiteSpace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for [`estimate_beta`].
#[derive(Debug, Clone, Copy)]
pub struct BetaOptions {
    /// Number of ball centers sampled.
    pub centers: usize,
    /// Radii tried per center, geometrically spaced in `(0, r_max]`.
    pub radii_per_center: usize,
    /// Cap on ball members used for the packing (larger balls are
    /// subsampled; packing numbers only shrink, so the estimate stays a
    /// lower bound).
    pub max_ball: usize,
    /// RNG seed for center picks and ball subsampling.
    pub seed: u64,
    /// Worker threads driving the per-center estimation (`0` = auto-detect
    /// via [`std::thread::available_parallelism`]). The estimate is
    /// bit-identical for every thread count.
    pub threads: usize,
}

impl Default for BetaOptions {
    fn default() -> Self {
        Self { centers: 6, radii_per_center: 3, max_ball: 48, seed: 0xBE7A, threads: 0 }
    }
}

/// Seed of center `i`'s private RNG stream: splitmix64 over
/// golden-ratio-spaced offsets of the user seed, so streams are
/// decorrelated and each is a pure function of `(seed, i)`.
fn center_seed(seed: u64, i: u64) -> u64 {
    phash::splitmix64(seed.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Result of a β estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BetaEstimate {
    /// The estimated largest capacity dimension.
    pub beta: f64,
    /// Balls actually examined (non-trivial ones).
    pub balls: usize,
}

/// Estimates the largest capacity dimension of the sites in `space`.
pub fn estimate_beta(space: &dyn SiteSpace, opts: &BetaOptions) -> BetaEstimate {
    let n = space.n_sites();
    if n < 3 {
        return BetaEstimate { beta: 0.0, balls: 0 };
    }
    let _span = obs::trace::span("build", "beta-packing");
    // Center picks from one sequential stream: deterministic and
    // independent of how the per-center work is scheduled below.
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let centers: Vec<usize> = (0..opts.centers).map(|_| rng.random_range(0..n)).collect();

    // All distance reads go through the SSAD-reuse cache: a re-drawn
    // center's full sweep and the packing's repeated pair queries (the
    // same ball members recur across the per-center radii) hit memory
    // instead of re-running the engine. Cached values are bit-identical
    // to fresh runs, so — like the pool — this leaves the estimate
    // unchanged.
    let space = CachingSiteSpace::new(space);

    let per_center: Vec<(f64, usize)> =
        geodesic::pool::run_indexed(opts.threads, centers.len(), |ci| {
            let p = centers[ci];
            // Subsampling RNG as a pure function of (seed, center index):
            // no worker observes another's draws, so any interleaving
            // produces the same estimate.
            let mut rng = StdRng::seed_from_u64(center_seed(opts.seed, ci as u64));
            let mut beta: f64 = 0.0;
            let mut balls = 0usize;
            let all = space.all_distances(p);
            let r_max = all.iter().cloned().filter(|d| d.is_finite()).fold(0.0, f64::max);
            if r_max <= 0.0 {
                return (beta, balls);
            }
            for k in 0..opts.radii_per_center {
                // Radii r_max/2, r_max/4, ... — the scales where balls are
                // non-trivial but proper subsets.
                let r = r_max / (1u64 << (k + 1)) as f64;
                // Ball members by distance from p (exact: these are
                // geodesic distances from the SSAD above).
                let mut members: Vec<usize> = (0..n).filter(|&s| all[s] <= r).collect();
                if members.len() < 3 {
                    continue;
                }
                if members.len() > opts.max_ball {
                    // Deterministic subsample.
                    for i in (1..members.len()).rev() {
                        members.swap(i, rng.random_range(0..=i));
                    }
                    members.truncate(opts.max_ball);
                }
                // Greedy (r/2)-packing of the ball.
                let m_half = greedy_packing(&space, &members, r / 2.0);
                balls += 1;
                // Definition 1: capacity dimension of B(p, r) is
                // 0.5·log2(M(r/2)/M(2r)) with M(2r) = 2.
                let dim = 0.5 * ((m_half as f64) / 2.0).log2();
                beta = beta.max(dim);
            }
            (beta, balls)
        });

    // f64::max is commutative and associative over these (never-NaN)
    // values, and the per-center results arrive in index order, so the
    // reduction is independent of worker scheduling.
    let mut beta: f64 = 0.0;
    let mut balls = 0usize;
    for (b, k) in per_center {
        beta = beta.max(b);
        balls += k;
    }
    BetaEstimate { beta, balls }
}

/// Options for [`estimate_theta`].
#[derive(Debug, Clone, Copy)]
pub struct ThetaOptions {
    /// Number of center vertices sampled.
    pub centers: usize,
    /// Radii tried per center, geometrically spaced below the reach.
    pub radii_per_center: usize,
    /// Minimum half-ball population for a sample to count (tiny balls make
    /// the ratio meaningless).
    pub min_half_ball: usize,
    /// RNG seed for center picks.
    pub seed: u64,
}

impl Default for ThetaOptions {
    fn default() -> Self {
        Self { centers: 6, radii_per_center: 3, min_half_ball: 8, seed: 0x7EE7 }
    }
}

/// Result of a θ estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThetaEstimate {
    /// The estimated vertex-growth exponent.
    pub theta: f64,
    /// Ball pairs actually examined.
    pub samples: usize,
}

/// Estimates the terrain's vertex-growth parameter θ of the paper's
/// Lemma 12: the largest θ such that every disk `D(c, r)` holds at least
/// `2^θ ×` the vertices of `D(c, r/2)`. The construction-time analysis
/// `O(N log²N / ε^{2β})` needs θ ≥ β, which the paper verifies
/// empirically — [`estimate_theta`] lets the harness report the same
/// check for our terrains (θ ≈ 2 on quasi-planar surfaces, since vertex
/// counts grow with disk area).
///
/// The estimate takes the minimum growth ratio over sampled `(c, r)`
/// pairs, mirroring the universal quantifier in the definition.
pub fn estimate_theta(
    engine: &dyn geodesic::engine::GeodesicEngine,
    opts: &ThetaOptions,
) -> ThetaEstimate {
    use geodesic::engine::Stop;
    let nv = engine.mesh().n_vertices();
    if nv < 8 {
        return ThetaEstimate { theta: 0.0, samples: 0 };
    }
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut theta = f64::INFINITY;
    let mut samples = 0usize;
    for _ in 0..opts.centers {
        let c = rng.random_range(0..nv as u32);
        let dist = engine.ssad(c, Stop::Exhaust).dist;
        let r_max = dist.iter().cloned().filter(|d| d.is_finite()).fold(0.0, f64::max);
        if r_max <= 0.0 {
            continue;
        }
        // Start below the full reach: at r ≈ r_max the outer disk
        // saturates the bounded terrain and the growth ratio reflects the
        // boundary, not the surface. Lemma 12 applies θ to the bounded
        // SSAD expansions at intermediate scales, so those are what we
        // sample.
        for k in 1..=opts.radii_per_center {
            let r = r_max / (1u64 << k) as f64;
            if r / 2.0 >= r_max {
                continue; // the half disk already covers the whole reach
            }
            let n_r = dist.iter().filter(|&&d| d <= r).count();
            let n_half = dist.iter().filter(|&&d| d <= r / 2.0).count();
            if n_half < opts.min_half_ball {
                continue;
            }
            samples += 1;
            theta = theta.min((n_r as f64 / n_half as f64).log2());
        }
    }
    if samples == 0 {
        return ThetaEstimate { theta: 0.0, samples };
    }
    ThetaEstimate { theta, samples }
}

/// Size of a greedy maximal `sep`-separated subset of `members`.
///
/// Members are scanned in order; each survivor joins the packing, and one
/// bounded sweep (`sites_within(survivor, sep)`) eliminates every site
/// closer than `sep` — one SSAD-equivalent per chosen site instead of the
/// `O(|chosen| · |members|)` pairwise `distance` probes of the naive
/// formulation (each a point SSAD on a cache miss). The scan order and the
/// strict `< sep` elimination predicate are exactly the complement of the
/// pairwise `d ≥ sep` acceptance test, and cached sweep labels are
/// bit-identical to fresh point queries, so the packing — and with it β —
/// is unchanged to the bit.
fn greedy_packing(space: &dyn SiteSpace, members: &[usize], sep: f64) -> usize {
    let mut eliminated = vec![false; space.n_sites()];
    let mut count = 0usize;
    for &cand in members {
        if eliminated[cand] {
            continue;
        }
        count += 1;
        for (s, d) in space.sites_within(cand, sep) {
            if d < sep {
                eliminated[s] = true;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodesic::dijkstra::EdgeGraphEngine;
    use geodesic::ich::IchEngine;
    use geodesic::sitespace::VertexSiteSpace;
    use std::sync::Arc;
    use terrain::gen::{diamond_square, Heightfield};

    #[test]
    fn flat_plane_beta_near_planar_bound() {
        // Appendix A: on a 2-D plane β ≤ 1.3 (from the 12-circle packing
        // bound). A greedy estimate on a flat grid must land at or below
        // ~1.3 and clearly above 0.
        let mesh = Arc::new(Heightfield::flat(17, 17, 1.0, 1.0).to_mesh());
        let sites: Vec<u32> = (0..mesh.n_vertices() as u32).collect();
        let sp = VertexSiteSpace::new(Arc::new(IchEngine::new(mesh)), sites);
        let est = estimate_beta(&sp, &BetaOptions { centers: 4, ..Default::default() });
        assert!(est.balls > 0);
        assert!(est.beta > 0.5, "beta {} too small", est.beta);
        assert!(est.beta <= 1.35, "beta {} above planar bound", est.beta);
    }

    #[test]
    fn fractal_terrain_beta_in_paper_band() {
        // The paper reports β ∈ [1.3, 1.5] on real terrain; a greedy
        // estimate is a lower bound, so assert a slightly wider band.
        let mesh = Arc::new(diamond_square(4, 0.65, 5).to_mesh());
        let sites: Vec<u32> = (0..mesh.n_vertices() as u32).collect();
        let sp = VertexSiteSpace::new(Arc::new(EdgeGraphEngine::new(mesh)), sites);
        let est = estimate_beta(&sp, &BetaOptions::default());
        assert!(est.beta > 0.6 && est.beta < 1.8, "beta {}", est.beta);
    }

    #[test]
    fn tiny_site_sets_are_zero() {
        let mesh = Arc::new(Heightfield::flat(3, 3, 1.0, 1.0).to_mesh());
        let sp = VertexSiteSpace::new(Arc::new(IchEngine::new(mesh)), vec![0, 8]);
        let est = estimate_beta(&sp, &BetaOptions::default());
        assert_eq!(est.beta, 0.0);
        assert_eq!(est.balls, 0);
    }

    #[test]
    fn deterministic_in_seed() {
        let mesh = Arc::new(diamond_square(3, 0.6, 9).to_mesh());
        let sites: Vec<u32> = (0..mesh.n_vertices() as u32).step_by(3).collect();
        let sp = VertexSiteSpace::new(Arc::new(EdgeGraphEngine::new(mesh)), sites);
        let a = estimate_beta(&sp, &BetaOptions::default());
        let b = estimate_beta(&sp, &BetaOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn beta_bit_identical_across_thread_counts() {
        // The pool and the SSAD cache are pure accelerators here exactly
        // as in construction: threads ∈ {1, 2, auto} must agree to the
        // bit.
        let mesh = Arc::new(diamond_square(3, 0.6, 13).to_mesh());
        let sites: Vec<u32> = (0..mesh.n_vertices() as u32).step_by(2).collect();
        let sp = VertexSiteSpace::new(Arc::new(EdgeGraphEngine::new(mesh)), sites);
        let one = estimate_beta(&sp, &BetaOptions { threads: 1, ..Default::default() });
        assert!(one.balls > 0, "fixture must exercise non-trivial balls");
        for threads in [2usize, 0] {
            let got = estimate_beta(&sp, &BetaOptions { threads, ..Default::default() });
            assert_eq!(
                one.beta.to_bits(),
                got.beta.to_bits(),
                "β differs at threads={threads}: {} vs {}",
                one.beta,
                got.beta
            );
            assert_eq!(one.balls, got.balls, "ball count differs at threads={threads}");
        }
    }

    #[test]
    fn theta_on_flat_grid_is_area_like() {
        // Vertex counts on a plane grow with disk area: doubling the
        // radius roughly quadruples the count, so θ sits near 2 (boundary
        // truncation pulls the minimum down a little).
        let mesh = Arc::new(Heightfield::flat(21, 21, 1.0, 1.0).to_mesh());
        let eng = EdgeGraphEngine::new(mesh);
        let est = estimate_theta(&eng, &ThetaOptions::default());
        assert!(est.samples > 0);
        assert!(est.theta > 0.8, "theta {} too small for a plane", est.theta);
        assert!(est.theta < 2.5, "theta {} above planar growth", est.theta);
    }

    #[test]
    fn theta_at_least_beta_on_terrain() {
        // The paper's Lemma 12 analysis relies on the empirical
        // observation θ ≥ β. That observation is about *exact* geodesics —
        // graph metrics inflate some distances and can push β above the
        // band — so verify it with the exact engine on a moderate terrain.
        let mesh = Arc::new(diamond_square(4, 0.5, 5).to_mesh());
        let eng = Arc::new(IchEngine::new(mesh.clone()));
        let est_t = estimate_theta(eng.as_ref(), &ThetaOptions::default());
        let sites: Vec<u32> = (0..mesh.n_vertices() as u32).collect();
        let sp = VertexSiteSpace::new(eng, sites);
        let est_b = estimate_beta(&sp, &BetaOptions::default());
        assert!(
            est_t.theta >= est_b.beta - 0.3,
            "theta {} far below beta {}",
            est_t.theta,
            est_b.beta
        );
    }

    #[test]
    fn theta_degenerate_inputs() {
        let mesh = Arc::new(Heightfield::flat(2, 2, 1.0, 1.0).to_mesh());
        let eng = EdgeGraphEngine::new(mesh);
        let est = estimate_theta(&eng, &ThetaOptions::default());
        assert_eq!(est.theta, 0.0);
        assert_eq!(est.samples, 0);
    }

    #[test]
    fn theta_deterministic() {
        let mesh = Arc::new(diamond_square(3, 0.5, 11).to_mesh());
        let eng = EdgeGraphEngine::new(mesh);
        let a = estimate_theta(&eng, &ThetaOptions::default());
        let b = estimate_theta(&eng, &ThetaOptions::default());
        assert_eq!(a, b);
    }
}
