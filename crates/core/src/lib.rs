//! **SE** — the Space-Efficient ε-approximate geodesic distance oracle of
//! *Distance Oracle on Terrain Surface* (Wei, Wong, Long, Mount — SIGMOD
//! 2017).
//!
//! The oracle indexes a set of `n` POIs on a terrain surface in `O(n)`-ish
//! space (`O(nh/ε^{2β})`, Theorem 2) and answers POI-to-POI geodesic
//! distance queries in `O(h)` time with multiplicative error ≤ ε, where
//! `h < 30` in practice. Components:
//!
//! * [`tree`] — the partition tree (Separation / Covering / Distance
//!   properties, §3.2) with random and greedy point-selection strategies;
//! * [`ctree`] — the compressed partition tree (`≤ 2n − 1` nodes, Lemma 9);
//! * [`wspd`] — the node pair set: a well-separated pair decomposition with
//!   the *unique node pair match* property (Theorem 1);
//! * [`enhanced`] — enhanced edges (§3.5), reducing construction SSAD count
//!   from one-per-pair to one-per-tree-node (Lemma 4);
//! * [`oracle`] — [`oracle::SeOracle`]: construction + the `O(h)` and
//!   `O(h²)` query algorithms (§3.4);
//! * [`p2p`] — P2P/V2V front-ends over a [`terrain::TerrainMesh`];
//! * [`a2a`] — the A2A oracle of Appendix C (POI-independent; also the
//!   `n > N` case of Appendix D);
//! * [`dimension`] — largest-capacity-dimension (β) estimation, Appendix A.
//!
//! Beyond the paper's text, three extensions it motivates or names as
//! future work:
//!
//! * [`proximity`] — kNN / range / reverse-kNN search and the in-path
//!   detour query over the oracle (the proximity queries of §1.1/§4.1);
//! * [`route`] — path reporting: [`route::PathIndex`] +
//!   [`oracle::SeOracle::shortest_path`], routes alongside distances;
//! * [`dynamic`] — POI insertion/removal without a rebuild (the
//!   conclusion's open problem, via the dynamic-WSPD idea of \[14\]);
//! * [`persist`] — versioned, checksummed binary oracle images, with a
//!   compact v2 encoding ([`quant`]: quantized + delta-coded tables,
//!   worst-case decode error ≤ [`quant::EPS_QUANT`]);
//! * [`tilestore`] — the out-of-core atlas backend: lazy per-tile decode
//!   from one `SEAT` image behind a clock-free LRU with a resident-byte
//!   budget;
//! * [`serve`] — the query-serving layer: [`serve::QueryHandle`] (a
//!   shared, `Send + Sync` read-only view), batch distance queries, and a
//!   pool-sharded multi-threaded batch driver;
//! * [`atlas`] — the terrain atlas: tiled per-piece oracles with a portal
//!   graph routing cross-tile queries (the scaling layer past one
//!   monolithic construction);
//! * [`net`] — the network serving front end: the `oracled` wire protocol
//!   (sharing [`persist`]'s hardened frame decoder), a coalescing
//!   thread-per-connection server, and a blocking client;
//! * [`telemetry`] — the `obs` observability crate re-exported: metrics
//!   registry (scraped over the wire via [`net`]'s `Metrics` verb),
//!   build-trace spans, and structured logging.
//!
//! # Quickstart
//!
//! ```
//! use se_oracle::oracle::BuildConfig;
//! use se_oracle::p2p::{EngineKind, P2POracle};
//! use terrain::gen::Heightfield;
//! use terrain::poi::sample_uniform;
//!
//! let mesh = Heightfield::flat(6, 6, 100.0, 100.0).to_mesh();
//! let pois = sample_uniform(&mesh, 12, 42);
//! let oracle = P2POracle::build(
//!     &mesh, &pois, 0.1, EngineKind::Exact, &BuildConfig::default(),
//! ).unwrap();
//! let d = oracle.distance(0, 7);
//! let exact = oracle.engine_distance(0, 7);
//! assert!((d - exact).abs() <= 0.1 * exact + 1e-9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod a2a;
pub mod atlas;
pub mod ctree;
pub mod dimension;
pub mod dynamic;
pub mod enhanced;
pub mod maxheap;
pub mod net;
pub mod oracle;
pub mod p2p;
pub mod persist;
pub mod proximity;
pub mod quant;
pub mod route;
pub mod serve;
pub mod tilestore;
pub mod tree;
pub mod wspd;

pub use obs as telemetry;

pub use a2a::A2AOracle;
pub use atlas::{Atlas, AtlasConfig, AtlasError, AtlasHandle};
pub use ctree::CompressedTree;
pub use dynamic::{DynamicError, DynamicOracle, SubsetSpace};
pub use oracle::{
    BuildConfig, BuildError, BuildStats, ConstructionMethod, ProbeStats, QueryError, QueryStats,
    SeOracle,
};
pub use p2p::{EngineKind, P2PError, P2POracle};
pub use persist::PersistError;
pub use proximity::{DetourPoi, Neighbor, ProximityIndex};
pub use quant::EPS_QUANT;
pub use route::{PathIndex, ShortestPath, EPS_PATH};
pub use serve::QueryHandle;
pub use tilestore::{TileStore, TileStoreStats};
pub use tree::{PartitionTree, SelectionStrategy, TreeError};
