//! Bounded-error quantization for compact (`v2`) oracle images.
//!
//! The v2 image encoding shrinks every large `f64` table (node-pair
//! distances, node radii, portal–portal tables) by storing each value as an
//! integer multiple of one **per-table power-of-two scale** `s = 2^k`,
//! written as LEB128 varints. The scale is chosen from the table's smallest
//! nonzero value so that the worst-case decode error `s / 2` is at most
//! [`EPS_QUANT`] × that minimum — hence at most `EPS_QUANT` *relative*
//! error on every value in the table. Because `s` is a power of two and
//! every quantized integer stays below `2^53`, the arithmetic
//! (`round(v / s)` on encode, `u · s` on decode) is **exact** in `f64`:
//! no libm, no platform variance, bit-identical everywhere.
//!
//! Two invariants the image format leans on:
//!
//! * **Determinism** — encoding the same table twice yields the same
//!   bytes (pure integer/exponent arithmetic, no ambient state).
//! * **Idempotency** — `encode(decode(encode(T)))` is byte-identical to
//!   `encode(T)`. The subtle case is scale derivation: quantizing can
//!   round the table minimum *up* across a power-of-two boundary, which
//!   would re-derive a doubled scale on the next encode. The encoder
//!   detects that one possible bump and applies it up front
//!   (rounding *down* can never cross a boundary, because every power of
//!   two is itself a grid point of `s`); the bumped scale is then a fixed
//!   point, and its error `s / 2` still satisfies the `EPS_QUANT` bound.
//!
//! Tables whose dynamic range defeats the scheme (max/min ratio beyond
//! `2^53 · EPS_QUANT`, or a minimum so small the scale would go subnormal)
//! fall back to a verbatim `f64` **raw mode**, as does every table when
//! compression is off — raw mode is lossless, so uncompressed v2 images
//! stay bit-identical to their source oracle.
//!
//! Wire form of one table (count supplied by the surrounding format):
//!
//! ```text
//! mode u8            0 = raw, 1 = quantized
//! mode 0: count × f64 (little-endian)
//! mode 1: scale f64, offset f64 (always 0.0 in this encoder version),
//!         count × LEB128 varint, value = offset + u · scale
//! ```

use crate::persist::{Cursor, PersistError};

/// Worst-case relative decode error a quantized table may introduce:
/// `2⁻²⁰ ≈ 9.54 × 10⁻⁷`. Folded into the oracle's documented ε budget —
/// compressed images answer within `(1 + ε)(1 + EPS_QUANT)` of the exact
/// metric (see `docs/ARCHITECTURE.md` § Compressed images).
pub const EPS_QUANT: f64 = 1.0 / ((1u64 << 20) as f64);

/// `log2(1 / EPS_QUANT)` — the exponent gap between a table's minimum
/// nonzero value and its quantization scale.
const EPS_QUANT_BITS: i32 = 20;

/// Quantized integers must stay strictly below `2^53` so `u as f64` and
/// `u · s` are exact.
const MAX_EXACT: f64 = (1u64 << 53) as f64;

const MODE_RAW: u8 = 0;
const MODE_QUANT: u8 = 1;

/// Appends `v` as an LEB128 varint (7 value bits per byte, high bit =
/// continuation; at most 10 bytes).
pub(crate) fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Reads one LEB128 varint, rejecting encodings longer than 10 bytes or
/// overflowing 64 bits.
pub(crate) fn read_varint(c: &mut Cursor<'_>) -> Result<u64, PersistError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = c.u8()?;
        if shift == 63 && (b & 0x7f) > 1 {
            return Err(PersistError::Corrupt("varint overflows 64 bits"));
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(PersistError::Corrupt("varint longer than 10 bytes"));
        }
    }
}

/// `⌊log2 x⌋` for finite `x > 0`, from the exponent bits — no libm, so
/// scale derivation is bit-deterministic across platforms.
fn floor_log2(x: f64) -> i32 {
    debug_assert!(x.is_finite() && x > 0.0);
    let bits = x.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32;
    if exp == 0 {
        // Subnormal: x = m · 2⁻¹⁰⁷⁴ with 1 ≤ m < 2⁵².
        let m = bits & ((1u64 << 52) - 1);
        63 - m.leading_zeros() as i32 - 1074
    } else {
        exp - 1023
    }
}

/// `2^k` for normal-range `k`, built from bits (exact).
fn pow2(k: i32) -> f64 {
    debug_assert!((-1022..=1023).contains(&k));
    f64::from_bits(((k + 1023) as u64) << 52)
}

/// The per-table scale: `2^(⌊log2 min_nonzero⌋ − 20)`, bumped one binade
/// when quantization would round the minimum up across a power of two
/// (the idempotency fixed point — see the module docs). `None` when the
/// table's range defeats exact integer quantization (raw-mode fallback).
/// All-zero (or empty) tables canonically use scale `1.0`.
fn choose_scale(values: &[f64]) -> Option<f64> {
    let mut min_nz = f64::INFINITY;
    let mut max = 0.0f64;
    for &v in values {
        debug_assert!(v.is_finite() && v >= 0.0, "quantizer input must be finite lengths");
        if v > 0.0 && v < min_nz {
            min_nz = v;
        }
        if v > max {
            max = v;
        }
    }
    if max == 0.0 {
        return Some(1.0);
    }
    let mut k = floor_log2(min_nz) - EPS_QUANT_BITS;
    if k < -1022 {
        return None; // subnormal scale: keep the arithmetic in normal range
    }
    let s = pow2(k);
    if (max / s).round() >= MAX_EXACT {
        return None; // dynamic range beyond 2^53 · EPS_QUANT
    }
    // One-step fixed point: rounding the minimum up can land it exactly on
    // the next power of two, which would re-derive k + 1 on re-encode.
    let min_q = (min_nz / s).round() * s;
    if floor_log2(min_q) > floor_log2(min_nz) {
        k += 1;
    }
    Some(pow2(k))
}

/// Appends one table in wire form. With `compress` off every table is
/// written raw (lossless); with it on, quantized whenever
/// [`choose_scale`] admits the table.
pub(crate) fn write_qtable(out: &mut Vec<u8>, values: &[f64], compress: bool) {
    let scale = if compress { choose_scale(values) } else { None };
    match scale {
        None => {
            out.push(MODE_RAW);
            for &v in values {
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
        Some(s) => {
            out.push(MODE_QUANT);
            out.extend_from_slice(&s.to_le_bytes());
            out.extend_from_slice(&0.0f64.to_le_bytes());
            for &v in values {
                write_varint(out, (v / s).round() as u64);
            }
        }
    }
}

/// Reads one table of exactly `count` values, validating the mode byte,
/// the scale/offset header, and every decoded value (finite, `≥ 0`,
/// integers below `2^53`). `count` is checked against the remaining input
/// before anything is allocated in proportion to it.
pub(crate) fn read_qtable(c: &mut Cursor<'_>, count: usize) -> Result<Vec<f64>, PersistError> {
    match c.u8()? {
        MODE_RAW => {
            if count > c.remaining() / 8 {
                return Err(PersistError::Corrupt("truncated raw table"));
            }
            let mut out = Vec::with_capacity(count);
            for _ in 0..count {
                let v = c.f64()?;
                if !(v.is_finite() && v >= 0.0) {
                    return Err(PersistError::Corrupt("table value not a finite length"));
                }
                out.push(v);
            }
            Ok(out)
        }
        MODE_QUANT => {
            let scale = c.f64()?;
            if !(scale.is_finite() && scale > 0.0) {
                return Err(PersistError::Corrupt("invalid quantization scale"));
            }
            let offset = c.f64()?;
            if offset.to_bits() != 0 {
                return Err(PersistError::Corrupt("unsupported quantization offset"));
            }
            if count > c.remaining() {
                return Err(PersistError::Corrupt("truncated quantized table"));
            }
            let mut out = Vec::with_capacity(count);
            for _ in 0..count {
                let u = read_varint(c)?;
                if (u as f64) >= MAX_EXACT {
                    return Err(PersistError::Corrupt("quantized value exceeds exact range"));
                }
                let v = (u as f64) * scale;
                if !v.is_finite() {
                    return Err(PersistError::Corrupt("quantized value overflows"));
                }
                out.push(v);
            }
            Ok(out)
        }
        _ => Err(PersistError::Corrupt("unknown table encoding mode")),
    }
}

/// Encodes `values` as one self-contained table blob — the standalone
/// entry point tests and tools use to probe the encoder directly (the
/// image format embeds the same bytes via internal cursors).
pub fn encode_values(values: &[f64], compress: bool) -> Vec<u8> {
    let mut out = Vec::new();
    write_qtable(&mut out, values, compress);
    out
}

/// Decodes a blob written by [`encode_values`], requiring every byte to be
/// consumed (`count` must match the encoding side).
pub fn decode_values(bytes: &[u8], count: usize) -> Result<Vec<f64>, PersistError> {
    let mut c = Cursor { buf: bytes, at: 0 };
    let out = read_qtable(&mut c, count)?;
    if c.at != bytes.len() {
        return Err(PersistError::Corrupt("trailing bytes in table"));
    }
    Ok(out)
}

/// The scale a table blob declares — `None` for raw (lossless) mode.
pub fn table_scale(bytes: &[u8]) -> Option<f64> {
    if bytes.first() == Some(&MODE_QUANT) && bytes.len() >= 9 {
        let mut s = [0u8; 8];
        s.copy_from_slice(&bytes[1..9]);
        return Some(f64::from_le_bytes(s));
    }
    None
}

/// Worst-case absolute decode error of a table quantized at `scale`
/// (`scale / 2`, from round-to-nearest). Raw tables are exact.
pub fn decode_error_bound(scale: f64) -> f64 {
    scale / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(values: &[f64]) -> Vec<f64> {
        let b = encode_values(values, true);
        decode_values(&b, values.len()).unwrap()
    }

    #[test]
    fn varint_roundtrips_and_bounds() {
        let mut out = Vec::new();
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            out.clear();
            write_varint(&mut out, v);
            assert!(out.len() <= 10);
            let mut c = Cursor { buf: &out, at: 0 };
            assert_eq!(read_varint(&mut c).unwrap(), v);
            assert_eq!(c.at, out.len());
        }
        // 11-byte and overflowing encodings are rejected, not wrapped.
        let long = [0x80u8; 11];
        let mut c = Cursor { buf: &long, at: 0 };
        assert!(read_varint(&mut c).is_err());
        let over = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f];
        let mut c = Cursor { buf: &over, at: 0 };
        assert!(read_varint(&mut c).is_err());
    }

    #[test]
    fn floor_log2_matches_definition() {
        for (x, want) in [
            (1.0, 0),
            (1.5, 0),
            (2.0, 1),
            (0.5, -1),
            (0.75, -1),
            (3.9, 1),
            (4.0, 2),
            (f64::MIN_POSITIVE, -1022),
            (f64::MIN_POSITIVE / 4.0, -1024), // subnormal
        ] {
            assert_eq!(floor_log2(x), want, "x = {x}");
        }
    }

    #[test]
    fn quantized_error_stays_within_the_declared_bound() {
        let values = [3.25, 10.0, 0.0, 977.5, 3.2500001, 512.0];
        let b = encode_values(&values, true);
        let scale = table_scale(&b).expect("table should quantize");
        let bound = decode_error_bound(scale);
        let decoded = decode_values(&b, values.len()).unwrap();
        for (v, d) in values.iter().zip(&decoded) {
            assert!((v - d).abs() <= bound, "|{v} - {d}| > {bound}");
            assert!((v - d).abs() <= EPS_QUANT * v, "relative error beyond EPS_QUANT");
        }
    }

    #[test]
    fn encode_decode_encode_is_byte_identical() {
        // Includes a value engineered to round *up* to the next power of
        // two (the scale-bump fixed point) and a plain spread.
        let near_top = 2.0 - 2.0f64.powi(-22);
        for values in [
            vec![near_top, 7.0, 123.456],
            vec![0.0, 1.0, 1e9, 3.5],
            vec![5.0e-4, 0.125, 88.0],
            vec![],
            vec![0.0, 0.0],
        ] {
            let b1 = encode_values(&values, true);
            let d1 = decode_values(&b1, values.len()).unwrap();
            let b2 = encode_values(&d1, true);
            assert_eq!(b1, b2, "values {values:?}");
        }
    }

    #[test]
    fn hostile_range_falls_back_to_raw_and_stays_lossless() {
        // Ratio beyond 2^33 defeats exact integer quantization.
        let values = [1.0e-12, 1.0e9];
        let b = encode_values(&values, true);
        assert_eq!(table_scale(&b), None);
        assert_eq!(decode_values(&b, 2).unwrap(), values);
        // Compression off is always raw.
        let raw = encode_values(&[1.0, 2.0], false);
        assert_eq!(table_scale(&raw), None);
    }

    #[test]
    fn decoded_values_are_exact_multiples_of_the_scale() {
        let values = [13.37, 42.0, 0.0, 1000.125];
        let b = encode_values(&values, true);
        let s = table_scale(&b).unwrap();
        for d in roundtrip(&values) {
            assert_eq!((d / s).round() * s, d, "decode must be an exact grid point");
        }
    }

    #[test]
    fn corrupt_tables_are_typed_errors() {
        let good = encode_values(&[1.0, 2.0, 3.0], true);
        // Unknown mode byte.
        let mut bad = good.clone();
        bad[0] = 9;
        assert!(decode_values(&bad, 3).is_err());
        // Non-positive / non-finite scale.
        for evil in [0.0f64, -1.0, f64::NAN, f64::INFINITY] {
            let mut bad = good.clone();
            bad[1..9].copy_from_slice(&evil.to_le_bytes());
            assert!(decode_values(&bad, 3).is_err());
        }
        // Nonzero offset is reserved.
        let mut bad = good.clone();
        bad[9..17].copy_from_slice(&1.0f64.to_le_bytes());
        assert!(matches!(
            decode_values(&bad, 3),
            Err(PersistError::Corrupt("unsupported quantization offset"))
        ));
        // Truncations.
        for cut in 0..good.len() {
            assert!(decode_values(&good[..cut], 3).is_err(), "cut {cut}");
        }
    }
}
