//! Oracle persistence: a versioned, checksummed binary image of a built
//! [`SeOracle`].
//!
//! The paper's "oracle size" measurement is exactly what a deployment would
//! write to disk: the compressed partition tree plus the node-pair set.
//! This module serializes those two components (everything a query needs)
//! in a flat little-endian format; the perfect hash is *rebuilt* on load
//! from the stored entries, which costs expected `O(pairs)` — the same
//! complexity as reading them — and keeps hash-function internals out of
//! the format, so the on-disk layout survives hashing changes.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic  "SEOR"          4 bytes
//! version u32            currently 1
//! payload length u64
//! payload:
//!   eps f64
//!   r0 f64, h u32, root u32
//!   node count u32, then per node: center u32, layer u32, parent u32,
//!                                  radius f64
//!   site count u32, then leaf_of_site u32 each
//!   pair count u64, then per pair: key u64, dist f64
//! checksum u64           FNV-1a over the payload bytes
//! ```

use crate::ctree::{CNode, CompressedTree};
use crate::oracle::SeOracle;
use crate::tree::NO_NODE;
use std::io::{self, Read, Write};

const MAGIC: [u8; 4] = *b"SEOR";
const VERSION: u32 = 1;
/// Salt for the rebuilt perfect hash; any value works, a fixed one keeps
/// loads deterministic.
const REBUILD_SEED: u64 = 0x5E0A_AC1E_0F11_E5ED;

/// Deserialization failures.
#[derive(Debug)]
pub enum PersistError {
    Io(io::Error),
    /// Not an SE oracle image.
    BadMagic([u8; 4]),
    /// Image written by an unknown format version.
    BadVersion(u32),
    /// Structurally invalid image (message names the first violation).
    Corrupt(&'static str),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            PersistError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt oracle image: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.at + n > self.buf.len() {
            return Err(PersistError::Corrupt("truncated payload"));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
}

impl SeOracle {
    /// Serializes the oracle to `w`.
    pub fn save_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let t = self.tree();
        let mut p: Vec<u8> = Vec::with_capacity(64 + 24 * t.n_nodes() + 16 * self.n_pairs());
        p.extend_from_slice(&self.epsilon().to_le_bytes());
        p.extend_from_slice(&t.r0.to_le_bytes());
        p.extend_from_slice(&t.h.to_le_bytes());
        p.extend_from_slice(&t.root.to_le_bytes());
        p.extend_from_slice(&(t.n_nodes() as u32).to_le_bytes());
        for n in &t.nodes {
            p.extend_from_slice(&n.center.to_le_bytes());
            p.extend_from_slice(&n.layer.to_le_bytes());
            p.extend_from_slice(&n.parent.to_le_bytes());
            p.extend_from_slice(&n.radius.to_le_bytes());
        }
        p.extend_from_slice(&(t.leaf_of_site.len() as u32).to_le_bytes());
        for &leaf in &t.leaf_of_site {
            p.extend_from_slice(&leaf.to_le_bytes());
        }
        p.extend_from_slice(&(self.n_pairs() as u64).to_le_bytes());
        for (k, d) in self.pair_entries() {
            p.extend_from_slice(&k.to_le_bytes());
            p.extend_from_slice(&d.to_le_bytes());
        }

        w.write_all(&MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(p.len() as u64).to_le_bytes())?;
        w.write_all(&p)?;
        w.write_all(&fnv1a(&p).to_le_bytes())?;
        Ok(())
    }

    /// Serializes to an in-memory buffer.
    pub fn save_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.save_to(&mut out).expect("Vec<u8> writes are infallible");
        out
    }

    /// Deserializes an oracle written by [`Self::save_to`], validating the
    /// checksum and every structural invariant (tree shape, layer
    /// monotonicity, leaf mapping) before returning.
    pub fn load_from<R: Read>(r: &mut R) -> Result<Self, PersistError> {
        let mut head = [0u8; 16];
        r.read_exact(&mut head)?;
        let magic: [u8; 4] = head[0..4].try_into().expect("4 bytes");
        if magic != MAGIC {
            return Err(PersistError::BadMagic(magic));
        }
        let version = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(PersistError::BadVersion(version));
        }
        let len = u64::from_le_bytes(head[8..16].try_into().expect("8 bytes"));
        if len > (1 << 40) {
            return Err(PersistError::Corrupt("implausible payload length"));
        }
        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)?;
        let mut sum = [0u8; 8];
        r.read_exact(&mut sum)?;
        if u64::from_le_bytes(sum) != fnv1a(&payload) {
            return Err(PersistError::Corrupt("checksum mismatch"));
        }

        let mut c = Cursor { buf: &payload, at: 0 };
        let eps = c.f64()?;
        if !(eps > 0.0 && eps.is_finite()) {
            return Err(PersistError::Corrupt("invalid ε"));
        }
        let r0 = c.f64()?;
        let h = c.u32()?;
        let root = c.u32()?;
        let n_nodes = c.u32()? as usize;
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            nodes.push(CNode {
                center: c.u32()?,
                layer: c.u32()?,
                parent: c.u32()?,
                children: Vec::new(),
                radius: c.f64()?,
            });
        }
        let n_sites = c.u32()? as usize;
        let mut leaf_of_site = Vec::with_capacity(n_sites);
        for _ in 0..n_sites {
            leaf_of_site.push(c.u32()?);
        }
        let n_pairs = c.u64()? as usize;
        let mut entries = Vec::with_capacity(n_pairs);
        for _ in 0..n_pairs {
            entries.push((c.u64()?, c.f64()?));
        }
        if c.at != payload.len() {
            return Err(PersistError::Corrupt("trailing bytes in payload"));
        }

        // Rebuild children lists and validate the tree.
        if root as usize >= n_nodes {
            return Err(PersistError::Corrupt("root out of range"));
        }
        let parents: Vec<u32> = nodes.iter().map(|n| n.parent).collect();
        for (id, &p) in parents.iter().enumerate() {
            if id as u32 == root {
                if p != NO_NODE {
                    return Err(PersistError::Corrupt("root has a parent"));
                }
                continue;
            }
            if p == NO_NODE || p as usize >= n_nodes {
                return Err(PersistError::Corrupt("non-root node without valid parent"));
            }
            if nodes[p as usize].layer >= nodes[id].layer {
                return Err(PersistError::Corrupt("parent layer not higher than child"));
            }
            nodes[p as usize].children.push(id as u32);
        }
        for (site, &leaf) in leaf_of_site.iter().enumerate() {
            let ok = (leaf as usize) < n_nodes
                && nodes[leaf as usize].children.is_empty()
                && nodes[leaf as usize].center as usize == site;
            if !ok {
                return Err(PersistError::Corrupt("leaf_of_site mapping broken"));
            }
        }

        let ctree = CompressedTree { nodes, root, r0, h, leaf_of_site };
        Ok(SeOracle::from_parts(eps, ctree, entries, REBUILD_SEED))
    }

    /// Deserializes from an in-memory buffer.
    pub fn load_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        let mut r = bytes;
        Self::load_from(&mut r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::BuildConfig;
    use geodesic::ich::IchEngine;
    use geodesic::sitespace::VertexSiteSpace;
    use std::sync::Arc;
    use terrain::gen::diamond_square;
    use terrain::poi::sample_uniform;
    use terrain::refine::insert_surface_points;

    fn oracle(n: usize, seed: u64, eps: f64) -> SeOracle {
        let mesh = diamond_square(4, 0.6, seed).to_mesh();
        let pois = sample_uniform(&mesh, n, seed ^ 0x9E);
        let refined = insert_surface_points(&mesh, &pois, None).unwrap();
        let mut sites = refined.poi_vertices.clone();
        sites.sort_unstable();
        sites.dedup();
        let sp = VertexSiteSpace::new(Arc::new(IchEngine::new(Arc::new(refined.mesh))), sites);
        SeOracle::build(&sp, eps, &BuildConfig::default()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_every_answer() {
        let o = oracle(25, 21, 0.15);
        let bytes = o.save_bytes();
        let loaded = SeOracle::load_bytes(&bytes).unwrap();
        assert_eq!(loaded.epsilon(), o.epsilon());
        assert_eq!(loaded.n_sites(), o.n_sites());
        assert_eq!(loaded.n_pairs(), o.n_pairs());
        assert_eq!(loaded.height(), o.height());
        for s in 0..o.n_sites() {
            for t in 0..o.n_sites() {
                assert_eq!(loaded.distance(s, t), o.distance(s, t), "({s},{t})");
            }
        }
    }

    #[test]
    fn roundtrip_is_stable() {
        // save(load(save(x))) == save(load(x)) — the image is canonical
        // after one round trip.
        let o = oracle(12, 23, 0.25);
        let b1 = o.save_bytes();
        let l1 = SeOracle::load_bytes(&b1).unwrap();
        let b2 = l1.save_bytes();
        let l2 = SeOracle::load_bytes(&b2).unwrap();
        assert_eq!(b2, l2.save_bytes());
    }

    #[test]
    fn bad_magic_rejected() {
        let o = oracle(8, 25, 0.3);
        let mut bytes = o.save_bytes();
        bytes[0] = b'X';
        assert!(matches!(SeOracle::load_bytes(&bytes), Err(PersistError::BadMagic(_))));
    }

    #[test]
    fn bad_version_rejected() {
        let o = oracle(8, 27, 0.3);
        let mut bytes = o.save_bytes();
        bytes[4] = 99;
        assert!(matches!(SeOracle::load_bytes(&bytes), Err(PersistError::BadVersion(99))));
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let o = oracle(10, 29, 0.2);
        let mut bytes = o.save_bytes();
        let mid = 16 + (bytes.len() - 24) / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            SeOracle::load_bytes(&bytes),
            Err(PersistError::Corrupt("checksum mismatch"))
        ));
    }

    #[test]
    fn truncation_rejected() {
        let o = oracle(10, 31, 0.2);
        let bytes = o.save_bytes();
        for cut in [3usize, 15, 20, bytes.len() - 4] {
            assert!(SeOracle::load_bytes(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn empty_input_rejected() {
        assert!(SeOracle::load_bytes(&[]).is_err());
    }

    #[test]
    fn queries_after_reload_stay_within_eps() {
        // End-to-end: the reloaded oracle keeps the ε guarantee against
        // freshly computed exact distances.
        let mesh = diamond_square(4, 0.6, 33).to_mesh();
        let pois = sample_uniform(&mesh, 15, 0x33);
        let refined = insert_surface_points(&mesh, &pois, None).unwrap();
        let mut sites = refined.poi_vertices.clone();
        sites.sort_unstable();
        sites.dedup();
        let sp = VertexSiteSpace::new(Arc::new(IchEngine::new(Arc::new(refined.mesh))), sites);
        let eps = 0.2;
        let o = SeOracle::build(&sp, eps, &BuildConfig::default()).unwrap();
        let loaded = SeOracle::load_bytes(&o.save_bytes()).unwrap();
        use geodesic::sitespace::SiteSpace;
        for s in 0..loaded.n_sites() {
            let exact = sp.all_distances(s);
            for (t, &ex) in exact.iter().enumerate().take(loaded.n_sites()) {
                let d = loaded.distance(s, t);
                assert!((d - ex).abs() <= eps * ex + 1e-9);
            }
        }
    }
}
