//! Oracle persistence: versioned, checksummed binary images of a built
//! [`SeOracle`] and of a whole [`Atlas`].
//!
//! The paper's "oracle size" measurement is exactly what a deployment would
//! write to disk: the compressed partition tree plus the node-pair set.
//! This module serializes those two components (everything a query needs)
//! in a flat little-endian format; the perfect hash is *rebuilt* on load
//! from the stored entries, which costs expected `O(pairs)` — the same
//! complexity as reading them — and keeps hash-function internals out of
//! the format, so the on-disk layout survives hashing changes.
//!
//! Both image kinds share one **frame**: a 4-byte magic, an explicit
//! format-version word, the payload length, the payload, and an FNV-1a
//! checksum over the payload. The frame is written and validated by one
//! pair of helpers, so a magic or version mismatch fails identically (and
//! actionably — the error names the found and the supported version)
//! everywhere, and future format revisions bump one constant per kind.
//!
//! Monolithic layout (all integers little-endian):
//!
//! ```text
//! magic  "SEOR"          4 bytes
//! version u32            currently ORACLE_VERSION = 1
//! payload length u64
//! payload:
//!   eps f64
//!   r0 f64, h u32, root u32
//!   node count u32, then per node: center u32, layer u32, parent u32,
//!                                  radius f64
//!   site count u32, then leaf_of_site u32 each
//!   pair count u64, then per pair: key u64, dist f64
//! checksum u64           FNV-1a over the payload bytes
//! ```
//!
//! Atlas layout:
//!
//! ```text
//! magic  "SEAT"          4 bytes
//! version u32            currently ATLAS_VERSION = 1
//! payload length u64
//! payload:
//!   eps f64
//!   site count u32, portal count u32, tile count u32
//!   per site:  home tile u32, membership count u32,
//!              then per membership: tile u32, local site u32
//!   per tile:  oracle image length u64, then a complete nested SEOR image
//!              portal count u32, then per portal: global id u32, local u32
//!              table count u64, then f64 each (portal count², row-major)
//! checksum u64           FNV-1a over the payload bytes
//! ```
//!
//! The portal graph is *rebuilt* on load from the per-tile tables — same
//! rationale as the perfect hash. Loading validates every structural
//! invariant (nested images, membership tables, portal ids, routability)
//! before returning, and a loaded image re-serializes byte-identically.
//!
//! # Compact (`v2`) images
//!
//! [`SeOracle::save_to_compact`] / [`Atlas::save_to_compact`] write format
//! **version 2**, which replaces the fixed-width arrays with LEB128
//! varints and routes every `f64` table (node radii, pair distances,
//! portal tables) through the bounded-error quantizer of [`crate::quant`]
//! (lossless raw mode when `compress` is off, so uncompressed v2 answers
//! stay bit-identical; quantized mode bounds every value's relative decode
//! error by [`crate::quant::EPS_QUANT`]). Both loaders accept v1 *and* v2
//! via the version word in the frame — old images keep loading unchanged.
//!
//! Monolithic v2 payload (struct-of-arrays; `qtable` is the mode-tagged
//! table of `crate::quant`, `varint` is LEB128):
//!
//! ```text
//!   eps f64, r0 f64, h u32, root u32
//!   node count u32, then centers (varint each), layers (varint each),
//!                        parents (varint each), radii qtable
//!   site count u32, then leaf_of_site varint each
//!   pair count u64, then keys as ascending deltas (varint each; first is
//!                   absolute), then distances qtable in the same order
//! ```
//!
//! Atlas v2 payload:
//!
//! ```text
//!   eps f64
//!   site count u32, portal count u32, tile count u32
//!   per site:  home varint, membership count varint,
//!              then per membership: tile varint, local varint
//!   tile directory: per tile, its segment length (varint) — the segments
//!              follow concatenated, so any tile can be located and decoded
//!              without touching the others (the out-of-core `TileStore`
//!              reads exactly one segment per miss)
//!   per tile segment: oracle image length u64, a complete nested SEOR
//!              image (independently framed and checksummed), portal count
//!              u32, per portal: global id varint, local varint, then the
//!              portal table qtable (portal count², row-major)
//! ```

use crate::atlas::{Atlas, AtlasTile};
use crate::ctree::{CNode, CompressedTree};
use crate::oracle::SeOracle;
use crate::quant::{read_qtable, read_varint, write_qtable, write_varint};
use crate::tree::NO_NODE;
use std::io::{self, Read, Write};
use std::ops::RangeInclusive;

/// Magic of monolithic (`SEOR`) oracle images — public so deployment
/// front ends (e.g. `oracled`) can sniff an image's kind from its first
/// four bytes before choosing a loader.
pub const ORACLE_MAGIC: [u8; 4] = *b"SEOR";
const MAGIC: [u8; 4] = ORACLE_MAGIC;
/// Format version of classic (fixed-width, lossless) monolithic `SEOR`
/// oracle images — what [`SeOracle::save_to`] writes.
pub const ORACLE_VERSION: u32 = 1;
/// Format version of compact monolithic `SEOR` images (varint + qtable
/// encoding; see the module docs) — what [`SeOracle::save_to_compact`]
/// writes. Loaders accept both versions.
pub const ORACLE_VERSION_COMPACT: u32 = 2;
/// Magic of atlas (`SEAT`) images (see [`ORACLE_MAGIC`]).
pub const ATLAS_MAGIC: [u8; 4] = *b"SEAT";
/// Format version of classic atlas (`SEAT`) images.
pub const ATLAS_VERSION: u32 = 1;
/// Format version of compact atlas images with a tile directory (the
/// out-of-core–servable layout) — what [`Atlas::save_to_compact`] writes.
pub const ATLAS_VERSION_COMPACT: u32 = 2;
/// Salt for the rebuilt perfect hash; any value works, a fixed one keeps
/// loads deterministic.
const REBUILD_SEED: u64 = 0x5E0A_AC1E_0F11_E5ED;
/// Hard cap on the stored tree height `h`. The paper reports `h < 30` on
/// every dataset; `h + 1` sizes each per-query layer array, so an
/// image-supplied height must not be an allocation amplifier.
const MAX_TREE_HEIGHT: u32 = 4096;

/// Deserialization failures.
#[derive(Debug)]
pub enum PersistError {
    /// The underlying reader/writer failed.
    Io(io::Error),
    /// Not an image of the expected kind (wrong magic — e.g. an atlas
    /// image fed to the monolithic loader, or not an oracle image at all).
    BadMagic([u8; 4]),
    /// Image written by a format version this build does not read.
    BadVersion {
        /// Version stamped in the image.
        found: u32,
        /// Newest version this build reads.
        supported: u32,
    },
    /// The frame header declared more payload bytes than the input holds —
    /// a truncated file or a connection cut mid-frame. Reported before any
    /// allocation proportional to the declared length.
    Truncated {
        /// Payload length the header declared.
        declared: u64,
        /// Bytes actually available after the header.
        available: u64,
    },
    /// The declared payload length exceeds the hard cap for this frame
    /// kind (a corrupt length field, or a hostile peer requesting a
    /// multi-GB allocation). Nothing was allocated.
    FrameTooLarge {
        /// Payload length the header declared.
        declared: u64,
        /// Hard cap for this frame kind.
        cap: u64,
    },
    /// Structurally invalid image (message names the first violation).
    Corrupt(&'static str),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "I/O error: {e}"),
            PersistError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            PersistError::BadVersion { found, supported } => write!(
                f,
                "image format version {found} not readable by this build \
                 (supported version: {supported})"
            ),
            PersistError::Truncated { declared, available } => write!(
                f,
                "truncated frame: header declares {declared} payload bytes \
                 but only {available} are available"
            ),
            PersistError::FrameTooLarge { declared, cap } => write!(
                f,
                "frame too large: header declares {declared} payload bytes, \
                 hard cap is {cap}"
            ),
            PersistError::Corrupt(msg) => write!(f, "corrupt oracle image: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// Hard cap on a stored image's payload (1 TiB — far above any oracle an
/// in-memory load could serve, far below what a corrupt length field can
/// declare). The network protocol passes its own, much smaller cap.
pub(crate) const IMAGE_FRAME_CAP: u64 = 1 << 40;

/// Writes the shared image frame: magic, explicit format version, payload
/// length, payload, FNV-1a checksum. Every image kind serializes through
/// this one helper (the network protocol reuses it for wire frames).
pub(crate) fn write_framed<W: Write>(
    w: &mut W,
    magic: [u8; 4],
    version: u32,
    payload: &[u8],
) -> io::Result<()> {
    w.write_all(&magic)?;
    w.write_all(&version.to_le_bytes())?;
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&fnv1a(payload).to_le_bytes())?;
    Ok(())
}

/// Reads and validates the frame written by [`write_framed`] — magic,
/// version-against-`supported`, length-against-`cap`, checksum — returning
/// the stamped version and the payload for the kind-specific parser.
/// `supported` is an inclusive version range: image loaders pass
/// `1..=VERSION_COMPACT` so every shipped revision stays readable, while
/// the wire protocol passes a single-version range (peers negotiate, files
/// don't).
///
/// The declared length is **untrusted**: it is checked against `cap`
/// before anything is allocated, and the payload buffer grows with the
/// bytes actually read (never pre-sized to the declared length), so a
/// truncated or hostile input can never cost more memory than it supplies.
/// Fewer bytes than declared yield [`PersistError::Truncated`].
pub(crate) fn read_framed<R: Read>(
    r: &mut R,
    magic: [u8; 4],
    supported: RangeInclusive<u32>,
    cap: u64,
) -> Result<(u32, Vec<u8>), PersistError> {
    let mut head = [0u8; 16];
    r.read_exact(&mut head)?;
    let (version, len) = parse_frame_header(&head, magic, supported, cap)?;
    // Grow-as-read: `take(len)` bounds the read, `read_to_end` grows the
    // buffer geometrically with the bytes that actually arrive (no
    // pre-reservation from the untrusted length at all), so a declared
    // length beyond the real input is reported as Truncated after costing
    // at most ~2× the bytes that exist.
    let mut payload = Vec::new();
    r.take(len).read_to_end(&mut payload)?;
    if (payload.len() as u64) < len {
        return Err(PersistError::Truncated { declared: len, available: payload.len() as u64 });
    }
    let mut sum = [0u8; 8];
    r.read_exact(&mut sum)?;
    if u64::from_le_bytes(sum) != fnv1a(&payload) {
        return Err(PersistError::Corrupt("checksum mismatch"));
    }
    Ok((version, payload))
}

/// Validates the 16-byte frame header (magic, version against the
/// `supported` range, declared length against `cap`) and returns the
/// stamped version plus the declared payload length. Shared by
/// [`read_framed`] and the network protocol's incremental frame reader, so
/// the wire format and the image format enforce one hardened contract.
pub(crate) fn parse_frame_header(
    head: &[u8; 16],
    magic: [u8; 4],
    supported: RangeInclusive<u32>,
    cap: u64,
) -> Result<(u32, u64), PersistError> {
    let found_magic: [u8; 4] = arr(&head[0..4]);
    if found_magic != magic {
        return Err(PersistError::BadMagic(found_magic));
    }
    let found = u32::from_le_bytes(arr(&head[4..8]));
    if !supported.contains(&found) {
        return Err(PersistError::BadVersion { found, supported: *supported.end() });
    }
    let len = u64::from_le_bytes(arr(&head[8..16]));
    if len > cap {
        return Err(PersistError::FrameTooLarge { declared: len, cap });
    }
    Ok((found, len))
}

/// Infallible slice→array copy for reads whose length is fixed by
/// construction (`copy_from_slice` is length-checked at the call site by
/// `take(N)`/slicing, so no panic path survives into release builds).
fn arr<const N: usize>(s: &[u8]) -> [u8; N] {
    let mut out = [0u8; N];
    out.copy_from_slice(s);
    out
}

/// Bounds-checked reader over an untrusted payload — the one decode
/// primitive every image kind **and** the network protocol parse through.
/// Every read is validated against the remaining input, and count fields
/// must be pre-validated against [`Cursor::remaining`] before anything is
/// allocated in proportion to them.
pub(crate) struct Cursor<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) at: usize,
}

impl<'a> Cursor<'a> {
    /// Bytes not yet consumed — the bound any image-supplied count must be
    /// validated against before driving an allocation.
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        // `n` can be a hostile u64 from the payload (e.g. a nested-image
        // length), so the comparison must not compute `self.at + n`.
        if n > self.buf.len() - self.at {
            return Err(PersistError::Corrupt("truncated payload"));
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(arr(self.take(4)?)))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(arr(self.take(8)?)))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_le_bytes(arr(self.take(8)?)))
    }
}

impl SeOracle {
    /// Serializes the oracle to `w`.
    pub fn save_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let t = self.tree();
        let mut p: Vec<u8> = Vec::with_capacity(64 + 24 * t.n_nodes() + 16 * self.n_pairs());
        p.extend_from_slice(&self.epsilon().to_le_bytes());
        p.extend_from_slice(&t.r0.to_le_bytes());
        p.extend_from_slice(&t.h.to_le_bytes());
        p.extend_from_slice(&t.root.to_le_bytes());
        p.extend_from_slice(&(t.n_nodes() as u32).to_le_bytes());
        for n in &t.nodes {
            p.extend_from_slice(&n.center.to_le_bytes());
            p.extend_from_slice(&n.layer.to_le_bytes());
            p.extend_from_slice(&n.parent.to_le_bytes());
            p.extend_from_slice(&n.radius.to_le_bytes());
        }
        p.extend_from_slice(&(t.leaf_of_site.len() as u32).to_le_bytes());
        for &leaf in &t.leaf_of_site {
            p.extend_from_slice(&leaf.to_le_bytes());
        }
        p.extend_from_slice(&(self.n_pairs() as u64).to_le_bytes());
        for (k, d) in self.pair_entries() {
            p.extend_from_slice(&k.to_le_bytes());
            p.extend_from_slice(&d.to_le_bytes());
        }

        write_framed(w, MAGIC, ORACLE_VERSION, &p)
    }

    /// Serializes to an in-memory buffer.
    pub fn save_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        // lint: allow(panic, "Vec<u8> writes are infallible")
        self.save_to(&mut out).expect("Vec<u8> writes are infallible");
        out
    }

    /// Serializes the oracle in the compact v2 format (varints + qtables;
    /// see the module docs). With `compress` off every table is written in
    /// lossless raw mode — the loaded oracle answers bit-identically to
    /// this one. With `compress` on, tables are quantized with a per-table
    /// scale bounding every value's relative decode error by
    /// [`crate::quant::EPS_QUANT`], so answers stay within
    /// `(1+ε)(1+EPS_QUANT)` of the exact metric.
    pub fn save_to_compact<W: Write>(&self, w: &mut W, compress: bool) -> io::Result<()> {
        write_framed(w, MAGIC, ORACLE_VERSION_COMPACT, &self.payload_compact(compress))
    }

    /// [`Self::save_to_compact`] into an in-memory buffer.
    pub fn save_bytes_compact(&self, compress: bool) -> Vec<u8> {
        let mut out = Vec::new();
        // lint: allow(panic, "Vec<u8> writes are infallible")
        self.save_to_compact(&mut out, compress).expect("Vec<u8> writes are infallible");
        out
    }

    /// The v2 payload: struct-of-arrays varint streams plus qtables, with
    /// pair keys sorted ascending and delta-encoded (sorting makes the
    /// encoding canonical — a decode/re-encode round trip is
    /// byte-identical regardless of hash iteration order).
    fn payload_compact(&self, compress: bool) -> Vec<u8> {
        let t = self.tree();
        let mut p: Vec<u8> = Vec::with_capacity(64 + 8 * t.n_nodes() + 6 * self.n_pairs());
        p.extend_from_slice(&self.epsilon().to_le_bytes());
        p.extend_from_slice(&t.r0.to_le_bytes());
        p.extend_from_slice(&t.h.to_le_bytes());
        p.extend_from_slice(&t.root.to_le_bytes());
        p.extend_from_slice(&(t.n_nodes() as u32).to_le_bytes());
        for n in &t.nodes {
            write_varint(&mut p, n.center as u64);
        }
        for n in &t.nodes {
            write_varint(&mut p, n.layer as u64);
        }
        for n in &t.nodes {
            write_varint(&mut p, n.parent as u64);
        }
        let radii: Vec<f64> = t.nodes.iter().map(|n| n.radius).collect();
        write_qtable(&mut p, &radii, compress);
        p.extend_from_slice(&(t.leaf_of_site.len() as u32).to_le_bytes());
        for &leaf in &t.leaf_of_site {
            write_varint(&mut p, leaf as u64);
        }
        let mut pairs: Vec<(u64, f64)> = self.pair_entries().collect();
        pairs.sort_unstable_by_key(|&(k, _)| k);
        p.extend_from_slice(&(pairs.len() as u64).to_le_bytes());
        let mut prev = 0u64;
        for (i, &(k, _)) in pairs.iter().enumerate() {
            write_varint(&mut p, if i == 0 { k } else { k - prev });
            prev = k;
        }
        let dists: Vec<f64> = pairs.iter().map(|&(_, d)| d).collect();
        write_qtable(&mut p, &dists, compress);
        p
    }

    /// Deserializes an oracle written by [`Self::save_to`] (v1) or
    /// [`Self::save_to_compact`] (v2), validating the checksum and every
    /// structural invariant (tree shape, layer monotonicity, leaf mapping)
    /// before returning.
    pub fn load_from<R: Read>(r: &mut R) -> Result<Self, PersistError> {
        let (version, payload) =
            read_framed(r, MAGIC, ORACLE_VERSION..=ORACLE_VERSION_COMPACT, IMAGE_FRAME_CAP)?;
        if version == ORACLE_VERSION_COMPACT {
            Self::parse_payload_compact(&payload)
        } else {
            Self::parse_payload_v1(&payload)
        }
    }

    fn parse_payload_v1(payload: &[u8]) -> Result<Self, PersistError> {
        let mut c = Cursor { buf: payload, at: 0 };
        let eps = c.f64()?;
        if !(eps > 0.0 && eps.is_finite()) {
            return Err(PersistError::Corrupt("invalid ε"));
        }
        let r0 = c.f64()?;
        if !(r0.is_finite() && r0 >= 0.0) {
            return Err(PersistError::Corrupt("root radius not a finite length"));
        }
        let h = c.u32()?;
        // `h + 1` sizes every layer array (and, times n_sites, the dense
        // batch table), so a hostile height is an allocation amplifier.
        // The paper reports h < 30 on every dataset; 4096 is far beyond
        // any real terrain while keeping one layer array at 16 KiB.
        if h > MAX_TREE_HEIGHT {
            return Err(PersistError::Corrupt("implausible tree height"));
        }
        let root = c.u32()?;
        // Counts are image-supplied and drive allocations; bound each by
        // what the remaining payload could possibly encode (a node costs
        // 20 bytes, a leaf entry 4, a pair entry 16) before reserving.
        let n_nodes = c.u32()? as usize;
        if n_nodes > c.remaining() / 20 {
            return Err(PersistError::Corrupt("implausible node count"));
        }
        let mut nodes = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let node = CNode {
                center: c.u32()?,
                layer: c.u32()?,
                parent: c.u32()?,
                children: Vec::new(),
                radius: c.f64()?,
            };
            if node.layer > h {
                return Err(PersistError::Corrupt("node layer exceeds tree height"));
            }
            if !(node.radius.is_finite() && node.radius >= 0.0) {
                return Err(PersistError::Corrupt("node radius not a finite length"));
            }
            nodes.push(node);
        }
        let n_sites = c.u32()? as usize;
        if n_sites > c.remaining() / 4 {
            return Err(PersistError::Corrupt("implausible site count"));
        }
        let mut leaf_of_site = Vec::with_capacity(n_sites);
        for _ in 0..n_sites {
            leaf_of_site.push(c.u32()?);
        }
        let n_pairs = c.u64()? as usize;
        if n_pairs > c.remaining() / 16 {
            return Err(PersistError::Corrupt("implausible pair count"));
        }
        let mut entries = Vec::with_capacity(n_pairs);
        for _ in 0..n_pairs {
            let k = c.u64()?;
            let d = c.f64()?;
            if !(d.is_finite() && d >= 0.0) {
                return Err(PersistError::Corrupt("pair distance not a finite length"));
            }
            entries.push((k, d));
        }
        if c.at != payload.len() {
            return Err(PersistError::Corrupt("trailing bytes in payload"));
        }

        assemble_oracle(OracleParts {
            eps,
            r0,
            h,
            root,
            nodes,
            leaf_of_site,
            entries,
            keys_known_distinct: false,
        })
    }

    /// Parses the v2 payload (see the module docs). Varint-decoded indices
    /// are range-checked as they stream in; the two qtables carry their
    /// own mode/scale validation; pair keys arrive as ascending deltas, so
    /// distinctness is established during decoding (a zero delta is the
    /// corrupt-duplicate case) instead of by a sort afterwards.
    fn parse_payload_compact(payload: &[u8]) -> Result<Self, PersistError> {
        let mut c = Cursor { buf: payload, at: 0 };
        let eps = c.f64()?;
        if !(eps > 0.0 && eps.is_finite()) {
            return Err(PersistError::Corrupt("invalid ε"));
        }
        let r0 = c.f64()?;
        if !(r0.is_finite() && r0 >= 0.0) {
            return Err(PersistError::Corrupt("root radius not a finite length"));
        }
        let h = c.u32()?;
        if h > MAX_TREE_HEIGHT {
            return Err(PersistError::Corrupt("implausible tree height"));
        }
        let root = c.u32()?;
        // A v2 node costs at least 4 payload bytes (three 1-byte varints
        // plus ≥ 1 radii-table byte); bound the count before reserving.
        let n_nodes = c.u32()? as usize;
        if n_nodes > c.remaining() / 4 {
            return Err(PersistError::Corrupt("implausible node count"));
        }
        let mut centers = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let v = read_varint(&mut c)?;
            if v > u32::MAX as u64 {
                return Err(PersistError::Corrupt("node center out of range"));
            }
            centers.push(v as u32);
        }
        let mut layers = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let v = read_varint(&mut c)?;
            if v > h as u64 {
                return Err(PersistError::Corrupt("node layer exceeds tree height"));
            }
            layers.push(v as u32);
        }
        let mut parents = Vec::with_capacity(n_nodes);
        for _ in 0..n_nodes {
            let v = read_varint(&mut c)?;
            // NO_NODE (u32::MAX) is the root's valid sentinel.
            if v > u32::MAX as u64 {
                return Err(PersistError::Corrupt("node parent out of range"));
            }
            parents.push(v as u32);
        }
        let radii = read_qtable(&mut c, n_nodes)?;
        let nodes: Vec<CNode> = (0..n_nodes)
            .map(|i| CNode {
                center: centers[i],
                layer: layers[i],
                parent: parents[i],
                children: Vec::new(),
                radius: radii[i],
            })
            .collect();
        let n_sites = c.u32()? as usize;
        if n_sites > c.remaining() {
            return Err(PersistError::Corrupt("implausible site count"));
        }
        let mut leaf_of_site = Vec::with_capacity(n_sites);
        for _ in 0..n_sites {
            let v = read_varint(&mut c)?;
            if v > u32::MAX as u64 {
                return Err(PersistError::Corrupt("leaf_of_site mapping broken"));
            }
            leaf_of_site.push(v as u32);
        }
        // A v2 pair costs at least 2 bytes (1-byte key delta + ≥ 1
        // distance-table byte).
        let n_pairs = c.u64()? as usize;
        if n_pairs > c.remaining() / 2 {
            return Err(PersistError::Corrupt("implausible pair count"));
        }
        let mut keys = Vec::with_capacity(n_pairs);
        let mut prev = 0u64;
        for i in 0..n_pairs {
            let d = read_varint(&mut c)?;
            let k = if i == 0 {
                d
            } else {
                if d == 0 {
                    return Err(PersistError::Corrupt("duplicate node-pair key"));
                }
                prev.checked_add(d).ok_or(PersistError::Corrupt("pair key overflow"))?
            };
            keys.push(k);
            prev = k;
        }
        let dists = read_qtable(&mut c, n_pairs)?;
        if c.at != payload.len() {
            return Err(PersistError::Corrupt("trailing bytes in payload"));
        }
        let entries: Vec<(u64, f64)> = keys.into_iter().zip(dists).collect();

        assemble_oracle(OracleParts {
            eps,
            r0,
            h,
            root,
            nodes,
            leaf_of_site,
            entries,
            keys_known_distinct: true,
        })
    }

    /// Deserializes from an in-memory buffer.
    pub fn load_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        let mut r = bytes;
        Self::load_from(&mut r)
    }
}

/// The decoded-but-unvalidated pieces of an oracle image, shared by the v1
/// and v2 parsers so both formats pass one structural gauntlet.
struct OracleParts {
    eps: f64,
    r0: f64,
    h: u32,
    root: u32,
    nodes: Vec<CNode>,
    leaf_of_site: Vec<u32>,
    entries: Vec<(u64, f64)>,
    /// v2's delta decoding already proves keys strictly ascending, so the
    /// duplicate-key sort can be skipped.
    keys_known_distinct: bool,
}

/// Rebuilds children lists, validates every tree invariant (root, parent
/// layering, leaf mapping, key distinctness), and constructs the oracle.
fn assemble_oracle(parts: OracleParts) -> Result<SeOracle, PersistError> {
    let OracleParts { eps, r0, h, root, mut nodes, leaf_of_site, entries, keys_known_distinct } =
        parts;
    let n_nodes = nodes.len();
    if root as usize >= n_nodes {
        return Err(PersistError::Corrupt("root out of range"));
    }
    let parents: Vec<u32> = nodes.iter().map(|n| n.parent).collect();
    for (id, &p) in parents.iter().enumerate() {
        if id as u32 == root {
            if p != NO_NODE {
                return Err(PersistError::Corrupt("root has a parent"));
            }
            continue;
        }
        if p == NO_NODE || p as usize >= n_nodes {
            return Err(PersistError::Corrupt("non-root node without valid parent"));
        }
        if nodes[p as usize].layer >= nodes[id].layer {
            return Err(PersistError::Corrupt("parent layer not higher than child"));
        }
        nodes[p as usize].children.push(id as u32);
    }
    for (site, &leaf) in leaf_of_site.iter().enumerate() {
        let ok = (leaf as usize) < n_nodes
            && nodes[leaf as usize].children.is_empty()
            && nodes[leaf as usize].center as usize == site;
        if !ok {
            return Err(PersistError::Corrupt("leaf_of_site mapping broken"));
        }
    }
    // The perfect-hash rebuild requires distinct keys (duplicates are a
    // construction-time panic, which bytes from disk must never reach).
    if !keys_known_distinct {
        let mut keys: Vec<u64> = entries.iter().map(|&(k, _)| k).collect();
        keys.sort_unstable();
        if keys.windows(2).any(|w| w[0] == w[1]) {
            return Err(PersistError::Corrupt("duplicate node-pair key"));
        }
    }

    let ctree = CompressedTree { nodes, root, r0, h, leaf_of_site };
    Ok(SeOracle::from_parts(eps, ctree, entries, REBUILD_SEED))
}

impl Atlas {
    /// Serializes the whole atlas — every tile's oracle as a nested `SEOR`
    /// segment, the site membership tables and the portal tables — to `w`.
    /// The image is self-contained for serving: reloading it restores a
    /// bit-identical query surface without the meshes or engines.
    pub fn save_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut p: Vec<u8> = Vec::new();
        p.extend_from_slice(&self.epsilon().to_le_bytes());
        p.extend_from_slice(&(self.n_sites() as u32).to_le_bytes());
        p.extend_from_slice(&(self.n_portals() as u32).to_le_bytes());
        p.extend_from_slice(&(self.n_tiles() as u32).to_le_bytes());
        for (s, members) in self.site_members().iter().enumerate() {
            p.extend_from_slice(&self.site_homes()[s].to_le_bytes());
            p.extend_from_slice(&(members.len() as u32).to_le_bytes());
            for &(tile, local) in members {
                p.extend_from_slice(&tile.to_le_bytes());
                p.extend_from_slice(&local.to_le_bytes());
            }
        }
        for t in 0..self.n_tiles() {
            let tile = self.tile(t);
            let blob = tile.oracle.save_bytes();
            p.extend_from_slice(&(blob.len() as u64).to_le_bytes());
            p.extend_from_slice(&blob);
            p.extend_from_slice(&(tile.portals.len() as u32).to_le_bytes());
            for &(gid, local) in &tile.portals {
                p.extend_from_slice(&gid.to_le_bytes());
                p.extend_from_slice(&local.to_le_bytes());
            }
            p.extend_from_slice(&(tile.portal_table.len() as u64).to_le_bytes());
            for &d in &tile.portal_table {
                p.extend_from_slice(&d.to_le_bytes());
            }
        }
        write_framed(w, ATLAS_MAGIC, ATLAS_VERSION, &p)
    }

    /// Serializes to an in-memory buffer.
    pub fn save_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        // lint: allow(panic, "Vec<u8> writes are infallible")
        self.save_to(&mut out).expect("Vec<u8> writes are infallible");
        out
    }

    /// Serializes the atlas in the compact v2 format: varint membership
    /// records, a tile directory (so the out-of-core [`crate::tilestore`]
    /// can seek straight to one tile's segment), nested compact oracle
    /// images, and qtable portal tables. `compress` selects quantized
    /// (bounded-error) vs raw (lossless) tables, exactly as in
    /// [`SeOracle::save_to_compact`].
    pub fn save_to_compact<W: Write>(&self, w: &mut W, compress: bool) -> io::Result<()> {
        let mut p: Vec<u8> = Vec::new();
        p.extend_from_slice(&self.epsilon().to_le_bytes());
        p.extend_from_slice(&(self.n_sites() as u32).to_le_bytes());
        p.extend_from_slice(&(self.n_portals() as u32).to_le_bytes());
        p.extend_from_slice(&(self.n_tiles() as u32).to_le_bytes());
        for (s, members) in self.site_members().iter().enumerate() {
            write_varint(&mut p, self.site_homes()[s] as u64);
            write_varint(&mut p, members.len() as u64);
            for &(tile, local) in members {
                write_varint(&mut p, tile as u64);
                write_varint(&mut p, local as u64);
            }
        }
        let mut segments: Vec<Vec<u8>> = Vec::with_capacity(self.n_tiles());
        for t in 0..self.n_tiles() {
            let tile = self.tile(t);
            let blob = tile.oracle.save_bytes_compact(compress);
            let mut s = Vec::with_capacity(blob.len() + 64);
            s.extend_from_slice(&(blob.len() as u64).to_le_bytes());
            s.extend_from_slice(&blob);
            s.extend_from_slice(&(tile.portals.len() as u32).to_le_bytes());
            for &(gid, local) in &tile.portals {
                write_varint(&mut s, gid as u64);
                write_varint(&mut s, local as u64);
            }
            write_qtable(&mut s, &tile.portal_table, compress);
            segments.push(s);
        }
        for s in &segments {
            write_varint(&mut p, s.len() as u64);
        }
        for s in &segments {
            p.extend_from_slice(s);
        }
        write_framed(w, ATLAS_MAGIC, ATLAS_VERSION_COMPACT, &p)
    }

    /// [`Self::save_to_compact`] into an in-memory buffer.
    pub fn save_bytes_compact(&self, compress: bool) -> Vec<u8> {
        let mut out = Vec::new();
        // lint: allow(panic, "Vec<u8> writes are infallible")
        self.save_to_compact(&mut out, compress).expect("Vec<u8> writes are infallible");
        out
    }

    /// Deserializes an atlas written by [`Self::save_to`] (v1) or
    /// [`Self::save_to_compact`] (v2), validating the checksum, every
    /// nested oracle image, the membership and portal tables, and tile
    /// routability before returning. Both versions flow through
    /// `parse_seat_layout` + `decode_tile_segment` — the same pair the
    /// out-of-core `TileStore` uses, so a fully-resident load and a lazy
    /// one decode identical bytes identically.
    pub fn load_from<R: Read>(r: &mut R) -> Result<Self, PersistError> {
        let (version, payload) =
            read_framed(r, ATLAS_MAGIC, ATLAS_VERSION..=ATLAS_VERSION_COMPACT, IMAGE_FRAME_CAP)?;
        let layout = parse_seat_layout(&payload, version)?;
        let mut tiles = Vec::with_capacity(layout.segments.len());
        for &(off, len) in &layout.segments {
            tiles.push(decode_tile_segment(&payload[off..off + len], version, layout.n_portals)?);
        }
        for members in &layout.site_members {
            let ok =
                members.iter().all(|&(t, l)| (l as usize) < tiles[t as usize].oracle.n_sites());
            if !ok {
                return Err(PersistError::Corrupt("site membership local id out of range"));
            }
        }
        Atlas::from_parts(
            layout.eps,
            tiles,
            layout.site_home,
            layout.site_members,
            layout.n_portals,
        )
        .map_err(PersistError::Corrupt)
    }

    /// Deserializes from an in-memory buffer.
    pub fn load_bytes(bytes: &[u8]) -> Result<Self, PersistError> {
        let mut r = bytes;
        Self::load_from(&mut r)
    }
}

/// The structural skeleton of a `SEAT` payload: everything *except* the
/// decoded tiles — shared metadata plus the byte span of every tile
/// segment (relative to the payload). [`Atlas::load_from`] decodes all
/// segments eagerly; the out-of-core `TileStore` keeps the spans and
/// decodes per miss.
pub(crate) struct SeatLayout {
    pub(crate) eps: f64,
    pub(crate) n_portals: usize,
    pub(crate) site_home: Vec<u32>,
    pub(crate) site_members: Vec<Vec<(u32, u32)>>,
    /// Per tile: `(offset, len)` of its segment within the payload.
    pub(crate) segments: Vec<(usize, usize)>,
}

/// Parses the shared head of a `SEAT` payload (ε, counts, site membership
/// records) and locates every tile segment — by structural walk for v1
/// (each record's lengths are read and skipped), by the tile directory for
/// v2. Validates every plausibility bound and membership invariant; tile
/// *contents* are validated by [`decode_tile_segment`].
pub(crate) fn parse_seat_layout(payload: &[u8], version: u32) -> Result<SeatLayout, PersistError> {
    let compact = version == ATLAS_VERSION_COMPACT;
    let mut c = Cursor { buf: payload, at: 0 };
    let eps = c.f64()?;
    if !(eps > 0.0 && eps.is_finite()) {
        return Err(PersistError::Corrupt("invalid ε"));
    }
    let n_sites = c.u32()? as usize;
    let n_portals = c.u32()? as usize;
    let n_tiles = c.u32()? as usize;
    if n_tiles == 0 || n_sites == 0 {
        return Err(PersistError::Corrupt("atlas without tiles or sites"));
    }
    // Counts are image-supplied and drive allocations (membership vectors
    // here, the portal graph in `from_parts`, routing scratch at query
    // time), so bound them by what the payload could possibly hold before
    // allocating anything proportional to them. v1 records cost at least
    // 8 bytes per site/tile/portal; v2 varint records can be as small as
    // 4 bytes per site (home + count + one 2-byte membership), 2 per
    // portal occurrence, and 8+ per tile (its directory entry plus the
    // nested image's frame).
    let rem = payload.len() - c.at;
    let plausible = if compact {
        n_sites <= rem / 4 && n_tiles <= rem / 8 && n_portals <= rem / 2
    } else {
        n_sites <= rem / 8 && n_tiles <= rem / 8 && n_portals <= rem / 8
    };
    if !plausible {
        return Err(PersistError::Corrupt("implausible atlas counts"));
    }

    let mut site_home = Vec::with_capacity(n_sites);
    let mut site_members: Vec<Vec<(u32, u32)>> = Vec::with_capacity(n_sites);
    for _ in 0..n_sites {
        let (home, m) = if compact {
            let home = read_varint(&mut c)?;
            let m = read_varint(&mut c)?;
            if home >= n_tiles as u64 {
                return Err(PersistError::Corrupt("site home tile out of range"));
            }
            if m == 0 || m > n_tiles as u64 {
                return Err(PersistError::Corrupt("implausible site membership count"));
            }
            (home as u32, m as usize)
        } else {
            let home = c.u32()?;
            let m = c.u32()? as usize;
            if home as usize >= n_tiles {
                return Err(PersistError::Corrupt("site home tile out of range"));
            }
            if m == 0 || m > n_tiles {
                return Err(PersistError::Corrupt("implausible site membership count"));
            }
            (home, m)
        };
        let mut members = Vec::with_capacity(m);
        for _ in 0..m {
            if compact {
                let t = read_varint(&mut c)?;
                let l = read_varint(&mut c)?;
                if t >= n_tiles as u64 {
                    return Err(PersistError::Corrupt("site membership tiles not ascending"));
                }
                if l > u32::MAX as u64 {
                    return Err(PersistError::Corrupt("site membership local id out of range"));
                }
                members.push((t as u32, l as u32));
            } else {
                members.push((c.u32()?, c.u32()?));
            }
        }
        let ascending = members.windows(2).all(|w| w[0].0 < w[1].0);
        if !ascending || members.iter().any(|&(t, _)| t as usize >= n_tiles) {
            return Err(PersistError::Corrupt("site membership tiles not ascending"));
        }
        if !members.iter().any(|&(t, _)| t == home) {
            return Err(PersistError::Corrupt("site home missing from its memberships"));
        }
        site_home.push(home);
        site_members.push(members);
    }

    let mut segments = Vec::with_capacity(n_tiles);
    if compact {
        // v2: the directory names each segment's length; they must tile
        // the rest of the payload exactly.
        let mut lens = Vec::with_capacity(n_tiles);
        for _ in 0..n_tiles {
            lens.push(read_varint(&mut c)?);
        }
        let mut total = 0u64;
        for &l in &lens {
            total = total.checked_add(l).ok_or(PersistError::Corrupt("tile directory overflow"))?;
        }
        if total != c.remaining() as u64 {
            return Err(PersistError::Corrupt("tile directory does not span payload"));
        }
        let mut at = c.at;
        for &l in &lens {
            segments.push((at, l as usize));
            at += l as usize;
        }
    } else {
        // v1: walk each tile record, validating the length fields exactly
        // as the eager loader always has, and record its span.
        for _ in 0..n_tiles {
            let start = c.at;
            let blob_len = c.u64()? as usize;
            c.take(blob_len)?;
            let np = c.u32()? as usize;
            if np > n_portals {
                return Err(PersistError::Corrupt("tile portal count exceeds total"));
            }
            c.take(np * 8)?;
            let tl = c.u64()? as usize;
            if tl != np * np {
                return Err(PersistError::Corrupt("portal table is not |portals|²"));
            }
            // `np ≤ n_portals` bounds `tl` only quadratically; check it
            // against the bytes actually left (8 per entry) before
            // consuming, like every other image-supplied count.
            if tl > c.remaining() / 8 {
                return Err(PersistError::Corrupt("truncated portal table"));
            }
            c.take(tl * 8)?;
            segments.push((start, c.at - start));
        }
        if c.at != payload.len() {
            return Err(PersistError::Corrupt("trailing bytes in payload"));
        }
    }

    Ok(SeatLayout { eps, n_portals, site_home, site_members, segments })
}

/// Decodes one tile segment located by [`parse_seat_layout`]: the nested
/// oracle image (independently framed and checksummed — an out-of-core
/// reload re-verifies the tile's integrity), the portal list, and the
/// portal table. Validates portal ids against `n_portals` and the decoded
/// oracle's site count.
pub(crate) fn decode_tile_segment(
    seg: &[u8],
    version: u32,
    n_portals: usize,
) -> Result<AtlasTile, PersistError> {
    let compact = version == ATLAS_VERSION_COMPACT;
    let mut c = Cursor { buf: seg, at: 0 };
    let blob_len = c.u64()? as usize;
    let oracle = SeOracle::load_bytes(c.take(blob_len)?)?;
    let np = c.u32()? as usize;
    if np > n_portals {
        return Err(PersistError::Corrupt("tile portal count exceeds total"));
    }
    let mut portals = Vec::with_capacity(np);
    for _ in 0..np {
        if compact {
            let g = read_varint(&mut c)?;
            let l = read_varint(&mut c)?;
            if g > u32::MAX as u64 || l > u32::MAX as u64 {
                return Err(PersistError::Corrupt("tile portal table ids invalid"));
            }
            portals.push((g as u32, l as u32));
        } else {
            portals.push((c.u32()?, c.u32()?));
        }
    }
    let ascending = portals.windows(2).all(|w| w[0].0 < w[1].0);
    if !ascending
        || portals.iter().any(|&(g, l)| g as usize >= n_portals || l as usize >= oracle.n_sites())
    {
        return Err(PersistError::Corrupt("tile portal table ids invalid"));
    }
    let portal_table = if compact {
        read_qtable(&mut c, np * np)?
    } else {
        let tl = c.u64()? as usize;
        if tl != np * np {
            return Err(PersistError::Corrupt("portal table is not |portals|²"));
        }
        if tl > c.remaining() / 8 {
            return Err(PersistError::Corrupt("truncated portal table"));
        }
        let mut table = Vec::with_capacity(tl);
        for _ in 0..tl {
            let d = c.f64()?;
            if !(d.is_finite() && d >= 0.0) {
                return Err(PersistError::Corrupt("portal distance not a finite length"));
            }
            table.push(d);
        }
        table
    };
    if c.at != seg.len() {
        return Err(PersistError::Corrupt("trailing bytes in tile segment"));
    }
    Ok(AtlasTile { oracle, portals, portal_table })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::BuildConfig;
    use geodesic::ich::IchEngine;
    use geodesic::sitespace::VertexSiteSpace;
    use std::sync::Arc;
    use terrain::gen::diamond_square;
    use terrain::poi::sample_uniform;
    use terrain::refine::insert_surface_points;

    fn oracle(n: usize, seed: u64, eps: f64) -> SeOracle {
        let mesh = diamond_square(4, 0.6, seed).to_mesh();
        let pois = sample_uniform(&mesh, n, seed ^ 0x9E);
        let refined = insert_surface_points(&mesh, &pois, None).unwrap();
        let mut sites = refined.poi_vertices.clone();
        sites.sort_unstable();
        sites.dedup();
        let sp = VertexSiteSpace::new(Arc::new(IchEngine::new(Arc::new(refined.mesh))), sites);
        SeOracle::build(&sp, eps, &BuildConfig::default()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_every_answer() {
        let o = oracle(25, 21, 0.15);
        let bytes = o.save_bytes();
        let loaded = SeOracle::load_bytes(&bytes).unwrap();
        assert_eq!(loaded.epsilon(), o.epsilon());
        assert_eq!(loaded.n_sites(), o.n_sites());
        assert_eq!(loaded.n_pairs(), o.n_pairs());
        assert_eq!(loaded.height(), o.height());
        for s in 0..o.n_sites() {
            for t in 0..o.n_sites() {
                assert_eq!(loaded.distance(s, t), o.distance(s, t), "({s},{t})");
            }
        }
    }

    #[test]
    fn roundtrip_is_stable() {
        // save(load(save(x))) == save(load(x)) — the image is canonical
        // after one round trip.
        let o = oracle(12, 23, 0.25);
        let b1 = o.save_bytes();
        let l1 = SeOracle::load_bytes(&b1).unwrap();
        let b2 = l1.save_bytes();
        let l2 = SeOracle::load_bytes(&b2).unwrap();
        assert_eq!(b2, l2.save_bytes());
    }

    #[test]
    fn bad_magic_rejected() {
        let o = oracle(8, 25, 0.3);
        let mut bytes = o.save_bytes();
        bytes[0] = b'X';
        assert!(matches!(SeOracle::load_bytes(&bytes), Err(PersistError::BadMagic(_))));
    }

    #[test]
    fn bad_version_rejected_with_actionable_message() {
        let o = oracle(8, 27, 0.3);
        let mut bytes = o.save_bytes();
        bytes[4] = 99;
        let err = SeOracle::load_bytes(&bytes).unwrap_err();
        assert!(matches!(
            err,
            PersistError::BadVersion { found: 99, supported: ORACLE_VERSION_COMPACT }
        ));
        let msg = err.to_string();
        assert!(
            msg.contains("99") && msg.contains(&ORACLE_VERSION_COMPACT.to_string()),
            "version error must name found and supported versions: {msg}"
        );
    }

    #[test]
    fn flipped_payload_byte_fails_checksum() {
        let o = oracle(10, 29, 0.2);
        let mut bytes = o.save_bytes();
        let mid = 16 + (bytes.len() - 24) / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            SeOracle::load_bytes(&bytes),
            Err(PersistError::Corrupt("checksum mismatch"))
        ));
    }

    #[test]
    fn truncation_rejected() {
        let o = oracle(10, 31, 0.2);
        let bytes = o.save_bytes();
        for cut in [3usize, 15, 20, bytes.len() - 4] {
            assert!(SeOracle::load_bytes(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn empty_input_rejected() {
        assert!(SeOracle::load_bytes(&[]).is_err());
    }

    // ------------------------------------------------------------------
    // Atlas (`SEAT`) images
    // ------------------------------------------------------------------

    fn small_atlas(n: usize, seed: u64, eps: f64) -> Atlas {
        use crate::atlas::AtlasConfig;
        use crate::p2p::EngineKind;
        let mesh = diamond_square(4, 0.6, seed).to_mesh();
        let pois = sample_uniform(&mesh, n, seed ^ 0x47A5);
        Atlas::build(&mesh, &pois, eps, EngineKind::EdgeGraph, &AtlasConfig::default()).unwrap()
    }

    #[test]
    fn atlas_roundtrip_is_byte_identical_and_answer_preserving() {
        let a = small_atlas(20, 41, 0.2);
        let bytes = a.save_bytes();
        let loaded = Atlas::load_bytes(&bytes).unwrap();
        assert_eq!(
            loaded.save_bytes(),
            bytes,
            "an atlas image must re-serialize byte-identically after a reload"
        );
        assert_eq!(loaded.epsilon(), a.epsilon());
        assert_eq!(loaded.n_sites(), a.n_sites());
        assert_eq!(loaded.n_tiles(), a.n_tiles());
        assert_eq!(loaded.n_portals(), a.n_portals());
        for s in 0..a.n_sites() {
            for t in 0..a.n_sites() {
                assert_eq!(loaded.distance(s, t).to_bits(), a.distance(s, t).to_bits());
            }
        }
    }

    #[test]
    fn atlas_rejects_wrong_magic_and_version() {
        let a = small_atlas(10, 43, 0.25);
        let mut bytes = a.save_bytes();
        // A monolithic image is not an atlas image (and vice versa).
        let o = oracle(8, 43, 0.25);
        assert!(matches!(Atlas::load_bytes(&o.save_bytes()), Err(PersistError::BadMagic(_))));
        assert!(matches!(SeOracle::load_bytes(&bytes), Err(PersistError::BadMagic(_))));
        bytes[4] = 7;
        assert!(matches!(
            Atlas::load_bytes(&bytes),
            Err(PersistError::BadVersion { found: 7, supported: ATLAS_VERSION_COMPACT })
        ));
    }

    // ------------------------------------------------------------------
    // Compact (v2) images
    // ------------------------------------------------------------------

    #[test]
    fn compact_uncompressed_oracle_is_lossless_and_canonical() {
        let o = oracle(20, 51, 0.2);
        let bytes = o.save_bytes_compact(false);
        assert_eq!(u32::from_le_bytes(bytes[4..8].try_into().unwrap()), ORACLE_VERSION_COMPACT);
        let loaded = SeOracle::load_bytes(&bytes).unwrap();
        for s in 0..o.n_sites() {
            for t in 0..o.n_sites() {
                assert_eq!(
                    loaded.distance(s, t).to_bits(),
                    o.distance(s, t).to_bits(),
                    "uncompressed v2 must answer bit-identically ({s},{t})"
                );
            }
        }
        // Canonical: a decode → re-encode round trip is byte-identical.
        assert_eq!(loaded.save_bytes_compact(false), bytes);
    }

    #[test]
    fn compact_compressed_oracle_stays_within_eps_quant() {
        use crate::quant::EPS_QUANT;
        let o = oracle(20, 53, 0.2);
        let bytes = o.save_bytes_compact(true);
        assert!(bytes.len() < o.save_bytes().len(), "compression must shrink the image");
        let loaded = SeOracle::load_bytes(&bytes).unwrap();
        for s in 0..o.n_sites() {
            for t in 0..o.n_sites() {
                let (a, b) = (o.distance(s, t), loaded.distance(s, t));
                assert!((a - b).abs() <= EPS_QUANT * a, "({s},{t}): {a} vs {b}");
            }
        }
        assert_eq!(loaded.save_bytes_compact(true), bytes, "compressed encoding is canonical");
    }

    #[test]
    fn compact_atlas_roundtrips_and_v1_keeps_loading() {
        let a = small_atlas(20, 55, 0.2);
        let v1 = a.save_bytes();
        let raw = a.save_bytes_compact(false);
        let packed = a.save_bytes_compact(true);
        assert_eq!(u32::from_le_bytes(raw[4..8].try_into().unwrap()), ATLAS_VERSION_COMPACT);
        let from_v1 = Atlas::load_bytes(&v1).unwrap();
        let from_raw = Atlas::load_bytes(&raw).unwrap();
        let from_packed = Atlas::load_bytes(&packed).unwrap();
        for s in 0..a.n_sites() {
            for t in 0..a.n_sites() {
                let d = a.distance(s, t);
                assert_eq!(from_v1.distance(s, t).to_bits(), d.to_bits());
                assert_eq!(from_raw.distance(s, t).to_bits(), d.to_bits());
                let dq = from_packed.distance(s, t);
                // Each routed answer sums ≤ 3 quantized legs and takes a
                // min over candidates; relative error per value is
                // ≤ EPS_QUANT and both operations preserve it.
                assert!((d - dq).abs() <= crate::quant::EPS_QUANT * d + 1e-12, "({s},{t})");
            }
        }
        assert_eq!(from_raw.save_bytes_compact(false), raw);
        assert_eq!(from_packed.save_bytes_compact(true), packed);
    }

    #[test]
    fn compact_truncations_and_version_skew_are_typed_errors() {
        let a = small_atlas(10, 57, 0.25);
        let bytes = a.save_bytes_compact(true);
        for cut in [0usize, 3, 15, 40, bytes.len() / 2, bytes.len() - 4] {
            assert!(Atlas::load_bytes(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
        let o = oracle(8, 57, 0.25);
        let ob = o.save_bytes_compact(true);
        for cut in [0usize, 3, 15, 40, ob.len() / 2, ob.len() - 4] {
            assert!(SeOracle::load_bytes(&ob[..cut]).is_err(), "cut at {cut} accepted");
        }
        // A v3 stamp is rejected with the newest supported version named.
        let mut skew = bytes.clone();
        skew[4] = 3;
        assert!(matches!(
            Atlas::load_bytes(&skew),
            Err(PersistError::BadVersion { found: 3, supported: ATLAS_VERSION_COMPACT })
        ));
    }

    #[test]
    fn hostile_nested_length_is_corrupt_not_a_panic() {
        // A SEAT image whose first tile's nested-oracle length field is
        // u64::MAX (checksum recomputed so the frame accepts it) must
        // come back as Corrupt, not overflow/panic inside the cursor.
        let a = small_atlas(8, 47, 0.25);
        let mut bytes = a.save_bytes();
        // Offset of the first tile's blob length within the payload:
        // eps (8) + three counts (12) + per-site membership records.
        let mut at = 16 + 8 + 12;
        for members in a.site_members() {
            at += 8 + 8 * members.len();
        }
        bytes[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let payload_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
        let sum = fnv1a(&bytes[16..16 + payload_len]);
        let tail = 16 + payload_len;
        bytes[tail..tail + 8].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Atlas::load_bytes(&bytes),
            Err(PersistError::Corrupt("truncated payload"))
        ));
    }

    #[test]
    fn hostile_header_counts_are_corrupt_not_an_allocation() {
        // Patching n_portals (or n_sites/n_tiles) to u32::MAX with a
        // recomputed checksum must fail the plausibility bound, not reach
        // the portal-graph/membership allocations.
        let a = small_atlas(8, 49, 0.25);
        let base = a.save_bytes();
        // Header count offsets within the payload: eps (8) then
        // n_sites/n_portals/n_tiles at 8/12/16.
        for count_off in [8usize, 12, 16] {
            let mut bytes = base.clone();
            let at = 16 + count_off;
            bytes[at..at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
            let payload_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
            let sum = fnv1a(&bytes[16..16 + payload_len]);
            let tail = 16 + payload_len;
            bytes[tail..tail + 8].copy_from_slice(&sum.to_le_bytes());
            assert!(
                matches!(
                    Atlas::load_bytes(&bytes),
                    Err(PersistError::Corrupt("implausible atlas counts"))
                ),
                "count at payload offset {count_off} accepted"
            );
        }
    }

    #[test]
    fn atlas_detects_corruption_and_truncation() {
        let a = small_atlas(12, 45, 0.25);
        let bytes = a.save_bytes();
        // Flip one payload byte: the frame checksum catches it.
        let mut flipped = bytes.clone();
        let mid = 16 + (flipped.len() - 24) / 2;
        flipped[mid] ^= 0x20;
        assert!(matches!(
            Atlas::load_bytes(&flipped),
            Err(PersistError::Corrupt("checksum mismatch"))
        ));
        for cut in [0usize, 3, 15, 40, bytes.len() / 2, bytes.len() - 4] {
            assert!(Atlas::load_bytes(&bytes[..cut]).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn queries_after_reload_stay_within_eps() {
        // End-to-end: the reloaded oracle keeps the ε guarantee against
        // freshly computed exact distances.
        let mesh = diamond_square(4, 0.6, 33).to_mesh();
        let pois = sample_uniform(&mesh, 15, 0x33);
        let refined = insert_surface_points(&mesh, &pois, None).unwrap();
        let mut sites = refined.poi_vertices.clone();
        sites.sort_unstable();
        sites.dedup();
        let sp = VertexSiteSpace::new(Arc::new(IchEngine::new(Arc::new(refined.mesh))), sites);
        let eps = 0.2;
        let o = SeOracle::build(&sp, eps, &BuildConfig::default()).unwrap();
        let loaded = SeOracle::load_bytes(&o.save_bytes()).unwrap();
        use geodesic::sitespace::SiteSpace;
        for s in 0..loaded.n_sites() {
            let exact = sp.all_distances(s);
            for (t, &ex) in exact.iter().enumerate().take(loaded.n_sites()) {
                let d = loaded.distance(s, t);
                assert!((d - ex).abs() <= eps * ex + 1e-9);
            }
        }
    }
}
