//! The terrain atlas: one SE oracle per mesh tile, stitched together by a
//! portal graph for cross-tile query routing.
//!
//! A monolithic [`SeOracle`] build touches the whole mesh on every SSAD,
//! which caps the terrain size one construction can digest. The atlas
//! follows the decomposition recipe of planar-graph oracles
//! (Kawarabayashi–Klein–Sommer's linear-space pieces; Gu–Xu's
//! portal-based oracles): [`terrain::tile`] cuts the terrain into a grid
//! of overlapping tiles with shared seam **portals**, this module builds
//! one independent `SeOracle` per tile — embarrassingly parallel over
//! [`geodesic::pool`], each build reusing its own SSAD cache — and a
//! global **portal graph** whose edges are the per-tile portal–portal
//! distance tables.
//!
//! Every tile indexes three kinds of sites: its **own** sites (homed in
//! its core cell), **guest** sites (homed elsewhere but inside its overlap
//! fringe), and **portal** sites. Queries ([`Atlas::distance`]):
//!
//! * **intra-tile** (both sites homed in one tile): answered by that
//!   tile's oracle directly — one `O(h)` probe sequence (plus any other
//!   tile both sites are guests of, minimized over);
//! * **cross-tile**: the minimum of (a) a direct answer from any tile
//!   containing both sites — overlap makes near-seam pairs, the worst
//!   case for portal routing, share a tile — and (b)
//!   `min over (pᵢ, pⱼ) of d(s, pᵢ) + π(pᵢ, pⱼ) + d(pⱼ, t)` where `d` is
//!   the home tile's oracle and `π` a Dijkstra run over the portal graph
//!   seeded with every source-tile portal at once.
//!
//! # Accuracy (the ε_route bound)
//!
//! Every leg is a geodesic **path length on a sub-surface**, so the atlas
//! answer is never shorter than `(1 − ε)` × the true geodesic distance
//! (each oracle leg undershoots its own tile metric by at most ε, and
//! tile metrics dominate the global metric). In the other direction the
//! answer can exceed the truth by the oracle ε **plus a routing detour**:
//! the best portal-constrained path is longer than the free optimum by an
//! amount governed by the portal gap along each seam **relative to the
//! query distances** (near-seam pairs are exempt: overlap hands them a
//! shared tile). Keep roughly ten or more portals per seam — the default
//! spacing of 8 on production-size tiles, spacing 1–2 on toy level-4/5
//! fixtures — and the measured detour stays in the low percent range
//! (e.g. ≤ 4 % at spacing 1, ≤ 14 % at spacing 2 on level-4 fractals).
//! The documented conservative bound at such densities is
//! `atlas ≤ monolithic × (1 + ε_route)` with `ε_route = 0.5`
//! ([`EPS_ROUTE`]), which folds both oracles' ±ε and the detour into one
//! constant. Tests assert it; `examples/atlas_region.rs` reports the much
//! tighter measured ratio.
//!
//! Determinism carries over wholesale: tile builds are byte-identical
//! across thread counts (inherited from [`SeOracle::build`]), the portal
//! graph and Dijkstra break ties on `(distance bits, portal id)`, and the
//! batch/parallel drivers reassemble shard results in input order — an
//! [`AtlasHandle`] answers bit-identically from any number of threads.

// lint: query-path
use crate::oracle::{BuildConfig, BuildError, SeOracle};
use crate::p2p::{make_engine, EngineKind};
use crate::persist::PersistError;
use crate::proximity::DetourPoi;
use crate::route::ShortestPath;
use crate::serve::shard_pairs;
use crate::tilestore::TileStore;
use geodesic::path::{shortest_vertex_path_straightened, SurfacePath};
use geodesic::sitespace::VertexSiteSpace;
use geodesic::steiner::SteinerGraph;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;
use std::sync::Arc;
// lint: allow(d2, "timing types for build stats; wall-clock never feeds oracle data")
use std::time::{Duration, Instant};
use terrain::poi::SurfacePoint;
use terrain::refine::insert_surface_points;
use terrain::tile::{TileError, TileGridConfig, TilePartition};
use terrain::{MeshError, TerrainMesh, VertexId};

/// The documented conservative routing-error constant:
/// `Atlas::distance ≤ SeOracle::distance × (1 + EPS_ROUTE)` against the
/// monolithic oracle over the same sites, provided the tiling keeps
/// roughly ten or more portals per seam (see the module docs for the
/// decomposition into oracle ε and portal detour, and for how portal
/// spacing scales with mesh resolution).
pub const EPS_ROUTE: f64 = 0.5;

/// Compile-time proof the atlas query path is share-and-send safe, like
/// the monolithic serving layer.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Atlas>();
    assert_send_sync::<AtlasHandle>();
};

/// Atlas construction options: the tile grid plus the per-tile oracle
/// build configuration (whose `threads` budget is split between tile-level
/// and within-tile parallelism).
#[derive(Debug, Clone, Copy, Default)]
pub struct AtlasConfig {
    /// Tiling parameters (grid shape, overlap, portal spacing).
    pub grid: TileGridConfig,
    /// Per-tile oracle build options (threads split outer × inner).
    pub build: BuildConfig,
    /// When set, each tile also keeps a Steiner path graph with this many
    /// points per mesh edge, enabling [`Atlas::shortest_path`] (use `≥ 3`
    /// to keep the [`crate::route::EPS_PATH`] contract). `None` (the
    /// default) builds a distance-only atlas; persisted images are always
    /// distance-only, since the path graphs live on the tile meshes.
    pub path_points_per_edge: Option<usize>,
}

/// Atlas construction failures.
#[derive(Debug)]
pub enum AtlasError {
    /// No POIs supplied.
    NoPois,
    /// ε must be a positive real (checked before any tile work starts).
    InvalidEpsilon(f64),
    /// Mesh refinement produced an invalid mesh.
    Refine(MeshError),
    /// Tiling failed (grid too fine, overlap too small, …).
    Tile(TileError),
    /// One tile's oracle construction failed.
    Build {
        /// Index of the failing tile.
        tile: usize,
        /// The tile's construction error.
        source: BuildError,
    },
    /// A site's vertex is missing from its home tile's sub-mesh — the
    /// overlap margin is smaller than the local face size.
    SiteOutsideTile {
        /// Global site index.
        site: usize,
        /// The site's mesh vertex.
        vertex: VertexId,
        /// The tile that should contain it.
        tile: usize,
    },
    /// The portal graph does not connect every tile, so some cross-tile
    /// query would have no route; use a coarser grid or denser portals.
    Unroutable {
        /// Connected components of the portal graph.
        components: usize,
    },
}

impl fmt::Display for AtlasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtlasError::NoPois => write!(f, "POI set is empty"),
            AtlasError::InvalidEpsilon(e) => write!(f, "invalid error parameter ε = {e}"),
            AtlasError::Refine(e) => write!(f, "mesh refinement failed: {e}"),
            AtlasError::Tile(e) => write!(f, "tiling failed: {e}"),
            AtlasError::Build { tile, source } => {
                write!(f, "oracle construction for tile {tile} failed: {source}")
            }
            AtlasError::SiteOutsideTile { site, vertex, tile } => write!(
                f,
                "site {site} (vertex {vertex}) is not in its home tile {tile}'s sub-mesh; \
                 raise the tile overlap"
            ),
            AtlasError::Unroutable { components } => write!(
                f,
                "portal graph splits into {components} components, cross-tile routing would \
                 be incomplete; coarsen the grid or raise overlap/portal density"
            ),
        }
    }
}

impl std::error::Error for AtlasError {}

impl From<TileError> for AtlasError {
    fn from(e: TileError) -> Self {
        AtlasError::Tile(e)
    }
}

/// Timings and shape counters from one atlas construction.
#[derive(Debug, Clone, Default)]
pub struct AtlasBuildStats {
    /// End-to-end build wall clock.
    pub total: Duration,
    /// Partitioning the mesh and planning per-tile site lists.
    pub tiling: Duration,
    /// Building every tile oracle and its portal table (wall clock over
    /// the parallel phase).
    pub oracles: Duration,
    /// Total worker budget ([`BuildConfig::threads`] resolved).
    pub workers: usize,
    /// Concurrent tile builds (the outer level of the split budget).
    pub tile_workers: usize,
    /// Tiles in the grid.
    pub n_tiles: usize,
    /// Seam portal sites across all tiles.
    pub n_portals: usize,
    /// Directed portal-graph edges after per-source dedup.
    pub portal_edges: usize,
    /// Sites per tile oracle (own sites + portal sites).
    pub tile_sites: Vec<usize>,
}

/// One tile's path-reporting payload (only with
/// [`AtlasConfig::path_points_per_edge`]).
struct TilePaths {
    /// Steiner graph over the tile sub-mesh (tile meshes keep global
    /// coordinates, so its polylines live on the global surface).
    graph: SteinerGraph,
    /// Tile-local site id → tile-local mesh vertex (the same order the
    /// tile oracle's site space uses).
    site_vertex: Vec<VertexId>,
}

/// The atlas's optional path-reporting layer.
struct AtlasPaths {
    tiles: Vec<TilePaths>,
    points_per_edge: usize,
}

/// One tile's queryable payload.
pub(crate) struct AtlasTile {
    pub(crate) oracle: SeOracle,
    /// `(global portal id, local site id)`, ascending by portal id.
    pub(crate) portals: Vec<(u32, u32)>,
    /// Row-major `|portals|²` tile-oracle distances — the tile's
    /// contribution to the portal graph, kept for persistence.
    pub(crate) portal_table: Vec<f64>,
}

impl AtlasTile {
    /// Decoded in-memory size of this tile — the unit the out-of-core
    /// resident budget is charged in.
    pub(crate) fn footprint(&self) -> usize {
        use std::mem::size_of;
        self.oracle.storage_bytes()
            + self.portals.len() * size_of::<(u32, u32)>()
            + self.portal_table.len() * size_of::<f64>()
    }
}

/// Where an atlas's decoded tiles live: fully resident (built or eagerly
/// loaded) or behind the out-of-core [`TileStore`], which decodes tile
/// segments on demand under a resident-byte budget. Query code touches
/// tiles only through [`Atlas::tile`], which hands out an [`Arc`] either
/// way — a query pins the tiles it is using, so eviction never invalidates
/// an answer in flight.
enum TileSet {
    Resident(Vec<Arc<AtlasTile>>),
    Store(TileStore),
}

/// A tiled SE oracle: per-tile oracles plus a portal graph for cross-tile
/// routing. Built by [`Atlas::build`]; served through [`AtlasHandle`];
/// persisted by `save_to`/`load_from` (see [`crate::persist`]).
pub struct Atlas {
    eps: f64,
    tiles: TileSet,
    /// Home tile of each global site (the unique core cell containing it).
    site_home: Vec<u32>,
    /// Per global site: every `(tile, local site id)` membership —
    /// ascending by tile, always including the home tile. Guests (overlap
    /// fringe memberships) give near-seam pairs a shared tile to answer
    /// from directly.
    site_members: Vec<Vec<(u32, u32)>>,
    n_portals: usize,
    /// CSR portal graph: `graph_adj[graph_off[p]..graph_off[p + 1]]` are
    /// `(neighbour, weight)` edges, ascending by neighbour, min weight per
    /// neighbour.
    graph_off: Vec<u32>,
    graph_adj: Vec<(u32, f64)>,
    stats: AtlasBuildStats,
    /// Per-tile Steiner path graphs, present only when built with
    /// [`AtlasConfig::path_points_per_edge`].
    paths: Option<AtlasPaths>,
}

impl Atlas {
    /// Builds an atlas over `mesh` with the POIs as sites: refines the
    /// POIs into the mesh, merges co-located ones, and indexes the
    /// resulting distinct sites **in ascending vertex order** (the same
    /// site numbering `tests/common::refine_sites` produces, so atlas and
    /// monolithic oracles built from one POI set agree on site ids).
    pub fn build(
        mesh: &TerrainMesh,
        pois: &[SurfacePoint],
        eps: f64,
        engine: EngineKind,
        cfg: &AtlasConfig,
    ) -> Result<Self, AtlasError> {
        if pois.is_empty() {
            return Err(AtlasError::NoPois);
        }
        let refined = insert_surface_points(mesh, pois, None).map_err(AtlasError::Refine)?;
        let mut sites = refined.poi_vertices;
        sites.sort_unstable();
        sites.dedup();
        Self::build_over_vertices(Arc::new(refined.mesh), sites, eps, engine, cfg)
    }

    /// Core constructor: an atlas over an already refined mesh and a
    /// distinct site vertex list (site `i` is `site_vertices[i]`).
    pub fn build_over_vertices(
        mesh: Arc<TerrainMesh>,
        site_vertices: Vec<VertexId>,
        eps: f64,
        engine: EngineKind,
        cfg: &AtlasConfig,
    ) -> Result<Self, AtlasError> {
        if site_vertices.is_empty() {
            return Err(AtlasError::NoPois);
        }
        if !(eps > 0.0 && eps.is_finite()) {
            return Err(AtlasError::InvalidEpsilon(eps));
        }
        // lint: allow(d2, "build timing recorded in BuildStats only; never feeds the atlas image")
        let t_start = Instant::now();
        let partition = TilePartition::build(&mesh, &cfg.grid)?;
        let n_tiles = partition.n_tiles();
        let portal_verts = partition.portals();
        let n_portals = portal_verts.len();

        // Per-tile plan: the local site list is every global site the
        // tile's sub-mesh contains — own sites and overlap-fringe guests,
        // in ascending global site order — followed by its portal sites; a
        // portal whose vertex already is a site shares that local id.
        struct Plan {
            /// Tile-local mesh vertex of each local site.
            verts: Vec<VertexId>,
            /// `(global portal id, local site id)`, ascending by portal id.
            portals: Vec<(u32, u32)>,
        }
        let mut plans: Vec<Plan> =
            (0..n_tiles).map(|_| Plan { verts: Vec::new(), portals: Vec::new() }).collect();
        let mut vert_site: Vec<BTreeMap<VertexId, u32>> = vec![BTreeMap::new(); n_tiles];
        let mut site_home = vec![0u32; site_vertices.len()];
        let mut site_members: Vec<Vec<(u32, u32)>> = vec![Vec::new(); site_vertices.len()];
        for (s, &v) in site_vertices.iter().enumerate() {
            let home = partition.home_tile(mesh.vertex(v));
            if partition.tile(home).local_vertex(v).is_none() {
                return Err(AtlasError::SiteOutsideTile { site: s, vertex: v, tile: home });
            }
            site_home[s] = home as u32;
            for (t, tile) in partition.tiles().iter().enumerate() {
                let Some(local_v) = tile.local_vertex(v) else { continue };
                let plan = &mut plans[t];
                let local = plan.verts.len() as u32;
                plan.verts.push(local_v);
                vert_site[t].insert(v, local);
                site_members[s].push((t as u32, local));
            }
        }
        for (gid, &pv) in portal_verts.iter().enumerate() {
            for (t, tile) in partition.tiles().iter().enumerate() {
                let Some(local_v) = tile.local_vertex(pv) else { continue };
                let plan = &mut plans[t];
                let local = *vert_site[t].entry(pv).or_insert_with(|| {
                    plan.verts.push(local_v);
                    (plan.verts.len() - 1) as u32
                });
                plan.portals.push((gid as u32, local));
            }
        }
        let tiling = t_start.elapsed();

        // Tile oracles are independent: run them on the worker pool,
        // splitting the thread budget between concurrent tiles (outer) and
        // each tile's own construction pipeline (inner). Either level may
        // take the whole budget — the built atlas is byte-identical for
        // every split because each tile build is.
        let workers = cfg.build.resolved_threads();
        let tile_workers = workers.min(n_tiles).max(1);
        let inner_cfg = BuildConfig { threads: (workers / tile_workers).max(1), ..cfg.build };
        // lint: allow(d2, "per-tile build timing lands in BuildStats only; never in the image")
        let t0 = Instant::now();
        let built: Vec<Result<(SeOracle, Vec<f64>), BuildError>> =
            geodesic::pool::run_indexed(tile_workers, n_tiles, |t| {
                let plan = &plans[t];
                let engine = make_engine(partition.tile(t).mesh.clone(), engine);
                let space = VertexSiteSpace::new(engine, plan.verts.clone());
                let oracle = SeOracle::build(&space, eps, &inner_cfg)?;
                // The tile's portal–portal table: |P|² oracle queries
                // through the amortized batch path.
                let pairs: Vec<(u32, u32)> = plan
                    .portals
                    .iter()
                    .flat_map(|&(_, i)| plan.portals.iter().map(move |&(_, j)| (i, j)))
                    .collect();
                let table = oracle.distance_many(&pairs);
                Ok((oracle, table))
            });
        let oracles = t0.elapsed();

        // Path graphs must be captured here: the per-tile site lists are
        // consumed by the tile assembly below, and the tile meshes are not
        // retained anywhere else.
        let paths = cfg.path_points_per_edge.map(|m| AtlasPaths {
            points_per_edge: m,
            tiles: plans
                .iter()
                .enumerate()
                .map(|(t, plan)| TilePaths {
                    graph: SteinerGraph::with_points_per_edge(partition.tile(t).mesh.clone(), m),
                    site_vertex: plan.verts.clone(),
                })
                .collect(),
        });

        let mut tiles = Vec::with_capacity(n_tiles);
        for (t, (r, plan)) in built.into_iter().zip(plans).enumerate() {
            let (oracle, portal_table) =
                r.map_err(|source| AtlasError::Build { tile: t, source })?;
            tiles.push(AtlasTile { oracle, portals: plan.portals, portal_table });
        }
        if let Some(components) = routing_components(&portal_views(&tiles), n_portals) {
            return Err(AtlasError::Unroutable { components });
        }

        let (graph_off, graph_adj) = build_portal_graph(&portal_views(&tiles), n_portals);
        let stats = AtlasBuildStats {
            total: t_start.elapsed(),
            tiling,
            oracles,
            workers,
            tile_workers,
            n_tiles,
            n_portals,
            portal_edges: graph_adj.len(),
            tile_sites: tiles.iter().map(|t| t.oracle.n_sites()).collect(),
        };
        Ok(Self {
            eps,
            tiles: TileSet::Resident(tiles.into_iter().map(Arc::new).collect()),
            site_home,
            site_members,
            n_portals,
            graph_off,
            graph_adj,
            stats,
            paths,
        })
    }

    /// Reassembles an atlas from its persisted parts, re-deriving the
    /// portal graph (the inverse of what `save_to` writes). Fails when the
    /// parts cannot route every tile pair.
    pub(crate) fn from_parts(
        eps: f64,
        tiles: Vec<AtlasTile>,
        site_home: Vec<u32>,
        site_members: Vec<Vec<(u32, u32)>>,
        n_portals: usize,
    ) -> Result<Self, &'static str> {
        if routing_components(&portal_views(&tiles), n_portals).is_some() {
            return Err("portal graph does not connect every tile");
        }
        let (graph_off, graph_adj) = build_portal_graph(&portal_views(&tiles), n_portals);
        let stats = AtlasBuildStats {
            n_tiles: tiles.len(),
            n_portals,
            portal_edges: graph_adj.len(),
            tile_sites: tiles.iter().map(|t| t.oracle.n_sites()).collect(),
            ..Default::default()
        };
        // Persisted images carry no tile meshes, so reloaded atlases are
        // distance-only (see [`AtlasConfig::path_points_per_edge`]).
        Ok(Self {
            eps,
            tiles: TileSet::Resident(tiles.into_iter().map(Arc::new).collect()),
            site_home,
            site_members,
            n_portals,
            graph_off,
            graph_adj,
            stats,
            paths: None,
        })
    }

    /// Opens a `SEAT` image **out of core**: tile segments stay on disk
    /// and are decoded on demand into an LRU of resident tiles capped at
    /// `resident_budget` decoded bytes (a budget smaller than one tile
    /// still admits that single tile — the floor is "one resident tile at
    /// a time"). Opening validates the *entire* image once — frame
    /// checksum, every tile segment, every membership — then drops the
    /// decoded tiles again, so a corrupt image fails here and never inside
    /// a query. Works for v1 and v2 images alike; answers are
    /// bit-identical to a fully resident [`Atlas::load_from`] of the same
    /// bytes, for any budget and any eviction schedule (see
    /// `tests/out_of_core.rs`).
    pub fn open_out_of_core(
        path: &std::path::Path,
        resident_budget: usize,
    ) -> Result<Self, PersistError> {
        Self::open_out_of_core_with(path, resident_budget, obs::Registry::new())
    }

    /// [`Self::open_out_of_core`] with the caller's metrics registry — the
    /// store's hit/miss/load/eviction counters and resident gauges land
    /// there (serving front ends pass the registry their `Metrics` verb
    /// exposes).
    pub fn open_out_of_core_with(
        path: &std::path::Path,
        resident_budget: usize,
        registry: obs::Registry,
    ) -> Result<Self, PersistError> {
        let (store, meta) = TileStore::open(path, resident_budget, registry)?;
        let views: Vec<PortalView<'_>> =
            meta.portal_data.iter().map(|(p, t)| (p.as_slice(), t.as_slice())).collect();
        if routing_components(&views, meta.n_portals).is_some() {
            return Err(PersistError::Corrupt("portal graph does not connect every tile"));
        }
        let (graph_off, graph_adj) = build_portal_graph(&views, meta.n_portals);
        let stats = AtlasBuildStats {
            n_tiles: store.n_tiles(),
            n_portals: meta.n_portals,
            portal_edges: graph_adj.len(),
            tile_sites: meta.tile_sites,
            ..Default::default()
        };
        Ok(Self {
            eps: meta.eps,
            tiles: TileSet::Store(store),
            site_home: meta.site_home,
            site_members: meta.site_members,
            n_portals: meta.n_portals,
            graph_off,
            graph_adj,
            stats,
            paths: None,
        })
    }

    /// The out-of-core tile store behind this atlas, when it was opened
    /// with [`Self::open_out_of_core`] (`None` for built or eagerly loaded
    /// atlases). Exposes residency statistics and the metrics registry.
    pub fn tile_store(&self) -> Option<&TileStore> {
        match &self.tiles {
            TileSet::Store(s) => Some(s),
            TileSet::Resident(_) => None,
        }
    }

    /// The error parameter ε of every tile oracle.
    pub fn epsilon(&self) -> f64 {
        self.eps
    }

    /// Number of (global) sites indexed.
    pub fn n_sites(&self) -> usize {
        self.site_home.len()
    }

    /// Number of tiles.
    pub fn n_tiles(&self) -> usize {
        match &self.tiles {
            TileSet::Resident(v) => v.len(),
            TileSet::Store(s) => s.n_tiles(),
        }
    }

    /// Number of portals in the routing graph.
    pub fn n_portals(&self) -> usize {
        self.n_portals
    }

    /// Construction statistics (shape counters only after a reload).
    pub fn build_stats(&self) -> &AtlasBuildStats {
        &self.stats
    }

    /// Home tile of site `s`.
    pub fn tile_of_site(&self, s: usize) -> usize {
        self.site_home[s] as usize
    }

    /// Whether `(s, t)` consults the portal graph (`false` for same-home
    /// pairs, which tile oracles answer directly).
    pub fn is_cross_tile(&self, s: usize, t: usize) -> bool {
        self.site_home[s] != self.site_home[t]
    }

    /// Atlas size: every tile oracle plus the portal tables and graph.
    /// For an out-of-core atlas the tile term is the *full* decoded size
    /// (what a resident load would cost — the resident budget bounds what
    /// is actually held; see [`TileStore::stats`]).
    pub fn storage_bytes(&self) -> usize {
        use std::mem::size_of;
        let tile_bytes = match &self.tiles {
            TileSet::Resident(v) => v.iter().map(|t| t.footprint()).sum::<usize>(),
            TileSet::Store(s) => s.decoded_bytes_total(),
        };
        tile_bytes
            + self.site_home.len() * size_of::<u32>()
            + self.site_members.iter().map(|m| m.len() * size_of::<(u32, u32)>()).sum::<usize>()
            + self.graph_off.len() * size_of::<u32>()
            + self.graph_adj.len() * size_of::<(u32, f64)>()
    }

    /// The one way query (and persistence) code reaches a tile. Resident
    /// atlases clone the tile's `Arc`; out-of-core atlases go through the
    /// store, which may decode the segment (a miss) and evict others —
    /// the returned `Arc` keeps this tile's data alive for the caller
    /// regardless, so mid-query eviction cannot invalidate it.
    pub(crate) fn tile(&self, t: usize) -> Arc<AtlasTile> {
        match &self.tiles {
            TileSet::Resident(v) => Arc::clone(&v[t]),
            TileSet::Store(s) => s.tile(t),
        }
    }

    pub(crate) fn site_homes(&self) -> &[u32] {
        &self.site_home
    }

    pub(crate) fn site_members(&self) -> &[Vec<(u32, u32)>] {
        &self.site_members
    }

    /// ε-routed geodesic distance between sites `s` and `t`: intra-tile
    /// pairs go straight to the tile oracle, cross-tile pairs through the
    /// portal graph (see the module docs for the accuracy contract).
    ///
    /// Panics when either site id is out of range; use
    /// [`Self::try_distance`] for a checked variant.
    pub fn distance(&self, s: usize, t: usize) -> f64 {
        self.check_sites(s, t);
        let mut scratch = RouteScratch::new(self.n_portals);
        self.distance_unchecked(s, t, &mut scratch)
    }

    /// Checked query: `None` when either site id is out of range.
    pub fn try_distance(&self, s: usize, t: usize) -> Option<f64> {
        let n = self.n_sites();
        (s < n && t < n).then(|| self.distance(s, t))
    }

    /// Batch query, bit-identical to calling [`Self::distance`] per pair
    /// in input order. The portal-routing scratch (distance labels, heap)
    /// is allocated once and reused across the whole batch, mirroring
    /// `SeOracle::distance_many`'s layer-array amortization.
    ///
    /// Panics when any pair is out of range (the message names the first
    /// offending pair); use [`Self::try_distance_many`] to check instead.
    pub fn distance_many(&self, pairs: &[(u32, u32)]) -> Vec<f64> {
        self.check_pairs(pairs);
        let mut scratch = RouteScratch::new(self.n_portals);
        pairs
            .iter()
            .map(|&(s, t)| self.distance_unchecked(s as usize, t as usize, &mut scratch))
            .collect()
    }

    /// Checked batch query: element `i` is `Some(distance(pairs[i]))` or
    /// `None` when out of range — what mapping [`Self::try_distance`]
    /// returns, with the batch scratch amortization.
    pub fn try_distance_many(&self, pairs: &[(u32, u32)]) -> Vec<Option<f64>> {
        let n = self.n_sites();
        let mut scratch = RouteScratch::new(self.n_portals);
        pairs
            .iter()
            .map(|&(s, t)| {
                let (s, t) = (s as usize, t as usize);
                (s < n && t < n).then(|| self.distance_unchecked(s, t, &mut scratch))
            })
            .collect()
    }

    /// The batch-validation panic, mirroring `SeOracle::check_pairs`.
    pub(crate) fn check_pairs(&self, pairs: &[(u32, u32)]) {
        let n = self.n_sites();
        if let Some((i, &(s, t))) =
            pairs.iter().enumerate().find(|&(_, &(s, t))| s as usize >= n || t as usize >= n)
        {
            // lint: allow(panic, "documented panic contract for out-of-range ids; try_distance_many is the checked alternative")
            panic!(
                "pair #{i} ({s}, {t}) out of range for an atlas over {n} sites \
                 (valid ids are 0..{n}); use Atlas::try_distance_many for a checked batch"
            );
        }
    }

    #[inline]
    fn check_sites(&self, s: usize, t: usize) {
        let n = self.n_sites();
        assert!(
            s < n && t < n,
            "site ids ({s}, {t}) out of range for an atlas over {n} sites \
             (valid ids are 0..{n}); use Atlas::try_distance for a checked query"
        );
    }

    /// The query body over validated ids and a reusable scratch. Every
    /// call leaves the scratch reset, so answers never depend on batch
    /// history — the bit-identity contract between single, batch and
    /// parallel entry points.
    fn distance_unchecked(&self, s: usize, t: usize, scratch: &mut RouteScratch) -> f64 {
        let (ms, mt) = (&self.site_members[s], &self.site_members[t]);
        // Direct answers from every tile containing both sites (same-home
        // pairs always have one; overlap gives near-seam cross-home pairs
        // one too). Sorted-by-tile lists intersect with two pointers.
        let mut best = f64::INFINITY;
        let (mut i, mut j) = (0usize, 0usize);
        while i < ms.len() && j < mt.len() {
            match ms[i].0.cmp(&mt[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let tile = self.tile(ms[i].0 as usize);
                    best = best.min(tile.oracle.distance(ms[i].1 as usize, mt[j].1 as usize));
                    i += 1;
                    j += 1;
                }
            }
        }
        let (hs, ht) = (self.site_home[s], self.site_home[t]);
        if hs != ht {
            let ls = local_in(ms, hs);
            let lt = local_in(mt, ht);
            best = best.min(self.route(hs as usize, ls, ht as usize, lt, scratch));
        }
        assert!(
            best.is_finite(),
            "no route between sites {s} and {t} although construction validated \
             connectivity — the atlas image is corrupt; rebuild it"
        );
        best
    }

    /// Cross-tile routing: seed a portal-graph Dijkstra with every source
    /// portal's oracle distance from `s`, settle the graph, and harvest
    /// the best completion through a destination portal.
    fn route(&self, ts: usize, ls: u32, tt: usize, lt: u32, scratch: &mut RouteScratch) -> f64 {
        let src = self.tile(ts);
        let dst = self.tile(tt);
        debug_assert!(scratch.heap.is_empty() && scratch.touched.is_empty());

        scratch.pairs.clear();
        scratch.pairs.extend(src.portals.iter().map(|&(_, lp)| (ls, lp)));
        let from_s = src.oracle.distance_many(&scratch.pairs);
        for (k, &(gid, _)) in src.portals.iter().enumerate() {
            scratch.relax(gid, from_s[k]);
        }
        // Settle until every destination portal is final, then stop — a
        // settled label equals its full-run value, so the early exit is
        // bit-identical to settling the whole graph, and the query cost
        // scales with the source→destination neighbourhood instead of the
        // atlas's total portal count. Unreachable destination portals keep
        // `remaining` positive and the loop simply drains the heap.
        for &(gid, _) in &dst.portals {
            scratch.dst_mark[gid as usize] = true;
        }
        let mut remaining = dst.portals.len();
        while let Some(Reverse((bits, u))) = scratch.heap.pop() {
            if bits > scratch.dist[u as usize].to_bits() {
                continue; // stale entry
            }
            if scratch.dst_mark[u as usize] {
                remaining -= 1;
                if remaining == 0 {
                    break;
                }
            }
            let (lo, hi) = (self.graph_off[u as usize], self.graph_off[u as usize + 1]);
            let du = scratch.dist[u as usize];
            for &(v, w) in &self.graph_adj[lo as usize..hi as usize] {
                scratch.relax(v, du + w);
            }
        }
        for &(gid, _) in &dst.portals {
            scratch.dst_mark[gid as usize] = false;
        }

        scratch.pairs.clear();
        scratch.pairs.extend(dst.portals.iter().map(|&(_, lp)| (lt, lp)));
        let to_t = dst.oracle.distance_many(&scratch.pairs);
        let mut best = f64::INFINITY;
        for (k, &(gid, _)) in dst.portals.iter().enumerate() {
            let via = scratch.dist[gid as usize] + to_t[k];
            best = best.min(via);
        }
        scratch.reset();
        best
    }

    /// Whether this atlas was built with path support
    /// ([`AtlasConfig::path_points_per_edge`]).
    pub fn has_paths(&self) -> bool {
        self.paths.is_some()
    }

    /// Steiner points per edge of the path layer, if present.
    pub fn path_points_per_edge(&self) -> Option<usize> {
        self.paths.as_ref().map(|p| p.points_per_edge)
    }

    /// Answers a distance query *and* reports a route realising it —
    /// the atlas counterpart of [`SeOracle::shortest_path`].
    ///
    /// `distance` is bit-identical to [`Atlas::distance`]`(s, t)`. The
    /// polyline is assembled from per-tile Steiner paths: when a shared
    /// tile answers the query, one in-tile path; otherwise the source leg,
    /// one leg per portal-graph hop (each reconstructed inside the tile
    /// whose portal table produced that edge weight), and the destination
    /// leg, concatenated at the shared portal vertices. Tile sub-meshes
    /// keep global coordinates, so the result lies on the global surface
    /// and its length obeys
    /// `distance / ((1 + ε)(1 + EPS_ROUTE)) ≤ length ≤ distance × (1 + EPS_PATH)`
    /// under the same engine/portal-density conditions as [`EPS_ROUTE`]
    /// and [`crate::route::EPS_PATH`].
    ///
    /// Every call is a pure function of `(s, t)` — bit-identical across
    /// clones and thread counts, like the distance entry points.
    ///
    /// # Panics
    /// Panics if an id is out of range or the atlas has no path layer
    /// (built with the default distance-only config, or reloaded from a
    /// persisted image).
    pub fn shortest_path(&self, s: usize, t: usize) -> ShortestPath {
        self.check_sites(s, t);
        // lint: allow(panic, "documented panic contract; persisted atlas images are distance-only by design")
        let paths = self.paths.as_ref().expect(
            "atlas has no path layer; build it with AtlasConfig::path_points_per_edge \
             (persisted atlas images answer distances only)",
        );
        let (ms, mt) = (&self.site_members[s], &self.site_members[t]);
        // Direct candidates, argmin-first so ties deterministically keep
        // the lowest-numbered shared tile; the value matches the min-fold
        // in `distance_unchecked` exactly.
        let mut best = f64::INFINITY;
        let mut direct: Option<(usize, u32, u32)> = None;
        let (mut i, mut j) = (0usize, 0usize);
        while i < ms.len() && j < mt.len() {
            match ms[i].0.cmp(&mt[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let tile = ms[i].0 as usize;
                    let d = self.tile(tile).oracle.distance(ms[i].1 as usize, mt[j].1 as usize);
                    if d < best {
                        best = d;
                        direct = Some((tile, ms[i].1, mt[j].1));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        let (hs, ht) = (self.site_home[s], self.site_home[t]);
        let mut routed: Option<Vec<u32>> = None;
        let (mut ls, mut lt) = (0u32, 0u32);
        if hs != ht {
            ls = local_in(ms, hs);
            lt = local_in(mt, ht);
            let mut scratch = RouteScratch::new(self.n_portals);
            let (d, chain) = self.route_traced(hs as usize, ls, ht as usize, lt, &mut scratch);
            // Strict `<`: on a tie the direct answer wins, so the choice
            // is deterministic and the reported distance is the same min.
            if d < best {
                best = d;
                routed = Some(chain);
            }
        }
        assert!(
            best.is_finite(),
            "no route between sites {s} and {t} although construction validated \
             connectivity — the atlas image is corrupt; rebuild it"
        );
        let path = match routed {
            None => {
                // lint: allow(panic, "invariant: a finite unrouted distance can only come from a shared-tile direct answer")
                let (tile, a, b) = direct.expect("finite distance implies a shared tile");
                tile_leg(&paths.tiles[tile], a, b)
            }
            Some(chain) => self.portal_route_path(paths, hs as usize, ls, ht as usize, lt, &chain),
        };
        ShortestPath { distance: best, path }
    }

    /// [`Self::route`] with predecessor tracking: returns the routed
    /// distance (identical bits) plus the portal chain, entry → exit,
    /// realising it. The chain is empty only when no destination portal is
    /// reachable (callers treat the infinite distance first).
    fn route_traced(
        &self,
        ts: usize,
        ls: u32,
        tt: usize,
        lt: u32,
        scratch: &mut RouteScratch,
    ) -> (f64, Vec<u32>) {
        let src = self.tile(ts);
        let dst = self.tile(tt);
        debug_assert!(scratch.heap.is_empty() && scratch.touched.is_empty());

        // `u32::MAX` = label realised by direct seeding from the source.
        let mut prev: Vec<u32> = vec![u32::MAX; self.n_portals];
        scratch.pairs.clear();
        scratch.pairs.extend(src.portals.iter().map(|&(_, lp)| (ls, lp)));
        let from_s = src.oracle.distance_many(&scratch.pairs);
        for (k, &(gid, _)) in src.portals.iter().enumerate() {
            relax_with_prev(scratch, &mut prev, gid, from_s[k], u32::MAX);
        }
        for &(gid, _) in &dst.portals {
            scratch.dst_mark[gid as usize] = true;
        }
        let mut remaining = dst.portals.len();
        while let Some(Reverse((bits, u))) = scratch.heap.pop() {
            if bits > scratch.dist[u as usize].to_bits() {
                continue; // stale entry
            }
            if scratch.dst_mark[u as usize] {
                remaining -= 1;
                if remaining == 0 {
                    break;
                }
            }
            let (lo, hi) = (self.graph_off[u as usize], self.graph_off[u as usize + 1]);
            let du = scratch.dist[u as usize];
            for &(v, w) in &self.graph_adj[lo as usize..hi as usize] {
                relax_with_prev(scratch, &mut prev, v, du + w, u);
            }
        }
        for &(gid, _) in &dst.portals {
            scratch.dst_mark[gid as usize] = false;
        }

        scratch.pairs.clear();
        scratch.pairs.extend(dst.portals.iter().map(|&(_, lp)| (lt, lp)));
        let to_t = dst.oracle.distance_many(&scratch.pairs);
        let mut best = f64::INFINITY;
        let mut best_exit: Option<u32> = None;
        for (k, &(gid, _)) in dst.portals.iter().enumerate() {
            let via = scratch.dist[gid as usize] + to_t[k];
            if via < best {
                best = via;
                best_exit = Some(gid);
            }
        }
        let mut chain = Vec::new();
        if let Some(mut p) = best_exit {
            loop {
                chain.push(p);
                match prev[p as usize] {
                    u32::MAX => break,
                    q => p = q,
                }
            }
            chain.reverse();
        }
        scratch.reset();
        (best, chain)
    }

    /// Concatenates the per-tile legs of a portal route into one polyline:
    /// source site → entry portal (home tile), portal → portal (the tile
    /// whose table realised each graph edge), exit portal → target site
    /// (destination tile). Legs join at shared portal vertices, which
    /// carry identical global coordinates in both tiles.
    fn portal_route_path(
        &self,
        paths: &AtlasPaths,
        ts: usize,
        ls: u32,
        tt: usize,
        lt: u32,
        chain: &[u32],
    ) -> SurfacePath {
        // lint: allow(panic, "invariant: a routed answer crosses at least one portal")
        let entry = chain.first().expect("a routed answer always crosses a portal");
        // lint: allow(panic, "invariant: chain verified non-empty one line up")
        let exit = chain.last().expect("non-empty chain");
        let mut pts = tile_leg(&paths.tiles[ts], ls, self.portal_site_in(ts, *entry)).points;
        for w in chain.windows(2) {
            let (a, b) = (w[0], w[1]);
            let tile = self.tile_realising_edge(a, b);
            let leg = tile_leg(
                &paths.tiles[tile],
                self.portal_site_in(tile, a),
                self.portal_site_in(tile, b),
            );
            append_leg(&mut pts, leg);
        }
        let last = tile_leg(&paths.tiles[tt], self.portal_site_in(tt, *exit), lt);
        append_leg(&mut pts, last);
        SurfacePath::from_points(pts)
    }

    /// Local site id of global portal `gid` inside tile `t` (the portal
    /// must belong to the tile).
    fn portal_site_in(&self, t: usize, gid: u32) -> u32 {
        let tile = self.tile(t);
        let k = tile
            .portals
            .binary_search_by_key(&gid, |&(g, _)| g)
            // lint: allow(panic, "invariant: routes only cross portals of member tiles; a miss means a corrupt image")
            .expect("portal not a member of the tile its route crossed");
        tile.portals[k].1
    }

    /// The lowest-numbered tile whose portal table produced the portal
    /// graph edge `a → b` (the dedup in [`build_portal_graph`] keeps the
    /// minimum weight, which is some tile's table entry verbatim, so a
    /// bitwise match always exists).
    fn tile_realising_edge(&self, a: u32, b: u32) -> usize {
        let (lo, hi) = (self.graph_off[a as usize], self.graph_off[a as usize + 1]);
        let row = &self.graph_adj[lo as usize..hi as usize];
        let w =
            // lint: allow(panic, "invariant: the dedup in build_portal_graph keeps some tile's entry verbatim")
            row[row.binary_search_by_key(&b, |&(v, _)| v).expect("edge absent from the graph")].1;
        for t in 0..self.n_tiles() {
            let tile = self.tile(t);
            let Ok(pi) = tile.portals.binary_search_by_key(&a, |&(g, _)| g) else { continue };
            let Ok(pj) = tile.portals.binary_search_by_key(&b, |&(g, _)| g) else { continue };
            if tile.portal_table[pi * tile.portals.len() + pj].to_bits() == w.to_bits() {
                return t;
            }
        }
        unreachable!("portal graph edge {a} → {b} not realised by any tile table");
    }

    /// All POIs worth a detour of at most `delta` on a trip `s → t` — the
    /// atlas counterpart of [`SeOracle::pois_within_detour`], with the
    /// identical admission rule `d̃(s,p) + d̃(p,t) ≤ d̃(s,t) + delta` over
    /// the atlas metric and the same `(via-length, site)` ordering.
    ///
    /// The atlas has no global partition tree to prune with, so this is
    /// the exact dual sweep (two atlas queries per site) over a reused
    /// scratch; results are exact by construction and bit-identical across
    /// thread counts. Needs no path layer.
    ///
    /// # Panics
    /// Panics if an id is out of range or `delta` is negative or
    /// non-finite.
    pub fn pois_within_detour(&self, s: usize, t: usize, delta: f64) -> Vec<DetourPoi> {
        self.check_sites(s, t);
        assert!(
            delta >= 0.0 && delta.is_finite(),
            "detour budget must be finite and non-negative, got {delta}"
        );
        let mut scratch = RouteScratch::new(self.n_portals);
        let budget = self.distance_unchecked(s, t, &mut scratch) + delta;
        let mut out = Vec::new();
        for p in 0..self.n_sites() {
            if p == s || p == t {
                continue;
            }
            let from_s = self.distance_unchecked(s, p, &mut scratch);
            if from_s > budget {
                continue; // via-length can only be larger still
            }
            let to_t = self.distance_unchecked(p, t, &mut scratch);
            if from_s + to_t <= budget {
                out.push(DetourPoi { site: p, from_s, to_t });
            }
        }
        out.sort_by(|a, b| a.via().total_cmp(&b.via()).then(a.site.cmp(&b.site)));
        out
    }
}

/// Shortest in-tile Steiner path between two tile-local sites,
/// straightened so edge quantisation does not accumulate across the
/// concatenated legs of a portal route.
fn tile_leg(tile: &TilePaths, a: u32, b: u32) -> SurfacePath {
    shortest_vertex_path_straightened(
        &tile.graph,
        tile.site_vertex[a as usize],
        tile.site_vertex[b as usize],
    )
    // lint: allow(panic, "invariant: tile sub-meshes are validated connected at construction")
    .expect("tile sub-meshes are connected")
}

/// Appends `leg` to `pts`, dropping the duplicated junction point (legs
/// meet at a shared portal vertex whose coordinates are identical in both
/// tiles' sub-meshes).
fn append_leg(pts: &mut Vec<terrain::Vec3>, leg: SurfacePath) {
    let dup = pts.last() == leg.points.first();
    debug_assert!(dup, "portal legs must join at the shared portal vertex");
    pts.extend(leg.points.into_iter().skip(usize::from(dup)));
}

/// [`RouteScratch::relax`] that additionally records which portal (or the
/// seeding source, `u32::MAX`) realised each improvement — the traced
/// variant used by path reconstruction. Must mirror `relax` exactly so
/// traced and untraced routing settle identically.
#[inline]
fn relax_with_prev(scratch: &mut RouteScratch, prev: &mut [u32], p: u32, d: f64, from: u32) {
    let slot = &mut scratch.dist[p as usize];
    if d < *slot {
        if slot.is_infinite() {
            scratch.touched.push(p);
        }
        *slot = d;
        scratch.heap.push(Reverse((d.to_bits(), p)));
        prev[p as usize] = from;
    }
}

/// The local site id of home tile `tile` in a membership list (always
/// present by construction).
#[inline]
fn local_in(members: &[(u32, u32)], tile: u32) -> u32 {
    members
        .iter()
        .find(|&&(t, _)| t == tile)
        // lint: allow(panic, "invariant: every site's membership list contains its home tile")
        .expect("home tile missing from site membership list")
        .1
}

impl fmt::Debug for Atlas {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Atlas")
            .field("n_sites", &self.n_sites())
            .field("epsilon", &self.eps)
            .field("n_tiles", &self.n_tiles())
            .field("n_portals", &self.n_portals)
            .finish()
    }
}

/// Dijkstra + endpoint-leg scratch, reused across a batch (allocated once,
/// fully reset after every query).
struct RouteScratch {
    /// Tentative portal distances, `INFINITY` when untouched.
    dist: Vec<f64>,
    /// Portals whose `dist` entry needs resetting.
    touched: Vec<u32>,
    /// Min-heap on `(distance bits, portal id)` — non-negative finite
    /// distances order identically by bits and by value, and the id
    /// tie-break makes the settle order (hence every f64 accumulation)
    /// deterministic.
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    /// Endpoint-leg query pairs (site, portal) buffer.
    pairs: Vec<(u32, u32)>,
    /// Destination-portal marks for the Dijkstra early exit (set and
    /// cleared per query).
    dst_mark: Vec<bool>,
}

impl RouteScratch {
    fn new(n_portals: usize) -> Self {
        Self {
            dist: vec![f64::INFINITY; n_portals],
            touched: Vec::new(),
            heap: BinaryHeap::new(),
            pairs: Vec::new(),
            dst_mark: vec![false; n_portals],
        }
    }

    #[inline]
    fn relax(&mut self, p: u32, d: f64) {
        let slot = &mut self.dist[p as usize];
        if d < *slot {
            if slot.is_infinite() {
                self.touched.push(p);
            }
            *slot = d;
            self.heap.push(Reverse((d.to_bits(), p)));
        }
    }

    fn reset(&mut self) {
        for &p in &self.touched {
            self.dist[p as usize] = f64::INFINITY;
        }
        self.touched.clear();
        self.heap.clear();
    }
}

/// One tile's contribution to the portal graph — its `(global, local)`
/// portal list and row-major portal table — borrowed from wherever the
/// tile currently lives (a resident [`AtlasTile`] or the out-of-core
/// store's transient open-time decode).
pub(crate) type PortalView<'a> = (&'a [(u32, u32)], &'a [f64]);

/// The portal views of a resident tile slice.
fn portal_views(tiles: &[AtlasTile]) -> Vec<PortalView<'_>> {
    tiles.iter().map(|t| (t.portals.as_slice(), t.portal_table.as_slice())).collect()
}

/// Tiles that share a portal can route to each other; if that relation
/// does not connect all tiles, returns `Some(component count)`.
fn routing_components(tiles: &[PortalView<'_>], n_portals: usize) -> Option<usize> {
    if tiles.len() <= 1 {
        return None;
    }
    let mut parent: Vec<u32> = (0..tiles.len() as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    let mut owner: Vec<u32> = vec![u32::MAX; n_portals];
    for (t, &(portals, _)) in tiles.iter().enumerate() {
        for &(gid, _) in portals {
            let o = owner[gid as usize];
            if o == u32::MAX {
                owner[gid as usize] = t as u32;
            } else {
                let (a, b) = (find(&mut parent, o), find(&mut parent, t as u32));
                if a != b {
                    parent[a as usize] = b;
                }
            }
        }
    }
    let components = (0..tiles.len() as u32).filter(|&t| find(&mut parent, t) == t).count();
    (components > 1).then_some(components)
}

/// Assembles the CSR portal graph from every tile's portal table:
/// ascending neighbours per source, minimum weight kept when several tiles
/// connect the same portal pair.
fn build_portal_graph(tiles: &[PortalView<'_>], n_portals: usize) -> (Vec<u32>, Vec<(u32, f64)>) {
    let mut adj: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n_portals];
    for &(portals, table) in tiles {
        let p = portals.len();
        for i in 0..p {
            let gi = portals[i].0 as usize;
            for j in 0..p {
                if i != j {
                    adj[gi].push((portals[j].0, table[i * p + j]));
                }
            }
        }
    }
    let mut off = Vec::with_capacity(n_portals + 1);
    off.push(0u32);
    let mut flat = Vec::new();
    for mut edges in adj {
        edges.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.total_cmp(&b.1)));
        edges.dedup_by_key(|e| e.0);
        flat.extend(edges);
        off.push(flat.len() as u32);
    }
    (off, flat)
}

/// A cheaply clonable, `Send + Sync`, read-only view of a built [`Atlas`]
/// — the atlas twin of [`crate::serve::QueryHandle`]. Cloning copies one
/// [`Arc`]; every clone answers every query bit-identically.
#[derive(Clone)]
pub struct AtlasHandle {
    atlas: Arc<Atlas>,
}

impl AtlasHandle {
    /// Freezes `atlas` into a shareable handle.
    pub fn new(atlas: Atlas) -> Self {
        Self { atlas: Arc::new(atlas) }
    }

    /// Wraps an atlas that is already shared.
    pub fn from_arc(atlas: Arc<Atlas>) -> Self {
        Self { atlas }
    }

    /// The underlying atlas.
    pub fn atlas(&self) -> &Atlas {
        &self.atlas
    }

    /// Number of sites indexed.
    pub fn n_sites(&self) -> usize {
        self.atlas.n_sites()
    }

    /// The error parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.atlas.epsilon()
    }

    /// See [`Atlas::distance`].
    pub fn distance(&self, s: usize, t: usize) -> f64 {
        self.atlas.distance(s, t)
    }

    /// See [`Atlas::try_distance`].
    pub fn try_distance(&self, s: usize, t: usize) -> Option<f64> {
        self.atlas.try_distance(s, t)
    }

    /// See [`Atlas::distance_many`].
    pub fn distance_many(&self, pairs: &[(u32, u32)]) -> Vec<f64> {
        self.atlas.distance_many(pairs)
    }

    /// See [`Atlas::try_distance_many`].
    pub fn try_distance_many(&self, pairs: &[(u32, u32)]) -> Vec<Option<f64>> {
        self.atlas.try_distance_many(pairs)
    }

    /// [`Atlas::distance_many`] sharded across `threads` pool workers
    /// (`0` = auto-detect): results in input order, bit-identical for
    /// every thread count, each shard with its own routing scratch. An
    /// empty slice returns immediately without touching the pool.
    ///
    /// Panics exactly as [`Atlas::distance_many`] does — validated up
    /// front so the panic fires on the caller's thread.
    pub fn distance_many_par(&self, pairs: &[(u32, u32)], threads: usize) -> Vec<f64> {
        if pairs.is_empty() {
            return Vec::new();
        }
        self.atlas.check_pairs(pairs);
        shard_pairs(pairs, threads, |chunk| {
            let mut scratch = RouteScratch::new(self.atlas.n_portals);
            chunk
                .iter()
                .map(|&(s, t)| self.atlas.distance_unchecked(s as usize, t as usize, &mut scratch))
                .collect()
        })
    }

    /// [`Atlas::try_distance_many`] sharded across `threads` pool workers
    /// (`0` = auto-detect), element-for-element equal to the sequential
    /// call, with the same immediate empty-slice return.
    pub fn try_distance_many_par(&self, pairs: &[(u32, u32)], threads: usize) -> Vec<Option<f64>> {
        if pairs.is_empty() {
            return Vec::new();
        }
        shard_pairs(pairs, threads, |chunk| self.atlas.try_distance_many(chunk))
    }

    /// Whether the shared atlas carries a path layer
    /// ([`Atlas::has_paths`]).
    pub fn has_paths(&self) -> bool {
        self.atlas.has_paths()
    }

    /// See [`Atlas::shortest_path`]. Pure per query — bit-identical across
    /// clones and thread counts, portal routes included.
    pub fn shortest_path(&self, s: usize, t: usize) -> ShortestPath {
        self.atlas.shortest_path(s, t)
    }

    /// See [`Atlas::pois_within_detour`].
    pub fn pois_within_detour(&self, s: usize, t: usize, delta: f64) -> Vec<DetourPoi> {
        self.atlas.pois_within_detour(s, t, delta)
    }
}

impl fmt::Debug for AtlasHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AtlasHandle")
            .field("n_sites", &self.n_sites())
            .field("epsilon", &self.epsilon())
            .field("n_tiles", &self.atlas.n_tiles())
            .field("n_portals", &self.atlas.n_portals())
            .finish()
    }
}

impl From<Atlas> for AtlasHandle {
    fn from(atlas: Atlas) -> Self {
        Self::new(atlas)
    }
}

impl From<Arc<Atlas>> for AtlasHandle {
    fn from(atlas: Arc<Atlas>) -> Self {
        Self::from_arc(atlas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodesic::engine::GeodesicEngine;
    use terrain::gen::diamond_square;
    use terrain::poi::sample_uniform;

    /// Refined level-4 fractal fixture: `(mesh, distinct site vertices)`.
    fn fixture(n: usize, seed: u64) -> (Arc<TerrainMesh>, Vec<VertexId>) {
        let mesh = diamond_square(4, 0.6, seed).to_mesh();
        let pois = sample_uniform(&mesh, n, seed ^ 0xA71A);
        let refined = insert_surface_points(&mesh, &pois, None).unwrap();
        let mut sites = refined.poi_vertices;
        sites.sort_unstable();
        sites.dedup();
        (Arc::new(refined.mesh), sites)
    }

    fn atlas(n: usize, seed: u64, eps: f64) -> (Atlas, Arc<TerrainMesh>, Vec<VertexId>) {
        let (mesh, sites) = fixture(n, seed);
        let a = Atlas::build_over_vertices(
            mesh.clone(),
            sites.clone(),
            eps,
            EngineKind::EdgeGraph,
            &AtlasConfig::default(),
        )
        .unwrap();
        (a, mesh, sites)
    }

    #[test]
    fn answers_bracket_the_engine_metric() {
        let eps = 0.2;
        let (mesh, sites) = fixture(24, 3);
        // The ε_route ceiling assumes portals dense enough that seam gaps
        // stay small against query distances; on a 17×17 level-4 mesh that
        // means spacing 2 (every other seam row), the analogue of the
        // default spacing 8 on production-size tiles.
        let cfg = AtlasConfig {
            grid: TileGridConfig { portal_spacing: 2, ..Default::default() },
            ..Default::default()
        };
        let a = Atlas::build_over_vertices(
            mesh.clone(),
            sites.clone(),
            eps,
            EngineKind::EdgeGraph,
            &cfg,
        )
        .unwrap();
        assert!(a.n_tiles() == 4 && a.n_portals() > 0);
        let engine = geodesic::dijkstra::EdgeGraphEngine::new(mesh);
        let mut cross = 0;
        for s in 0..sites.len() {
            for t in 0..sites.len() {
                let d = a.distance(s, t);
                let exact = engine.distance(sites[s], sites[t]);
                assert!(
                    d >= (1.0 - eps) * exact - 1e-9,
                    "({s},{t}): atlas {d} under the geodesic floor {exact}"
                );
                assert!(
                    d <= (1.0 + eps) * (1.0 + EPS_ROUTE) * exact + 1e-9,
                    "({s},{t}): atlas {d} beyond the routed ceiling (exact {exact})"
                );
                cross += a.is_cross_tile(s, t) as usize;
            }
        }
        assert!(cross > 0, "fixture never exercised the portal route");
    }

    #[test]
    fn single_tile_atlas_is_bitwise_monolithic() {
        let (mesh, sites) = fixture(15, 5);
        let eps = 0.2;
        let cfg = AtlasConfig {
            grid: TileGridConfig { nx: 1, ny: 1, ..Default::default() },
            ..Default::default()
        };
        let a = Atlas::build_over_vertices(
            mesh.clone(),
            sites.clone(),
            eps,
            EngineKind::EdgeGraph,
            &cfg,
        )
        .unwrap();
        assert_eq!(a.n_tiles(), 1);
        assert_eq!(a.n_portals(), 0);
        let engine = make_engine(mesh, EngineKind::EdgeGraph);
        let space = VertexSiteSpace::new(engine, sites.clone());
        let mono = SeOracle::build(&space, eps, &cfg.build).unwrap();
        for s in 0..sites.len() {
            for t in 0..sites.len() {
                assert_eq!(a.distance(s, t).to_bits(), mono.distance(s, t).to_bits());
            }
        }
    }

    #[test]
    fn batch_and_parallel_match_single_queries() {
        let (a, _, sites) = atlas(18, 7, 0.25);
        let h = AtlasHandle::new(a);
        let n = sites.len() as u32;
        let pairs: Vec<(u32, u32)> = (0..n).flat_map(|s| (0..n).map(move |t| (s, t))).collect();
        let want: Vec<u64> =
            pairs.iter().map(|&(s, t)| h.distance(s as usize, t as usize).to_bits()).collect();
        let batch: Vec<u64> = h.distance_many(&pairs).into_iter().map(f64::to_bits).collect();
        assert_eq!(batch, want, "batch must equal per-pair queries bit for bit");
        for threads in [0usize, 1, 3] {
            let par: Vec<u64> =
                h.distance_many_par(&pairs, threads).into_iter().map(f64::to_bits).collect();
            assert_eq!(par, want, "threads = {threads}");
        }
    }

    #[test]
    fn try_variants_flag_out_of_range() {
        let (a, _, sites) = atlas(10, 9, 0.25);
        let h = AtlasHandle::new(a);
        let n = sites.len() as u32;
        let pairs = [(0, 1), (n, 0), (0, n), (u32::MAX, 0), (2, 3)];
        let got = h.try_distance_many(&pairs);
        let want: Vec<Option<f64>> =
            pairs.iter().map(|&(s, t)| h.try_distance(s as usize, t as usize)).collect();
        assert_eq!(got, want);
        assert!(got[1].is_none() && got[2].is_none() && got[3].is_none());
        assert!(got[0].is_some() && got[4].is_some());
        assert_eq!(h.try_distance_many_par(&pairs, 2), want);
    }

    #[test]
    fn out_of_range_panics_are_actionable() {
        let (a, _, sites) = atlas(8, 11, 0.3);
        let n = sites.len();
        for (what, f) in [
            (
                "distance",
                Box::new(|| {
                    a.distance(n, 0);
                }) as Box<dyn Fn() + std::panic::UnwindSafe + '_>,
            ),
            (
                "distance_many",
                Box::new(|| {
                    a.distance_many(&[(0, 0), (0, n as u32)]);
                }),
            ),
        ] {
            let err = std::panic::catch_unwind(f).unwrap_err();
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default();
            assert!(
                msg.contains("out of range") && msg.contains("try_distance"),
                "{what}: panic message not actionable: {msg}"
            );
        }
    }

    #[test]
    fn empty_batches_are_empty_without_pool_work() {
        let (a, _, _) = atlas(6, 13, 0.3);
        let h = AtlasHandle::new(a);
        assert!(h.distance_many(&[]).is_empty());
        assert!(h.try_distance_many(&[]).is_empty());
        assert!(h.distance_many_par(&[], 0).is_empty());
        assert!(h.try_distance_many_par(&[], 7).is_empty());
    }

    #[test]
    fn thread_splits_build_identical_atlases() {
        let (mesh, sites) = fixture(16, 15);
        let eps = 0.2;
        let build = |threads| {
            let cfg = AtlasConfig {
                build: BuildConfig { threads, ..Default::default() },
                ..Default::default()
            };
            Atlas::build_over_vertices(
                mesh.clone(),
                sites.clone(),
                eps,
                EngineKind::EdgeGraph,
                &cfg,
            )
            .unwrap()
        };
        let one = build(1);
        let many = build(5); // outer tiles + inner pipeline both engaged
        assert_eq!(one.n_portals(), many.n_portals());
        for s in 0..sites.len() {
            for t in 0..sites.len() {
                assert_eq!(one.distance(s, t).to_bits(), many.distance(s, t).to_bits());
            }
        }
    }

    #[test]
    fn clones_share_the_atlas_and_debug_reports_shape() {
        let (a, _, _) = atlas(9, 17, 0.25);
        let h = AtlasHandle::new(a);
        let c = h.clone();
        assert!(std::ptr::eq(h.atlas(), c.atlas()), "clone must share, not copy");
        assert_eq!(h.distance(0, 5).to_bits(), c.distance(0, 5).to_bits());
        let dbg = format!("{h:?}");
        assert!(dbg.contains("AtlasHandle") && dbg.contains("n_tiles"), "{dbg}");
        assert!(format!("{:?}", h.atlas()).contains("Atlas"));
    }

    #[test]
    fn empty_pois_rejected() {
        let mesh = diamond_square(3, 0.6, 19).to_mesh();
        assert!(matches!(
            Atlas::build(&mesh, &[], 0.2, EngineKind::EdgeGraph, &AtlasConfig::default()),
            Err(AtlasError::NoPois)
        ));
    }

    #[test]
    fn bad_epsilon_rejected_before_any_tile_work() {
        let (mesh, sites) = fixture(6, 25);
        for eps in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                Atlas::build_over_vertices(
                    mesh.clone(),
                    sites.clone(),
                    eps,
                    EngineKind::EdgeGraph,
                    &AtlasConfig::default(),
                ),
                Err(AtlasError::InvalidEpsilon(_))
            ));
        }
    }

    #[test]
    fn bad_grid_reported_as_tile_error() {
        let (mesh, sites) = fixture(8, 21);
        let cfg = AtlasConfig {
            grid: TileGridConfig { nx: 0, ..Default::default() },
            ..Default::default()
        };
        assert!(matches!(
            Atlas::build_over_vertices(mesh, sites, 0.2, EngineKind::EdgeGraph, &cfg),
            Err(AtlasError::Tile(TileError::BadConfig(_)))
        ));
    }

    #[test]
    fn build_stats_are_populated() {
        let (a, _, _) = atlas(14, 23, 0.2);
        let s = a.build_stats();
        assert_eq!(s.n_tiles, 4);
        assert!(s.n_portals > 0 && s.portal_edges > 0);
        assert_eq!(s.tile_sites.len(), 4);
        assert!(s.tile_sites.iter().all(|&n| n > 0));
        assert!(s.workers >= 1 && s.tile_workers >= 1);
        assert!(s.total >= s.oracles);
    }

    #[test]
    fn path_layer_answers_match_distances_and_stay_on_surface() {
        let (mesh, sites) = fixture(24, 91);
        let cfg = AtlasConfig {
            grid: TileGridConfig { portal_spacing: 2, ..Default::default() },
            path_points_per_edge: Some(3),
            ..Default::default()
        };
        let a = Atlas::build_over_vertices(
            mesh.clone(),
            sites.clone(),
            0.2,
            EngineKind::EdgeGraph,
            &cfg,
        )
        .unwrap();
        assert!(a.has_paths());
        assert_eq!(a.path_points_per_edge(), Some(3));
        let mut cross = 0usize;
        for s in 0..a.n_sites() {
            for t in 0..a.n_sites() {
                let sp = a.shortest_path(s, t);
                assert_eq!(
                    sp.distance.to_bits(),
                    a.distance(s, t).to_bits(),
                    "({s},{t}): path query must not change the metric"
                );
                if s == t {
                    assert_eq!(sp.path.length, 0.0);
                    continue;
                }
                assert_eq!(sp.path.points[0], mesh.vertex(sites[s]), "({s},{t}) start");
                assert_eq!(*sp.path.points.last().unwrap(), mesh.vertex(sites[t]), "({s},{t}) end");
                assert!(
                    sp.path.length <= sp.distance * (1.0 + crate::route::EPS_PATH) + 1e-9,
                    "({s},{t}): path {} breaks EPS_PATH vs {}",
                    sp.path.length,
                    sp.distance
                );
                if a.is_cross_tile(s, t) {
                    cross += 1;
                }
            }
        }
        assert!(cross > 0, "fixture must exercise portal routes");
    }

    #[test]
    #[should_panic(expected = "no path layer")]
    fn distance_only_atlas_rejects_path_queries() {
        let (a, _, _) = atlas(8, 5, 0.25);
        assert!(!a.has_paths());
        a.shortest_path(0, 1);
    }

    #[test]
    fn detour_matches_the_dual_sweep_over_the_atlas_metric() {
        let (a, _, _) = atlas(20, 7, 0.2);
        for (s, t) in [(0usize, 1usize), (3, 17), (11, 2)] {
            let d_st = a.distance(s, t);
            for delta in [0.0, 0.3 * d_st, 3.0 * d_st] {
                let got = a.pois_within_detour(s, t, delta);
                let budget = d_st + delta;
                let mut want: Vec<DetourPoi> = (0..a.n_sites())
                    .filter(|&p| p != s && p != t)
                    .map(|p| DetourPoi {
                        site: p,
                        from_s: a.distance(s, p),
                        to_t: a.distance(p, t),
                    })
                    .filter(|d| d.via() <= budget)
                    .collect();
                want.sort_by(|x, y| (x.via(), x.site).partial_cmp(&(y.via(), y.site)).unwrap());
                assert_eq!(got, want, "s={s} t={t} delta={delta}");
            }
        }
    }
}
