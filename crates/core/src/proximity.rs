//! Proximity queries over the SE oracle: k-nearest-neighbour, range and
//! reverse-kNN search.
//!
//! §1 of the paper motivates the distance oracle precisely with these
//! queries ("many other applications such as proximity queries (including
//! nearest neighbor queries and range queries) … are built based on the
//! result of the shortest distance query", citing [9, 10, 29, 35, 36]).
//! This module closes the loop: the compressed partition tree is a metric
//! tree — every node's *enlarged* disk (radius `2·r_O`, Distance property)
//! contains its whole representative set — so branch-and-bound search with
//! oracle distances answers proximity queries without touching the mesh.
//!
//! # Semantics
//!
//! All queries rank sites by the *oracle* metric `d̃` (deterministic,
//! symmetric, within ε of the geodesic distance by Theorem 1) with ties
//! broken by site index. Results are therefore exactly reproducible and
//! testable against a brute-force scan of `d̃`; with respect to the true
//! geodesic distance every reported k-NN set is a `(1+ε)/(1−ε)`-approximate
//! k-NN set.
//!
//! # Pruning bounds
//!
//! For a query site `q` and a tree node `O` with center `c` and enlarged
//! radius `R = 2·r_O`, every site `p` below `O` satisfies
//! `d(q,p) ≥ d(q,c) − R` and `d(q,p) ≤ d(q,c) + R` (triangle inequality +
//! Distance property). Converting through `d̃ ∈ [(1−ε)d, (1+ε)d]`:
//!
//! ```text
//! d̃(q,p) ≥ (1−ε)·max(0, d̃(q,c)/(1+ε) − R)      (lower bound, prune)
//! d̃(q,p) ≤ (1+ε)·(d̃(q,c)/(1−ε) + R)            (upper bound, early count)
//! ```
//!
//! Both bounds are conservative w.r.t. the `d̃` ranking, so branch-and-bound
//! returns *identical* results to the brute-force scan.

// lint: query-path
use crate::ctree::CompressedTree;
use crate::oracle::SeOracle;
use crate::tree::NO_NODE;
use geodesic::heap::MinHeap;

/// One proximity-query result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Site index.
    pub site: usize,
    /// Oracle distance `d̃(q, site)`.
    pub distance: f64,
}

/// Work counters for one proximity query (pruning-effectiveness ablation).
#[derive(Debug, Clone, Copy, Default)]
pub struct ProximityStats {
    /// Tree nodes popped from the best-first queue.
    pub nodes_visited: u64,
    /// Oracle distance evaluations (each `O(h)` hash probes).
    pub distance_evals: u64,
    /// Subtrees accepted wholesale by the upper bound (range/count only).
    pub subtree_accepts: u64,
}

/// Branch-and-bound proximity search over a built [`SeOracle`].
///
/// Construction is `O(n)` (one subtree-size sweep); the index borrows the
/// oracle and adds `4` bytes per tree node.
pub struct ProximityIndex<'a> {
    oracle: &'a SeOracle,
    /// Number of leaf sites below each compressed-tree node.
    subtree_sites: Vec<u32>,
}

impl<'a> ProximityIndex<'a> {
    /// Builds the index over `oracle`.
    pub fn new(oracle: &'a SeOracle) -> Self {
        let t = oracle.tree();
        let mut subtree_sites = vec![0u32; t.n_nodes()];
        // Children precede parents nowhere in particular, so accumulate via
        // an explicit post-order.
        fn fill(t: &CompressedTree, node: u32, out: &mut [u32]) -> u32 {
            let n = &t.nodes[node as usize];
            let total = if n.children.is_empty() {
                1
            } else {
                n.children.iter().map(|&c| fill(t, c, out)).sum()
            };
            out[node as usize] = total;
            total
        }
        fill(t, t.root, &mut subtree_sites);
        Self { oracle, subtree_sites }
    }

    /// Sites below a node (leaf count of its subtree).
    pub fn subtree_sites(&self, node: u32) -> usize {
        self.subtree_sites[node as usize] as usize
    }

    fn bounds(&self, q: usize, node: u32) -> (f64, f64, f64) {
        // Returns (d̃(q, center), lower bound, upper bound) for the node.
        let t = self.oracle.tree();
        let eps = self.oracle.epsilon();
        let c = t.nodes[node as usize].center as usize;
        let dc = if c == q { 0.0 } else { self.oracle.distance(q, c) };
        let r = t.enlarged_radius(node);
        let lo = (1.0 - eps).max(0.0) * (dc / (1.0 + eps) - r).max(0.0);
        let hi = if eps < 1.0 { (1.0 + eps) * (dc / (1.0 - eps) + r) } else { f64::INFINITY };
        (dc, lo, hi)
    }

    /// The `k` sites nearest to `q` under `d̃` (excluding `q` itself),
    /// sorted by `(distance, site)`. Returns fewer than `k` entries when
    /// the oracle indexes fewer than `k + 1` sites.
    pub fn knn(&self, q: usize, k: usize) -> Vec<Neighbor> {
        self.knn_with_stats(q, k).0
    }

    /// [`Self::knn`] with work counters.
    pub fn knn_with_stats(&self, q: usize, k: usize) -> (Vec<Neighbor>, ProximityStats) {
        let mut stats = ProximityStats::default();
        if k == 0 {
            return (Vec::new(), stats);
        }
        let t = self.oracle.tree();
        // Best-first queue keyed by the node lower bound; results kept in a
        // bounded max-set (linear insert — k is small in every application
        // the paper lists).
        let mut heap: MinHeap<u32> = MinHeap::with_capacity(64);
        let mut best: Vec<Neighbor> = Vec::with_capacity(k + 1);
        let kth = |best: &Vec<Neighbor>| -> f64 {
            if best.len() < k {
                f64::INFINITY
            } else {
                best.last().map_or(f64::INFINITY, |n| n.distance)
            }
        };
        heap.push(0.0, t.root);
        while let Some((lb, node)) = heap.pop() {
            if lb > kth(&best) {
                break; // every remaining node is worse than the k-th best
            }
            stats.nodes_visited += 1;
            let n = &t.nodes[node as usize];
            if n.children.is_empty() {
                let site = n.center as usize;
                if site == q {
                    continue;
                }
                stats.distance_evals += 1;
                let d = self.oracle.distance(q, site);
                if d < kth(&best) || (d == kth(&best) && best.last().is_some_and(|b| site < b.site))
                {
                    let at = best
                        .binary_search_by(|x| x.distance.total_cmp(&d).then(x.site.cmp(&site)))
                        .unwrap_or_else(|i| i);
                    best.insert(at, Neighbor { site, distance: d });
                    best.truncate(k);
                }
            } else {
                for &child in &n.children {
                    stats.distance_evals += 1;
                    let (_, lo, _) = self.bounds(q, child);
                    if lo <= kth(&best) {
                        heap.push(lo, child);
                    }
                }
            }
        }
        (best, stats)
    }

    /// The nearest site to `q` (excluding `q`), or `None` when `q` is the
    /// only site.
    pub fn nearest(&self, q: usize) -> Option<Neighbor> {
        self.knn(q, 1).into_iter().next()
    }

    /// All sites with `d̃(q, site) ≤ radius` (excluding `q`), sorted by
    /// `(distance, site)`.
    pub fn range(&self, q: usize, radius: f64) -> Vec<Neighbor> {
        self.range_with_stats(q, radius).0
    }

    /// [`Self::range`] with work counters.
    pub fn range_with_stats(&self, q: usize, radius: f64) -> (Vec<Neighbor>, ProximityStats) {
        let mut stats = ProximityStats::default();
        let t = self.oracle.tree();
        let mut out = Vec::new();
        let mut stack = vec![t.root];
        while let Some(node) = stack.pop() {
            stats.nodes_visited += 1;
            let n = &t.nodes[node as usize];
            if n.children.is_empty() {
                let site = n.center as usize;
                if site == q {
                    continue;
                }
                stats.distance_evals += 1;
                let d = self.oracle.distance(q, site);
                if d <= radius {
                    out.push(Neighbor { site, distance: d });
                }
            } else {
                stats.distance_evals += 1;
                let (_, lo, _) = self.bounds(q, node);
                if lo > radius {
                    continue; // whole subtree is out of range
                }
                stack.extend(n.children.iter().copied());
            }
        }
        out.sort_by(|a, b| a.distance.total_cmp(&b.distance).then(a.site.cmp(&b.site)));
        (out, stats)
    }

    /// Number of sites (excluding `q`) with `d̃(q, ·) < bound`, stopping
    /// early once the count reaches `cap`. Subtrees entirely inside the
    /// bound are accepted without per-leaf evaluation via the node upper
    /// bound.
    pub fn count_within(&self, q: usize, bound: f64, cap: usize) -> usize {
        let t = self.oracle.tree();
        let mut count = 0usize;
        let mut stack = vec![t.root];
        let q_leaf = t.leaf_of_site[q];
        while let Some(node) = stack.pop() {
            if count >= cap {
                // A subtree accept can overshoot the cap; clamp like the
                // final return does.
                return count.min(cap);
            }
            let n = &t.nodes[node as usize];
            if n.children.is_empty() {
                let site = n.center as usize;
                if site != q && self.oracle.distance(q, site) < bound {
                    count += 1;
                }
                continue;
            }
            let (_, lo, hi) = self.bounds(q, node);
            if lo >= bound {
                continue;
            }
            if hi < bound && !t.is_ancestor_or_self(node, q_leaf) {
                // Whole subtree strictly inside and cannot contain q.
                count += self.subtree_sites[node as usize] as usize;
                continue;
            }
            stack.extend(n.children.iter().copied());
        }
        count.min(cap)
    }

    /// Reverse k-nearest neighbours: every site `s ≠ q` whose k-NN set
    /// (under `d̃`, ties by site index) contains `q`. The monochromatic
    /// RNN query of \[36\] (§4.1 of the paper) over the POI set.
    ///
    /// For each candidate `s`, `q ∈ kNN(s)` iff fewer than `k` sites beat
    /// `q` in the `(d̃, site)` order, which [`Self::count_within`] decides
    /// with early exit.
    pub fn reverse_knn(&self, q: usize, k: usize) -> Vec<usize> {
        let n = self.oracle.n_sites();
        if k == 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        for s in 0..n {
            if s == q {
                continue;
            }
            let d_sq = self.oracle.distance(s, q);
            // Sites strictly closer to s than q, plus equal-distance sites
            // with a smaller index (the tie-break order).
            let strictly = self.count_within(s, d_sq, k);
            if strictly >= k {
                continue;
            }
            let ties = (0..n)
                .filter(|&x| x != s && x != q && x < q && self.oracle.distance(s, x) == d_sq)
                .count();
            if strictly + ties < k {
                out.push(s);
            }
        }
        out
    }
}

/// One in-path query result: a POI reachable within the detour budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetourPoi {
    /// Site index of the POI.
    pub site: usize,
    /// Oracle distance `d̃(s, site)` from the route's start.
    pub from_s: f64,
    /// Oracle distance `d̃(site, t)` to the route's end.
    pub to_t: f64,
}

impl DetourPoi {
    /// Total length of the `s → site → t` route through this POI.
    pub fn via(&self) -> f64 {
        self.from_s + self.to_t
    }
}

impl SeOracle {
    /// All POIs worth a detour of at most `delta` on a trip `s → t`: every
    /// site `p ∉ {s, t}` with `d̃(s,p) + d̃(p,t) ≤ d̃(s,t) + delta`, sorted
    /// by `(via-length, site)`.
    ///
    /// The in-path query of §1.1 ("restaurants on the way"), answered
    /// entirely by the oracle metric. Instead of the brute-force dual sweep
    /// (two distance evaluations per site), the compressed partition tree
    /// is pruned branch-and-bound: for a node `O` the module-level lower
    /// bound gives `d̃(q,p) ≥ lo(q, O)` for every `p` below `O`, so the
    /// whole subtree is skipped when `lo(s,O) + lo(t,O)` already exceeds
    /// the budget. Both bounds are conservative, so the result is
    /// *identical* to the brute-force sweep — only cheaper.
    ///
    /// # Panics
    /// Panics if an id is out of range or `delta` is negative or non-finite.
    pub fn pois_within_detour(&self, s: usize, t: usize, delta: f64) -> Vec<DetourPoi> {
        assert!(
            delta >= 0.0 && delta.is_finite(),
            "detour budget must be finite and non-negative, got {delta}"
        );
        let budget = self.distance(s, t) + delta; // validates s and t
        let tree = self.tree();
        let eps = self.epsilon();
        let lo = |q: usize, node: u32| -> f64 {
            let c = tree.nodes[node as usize].center as usize;
            let dc = if c == q { 0.0 } else { self.distance(q, c) };
            let r = tree.enlarged_radius(node);
            (1.0 - eps).max(0.0) * (dc / (1.0 + eps) - r).max(0.0)
        };
        let mut out = Vec::new();
        let mut stack = vec![tree.root];
        while let Some(node) = stack.pop() {
            let n = &tree.nodes[node as usize];
            if n.children.is_empty() {
                let p = n.center as usize;
                if p == s || p == t {
                    continue;
                }
                let from_s = self.distance(s, p);
                if from_s > budget {
                    continue; // via-length can only be larger still
                }
                let to_t = self.distance(p, t);
                if from_s + to_t <= budget {
                    out.push(DetourPoi { site: p, from_s, to_t });
                }
            } else {
                if lo(s, node) + lo(t, node) > budget {
                    continue; // no site below can meet the budget
                }
                stack.extend(n.children.iter().copied());
            }
        }
        out.sort_by(|a, b| a.via().total_cmp(&b.via()).then(a.site.cmp(&b.site)));
        out
    }
}

/// The layer array of a site, exposed for diagnostics: which compressed
/// tree nodes lie on its root path at each layer (`NO_NODE` where the
/// path skips a layer).
pub fn root_path_layers(oracle: &SeOracle, site: usize) -> Vec<u32> {
    let a = oracle.tree().layer_array(site);
    debug_assert!(a.iter().any(|&x| x != NO_NODE));
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::BuildConfig;
    use geodesic::ich::IchEngine;
    use geodesic::sitespace::VertexSiteSpace;
    use std::sync::Arc;
    use terrain::gen::diamond_square;
    use terrain::poi::sample_uniform;
    use terrain::refine::insert_surface_points;

    fn oracle(n: usize, seed: u64, eps: f64) -> SeOracle {
        let mesh = diamond_square(4, 0.6, seed).to_mesh();
        let pois = sample_uniform(&mesh, n, seed ^ 0xABC);
        let refined = insert_surface_points(&mesh, &pois, None).unwrap();
        let mut sites = refined.poi_vertices.clone();
        sites.sort_unstable();
        sites.dedup();
        let sp = VertexSiteSpace::new(Arc::new(IchEngine::new(Arc::new(refined.mesh))), sites);
        SeOracle::build(&sp, eps, &BuildConfig::default()).unwrap()
    }

    fn brute_knn(o: &SeOracle, q: usize, k: usize) -> Vec<Neighbor> {
        let mut all: Vec<Neighbor> = (0..o.n_sites())
            .filter(|&s| s != q)
            .map(|s| Neighbor { site: s, distance: o.distance(q, s) })
            .collect();
        all.sort_by(|a, b| (a.distance, a.site).partial_cmp(&(b.distance, b.site)).unwrap());
        all.truncate(k);
        all
    }

    #[test]
    fn knn_matches_brute_force() {
        let o = oracle(30, 3, 0.2);
        let idx = ProximityIndex::new(&o);
        for q in 0..o.n_sites() {
            for k in [1usize, 3, 7] {
                assert_eq!(idx.knn(q, k), brute_knn(&o, q, k), "q={q} k={k}");
            }
        }
    }

    #[test]
    fn knn_at_small_eps_matches_brute_force() {
        let o = oracle(20, 5, 0.05);
        let idx = ProximityIndex::new(&o);
        for q in 0..o.n_sites() {
            assert_eq!(idx.knn(q, 5), brute_knn(&o, q, 5), "q={q}");
        }
    }

    fn brute_detour(o: &SeOracle, s: usize, t: usize, delta: f64) -> Vec<DetourPoi> {
        let budget = o.distance(s, t) + delta;
        let mut all: Vec<DetourPoi> = (0..o.n_sites())
            .filter(|&p| p != s && p != t)
            .map(|p| DetourPoi { site: p, from_s: o.distance(s, p), to_t: o.distance(p, t) })
            .filter(|d| d.via() <= budget)
            .collect();
        all.sort_by(|a, b| (a.via(), a.site).partial_cmp(&(b.via(), b.site)).unwrap());
        all
    }

    #[test]
    fn detour_matches_brute_force_dual_sweep() {
        let o = oracle(26, 11, 0.2);
        let diam = (0..o.n_sites())
            .flat_map(|a| (0..o.n_sites()).map(move |b| (a, b)))
            .map(|(a, b)| o.distance(a, b))
            .fold(0.0, f64::max);
        for (s, t) in [(0usize, 1usize), (3, 17), (9, 9), (25, 4)] {
            for delta in [0.0, 0.05 * diam, 0.3 * diam, 2.0 * diam] {
                assert_eq!(
                    o.pois_within_detour(s, t, delta),
                    brute_detour(&o, s, t, delta),
                    "s={s} t={t} delta={delta}"
                );
            }
        }
    }

    #[test]
    fn detour_degenerate_cases() {
        let o = oracle(12, 13, 0.25);
        // Huge budget: everything except the endpoints qualifies.
        let all = o.pois_within_detour(2, 5, f64::MAX / 4.0);
        assert_eq!(all.len(), o.n_sites() - 2);
        assert!(all.iter().all(|d| d.site != 2 && d.site != 5));
        // via() is always within the budget it was admitted under.
        let d_st = o.distance(3, 8);
        for p in o.pois_within_detour(3, 8, 0.1 * d_st) {
            assert!(p.via() <= d_st * 1.1 + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn detour_rejects_negative_budget() {
        let o = oracle(8, 17, 0.2);
        o.pois_within_detour(0, 1, -1.0);
    }

    #[test]
    fn knn_edge_cases() {
        let o = oracle(10, 7, 0.25);
        let idx = ProximityIndex::new(&o);
        assert!(idx.knn(0, 0).is_empty());
        // k larger than available sites returns them all.
        let all = idx.knn(0, 100);
        assert_eq!(all.len(), o.n_sites() - 1);
        // nearest == knn(·, 1).
        assert_eq!(idx.nearest(3), idx.knn(3, 1).into_iter().next());
    }

    #[test]
    fn range_matches_brute_force() {
        let o = oracle(25, 9, 0.15);
        let idx = ProximityIndex::new(&o);
        for q in [0usize, 5, 12, 24] {
            let far = brute_knn(&o, q, o.n_sites()).last().unwrap().distance;
            for f in [0.0, 0.3, 0.7, 1.0] {
                let r = far * f;
                let got = idx.range(q, r);
                let want: Vec<Neighbor> = brute_knn(&o, q, o.n_sites())
                    .into_iter()
                    .filter(|nb| nb.distance <= r)
                    .collect();
                assert_eq!(got, want, "q={q} r={r}");
            }
        }
    }

    #[test]
    fn pruning_actually_prunes() {
        // A 1-NN search on a 60-site oracle must not evaluate all leaves.
        let o = oracle(60, 11, 0.2);
        let idx = ProximityIndex::new(&o);
        let (_, stats) = idx.knn_with_stats(0, 1);
        assert!(
            stats.nodes_visited < o.tree().n_nodes() as u64,
            "visited {} of {} nodes",
            stats.nodes_visited,
            o.tree().n_nodes()
        );
    }

    #[test]
    fn count_within_consistent_with_range() {
        let o = oracle(20, 13, 0.2);
        let idx = ProximityIndex::new(&o);
        for q in 0..10 {
            let far = brute_knn(&o, q, o.n_sites()).last().unwrap().distance;
            for f in [0.25, 0.6, 1.1] {
                let bound = far * f;
                let exact =
                    (0..o.n_sites()).filter(|&s| s != q && o.distance(q, s) < bound).count();
                assert_eq!(idx.count_within(q, bound, usize::MAX), exact);
                // Cap is honoured.
                assert_eq!(idx.count_within(q, bound, 2), exact.min(2));
            }
        }
    }

    #[test]
    fn reverse_knn_matches_definition() {
        let o = oracle(18, 17, 0.2);
        let idx = ProximityIndex::new(&o);
        for q in 0..o.n_sites() {
            for k in [1usize, 3] {
                let got = idx.reverse_knn(q, k);
                let want: Vec<usize> = (0..o.n_sites())
                    .filter(|&s| s != q)
                    .filter(|&s| idx.knn(s, k).iter().any(|nb| nb.site == q))
                    .collect();
                assert_eq!(got, want, "q={q} k={k}");
            }
        }
    }

    #[test]
    fn subtree_counts_sum_to_n() {
        let o = oracle(22, 19, 0.25);
        let idx = ProximityIndex::new(&o);
        let t = o.tree();
        assert_eq!(idx.subtree_sites(t.root), 22);
        for (id, node) in t.nodes.iter().enumerate() {
            if !node.children.is_empty() {
                let s: usize = node.children.iter().map(|&c| idx.subtree_sites(c)).sum();
                assert_eq!(s, idx.subtree_sites(id as u32), "node {id}");
            } else {
                assert_eq!(idx.subtree_sites(id as u32), 1);
            }
        }
    }
}
