//! The node pair set (§3.3): a well-separated pair decomposition over the
//! compressed partition tree.
//!
//! Two nodes are *well-separated* when the geodesic distance between their
//! centers is at least `(2/ε + 2) · max` of their **enlarged** disk radii
//! (`2·r`, zero for leaves). Starting from `⟨root, root⟩`, every
//! non-well-separated pair is split at its larger-radius node (ties by
//! smaller node id) until all pairs are well-separated. Theorem 1 proves
//! the resulting set has the *unique node pair match property* — for any
//! two POIs exactly one ordered pair contains them — and that the distance
//! associated with the pair ε-approximates theirs.

use crate::ctree::CompressedTree;

/// Resolves geodesic distances between node centers during generation.
///
/// The efficient construction answers from the enhanced-edge hash in
/// `O(h)`; the naive construction runs one SSAD per call (§3.5).
pub trait PairDistanceResolver {
    /// Geodesic distance between sites `a` and `b` (center site indices).
    fn resolve(&mut self, a: usize, b: usize) -> f64;
}

/// One entry of the node pair set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodePair {
    /// Compressed-tree node ids (ordered — `⟨a, b⟩` and `⟨b, a⟩` are
    /// distinct entries).
    pub a: u32,
    /// Second compressed-tree node id of the pair.
    pub b: u32,
    /// Geodesic distance between the centers.
    pub dist: f64,
}

/// Result of node-pair-set generation.
#[derive(Debug, Clone)]
pub struct NodePairSet {
    /// The well-separated pairs with their center distances.
    pub pairs: Vec<NodePair>,
    /// Pairs examined by the splitting procedure (Theorem 2 bounds this by
    /// `O(nh/ε^{2β})`).
    pub considered: u64,
    /// Distance-resolver invocations.
    pub resolver_calls: u64,
}

/// Generates the node pair set for separation parameter ε.
pub fn generate(
    ctree: &CompressedTree,
    eps: f64,
    resolver: &mut dyn PairDistanceResolver,
) -> NodePairSet {
    assert!(eps > 0.0, "ε must be positive");
    let sep = 2.0 / eps + 2.0;
    let mut out = Vec::new();
    let mut considered = 0u64;
    let mut resolver_calls = 0u64;

    // (node a, node b, center distance).
    let mut stack: Vec<(u32, u32, f64)> = vec![(ctree.root, ctree.root, 0.0)];

    while let Some((a, b, d)) = stack.pop() {
        considered += 1;
        let ra = ctree.enlarged_radius(a);
        let rb = ctree.enlarged_radius(b);
        if d >= sep * ra.max(rb) {
            out.push(NodePair { a, b, dist: d });
            continue;
        }
        // Split the node with the larger radius; ties by smaller node id.
        // (Enlarged radii order identically to radii.)
        let split_a = match ra.total_cmp(&rb) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Less => false,
            std::cmp::Ordering::Equal => a <= b,
        };
        debug_assert!(
            !ctree.nodes[if split_a { a } else { b } as usize].children.is_empty(),
            "splitting a leaf: pair ({a},{b}) at distance {d} with radii ({ra},{rb}) \
             should have been well-separated"
        );
        if split_a {
            let cb = ctree.nodes[b as usize].center as usize;
            for &child in &ctree.nodes[a as usize].children {
                let cc = ctree.nodes[child as usize].center as usize;
                let cd = if cc == cb {
                    0.0
                } else {
                    resolver_calls += 1;
                    resolver.resolve(cc, cb)
                };
                stack.push((child, b, cd));
            }
        } else {
            let ca = ctree.nodes[a as usize].center as usize;
            for &child in &ctree.nodes[b as usize].children {
                let cc = ctree.nodes[child as usize].center as usize;
                let cd = if cc == ca {
                    0.0
                } else {
                    resolver_calls += 1;
                    resolver.resolve(ca, cc)
                };
                stack.push((a, child, cd));
            }
        }
    }

    NodePairSet { pairs: out, considered, resolver_calls }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctree::CompressedTree;
    use crate::tree::{PartitionTree, SelectionStrategy};
    use geodesic::ich::IchEngine;
    use geodesic::sitespace::{SiteSpace, VertexSiteSpace};
    use std::sync::Arc;
    use terrain::gen::diamond_square;

    struct DirectResolver<'a> {
        space: &'a dyn SiteSpace,
        cache: std::collections::HashMap<(usize, usize), f64>,
    }

    impl PairDistanceResolver for DirectResolver<'_> {
        fn resolve(&mut self, a: usize, b: usize) -> f64 {
            let key = (a.min(b), a.max(b));
            *self.cache.entry(key).or_insert_with(|| self.space.distance(key.0, key.1))
        }
    }

    fn setup(n: usize, seed: u64) -> (VertexSiteSpace, CompressedTree) {
        let mesh = Arc::new(diamond_square(4, 0.6, seed).to_mesh());
        let nv = mesh.n_vertices();
        let sites: Vec<u32> = (0..n).map(|i| (i * (nv / n)) as u32).collect();
        let sp = VertexSiteSpace::new(Arc::new(IchEngine::new(mesh)), sites);
        let (org, _) = PartitionTree::build(&sp, SelectionStrategy::Random, seed).unwrap();
        let c = CompressedTree::from_partition_tree(&org);
        (sp, c)
    }

    fn pairs_for(sp: &VertexSiteSpace, c: &CompressedTree, eps: f64) -> NodePairSet {
        let mut r = DirectResolver { space: sp, cache: Default::default() };
        generate(c, eps, &mut r)
    }

    #[test]
    fn all_pairs_well_separated() {
        let (sp, c) = setup(15, 3);
        let eps = 0.3;
        let set = pairs_for(&sp, &c, eps);
        let sep = 2.0 / eps + 2.0;
        for p in &set.pairs {
            let bound = sep * c.enlarged_radius(p.a).max(c.enlarged_radius(p.b));
            assert!(p.dist >= bound - 1e-9, "pair ({}, {}) not separated", p.a, p.b);
        }
    }

    #[test]
    fn unique_pair_match_property() {
        // Theorem 1: for every ordered site pair exactly one node pair
        // contains it.
        let (sp, c) = setup(12, 5);
        let set = pairs_for(&sp, &c, 0.4);
        let n = 12;
        for s in 0..n {
            for t in 0..n {
                let ls = c.leaf_of_site[s];
                let lt = c.leaf_of_site[t];
                let matching = set
                    .pairs
                    .iter()
                    .filter(|p| c.is_ancestor_or_self(p.a, ls) && c.is_ancestor_or_self(p.b, lt))
                    .count();
                assert_eq!(matching, 1, "sites ({s},{t}) matched {matching} pairs");
            }
        }
    }

    #[test]
    fn pair_distance_is_eps_approximation() {
        let (sp, c) = setup(10, 7);
        let eps = 0.25;
        let set = pairs_for(&sp, &c, eps);
        let n = 10;
        for s in 0..n {
            for t in 0..n {
                if s == t {
                    continue;
                }
                let ls = c.leaf_of_site[s];
                let lt = c.leaf_of_site[t];
                let p = set
                    .pairs
                    .iter()
                    .find(|p| c.is_ancestor_or_self(p.a, ls) && c.is_ancestor_or_self(p.b, lt))
                    .unwrap();
                let exact = sp.distance(s, t);
                assert!(
                    (p.dist - exact).abs() <= eps * exact + 1e-9,
                    "sites ({s},{t}): pair dist {} vs exact {exact} (ε = {eps})",
                    p.dist
                );
            }
        }
    }

    #[test]
    fn ordered_symmetry() {
        let (sp, c) = setup(12, 9);
        let set = pairs_for(&sp, &c, 0.5);
        for p in &set.pairs {
            assert!(
                set.pairs.iter().any(|q| q.a == p.b && q.b == p.a),
                "missing mirror of ({}, {})",
                p.a,
                p.b
            );
        }
    }

    #[test]
    fn no_duplicate_pairs() {
        let (sp, c) = setup(14, 11);
        let set = pairs_for(&sp, &c, 0.3);
        let mut keys: Vec<(u32, u32)> = set.pairs.iter().map(|p| (p.a, p.b)).collect();
        let before = keys.len();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(before, keys.len());
    }

    #[test]
    fn smaller_eps_means_more_pairs() {
        let (sp, c) = setup(15, 13);
        let loose = pairs_for(&sp, &c, 0.5).pairs.len();
        let tight = pairs_for(&sp, &c, 0.05).pairs.len();
        assert!(tight >= loose, "tight {tight} < loose {loose}");
    }

    #[test]
    fn self_pairs_exist_for_every_site() {
        // Query s == t must resolve: pair (leaf, leaf) with distance 0.
        let (sp, c) = setup(10, 17);
        let set = pairs_for(&sp, &c, 0.2);
        for s in 0..10 {
            let leaf = c.leaf_of_site[s];
            let found = set.pairs.iter().any(|p| p.a == leaf && p.b == leaf && p.dist == 0.0);
            assert!(found, "no self pair for site {s}");
        }
    }

    #[test]
    fn considered_counts_scale_with_eps() {
        let (sp, c) = setup(15, 19);
        let loose = pairs_for(&sp, &c, 0.5);
        let tight = pairs_for(&sp, &c, 0.05);
        assert!(tight.considered >= loose.considered);
        assert!(loose.considered >= loose.pairs.len() as u64);
    }
}
