//! Path reporting: the oracle's distance answers, promoted to routes.
//!
//! The paper scopes the SE oracle to *distance* queries, but its motivating
//! scenarios (§1.1 hiking / vehicle routing) need the route itself. This
//! module adds a [`PathIndex`] — a Steiner graph over the oracle's refined
//! mesh, keyed by site id — and [`SeOracle::shortest_path`], which pairs the
//! oracle's `O(h)` distance answer with an on-surface polyline
//! reconstructed by Steiner-graph backtracking plus straightening
//! ([`geodesic::path::shortest_path_straightened`]).
//!
//! # The path contract ([`EPS_PATH`])
//!
//! The polyline lies on the surface, so its length can never undercut the
//! true geodesic distance `d_geo`; the Steiner discretisation bounds it
//! from above by `(1 + ε_m) · d_geo`, where `ε_m` shrinks as
//! `points_per_edge` grows. Combining both with the oracle's own
//! `d̃ ∈ [(1 − ε) d_geo, (1 + ε) d_geo]` guarantee gives, for every query:
//!
//! ```text
//! distance / (1 + ε)  ≤  path.length  ≤  distance · (1 + EPS_PATH)
//! ```
//!
//! The upper bound holds for `ε ≤ 0.25` and `points_per_edge ≥ 3`
//! (measured worst-case Steiner looseness `ε_m ≈ 0.10` at `m = 3`, so
//! `(1 + ε_m) / (1 − ε) ≤ 1.10 · 4/3 < 1 + EPS_PATH`) with **any** engine,
//! because every engine metric is an on-surface path length, hence
//! `≥ d_geo`. Straightening is what makes the bound *relative*: the raw
//! graph path carries an additive quantisation error of up to half the
//! Steiner spacing (ruinous for near-coincident sites separated by a mesh
//! edge), which sliding each waypoint to its mirror optimum sheds. The
//! lower bound additionally needs the oracle's engine metric to *equal*
//! `d_geo` ([`crate::p2p::EngineKind::Exact`]); under an approximate
//! engine it loosens by that engine's own stretch (e.g. up to `√2` for
//! [`crate::p2p::EngineKind::EdgeGraph`] on grid triangulations — the
//! reported path can legitimately be *shorter* than an overshooting
//! engine's distance). This is the same style of documented,
//! test-enforced ceiling as the atlas [`crate::atlas::EPS_ROUTE`].

// lint: query-path
use crate::oracle::SeOracle;
use crate::p2p::P2POracle;
use geodesic::path::{shortest_vertex_path_straightened, SurfacePath};
use geodesic::steiner::SteinerGraph;
use std::sync::Arc;
use terrain::{TerrainMesh, VertexId};

/// Guaranteed ceiling on `path.length / distance − 1` for
/// [`SeOracle::shortest_path`], valid for oracle `ε ≤ 0.25` and a
/// [`PathIndex`] with at least 3 Steiner points per edge (see the module
/// docs for the derivation).
pub const EPS_PATH: f64 = 0.5;

/// A distance answer together with the route realising it.
#[derive(Debug, Clone, PartialEq)]
pub struct ShortestPath {
    /// The oracle's `ε`-approximate geodesic distance (bit-identical to
    /// what the plain distance query returns).
    pub distance: f64,
    /// On-surface polyline between the two sites; its length obeys the
    /// [`EPS_PATH`] contract relative to `distance`.
    pub path: SurfacePath,
}

/// Steiner-graph path index over an oracle's site set.
///
/// Built once next to the oracle, queried read-only — the same
/// shared-nothing shape as the oracle itself, so it is `Send + Sync` and
/// every query is bit-deterministic regardless of thread count.
#[derive(Debug, Clone)]
pub struct PathIndex {
    graph: SteinerGraph,
    site_vertices: Vec<VertexId>,
    points_per_edge: usize,
}

impl PathIndex {
    /// Builds a path index over `mesh` with `site_vertices[s]` the mesh
    /// vertex of site `s` (the refined mesh and vertex list the oracle was
    /// built from) and `points_per_edge` Steiner points per mesh edge.
    pub fn build(
        mesh: Arc<TerrainMesh>,
        site_vertices: Vec<VertexId>,
        points_per_edge: usize,
    ) -> Self {
        let n_verts = mesh.n_vertices() as VertexId;
        for &v in &site_vertices {
            assert!(v < n_verts, "site vertex {v} out of range for a mesh of {n_verts} vertices");
        }
        let graph = SteinerGraph::with_points_per_edge(mesh, points_per_edge);
        PathIndex { graph, site_vertices, points_per_edge }
    }

    /// Builds the index for a [`P2POracle`]'s site set over its refined
    /// mesh. `points_per_edge ≥ 3` keeps the [`EPS_PATH`] contract.
    pub fn for_p2p(p2p: &P2POracle, points_per_edge: usize) -> Self {
        PathIndex::build(p2p.mesh().clone(), p2p.site_vertices().to_vec(), points_per_edge)
    }

    /// Number of sites the index answers for.
    pub fn n_sites(&self) -> usize {
        self.site_vertices.len()
    }

    /// Steiner points per mesh edge the index was built with.
    pub fn points_per_edge(&self) -> usize {
        self.points_per_edge
    }

    /// The underlying Steiner graph.
    pub fn graph(&self) -> &SteinerGraph {
        &self.graph
    }

    /// Mesh vertex of site `s`.
    ///
    /// # Panics
    /// Panics if `s` is out of range.
    pub fn site_vertex(&self, s: usize) -> VertexId {
        self.site_vertices[s]
    }

    /// On-surface shortest path between two sites: Steiner-graph Dijkstra
    /// followed by straightening (each Steiner waypoint slides along its
    /// host edge to the length-minimising position), so the discrete
    /// quantisation of the graph does not survive into the polyline.
    ///
    /// # Panics
    /// Panics if either id is out of range.
    pub fn path_between(&self, s: usize, t: usize) -> SurfacePath {
        let n = self.n_sites();
        assert!(s < n && t < n, "site pair ({s}, {t}) out of range for {n} sites");
        shortest_vertex_path_straightened(&self.graph, self.site_vertices[s], self.site_vertices[t])
            // lint: allow(panic, "invariant: refined meshes are validated connected, so a vertex path always exists")
            .expect("sites lie on one connected mesh")
    }

    /// Heap footprint of the index (graph + site table).
    pub fn storage_bytes(&self) -> usize {
        self.graph.storage_bytes() + self.site_vertices.len() * std::mem::size_of::<VertexId>()
    }
}

impl SeOracle {
    /// Answers a distance query *and* reports a route realising it.
    ///
    /// `distance` is exactly [`SeOracle::distance`]`(s, t)` — bit-identical,
    /// so serving layers can mix path and distance traffic freely. The
    /// polyline comes from `paths` and obeys the [`EPS_PATH`] contract.
    ///
    /// # Panics
    /// Panics if either id is out of range or if `paths` was built for a
    /// different site count than this oracle.
    pub fn shortest_path(&self, s: usize, t: usize, paths: &PathIndex) -> ShortestPath {
        assert_eq!(
            paths.n_sites(),
            self.n_sites(),
            "path index covers {} sites but the oracle has {}; build it from the same site set",
            paths.n_sites(),
            self.n_sites()
        );
        let distance = self.distance(s, t);
        ShortestPath { distance, path: paths.path_between(s, t) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::BuildConfig;
    use crate::p2p::EngineKind;
    use terrain::gen::diamond_square;
    use terrain::poi::sample_uniform;

    fn p2p(n: usize, seed: u64, eps: f64, engine: EngineKind) -> P2POracle {
        let mesh = diamond_square(4, 0.6, seed).to_mesh();
        let pois = sample_uniform(&mesh, n, seed ^ 0xABC);
        P2POracle::build(&mesh, &pois, eps, engine, &BuildConfig::default()).unwrap()
    }

    #[test]
    fn path_obeys_the_eps_path_contract() {
        // The two-sided contract needs the exact engine (module docs).
        let eps = 0.2;
        let p = p2p(14, 61, eps, EngineKind::Exact);
        let paths = PathIndex::for_p2p(&p, 3);
        let o = p.oracle();
        for s in 0..o.n_sites() {
            for t in 0..o.n_sites() {
                let sp = o.shortest_path(s, t, &paths);
                assert_eq!(sp.distance.to_bits(), o.distance(s, t).to_bits());
                if s == t {
                    assert_eq!(sp.path.length, 0.0);
                    continue;
                }
                assert!(
                    sp.path.length >= sp.distance / (1.0 + eps) - 1e-9,
                    "({s},{t}): path {} undercuts distance {}",
                    sp.path.length,
                    sp.distance
                );
                assert!(
                    sp.path.length <= sp.distance * (1.0 + EPS_PATH) + 1e-9,
                    "({s},{t}): path {} breaks EPS_PATH vs {}",
                    sp.path.length,
                    sp.distance
                );
                assert_eq!(sp.path.points[0], paths.graph().position(paths.site_vertex(s)));
                assert_eq!(
                    *sp.path.points.last().unwrap(),
                    paths.graph().position(paths.site_vertex(t))
                );
            }
        }
    }

    #[test]
    fn approximate_engines_keep_the_upper_bound() {
        // EdgeGraph overshoots d_geo, so only the EPS_PATH ceiling is
        // promised; the path may undercut distance/(1+ε).
        let p = p2p(12, 63, 0.25, EngineKind::EdgeGraph);
        let paths = PathIndex::for_p2p(&p, 3);
        let o = p.oracle();
        for s in 0..o.n_sites() {
            for t in s + 1..o.n_sites() {
                let sp = o.shortest_path(s, t, &paths);
                assert!(
                    sp.path.length <= sp.distance * (1.0 + EPS_PATH) + 1e-9,
                    "({s},{t}): path {} breaks EPS_PATH vs {}",
                    sp.path.length,
                    sp.distance
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "path index covers")]
    fn mismatched_index_is_rejected() {
        let a = p2p(10, 61, 0.2, EngineKind::EdgeGraph);
        let b = p2p(12, 62, 0.2, EngineKind::EdgeGraph);
        let paths = PathIndex::for_p2p(&b, 3);
        a.oracle().shortest_path(0, 1, &paths);
    }
}
