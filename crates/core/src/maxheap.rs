//! A lazily-revalidated max-heap keyed by `usize` counts.
//!
//! The greedy point-selection strategy keeps cells ordered by how many
//! uncovered POIs they contain; counts only decrease, so stale heap entries
//! are discarded at pop time by re-checking against the live count.

use std::collections::BinaryHeap;

/// Max-heap of `(count, item)` with lazy deletion.
#[derive(Debug, Clone)]
pub struct LazyMaxHeap<T> {
    heap: BinaryHeap<(usize, T)>,
}

impl<T: Ord + Copy> LazyMaxHeap<T> {
    /// An empty heap.
    pub fn new() -> Self {
        Self { heap: BinaryHeap::new() }
    }

    /// Inserts `item` with priority `count`.
    pub fn push(&mut self, count: usize, item: T) {
        self.heap.push((count, item));
    }

    /// Pops the item with the largest *live* count, where `live` reports the
    /// current count of an item. Entries whose recorded count is stale are
    /// re-inserted with their live count (if still positive) and skipped.
    pub fn pop_valid(&mut self, live: impl Fn(&T) -> usize) -> Option<T> {
        while let Some((recorded, item)) = self.heap.pop() {
            let actual = live(&item);
            if actual == 0 {
                continue;
            }
            if actual == recorded {
                return Some(item);
            }
            // Stale: requeue with the fresh count and keep looking. The
            // requeued entry is exact, so it is returned if it surfaces
            // again — no infinite loop.
            self.heap.push((actual, item));
        }
        None
    }

    /// Whether no items are queued (stale entries may still linger).
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T: Ord + Copy> Default for LazyMaxHeap<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn pops_largest_live_count() {
        let mut counts: HashMap<u32, usize> = [(1, 5), (2, 9), (3, 2)].into();
        let mut h = LazyMaxHeap::new();
        for (&k, &c) in &counts {
            h.push(c, k);
        }
        assert_eq!(h.pop_valid(|k| counts[k]), Some(2));
        // Decay item 2's count below item 1's: now 1 should win.
        counts.insert(2, 1);
        h.push(9, 2); // stale entry
        assert_eq!(h.pop_valid(|k| counts[k]), Some(1));
    }

    #[test]
    fn skips_emptied_items() {
        let counts: HashMap<u32, usize> = [(1, 0), (2, 0), (3, 4)].into();
        let mut h = LazyMaxHeap::new();
        h.push(7, 1);
        h.push(3, 2);
        h.push(4, 3);
        assert_eq!(h.pop_valid(|k| counts[k]), Some(3));
        assert_eq!(h.pop_valid(|k| counts[k]), None);
    }

    #[test]
    fn empty_heap_returns_none() {
        let mut h: LazyMaxHeap<u32> = LazyMaxHeap::new();
        assert_eq!(h.pop_valid(|_| 1), None);
        assert!(h.is_empty());
    }
}
