//! The SE distance oracle: construction (§3.5) and query processing (§3.4).

// lint: query-path
use crate::ctree::CompressedTree;
use crate::enhanced::{EnhancedEdges, EnhancedResolver};
use crate::tree::{PartitionTree, SelectionStrategy, TreeError, NO_NODE};
use crate::wspd::{self, PairDistanceResolver};
use geodesic::cache::CachingSiteSpace;
use geodesic::sitespace::SiteSpace;
use phash::{pair_key, PerfectMap};
// lint: allow(d2, "timing types for build stats; wall-clock never feeds oracle data")
use std::time::{Duration, Instant};

/// How node-pair distances are obtained during construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstructionMethod {
    /// Enhanced-edge pre-computation + `O(h)` hash walks (§3.5 "Efficient
    /// Method"): one bounded SSAD per partition-tree node.
    Efficient,
    /// One SSAD per considered node pair (§3.5 "Naive Method"; the paper's
    /// SE(Naive) baseline).
    Naive,
}

/// Construction-time options.
#[derive(Debug, Clone, Copy)]
pub struct BuildConfig {
    /// Point-selection strategy for partition-tree covering.
    pub strategy: SelectionStrategy,
    /// Efficient (enhanced-edge) or naive pair-distance construction.
    pub method: ConstructionMethod,
    /// RNG seed (point selection, perfect-hash salts).
    pub seed: u64,
    /// Worker threads driving all construction-time SSAD work (partition
    /// tree, enhanced edges). `0` (the default) auto-detects via
    /// [`std::thread::available_parallelism`]. The built oracle is
    /// byte-for-byte identical for every thread count.
    pub threads: usize,
}

impl BuildConfig {
    /// The effective worker count: `threads`, with `0` resolved to the
    /// detected parallelism.
    pub fn resolved_threads(&self) -> usize {
        geodesic::pool::resolve_threads(self.threads)
    }
}

impl Default for BuildConfig {
    fn default() -> Self {
        Self {
            strategy: SelectionStrategy::Random,
            method: ConstructionMethod::Efficient,
            seed: 0x5EED,
            threads: 0,
        }
    }
}

/// Construction failures.
#[derive(Debug)]
pub enum BuildError {
    /// ε must be a positive real (the paper allows ε ≥ 0 but ε = 0 forces
    /// infinite separation; exact oracles are out of scope by §1.3).
    InvalidEpsilon(f64),
    /// Partition-tree construction failed.
    Tree(TreeError),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::InvalidEpsilon(e) => write!(f, "invalid error parameter ε = {e}"),
            BuildError::Tree(t) => write!(f, "partition tree construction failed: {t}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<TreeError> for BuildError {
    fn from(t: TreeError) -> Self {
        BuildError::Tree(t)
    }
}

/// Timings and counters from one oracle construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildStats {
    /// End-to-end build wall clock.
    pub total: Duration,
    /// Partition-tree phase wall clock.
    pub tree: Duration,
    /// Enhanced-edge phase wall clock.
    pub enhanced: Duration,
    /// Node-pair-generation phase wall clock.
    pub pair_gen: Duration,
    /// All SSAD requests issued (tree + enhanced edges + naive pair
    /// distances). `cache_hits` of them were served from the SSAD-reuse
    /// cache without touching the engine.
    pub ssad_runs: u64,
    /// Construction SSAD/distance requests answered from the reuse cache.
    pub cache_hits: u64,
    /// Requests that ran the underlying geodesic engine.
    pub cache_misses: u64,
    /// Worker threads used (the resolved value of [`BuildConfig::threads`]).
    pub workers: usize,
    /// Node pairs examined by the WSPD splitting (Theorem 2).
    pub considered_pairs: u64,
    /// Pairs stored in the oracle.
    pub stored_pairs: usize,
    /// Original partition-tree node count.
    pub org_nodes: usize,
    /// Compressed-tree node count.
    pub compressed_nodes: usize,
    /// Tree height `h`.
    pub height: u32,
    /// Root radius `r₀`.
    pub r0: f64,
    /// Enhanced-resolver misses answered by direct SSAD (expected 0).
    pub resolver_fallbacks: u64,
}

impl BuildStats {
    /// Records these stats into `reg` under `build_*` metric names —
    /// phase wall clocks as `_us` gauges, SSAD/cache tallies as
    /// counters, and structural sizes as gauges. [`SeOracle::build`]
    /// calls this on [`obs::global`] so any registry consumer (the
    /// `Metrics` wire verb, `bench snapshot`) sees construction cost
    /// without threading `BuildStats` around.
    pub fn record_to(&self, reg: &obs::Registry) {
        let us = |d: Duration| d.as_micros() as u64;
        reg.gauge("build_total_us").set(us(self.total));
        reg.gauge("build_tree_us").set(us(self.tree));
        reg.gauge("build_enhanced_us").set(us(self.enhanced));
        reg.gauge("build_pair_gen_us").set(us(self.pair_gen));
        reg.counter("build_ssad_runs_total").add(self.ssad_runs);
        reg.counter("build_cache_hits_total").add(self.cache_hits);
        reg.counter("build_cache_misses_total").add(self.cache_misses);
        reg.counter("build_considered_pairs_total").add(self.considered_pairs);
        reg.counter("build_resolver_fallbacks_total").add(self.resolver_fallbacks);
        reg.gauge("build_workers").set(self.workers as u64);
        reg.gauge("build_stored_pairs").set(self.stored_pairs as u64);
        reg.gauge("build_org_nodes").set(self.org_nodes as u64);
        reg.gauge("build_compressed_nodes").set(self.compressed_nodes as u64);
        reg.gauge("build_height").set(u64::from(self.height));
    }
}

/// Typed failure of a checked query ([`SeOracle::distance_many_checked`])
/// — what a serving process reports instead of panicking when a request or
/// a persisted image turns out to be invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// A pair referenced a site id outside `0..n_sites`.
    SiteOutOfRange {
        /// Index of the offending pair in the batch.
        index: usize,
        /// The out-of-range id.
        site: u32,
        /// Number of sites the oracle covers.
        n_sites: usize,
    },
    /// No stored node pair covers `(s, t)` — the unique-node-pair-match
    /// property (Theorem 1) is violated, which only a corrupt or hostile
    /// persisted image can produce.
    NoCoveringPair {
        /// First site of the uncovered query.
        s: usize,
        /// Second site of the uncovered query.
        t: usize,
    },
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::SiteOutOfRange { index, site, n_sites } => write!(
                f,
                "pair #{index}: site id {site} out of range for an oracle over {n_sites} sites"
            ),
            QueryError::NoCoveringPair { s, t } => write!(
                f,
                "no stored node pair covers sites ({s}, {t}) — corrupt oracle image \
                 (Theorem 1 violated); rebuild the image"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

/// Per-query counters (for the `O(h)` vs `O(h²)` ablation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Node pairs probed in the hash.
    pub pairs_checked: u32,
}

/// Per-batch probe counters from
/// [`SeOracle::distance_many_checked_with_stats`] — pure counts (no
/// timing), so the serving path can feed a metrics registry without
/// violating the no-clocks query contract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Node-pair hash probes performed across the whole batch.
    pub probes: u64,
    /// Endpoints whose layer array was already resident in the two-slot
    /// scratch memo (always 0 on the dense path, which precomputes every
    /// array up front).
    pub scratch_hits: u64,
}

/// The Space-Efficient ε-approximate geodesic distance oracle.
///
/// Built over any [`SiteSpace`]; answers site-to-site distance queries in
/// `O(h)` hash probes with multiplicative error at most ε (Theorem 1).
pub struct SeOracle {
    eps: f64,
    ctree: CompressedTree,
    /// `pair_key(node_a, node_b)` → center distance, over compressed-tree
    /// node ids; the node pair set of §3.3 under perfect hashing.
    pairs: PerfectMap<f64>,
    stats: BuildStats,
}

impl SeOracle {
    /// Builds the oracle over `space` with error parameter `eps`.
    pub fn build(space: &dyn SiteSpace, eps: f64, cfg: &BuildConfig) -> Result<Self, BuildError> {
        if !(eps > 0.0 && eps.is_finite()) {
            return Err(BuildError::InvalidEpsilon(eps));
        }
        // lint: allow(d2, "build timing recorded in BuildStats only; never feeds the oracle image")
        let t_start = Instant::now();
        let span_build = obs::trace::span("build", "build");
        let mut stats = BuildStats::default();
        let workers = cfg.resolved_threads();
        stats.workers = workers;

        // Every construction phase reads geodesic distances through one
        // SSAD-reuse cache: a center re-visited by a deeper tree layer, the
        // enhanced-edge phase, or a naive/fallback distance query hits
        // memory instead of re-running the engine. Cached labels are
        // bit-identical to fresh runs (see `geodesic::cache`), so this —
        // like the worker pool — leaves the built oracle byte-for-byte
        // unchanged.
        let space = CachingSiteSpace::new(space);

        // Step 1: partition tree + compressed partition tree.
        // lint: allow(d2, "phase timing lands in BuildStats only; never in oracle data")
        let t = Instant::now();
        let span_tree = obs::trace::span("build", "tree");
        let (org, tree_stats) = PartitionTree::build_with(&space, cfg.strategy, cfg.seed, workers)?;
        let ctree = CompressedTree::from_partition_tree(&org);
        drop(span_tree);
        stats.tree = t.elapsed();
        stats.ssad_runs += tree_stats.ssad_runs;
        stats.org_nodes = org.nodes.len();
        stats.compressed_nodes = ctree.n_nodes();
        stats.height = org.height();
        stats.r0 = org.r0;

        // Steps 2–4: node pair set, with distances resolved per the method.
        let set = match cfg.method {
            ConstructionMethod::Efficient => {
                // lint: allow(d2, "phase timing lands in BuildStats only; never in oracle data")
                let t = Instant::now();
                let span_enh = obs::trace::span("build", "enhanced-edges");
                let edges = EnhancedEdges::build(&org, &space, eps, workers, cfg.seed);
                drop(span_enh);
                stats.enhanced = t.elapsed();
                stats.ssad_runs += edges.ssad_runs;

                // lint: allow(d2, "phase timing lands in BuildStats only; never in oracle data")
                let t = Instant::now();
                let span_pairs = obs::trace::span("build", "pair-gen");
                let mut resolver = EnhancedResolver::new(&org, &edges, &space);
                let set = wspd::generate(&ctree, eps, &mut resolver);
                drop(span_pairs);
                stats.pair_gen = t.elapsed();
                stats.resolver_fallbacks = resolver.fallbacks;
                stats.ssad_runs += resolver.fallbacks;
                set
            }
            ConstructionMethod::Naive => {
                struct Ssad<'a> {
                    space: &'a dyn SiteSpace,
                    runs: u64,
                }
                impl PairDistanceResolver for Ssad<'_> {
                    fn resolve(&mut self, a: usize, b: usize) -> f64 {
                        self.runs += 1;
                        self.space.distance(a, b)
                    }
                }
                // lint: allow(d2, "phase timing lands in BuildStats only; never in oracle data")
                let t = Instant::now();
                let span_pairs = obs::trace::span("build", "pair-gen");
                let mut resolver = Ssad { space: &space, runs: 0 };
                let set = wspd::generate(&ctree, eps, &mut resolver);
                drop(span_pairs);
                stats.pair_gen = t.elapsed();
                stats.ssad_runs += resolver.runs;
                set
            }
        };
        stats.considered_pairs = set.considered;
        stats.stored_pairs = set.pairs.len();

        let entries: Vec<(u64, f64)> =
            set.pairs.iter().map(|p| (pair_key(p.a, p.b), p.dist)).collect();
        let pairs = PerfectMap::build(entries, cfg.seed ^ 0x9A12_5EED);
        let cache = space.stats();
        stats.cache_hits = cache.hits;
        stats.cache_misses = cache.misses;
        stats.total = t_start.elapsed();
        drop(span_build);
        stats.record_to(obs::global());

        Ok(Self { eps, ctree, pairs, stats })
    }

    /// The error parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.eps
    }

    /// Height `h` of the underlying partition tree (`< 30` on all datasets
    /// the paper reports; Lemma 2 bounds it by the log distance spread).
    pub fn height(&self) -> u32 {
        self.ctree.h
    }

    /// Number of sites indexed.
    pub fn n_sites(&self) -> usize {
        self.ctree.leaf_of_site.len()
    }

    /// Number of stored node pairs.
    pub fn n_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Construction statistics.
    pub fn build_stats(&self) -> &BuildStats {
        &self.stats
    }

    /// The compressed partition tree (read access for analysis/tests).
    pub fn tree(&self) -> &CompressedTree {
        &self.ctree
    }

    /// Iterates the stored node pairs as `(pair key, distance)` — the
    /// oracle's entire queryable payload besides the tree (used by
    /// [`crate::persist`]).
    pub fn pair_entries(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.pairs.iter().map(|(k, &v)| (k, v))
    }

    /// Reassembles an oracle from a compressed tree and its node-pair
    /// entries (the inverse of [`Self::tree`] + [`Self::pair_entries`];
    /// used when deserializing). The perfect hash is rebuilt from `seed`.
    pub(crate) fn from_parts(
        eps: f64,
        ctree: CompressedTree,
        entries: Vec<(u64, f64)>,
        seed: u64,
    ) -> Self {
        let stats = BuildStats {
            stored_pairs: entries.len(),
            compressed_nodes: ctree.n_nodes(),
            height: ctree.h,
            r0: ctree.r0,
            ..Default::default()
        };
        let pairs = PerfectMap::build(entries, seed);
        Self { eps, ctree, pairs, stats }
    }

    /// ε-approximate geodesic distance between sites `s` and `t` — the
    /// paper's efficient `O(h)` query.
    ///
    /// Panics when either site id is out of range; use
    /// [`Self::try_distance`] for a checked variant.
    pub fn distance(&self, s: usize, t: usize) -> f64 {
        self.distance_with_stats(s, t).0
    }

    /// Checked query: `None` when either site id is out of range, otherwise
    /// identical to [`Self::distance`].
    pub fn try_distance(&self, s: usize, t: usize) -> Option<f64> {
        let n = self.n_sites();
        (s < n && t < n).then(|| self.distance(s, t))
    }

    /// Batch query: the distance of every pair, in input order, each
    /// bit-identical to the corresponding [`Self::distance`] call.
    ///
    /// One `distance` call spends a large share of its ~hundreds of
    /// nanoseconds materializing the two layer arrays (a heap allocation
    /// and root-path walk per endpoint). The batch amortizes that: small
    /// batches reuse a two-slot scratch (no allocation per pair; runs
    /// sharing an endpoint in either role recompute nothing), and batches
    /// with at least as many pairs as the oracle has sites switch to a
    /// dense table of **all** layer arrays — one tree pass, then every
    /// pair is pure hash probes. The dense table is `n·(h+1)·4` bytes,
    /// which the `pairs.len() ≥ n` gate keeps proportional to the batch
    /// itself.
    ///
    /// Panics when any pair is out of range (the message names the first
    /// offending pair); use [`Self::try_distance_many`] for a checked
    /// variant.
    pub fn distance_many(&self, pairs: &[(u32, u32)]) -> Vec<f64> {
        self.check_pairs(pairs);
        if pairs.len() >= self.n_sites() {
            self.distance_many_dense(pairs, &self.dense_layers())
        } else {
            let mut scratch = LayerScratch::default();
            pairs
                .iter()
                .map(|&(s, t)| {
                    let (s, t) = (s as usize, t as usize);
                    let (i, j) = scratch.pair_slots(&self.ctree, s, t);
                    self.probe(s, t, &scratch.arrays[i], &scratch.arrays[j]).0
                })
                .collect()
        }
    }

    /// Checked batch query: element `i` is `Some(distance(pairs[i]))`, or
    /// `None` when either id of `pairs[i]` is out of range — exactly what
    /// mapping [`Self::try_distance`] over the slice returns, with the
    /// same amortization as [`Self::distance_many`].
    pub fn try_distance_many(&self, pairs: &[(u32, u32)]) -> Vec<Option<f64>> {
        if pairs.len() >= self.n_sites() {
            self.try_distance_many_dense(pairs, &self.dense_layers())
        } else {
            let n = self.n_sites();
            let mut scratch = LayerScratch::default();
            pairs
                .iter()
                .map(|&(s, t)| {
                    let (s, t) = (s as usize, t as usize);
                    (s < n && t < n).then(|| {
                        let (i, j) = scratch.pair_slots(&self.ctree, s, t);
                        self.probe(s, t, &scratch.arrays[i], &scratch.arrays[j]).0
                    })
                })
                .collect()
        }
    }

    /// Fully checked batch query for serving **untrusted or persisted**
    /// images: every failure mode is a typed error, never a panic.
    ///
    /// Unlike [`Self::try_distance_many`] (which only checks id ranges and
    /// still inherits the corrupt-image panic from the probe), this is the
    /// entry point a network daemon uses — a checksum-valid but hostile
    /// image can ship a pair set violating Theorem 1, and bytes from disk
    /// must never crash a serving process. Successful answers are
    /// bit-identical to [`Self::distance_many`] on the same pairs.
    pub fn distance_many_checked(&self, pairs: &[(u32, u32)]) -> Result<Vec<f64>, QueryError> {
        self.distance_many_checked_with_stats(pairs).map(|(d, _)| d)
    }

    /// [`Self::distance_many_checked`] plus per-batch [`ProbeStats`] — the
    /// serving daemon's entry point, which feeds the telemetry registry
    /// from counts alone (no clocks anywhere on the query path).
    pub fn distance_many_checked_with_stats(
        &self,
        pairs: &[(u32, u32)],
    ) -> Result<(Vec<f64>, ProbeStats), QueryError> {
        let n = self.n_sites();
        if let Some((index, &(s, t))) =
            pairs.iter().enumerate().find(|&(_, &(s, t))| s as usize >= n || t as usize >= n)
        {
            let site = if s as usize >= n { s } else { t };
            return Err(QueryError::SiteOutOfRange { index, site, n_sites: n });
        }
        let mut stats = ProbeStats::default();
        let mut count = |probed: Option<(f64, QueryStats)>, s: usize, t: usize| {
            let (d, qs) = probed.ok_or(QueryError::NoCoveringPair { s, t })?;
            stats.probes += qs.pairs_checked as u64;
            Ok(d)
        };
        let answers: Result<Vec<f64>, QueryError> = if pairs.len() >= n {
            let d = self.dense_layers();
            pairs
                .iter()
                .map(|&(s, t)| {
                    let (s, t) = (s as usize, t as usize);
                    count(self.probe_checked(d.row(s), d.row(t)), s, t)
                })
                .collect()
        } else {
            let mut scratch = LayerScratch::default();
            let collected = pairs
                .iter()
                .map(|&(s, t)| {
                    let (s, t) = (s as usize, t as usize);
                    let (i, j) = scratch.pair_slots(&self.ctree, s, t);
                    count(self.probe_checked(&scratch.arrays[i], &scratch.arrays[j]), s, t)
                })
                .collect();
            stats.scratch_hits = scratch.hits;
            collected
        };
        answers.map(|v| (v, stats))
    }

    /// Validates a batch with the same actionable panic contract as
    /// [`Self::check_sites`] (shared with the parallel driver, which
    /// validates before sharding so the panic fires on the caller's
    /// thread).
    pub(crate) fn check_pairs(&self, pairs: &[(u32, u32)]) {
        let n = self.n_sites();
        if let Some((i, &(s, t))) =
            pairs.iter().enumerate().find(|&(_, &(s, t))| s as usize >= n || t as usize >= n)
        {
            // lint: allow(panic, "documented panic contract for out-of-range ids; try_distance_many is the checked alternative")
            panic!(
                "pair #{i} ({s}, {t}) out of range for an oracle over {n} sites \
                 (valid ids are 0..{n}); use SeOracle::try_distance_many for a checked batch"
            );
        }
    }

    /// The dense table behind large batches, built once and shared — the
    /// parallel driver hands one table to every shard instead of letting
    /// each rebuild (or miss) it.
    pub(crate) fn dense_layers(&self) -> DenseLayers {
        DenseLayers { h1: self.ctree.h as usize + 1, flat: self.ctree.all_layer_arrays() }
    }

    /// [`Self::distance_many`]'s dense path over a pre-built table.
    /// `pairs` must already be validated (see [`Self::check_pairs`]).
    pub(crate) fn distance_many_dense(&self, pairs: &[(u32, u32)], d: &DenseLayers) -> Vec<f64> {
        pairs
            .iter()
            .map(|&(s, t)| {
                let (s, t) = (s as usize, t as usize);
                self.probe(s, t, d.row(s), d.row(t)).0
            })
            .collect()
    }

    /// [`Self::try_distance_many`]'s dense path over a pre-built table.
    pub(crate) fn try_distance_many_dense(
        &self,
        pairs: &[(u32, u32)],
        d: &DenseLayers,
    ) -> Vec<Option<f64>> {
        let n = self.n_sites();
        pairs
            .iter()
            .map(|&(s, t)| {
                let (s, t) = (s as usize, t as usize);
                (s < n && t < n).then(|| self.probe(s, t, d.row(s), d.row(t)).0)
            })
            .collect()
    }

    /// Efficient query, also reporting how many hash probes it made.
    pub fn distance_with_stats(&self, s: usize, t: usize) -> (f64, QueryStats) {
        self.check_sites(s, t);
        let a = self.ctree.layer_array(s);
        let b = self.ctree.layer_array(t);
        self.probe(s, t, &a, &b)
    }

    /// The `O(h)` probe sequence of §3.4 over pre-computed layer arrays.
    /// Separated from [`Self::distance_with_stats`] so batch queries can
    /// amortize the layer-array computation across many pairs.
    ///
    /// A probe miss means the unique-node-pair-match property (Theorem 1)
    /// does not hold for `(s, t)` — impossible for a built oracle, but a
    /// checksum-valid yet hostile persisted image can ship an arbitrary
    /// pair set. Direct callers keep the documented loud panic; the
    /// serving path goes through [`Self::probe_checked`] so bytes from
    /// disk or the wire can never crash a serving process.
    fn probe(&self, s: usize, t: usize, a: &[u32], b: &[u32]) -> (f64, QueryStats) {
        self.probe_checked(a, b).unwrap_or_else(|| {
            // lint: allow(panic, "documented corrupt-image panic; probe_checked is the serving-path alternative")
            panic!(
                "no stored node pair covers sites ({s}, {t}) although both ids are in range — \
                 the unique node pair match property (Theorem 1) is violated, which means the \
                 oracle's pair set is corrupt (a construction bug or a mismatched seed when \
                 reassembling a persisted oracle); rebuild the oracle and report this if it recurs"
            )
        })
    }

    /// [`Self::probe`] without the corrupt-image panic: `None` when no
    /// stored node pair covers the two sites behind layer arrays `a`/`b`.
    fn probe_checked(&self, a: &[u32], b: &[u32]) -> Option<(f64, QueryStats)> {
        let h = self.ctree.h as usize;
        let nodes = &self.ctree.nodes;
        let mut qs = QueryStats::default();

        // Step 1: same-layer pairs.
        for i in 0..=h {
            if a[i] != NO_NODE && b[i] != NO_NODE {
                qs.pairs_checked += 1;
                if let Some(&d) = self.pairs.get(pair_key(a[i], b[i])) {
                    return Some((d, qs));
                }
            }
        }
        // Step 2: first-higher-layer pairs ⟨a[k], b[i]⟩ with k < i. By
        // Lemma 3 it suffices to scan k from Layer(parent(b[i])) to i − 1.
        for i in 0..=h {
            if b[i] == NO_NODE || b[i] == self.ctree.root {
                continue;
            }
            let j = nodes[nodes[b[i] as usize].parent as usize].layer as usize;
            for &ak in &a[j..i] {
                if ak != NO_NODE {
                    qs.pairs_checked += 1;
                    if let Some(&d) = self.pairs.get(pair_key(ak, b[i])) {
                        return Some((d, qs));
                    }
                }
            }
        }
        // Step 3: first-lower-layer pairs ⟨a[i], b[k]⟩ with k < i
        // (symmetric).
        for i in 0..=h {
            if a[i] == NO_NODE || a[i] == self.ctree.root {
                continue;
            }
            let j = nodes[nodes[a[i] as usize].parent as usize].layer as usize;
            for &bk in &b[j..i] {
                if bk != NO_NODE {
                    qs.pairs_checked += 1;
                    if let Some(&d) = self.pairs.get(pair_key(a[i], bk)) {
                        return Some((d, qs));
                    }
                }
            }
        }
        None
    }

    /// The paper's naive `O(h²)` query (baseline for the query ablation):
    /// probes the full Cartesian product of the two root paths.
    pub fn distance_naive(&self, s: usize, t: usize) -> (f64, QueryStats) {
        self.check_sites(s, t);
        let a = self.ctree.layer_array(s);
        let b = self.ctree.layer_array(t);
        let mut qs = QueryStats::default();
        for &na in a.iter().filter(|&&x| x != NO_NODE) {
            for &nb in b.iter().filter(|&&x| x != NO_NODE) {
                qs.pairs_checked += 1;
                if let Some(&d) = self.pairs.get(pair_key(na, nb)) {
                    return (d, qs);
                }
            }
        }
        unreachable!(
            "no stored node pair covers sites ({s}, {t}) (naive probe of the full root-path \
             product) — the oracle's pair set is corrupt; rebuild the oracle"
        )
    }

    /// Actionable bounds check shared by the query paths: a plain slice
    /// index would panic deep inside `layer_array` with no hint at the
    /// cause.
    #[inline]
    fn check_sites(&self, s: usize, t: usize) {
        let n = self.n_sites();
        assert!(
            s < n && t < n,
            "site ids ({s}, {t}) out of range for an oracle over {n} sites \
             (valid ids are 0..{n}); use SeOracle::try_distance for a checked query"
        );
    }

    /// Oracle size: compressed tree + node-pair perfect hash (what a
    /// serialized oracle would occupy; construction scaffolding excluded).
    pub fn storage_bytes(&self) -> usize {
        self.ctree.storage_bytes() + self.pairs.storage_bytes()
    }
}

impl std::fmt::Debug for SeOracle {
    /// Shape summary (the pair set and tree are far too large to dump).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SeOracle")
            .field("n_sites", &self.n_sites())
            .field("epsilon", &self.eps)
            .field("n_pairs", &self.n_pairs())
            .field("height", &self.height())
            .finish()
    }
}

/// All sites' layer arrays in one flat row-major table
/// ([`CompressedTree::all_layer_arrays`]) — what large batch queries probe
/// against instead of re-walking root paths per pair.
pub(crate) struct DenseLayers {
    /// Row stride, `h + 1`.
    h1: usize,
    flat: Vec<u32>,
}

impl DenseLayers {
    /// `site`'s layer array.
    #[inline]
    fn row(&self, site: usize) -> &[u32] {
        &self.flat[site * self.h1..(site + 1) * self.h1]
    }
}

/// Sentinel for an empty [`LayerScratch`] slot (site ids are `usize`, so a
/// `u64` sentinel can never collide with a valid id on 64-bit targets and
/// is out of range on all others).
const NO_SITE: u64 = u64::MAX;

/// Two-slot memo of site layer arrays, the sparse batch path's
/// amortization: the two most recently used distinct sites keep their
/// arrays, so consecutive pairs sharing an endpoint — in either role,
/// including a full `(s, t)` → `(t, s)` swap — recompute nothing, and no
/// pair allocates (the slot buffers are reused in place).
struct LayerScratch {
    /// Site whose layer array each slot holds, or [`NO_SITE`].
    sites: [u64; 2],
    arrays: [Vec<u32>; 2],
    /// Endpoints served from a resident slot (telemetry; two hits means a
    /// pair recomputed nothing).
    hits: u64,
}

impl Default for LayerScratch {
    fn default() -> Self {
        Self { sites: [NO_SITE; 2], arrays: [Vec::new(), Vec::new()], hits: 0 }
    }
}

impl LayerScratch {
    /// Slot indices holding the layer arrays of `s` and `t` (equal when
    /// `s == t`), computing missing arrays into whichever slot the other
    /// endpoint does not occupy.
    fn pair_slots(&mut self, tree: &CompressedTree, s: usize, t: usize) -> (usize, usize) {
        let find = |sites: &[u64; 2], x: usize| sites.iter().position(|&w| w == x as u64);
        match (find(&self.sites, s), find(&self.sites, t)) {
            (Some(i), Some(j)) => {
                self.hits += 2;
                (i, j)
            }
            (Some(i), None) => {
                self.hits += 1;
                (i, self.fill(tree, 1 - i, t))
            }
            (None, Some(j)) => {
                self.hits += 1;
                (self.fill(tree, 1 - j, s), j)
            }
            (None, None) => {
                let i = self.fill(tree, 0, s);
                let j = if t == s { i } else { self.fill(tree, 1, t) };
                (i, j)
            }
        }
    }

    fn fill(&mut self, tree: &CompressedTree, slot: usize, site: usize) -> usize {
        tree.layer_array_into(site, &mut self.arrays[slot]);
        self.sites[slot] = site as u64;
        slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodesic::ich::IchEngine;
    use geodesic::sitespace::{SiteSpace, VertexSiteSpace};
    use std::sync::Arc;
    use terrain::gen::diamond_square;
    use terrain::poi::sample_uniform;
    use terrain::refine::insert_surface_points;

    fn space(n: usize, seed: u64) -> VertexSiteSpace {
        let mesh = diamond_square(4, 0.6, seed).to_mesh();
        let pois = sample_uniform(&mesh, n, seed ^ 0xF00);
        let refined = insert_surface_points(&mesh, &pois, None).unwrap();
        let mut sites = refined.poi_vertices.clone();
        sites.sort_unstable();
        sites.dedup();
        VertexSiteSpace::new(Arc::new(IchEngine::new(Arc::new(refined.mesh))), sites)
    }

    #[test]
    fn oracle_error_within_epsilon() {
        let sp = space(25, 1);
        let n = sp.n_sites();
        for &eps in &[0.25, 0.1] {
            let oracle = SeOracle::build(&sp, eps, &BuildConfig::default()).unwrap();
            for s in 0..n {
                let exact = sp.all_distances(s);
                for (t, &ex) in exact.iter().enumerate().take(n) {
                    let approx = oracle.distance(s, t);
                    let err = (approx - ex).abs();
                    assert!(
                        err <= eps * ex + 1e-9,
                        "ε={eps} sites ({s},{t}): approx {approx} exact {ex}"
                    );
                }
            }
        }
    }

    #[test]
    fn self_distance_is_zero() {
        let sp = space(10, 3);
        let oracle = SeOracle::build(&sp, 0.2, &BuildConfig::default()).unwrap();
        for s in 0..10 {
            assert_eq!(oracle.distance(s, s), 0.0);
        }
    }

    #[test]
    fn efficient_equals_naive_query() {
        let sp = space(20, 5);
        let oracle = SeOracle::build(&sp, 0.15, &BuildConfig::default()).unwrap();
        let n = sp.n_sites();
        let mut total_eff = 0u32;
        let mut total_naive = 0u32;
        for s in 0..n {
            for t in 0..n {
                let (de, qe) = oracle.distance_with_stats(s, t);
                let (dn, qn) = oracle.distance_naive(s, t);
                assert_eq!(de, dn, "sites ({s},{t})");
                total_eff += qe.pairs_checked;
                total_naive += qn.pairs_checked;
            }
        }
        // The efficient query's probe count must not exceed the naive one's
        // in aggregate (it scans a strict subset of candidate pairs).
        assert!(total_eff <= total_naive, "{total_eff} > {total_naive}");
    }

    #[test]
    fn symmetric_answers() {
        let sp = space(15, 7);
        let oracle = SeOracle::build(&sp, 0.2, &BuildConfig::default()).unwrap();
        for s in 0..15 {
            for t in 0..15 {
                assert_eq!(oracle.distance(s, t), oracle.distance(t, s), "({s},{t})");
            }
        }
    }

    #[test]
    fn naive_construction_matches_efficient_within_eps() {
        let sp = space(12, 9);
        let eps = 0.3;
        let eff = SeOracle::build(&sp, eps, &BuildConfig::default()).unwrap();
        let naive = SeOracle::build(
            &sp,
            eps,
            &BuildConfig { method: ConstructionMethod::Naive, ..Default::default() },
        )
        .unwrap();
        // Same tree (same seed) → identical pair sets and distances.
        assert_eq!(eff.n_pairs(), naive.n_pairs());
        for s in 0..12 {
            for t in 0..12 {
                assert!((eff.distance(s, t) - naive.distance(s, t)).abs() < 1e-9);
            }
        }
        // And the naive method ran at least one SSAD per resolved pair.
        assert!(naive.build_stats().ssad_runs >= eff.build_stats().ssad_runs);
    }

    #[test]
    fn greedy_strategy_also_valid() {
        let sp = space(18, 11);
        let cfg = BuildConfig { strategy: SelectionStrategy::Greedy, ..Default::default() };
        let oracle = SeOracle::build(&sp, 0.2, &cfg).unwrap();
        for s in 0..18 {
            let exact = sp.all_distances(s);
            for (t, &ex) in exact.iter().enumerate().take(18) {
                let approx = oracle.distance(s, t);
                assert!((approx - ex).abs() <= 0.2 * ex + 1e-9);
            }
        }
    }

    #[test]
    fn rejects_bad_epsilon() {
        let sp = space(5, 13);
        for eps in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                SeOracle::build(&sp, eps, &BuildConfig::default()),
                Err(BuildError::InvalidEpsilon(_))
            ));
        }
    }

    #[test]
    fn pair_count_bounded_and_subquadratic_onset() {
        // Theorem 2 bounds the pair set by O(n·h/ε^{2β}) — but the packing
        // constant is ≈ (1/ε)^{2β} ≈ 10⁴ at ε = 0.25, so below a few
        // thousand POIs the WSPD legitimately stores (up to) all n²
        // ordered leaf pairs; the linear regime is an asymptotic statement
        // (the paper's n starts at 4 000). What must hold at *every*
        // scale: never more than n² ordered pairs, and the growth rate
        // already dipping below quadratic as n rises.
        let cfg = BuildConfig::default();
        let o40 = SeOracle::build(&space(40, 15), 0.25, &cfg).unwrap();
        let o80 = SeOracle::build(&space(80, 15), 0.25, &cfg).unwrap();
        assert!(o40.n_pairs() <= 40 * 40, "{} pairs for 40 sites", o40.n_pairs());
        assert!(o80.n_pairs() <= 80 * 80, "{} pairs for 80 sites", o80.n_pairs());
        let pair_ratio = o80.n_pairs() as f64 / o40.n_pairs() as f64;
        assert!(
            pair_ratio < 3.9,
            "doubling n quadrupled the pairs ({pair_ratio}×): no sub-quadratic onset"
        );
        assert!(o80.height() < 30);
    }

    #[test]
    fn single_site_oracle() {
        let sp = space(1, 17);
        let oracle = SeOracle::build(&sp, 0.1, &BuildConfig::default()).unwrap();
        assert_eq!(oracle.distance(0, 0), 0.0);
        assert_eq!(oracle.n_sites(), 1);
    }

    #[test]
    fn build_stats_populated() {
        let sp = space(15, 19);
        let oracle = SeOracle::build(&sp, 0.2, &BuildConfig::default()).unwrap();
        let s = oracle.build_stats();
        assert!(s.ssad_runs > 0);
        assert!(s.considered_pairs >= s.stored_pairs as u64);
        assert!(s.org_nodes >= s.compressed_nodes);
        assert!(s.compressed_nodes < 2 * 15);
        assert!(s.total >= s.tree);
        assert_eq!(s.resolver_fallbacks, 0);
        assert!(s.r0 > 0.0);
        assert!(s.workers >= 1, "resolved worker count must be reported");
        assert!(s.cache_hits > 0, "re-selected centers must hit the SSAD cache");
        assert!(s.cache_misses > 0);
    }

    #[test]
    fn try_distance_checks_range() {
        let sp = space(8, 21);
        let n = sp.n_sites();
        let oracle = SeOracle::build(&sp, 0.2, &BuildConfig::default()).unwrap();
        assert_eq!(oracle.try_distance(0, n), None);
        assert_eq!(oracle.try_distance(n, 0), None);
        assert_eq!(oracle.try_distance(usize::MAX, usize::MAX), None);
        for s in 0..n {
            for t in 0..n {
                assert_eq!(oracle.try_distance(s, t), Some(oracle.distance(s, t)));
            }
        }
    }

    #[test]
    fn out_of_range_panic_is_actionable() {
        let sp = space(6, 23);
        let oracle = SeOracle::build(&sp, 0.2, &BuildConfig::default()).unwrap();
        let n = sp.n_sites();
        for query in [
            Box::new(|| oracle.distance(n, 0)) as Box<dyn Fn() -> f64 + std::panic::UnwindSafe>,
            Box::new(|| oracle.distance_naive(0, n + 7).0),
        ] {
            let err = std::panic::catch_unwind(query).unwrap_err();
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default();
            assert!(
                msg.contains("out of range") && msg.contains("try_distance"),
                "panic message not actionable: {msg}"
            );
        }
    }

    #[test]
    fn thread_counts_build_identical_oracles() {
        let sp = space(18, 25);
        let eps = 0.2;
        let one =
            SeOracle::build(&sp, eps, &BuildConfig { threads: 1, ..Default::default() }).unwrap();
        let four =
            SeOracle::build(&sp, eps, &BuildConfig { threads: 4, ..Default::default() }).unwrap();
        assert_eq!(one.n_pairs(), four.n_pairs());
        let mut a: Vec<(u64, f64)> = one.pair_entries().collect();
        let mut b: Vec<(u64, f64)> = four.pair_entries().collect();
        a.sort_by_key(|&(k, _)| k);
        b.sort_by_key(|&(k, _)| k);
        assert_eq!(a, b, "pair sets must be bit-identical across thread counts");
        for s in 0..sp.n_sites() {
            for t in 0..sp.n_sites() {
                assert_eq!(one.distance(s, t).to_bits(), four.distance(s, t).to_bits());
            }
        }
        assert_eq!(four.build_stats().workers, 4);
    }
}
