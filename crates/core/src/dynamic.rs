//! Dynamic POI updates: insertion and removal without a full rebuild.
//!
//! The paper's conclusion names this as the open problem ("how to
//! efficiently update the distance oracle when there is an update on some
//! POIs"); its related work cites Fischer & Har-Peled's dynamic
//! well-separated pair decompositions \[14\]. This module implements the
//! natural terrain analogue over a built [`SeOracle`]:
//!
//! * **Removal** tombstones a site. Every stored node-pair distance stays
//!   valid for the surviving sites (distances do not change when a POI
//!   disappears), so queries between active sites keep their ε guarantee
//!   untouched; queries involving removed sites return `None`.
//! * **Insertion** of a new site `u` runs *one* SSAD from `u` (the same
//!   per-node cost as the paper's efficient construction) and then descends
//!   the compressed partition tree: a pair `⟨u, O⟩` is recorded as soon as
//!   `d(u, c_O) ≥ (2/ε + 2) · 2r_O` — the well-separation predicate of
//!   §3.3 with the new point's disk radius 0 — and the descent recurses
//!   into `O`'s children otherwise. Because leaves have radius 0, the
//!   descent always terminates, recording exact distances at worst.
//!   The recorded subtree roots partition the base sites, so each
//!   (inserted, base) query matches exactly one patch pair and inherits
//!   the ε bound by the paper's Lemma 5. Distances between two inserted
//!   sites are stored exactly.
//!
//! The overlay grows the oracle by `O(2^{2β} · log Δ / ε^{2β})` pairs per
//! insertion (the WSPD per-point bound); [`DynamicOracle::should_rebuild`]
//! flags when enough churn has accumulated that a fresh static build is
//! worthwhile, and [`DynamicOracle::rebuild`] performs it.

use crate::oracle::{BuildConfig, BuildError, SeOracle};
use geodesic::sitespace::SiteSpace;
use phash::pair_key;
use std::collections::BTreeMap;
use terrain::geom::Vec3;

/// Sentinel in the universe → member translation table.
const NOT_MEMBER: u32 = u32::MAX;

/// A [`SiteSpace`] restricted to a subset of a parent space's sites.
///
/// The SE oracle is built against this during [`DynamicOracle`]
/// construction and rebuilds, so the base oracle only ever sees active
/// sites while the parent space remains the universe for later insertions.
pub struct SubsetSpace<'a> {
    parent: &'a dyn SiteSpace,
    /// Parent site index of each member.
    members: Vec<usize>,
    /// Member index of each parent site (`NOT_MEMBER` outside the subset).
    member_of: Vec<u32>,
}

impl<'a> SubsetSpace<'a> {
    /// Restricts `parent` to `members` (parent site indices, distinct).
    ///
    /// # Panics
    /// Panics if `members` contains duplicates or out-of-range indices.
    pub fn new(parent: &'a dyn SiteSpace, members: Vec<usize>) -> Self {
        let mut member_of = vec![NOT_MEMBER; parent.n_sites()];
        for (i, &u) in members.iter().enumerate() {
            assert!(u < parent.n_sites(), "member {u} out of range");
            assert_eq!(member_of[u], NOT_MEMBER, "duplicate member {u}");
            member_of[u] = i as u32;
        }
        Self { parent, members, member_of }
    }

    /// Parent site index of member `i`.
    pub fn parent_site(&self, i: usize) -> usize {
        self.members[i]
    }
}

impl SiteSpace for SubsetSpace<'_> {
    fn n_sites(&self) -> usize {
        self.members.len()
    }

    fn site_position(&self, site: usize) -> Vec3 {
        self.parent.site_position(self.members[site])
    }

    fn sites_within(&self, site: usize, radius: f64) -> Vec<(usize, f64)> {
        self.parent
            .sites_within(self.members[site], radius)
            .into_iter()
            .filter_map(|(u, d)| {
                let m = self.member_of[u];
                (m != NOT_MEMBER).then_some((m as usize, d))
            })
            .collect()
    }

    fn all_distances(&self, site: usize) -> Vec<f64> {
        let full = self.parent.all_distances(self.members[site]);
        self.members.iter().map(|&u| full[u]).collect()
    }

    fn distance(&self, a: usize, b: usize) -> f64 {
        self.parent.distance(self.members[a], self.members[b])
    }
}

/// Errors from dynamic updates.
#[derive(Debug)]
pub enum DynamicError {
    /// The universe site index is out of range for the underlying space.
    OutOfRange(usize),
    /// Insertion of a site that is already active.
    AlreadyActive(usize),
    /// Removal of a site that is not active.
    NotActive(usize),
    /// A rebuild failed (propagates the static builder's error).
    Rebuild(BuildError),
}

impl std::fmt::Display for DynamicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DynamicError::OutOfRange(u) => write!(f, "site {u} out of range"),
            DynamicError::AlreadyActive(u) => write!(f, "site {u} is already active"),
            DynamicError::NotActive(u) => write!(f, "site {u} is not active"),
            DynamicError::Rebuild(e) => write!(f, "rebuild failed: {e}"),
        }
    }
}

impl std::error::Error for DynamicError {}

/// Update counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct DynamicStats {
    /// SSAD runs performed by insertions since the last (re)build.
    pub insert_ssad_runs: u64,
    /// Patch pairs currently stored for inserted sites.
    pub patch_pairs: usize,
    /// Exact inserted-inserted distances stored.
    pub overlay_pairs: usize,
}

/// A [`SeOracle`] with POI insertion and removal.
///
/// Site identity is the *universe* index of the underlying [`SiteSpace`];
/// the initial active set is given at construction and updates move sites
/// in and out of it.
pub struct DynamicOracle<'s> {
    space: &'s dyn SiteSpace,
    eps: f64,
    cfg: BuildConfig,
    /// Universe index of each base site (order of the base oracle).
    base_members: Vec<usize>,
    /// Base site index per universe site (`NOT_MEMBER` when not base).
    base_of: Vec<u32>,
    oracle: SeOracle,
    removed: Vec<bool>,
    n_removed: usize,
    /// Universe index of each overlay slot (insertion order).
    overlay: Vec<usize>,
    overlay_of: Vec<u32>,
    overlay_removed: Vec<bool>,
    n_overlay_removed: usize,
    /// `(overlay slot, ctree node)` → exact SSAD distance to the node
    /// center; the per-insertion WSPD patch.
    patch: BTreeMap<u64, f64>,
    /// `pair_key(slot_min, slot_max)` → exact overlay-overlay distance.
    overlay_pairs: BTreeMap<u64, f64>,
    insert_ssad_runs: u64,
}

/// Internal resolution of a universe index to an active site.
enum ActiveRef {
    Base(usize),
    Overlay(usize),
}

impl<'s> DynamicOracle<'s> {
    /// Builds with every site of `space` initially active.
    pub fn build(
        space: &'s dyn SiteSpace,
        eps: f64,
        cfg: &BuildConfig,
    ) -> Result<Self, BuildError> {
        Self::with_initial(space, (0..space.n_sites()).collect(), eps, cfg)
    }

    /// Builds with only `initial` (universe indices) active; the remaining
    /// sites of `space` may be inserted later.
    pub fn with_initial(
        space: &'s dyn SiteSpace,
        initial: Vec<usize>,
        eps: f64,
        cfg: &BuildConfig,
    ) -> Result<Self, BuildError> {
        let subset = SubsetSpace::new(space, initial);
        let oracle = SeOracle::build(&subset, eps, cfg)?;
        let SubsetSpace { members, member_of, .. } = subset;
        let n_base = members.len();
        Ok(Self {
            space,
            eps,
            cfg: *cfg,
            base_members: members,
            base_of: member_of,
            oracle,
            removed: vec![false; n_base],
            n_removed: 0,
            overlay: Vec::new(),
            overlay_of: vec![NOT_MEMBER; space.n_sites()],
            overlay_removed: Vec::new(),
            n_overlay_removed: 0,
            patch: BTreeMap::new(),
            overlay_pairs: BTreeMap::new(),
            insert_ssad_runs: 0,
        })
    }

    fn resolve(&self, u: usize) -> Option<ActiveRef> {
        if u >= self.space.n_sites() {
            return None;
        }
        let b = self.base_of[u];
        if b != NOT_MEMBER && !self.removed[b as usize] {
            return Some(ActiveRef::Base(b as usize));
        }
        let o = self.overlay_of[u];
        if o != NOT_MEMBER && !self.overlay_removed[o as usize] {
            return Some(ActiveRef::Overlay(o as usize));
        }
        None
    }

    /// Whether universe site `u` is currently active.
    pub fn is_active(&self, u: usize) -> bool {
        self.resolve(u).is_some()
    }

    /// Active site count.
    pub fn n_active(&self) -> usize {
        (self.base_members.len() - self.n_removed) + (self.overlay.len() - self.n_overlay_removed)
    }

    /// Universe indices of all active sites, ascending.
    pub fn active_sites(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .base_members
            .iter()
            .enumerate()
            .filter(|&(b, _)| !self.removed[b])
            .map(|(_, &u)| u)
            .chain(
                self.overlay
                    .iter()
                    .enumerate()
                    .filter(|&(o, _)| !self.overlay_removed[o])
                    .map(|(_, &u)| u),
            )
            .collect();
        out.sort_unstable();
        out
    }

    /// The error parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.eps
    }

    /// Update counters.
    pub fn stats(&self) -> DynamicStats {
        DynamicStats {
            insert_ssad_runs: self.insert_ssad_runs,
            patch_pairs: self.patch.len(),
            overlay_pairs: self.overlay_pairs.len(),
        }
    }

    /// Removes site `u` from the active set.
    pub fn remove(&mut self, u: usize) -> Result<(), DynamicError> {
        match self.resolve(u) {
            Some(ActiveRef::Base(b)) => {
                self.removed[b] = true;
                self.n_removed += 1;
                Ok(())
            }
            Some(ActiveRef::Overlay(o)) => {
                self.overlay_removed[o] = true;
                self.n_overlay_removed += 1;
                Ok(())
            }
            None => {
                if u >= self.space.n_sites() {
                    Err(DynamicError::OutOfRange(u))
                } else {
                    Err(DynamicError::NotActive(u))
                }
            }
        }
    }

    /// Inserts universe site `u` into the active set.
    ///
    /// A tombstoned *base* site is re-activated for free (its pair
    /// distances never went stale). A genuinely new site costs one SSAD
    /// plus a partition-tree descent.
    pub fn insert(&mut self, u: usize) -> Result<(), DynamicError> {
        if u >= self.space.n_sites() {
            return Err(DynamicError::OutOfRange(u));
        }
        if self.is_active(u) {
            return Err(DynamicError::AlreadyActive(u));
        }
        // Re-activation paths.
        let b = self.base_of[u];
        if b != NOT_MEMBER {
            self.removed[b as usize] = false;
            self.n_removed -= 1;
            return Ok(());
        }
        let o = self.overlay_of[u];
        if o != NOT_MEMBER {
            self.overlay_removed[o as usize] = false;
            self.n_overlay_removed -= 1;
            return Ok(());
        }

        // New site: one SSAD over the universe space.
        let all = self.space.all_distances(u);
        self.insert_ssad_runs += 1;
        let slot = self.overlay.len() as u32;

        // WSPD descent: record ⟨u, O⟩ as soon as well-separated; the new
        // point's disk has radius 0, so separation only constrains O.
        let mut recorded: Vec<(u64, f64)> = Vec::new();
        {
            let t = self.oracle.tree();
            let sep = 2.0 / self.eps + 2.0;
            let mut stack = vec![t.root];
            while let Some(node) = stack.pop() {
                let n = &t.nodes[node as usize];
                let center_u = self.base_members[n.center as usize];
                let d = all[center_u];
                let r = t.enlarged_radius(node);
                if d >= sep * r || n.children.is_empty() {
                    // Well-separated, or a leaf (radius 0: always separated
                    // unless co-located, in which case the exact distance 0
                    // is still correct).
                    recorded.push((Self::patch_key(slot, node), d));
                } else {
                    stack.extend(n.children.iter().copied());
                }
            }
        }
        self.patch.extend(recorded);

        // Exact distances to previously inserted (live or tombstoned —
        // a later re-activation must find them) overlay sites.
        for (v_slot, &v_u) in self.overlay.iter().enumerate() {
            self.overlay_pairs.insert(pair_key(v_slot as u32, slot), all[v_u]);
        }

        self.overlay.push(u);
        self.overlay_of[u] = slot;
        self.overlay_removed.push(false);
        Ok(())
    }

    #[inline]
    fn patch_key(slot: u32, node: u32) -> u64 {
        ((slot as u64) << 32) | node as u64
    }

    /// ε-approximate distance between universe sites `a` and `b`; `None`
    /// when either is not active.
    pub fn distance(&self, a: usize, b: usize) -> Option<f64> {
        let ra = self.resolve(a)?;
        let rb = self.resolve(b)?;
        if a == b {
            return Some(0.0);
        }
        Some(match (ra, rb) {
            (ActiveRef::Base(x), ActiveRef::Base(y)) => self.oracle.distance(x, y),
            (ActiveRef::Overlay(o), ActiveRef::Base(s))
            | (ActiveRef::Base(s), ActiveRef::Overlay(o)) => self.patch_distance(o as u32, s),
            (ActiveRef::Overlay(x), ActiveRef::Overlay(y)) => {
                let k = pair_key((x as u32).min(y as u32), (x as u32).max(y as u32));
                // lint: allow(panic, "invariant: overlay pairs are recorded at insertion; the patch-cover assertion guards the other path")
                *self.overlay_pairs.get(&k).expect("overlay pair recorded at insertion")
            }
        })
    }

    fn patch_distance(&self, slot: u32, base_site: usize) -> f64 {
        let t = self.oracle.tree();
        // Exactly one recorded subtree root lies on the site's root path
        // (the descent partitions the base sites).
        for node in t.path_to_root(t.leaf_of_site[base_site]) {
            if let Some(&d) = self.patch.get(&Self::patch_key(slot, node)) {
                return d;
            }
        }
        unreachable!(
            "patch cover violated for overlay slot {slot}, base site {base_site} — \
             this is a bug in the insertion descent"
        )
    }

    /// Whether churn since the last build makes a rebuild worthwhile:
    /// overlay or tombstones exceeding half of the base size.
    pub fn should_rebuild(&self) -> bool {
        let live_overlay = self.overlay.len() - self.n_overlay_removed;
        let base = self.base_members.len().max(1);
        2 * live_overlay >= base || 2 * self.n_removed >= base
    }

    /// Rebuilds the static oracle over the current active set, clearing
    /// the overlay and tombstones.
    pub fn rebuild(&mut self) -> Result<(), DynamicError> {
        let members = self.active_sites();
        let subset = SubsetSpace::new(self.space, members);
        let oracle =
            SeOracle::build(&subset, self.eps, &self.cfg).map_err(DynamicError::Rebuild)?;
        let SubsetSpace { members, member_of, .. } = subset;
        let n_base = members.len();
        self.base_members = members;
        self.base_of = member_of;
        self.oracle = oracle;
        self.removed = vec![false; n_base];
        self.n_removed = 0;
        self.overlay.clear();
        self.overlay_of = vec![NOT_MEMBER; self.space.n_sites()];
        self.overlay_removed.clear();
        self.n_overlay_removed = 0;
        self.patch.clear();
        self.overlay_pairs.clear();
        self.insert_ssad_runs = 0;
        Ok(())
    }

    /// The static oracle currently serving base-base queries.
    pub fn base_oracle(&self) -> &SeOracle {
        &self.oracle
    }

    /// Queryable-state bytes: base oracle + overlay patch maps.
    pub fn storage_bytes(&self) -> usize {
        use std::mem::size_of;
        self.oracle.storage_bytes()
            + self.patch.len() * (size_of::<u64>() + size_of::<f64>())
            + self.overlay_pairs.len() * (size_of::<u64>() + size_of::<f64>())
            + self.overlay.len() * size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodesic::ich::IchEngine;
    use geodesic::sitespace::VertexSiteSpace;
    use std::sync::Arc;
    use terrain::gen::diamond_square;
    use terrain::poi::sample_uniform;
    use terrain::refine::insert_surface_points;

    fn universe(n: usize, seed: u64) -> VertexSiteSpace {
        let mesh = diamond_square(4, 0.6, seed).to_mesh();
        let pois = sample_uniform(&mesh, n, seed ^ 0xD1);
        let refined = insert_surface_points(&mesh, &pois, None).unwrap();
        let mut sites = refined.poi_vertices.clone();
        sites.sort_unstable();
        sites.dedup();
        VertexSiteSpace::new(Arc::new(IchEngine::new(Arc::new(refined.mesh))), sites)
    }

    fn assert_eps(space: &dyn SiteSpace, dy: &DynamicOracle<'_>, eps: f64) {
        let active = dy.active_sites();
        for &a in &active {
            for &b in &active {
                let approx = dy.distance(a, b).expect("both active");
                let exact = space.distance(a, b);
                assert!(
                    (approx - exact).abs() <= eps * exact + 1e-9,
                    "sites ({a},{b}): {approx} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn insertions_keep_eps_guarantee() {
        let sp = universe(24, 1);
        let eps = 0.2;
        let initial: Vec<usize> = (0..16).collect();
        let mut dy =
            DynamicOracle::with_initial(&sp, initial, eps, &BuildConfig::default()).unwrap();
        for u in 16..sp.n_sites() {
            dy.insert(u).unwrap();
        }
        assert_eq!(dy.n_active(), sp.n_sites());
        assert_eq!(dy.stats().insert_ssad_runs, (sp.n_sites() - 16) as u64);
        assert_eq!(dy.stats().overlay_pairs, (sp.n_sites() - 16) * (sp.n_sites() - 17) / 2);
        assert_eps(&sp, &dy, eps);
    }

    #[test]
    fn removal_then_queries() {
        let sp = universe(15, 3);
        let mut dy = DynamicOracle::build(&sp, 0.25, &BuildConfig::default()).unwrap();
        dy.remove(3).unwrap();
        dy.remove(7).unwrap();
        assert_eq!(dy.n_active(), 13);
        assert!(dy.distance(3, 5).is_none());
        assert!(dy.distance(5, 7).is_none());
        assert!(!dy.is_active(3));
        assert_eps(&sp, &dy, 0.25);
    }

    #[test]
    fn reactivation_is_free() {
        let sp = universe(12, 5);
        let mut dy = DynamicOracle::build(&sp, 0.2, &BuildConfig::default()).unwrap();
        let before = dy.distance(2, 9).unwrap();
        dy.remove(2).unwrap();
        dy.insert(2).unwrap();
        assert_eq!(dy.stats().insert_ssad_runs, 0, "re-activation must not run SSAD");
        assert_eq!(dy.distance(2, 9).unwrap(), before);
    }

    #[test]
    fn mixed_churn_stays_correct() {
        let sp = universe(24, 7);
        let eps = 0.25;
        let initial: Vec<usize> = (0..14).collect();
        let mut dy =
            DynamicOracle::with_initial(&sp, initial, eps, &BuildConfig::default()).unwrap();
        dy.insert(17).unwrap();
        dy.insert(20).unwrap();
        dy.remove(3).unwrap();
        dy.insert(22).unwrap();
        dy.remove(17).unwrap(); // overlay removal
        dy.insert(17).unwrap(); // overlay re-activation
        dy.remove(0).unwrap();
        assert_eps(&sp, &dy, eps);
    }

    #[test]
    fn error_paths() {
        let sp = universe(10, 9);
        let mut dy =
            DynamicOracle::with_initial(&sp, (0..8).collect(), 0.2, &BuildConfig::default())
                .unwrap();
        assert!(matches!(dy.insert(3), Err(DynamicError::AlreadyActive(3))));
        assert!(matches!(dy.insert(999), Err(DynamicError::OutOfRange(999))));
        assert!(matches!(dy.remove(9), Err(DynamicError::NotActive(9))));
        assert!(matches!(dy.remove(999), Err(DynamicError::OutOfRange(999))));
        dy.insert(9).unwrap();
        assert!(matches!(dy.insert(9), Err(DynamicError::AlreadyActive(9))));
    }

    #[test]
    fn rebuild_matches_overlay_answers_within_eps() {
        let sp = universe(20, 11);
        let eps = 0.2;
        let mut dy =
            DynamicOracle::with_initial(&sp, (0..10).collect(), eps, &BuildConfig::default())
                .unwrap();
        for u in 10..20 {
            dy.insert(u).unwrap();
        }
        assert!(dy.should_rebuild());
        dy.rebuild().unwrap();
        assert!(!dy.should_rebuild());
        assert_eq!(dy.stats().patch_pairs, 0);
        assert_eq!(dy.n_active(), 20);
        assert_eps(&sp, &dy, eps);
    }

    #[test]
    fn should_rebuild_thresholds() {
        let sp = universe(20, 13);
        let mut dy =
            DynamicOracle::with_initial(&sp, (0..16).collect(), 0.3, &BuildConfig::default())
                .unwrap();
        assert!(!dy.should_rebuild());
        for u in 0..8 {
            dy.remove(u).unwrap();
        }
        assert!(dy.should_rebuild(), "half the base removed");
    }

    #[test]
    fn subset_space_is_consistent_view() {
        let sp = universe(12, 15);
        let members = vec![1usize, 4, 7, 10];
        let sub = SubsetSpace::new(&sp, members.clone());
        assert_eq!(sub.n_sites(), 4);
        for (i, &u) in members.iter().enumerate() {
            assert_eq!(sub.parent_site(i), u);
            assert_eq!(sub.site_position(i), sp.site_position(u));
        }
        let all = sub.all_distances(0);
        for (i, &u) in members.iter().enumerate() {
            assert!((all[i] - sp.distance(1, u)).abs() < 1e-12);
        }
        let r = all.iter().cloned().fold(0.0, f64::max);
        let near = sub.sites_within(0, r);
        assert_eq!(near.len(), 4, "all members within the max radius");
        for (i, d) in near {
            assert!((all[i] - d).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate member")]
    fn subset_space_rejects_duplicates() {
        let sp = universe(8, 17);
        let _ = SubsetSpace::new(&sp, vec![1, 2, 1]);
    }

    #[test]
    fn overlay_overlay_distances_are_exact() {
        let sp = universe(16, 19);
        let mut dy =
            DynamicOracle::with_initial(&sp, (0..12).collect(), 0.3, &BuildConfig::default())
                .unwrap();
        for u in 12..16 {
            dy.insert(u).unwrap();
        }
        for a in 12..16 {
            for b in 12..16 {
                let got = dy.distance(a, b).unwrap();
                let want = sp.distance(a, b);
                assert!((got - want).abs() < 1e-9, "({a},{b}): {got} vs {want}");
            }
        }
    }
}
