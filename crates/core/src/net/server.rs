//! The serving daemon core: a `std::net` TCP listener, one reader/writer
//! thread pair per connection, and a single batcher thread draining a
//! bounded request queue into the backend's batch query API.
//!
//! # Coalescing and determinism
//!
//! The batcher concatenates the pairs of every queued distance request
//! into one `distance_many`-style call. That is safe because the batch
//! APIs are **element-wise**: each answer depends only on its own pair and
//! the frozen image, never on batch composition (pinned by the serve-layer
//! determinism tests). Coalescing therefore changes latency and
//! throughput, never answers — a socket client sees bits identical to an
//! in-process replay, which `oracle-loadgen --verify` asserts end to end.
//!
//! # Backpressure
//!
//! The queue is bounded by [`ServeConfig::queue_cap`]; admission past the
//! bound answers [`Response::Busy`] immediately instead of growing memory.
//! Together with the wire-frame cap this bounds per-connection and
//! aggregate memory regardless of client behaviour.
//!
//! # Shutdown
//!
//! The `SHUTDOWN` verb flips a flag: the acceptor stops accepting, readers
//! stop admitting (late requests get `Error{ShuttingDown}`), the batcher
//! drains what was admitted, and every queued answer is still written
//! before the process exits — "graceful" means no admitted request is
//! dropped.

use super::protocol::{
    decode_request, encode_response, ErrorCode, FrameReader, Request, Response, StatsSnapshot,
    MAX_PATH_POINTS,
};
use super::stats::Counters;
use crate::atlas::AtlasHandle;
use crate::oracle::{ProbeStats, QueryError};
use crate::serve::QueryHandle;
use obs::log;
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown as SockShutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::Duration;

/// Admission policy for the coalescing batcher and the bounded queue.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Target pairs per coalesced batch; the batcher stops waiting once a
    /// draining pass has gathered at least this many.
    pub max_batch_pairs: usize,
    /// How long the batcher holds an under-full batch open for more
    /// requests before running it anyway (latency bound under light
    /// load).
    pub max_wait: Duration,
    /// Most requests the queue holds; admission past this answers `Busy`.
    pub queue_cap: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig { max_batch_pairs: 4096, max_wait: Duration::from_micros(200), queue_cap: 256 }
    }
}

/// A routed path answer: the distance plus the polyline as `(x, y, z)`
/// triples, the shape the wire response carries.
type PathAnswer = (f64, Vec<(f64, f64, f64)>);

/// The image a server answers from: a monolithic oracle or a tiled atlas.
///
/// Both backends expose the same element-wise batch semantics, so the
/// batcher treats them uniformly.
#[derive(Clone)]
pub enum Backend {
    /// A monolithic [`crate::oracle::SeOracle`] behind a [`QueryHandle`].
    Oracle(QueryHandle),
    /// A tiled [`crate::atlas::Atlas`] behind an [`AtlasHandle`].
    Atlas(AtlasHandle),
}

impl Backend {
    /// Sites the image covers.
    pub fn n_sites(&self) -> usize {
        match self {
            Backend::Oracle(h) => h.n_sites(),
            Backend::Atlas(h) => h.n_sites(),
        }
    }

    /// The image's approximation parameter ε.
    pub fn epsilon(&self) -> f64 {
        match self {
            Backend::Oracle(h) => h.epsilon(),
            Backend::Atlas(h) => h.epsilon(),
        }
    }

    /// Whether the image can answer `Path` requests.
    pub fn has_paths(&self) -> bool {
        match self {
            Backend::Oracle(h) => h.has_paths(),
            Backend::Atlas(h) => h.has_paths(),
        }
    }

    /// Batch distances with every failure mode contained: typed errors
    /// from the checked oracle path, and a panic fence around the atlas
    /// path (whose internal expects assume a well-formed image — bytes
    /// from disk must not crash a serving process). Successful answers
    /// carry per-batch [`ProbeStats`] (zero for the atlas backend, which
    /// has no probe counters).
    fn distances(
        &self,
        pairs: &[(u32, u32)],
    ) -> Result<(Vec<f64>, ProbeStats), (ErrorCode, String)> {
        match self {
            Backend::Oracle(h) => {
                let handle = h.clone();
                let run = AssertUnwindSafe(move || {
                    handle.oracle().distance_many_checked_with_stats(pairs)
                });
                match catch_unwind(run) {
                    Ok(Ok(d)) => Ok(d),
                    Ok(Err(e @ QueryError::SiteOutOfRange { .. })) => {
                        Err((ErrorCode::SiteOutOfRange, e.to_string()))
                    }
                    Ok(Err(e @ QueryError::NoCoveringPair { .. })) => {
                        Err((ErrorCode::CorruptImage, e.to_string()))
                    }
                    Err(_) => Err((
                        ErrorCode::CorruptImage,
                        "oracle query panicked; the image is corrupt".to_string(),
                    )),
                }
            }
            Backend::Atlas(h) => {
                let handle = h.clone();
                let run = AssertUnwindSafe(move || handle.try_distance_many(pairs));
                match catch_unwind(run) {
                    Ok(answers) => {
                        let mut out = Vec::with_capacity(answers.len());
                        for (i, a) in answers.into_iter().enumerate() {
                            match a {
                                Some(d) => out.push(d),
                                None => {
                                    return Err((
                                        ErrorCode::SiteOutOfRange,
                                        format!("pair #{i}: site id out of range"),
                                    ));
                                }
                            }
                        }
                        Ok((out, ProbeStats::default()))
                    }
                    Err(_) => Err((
                        ErrorCode::CorruptImage,
                        "atlas query panicked; the image is corrupt".to_string(),
                    )),
                }
            }
        }
    }

    /// One shortest path, behind the same panic fence.
    fn path(&self, s: usize, t: usize) -> Result<PathAnswer, (ErrorCode, String)> {
        let run = || match self {
            Backend::Oracle(h) => h.shortest_path(s, t),
            Backend::Atlas(h) => h.shortest_path(s, t),
        };
        match catch_unwind(AssertUnwindSafe(run)) {
            Ok(sp) => {
                let points = sp.path.points.iter().map(|p| (p.x, p.y, p.z)).collect::<Vec<_>>();
                Ok((sp.distance, points))
            }
            Err(_) => Err((
                ErrorCode::CorruptImage,
                "path query panicked; the image is corrupt".to_string(),
            )),
        }
    }
}

impl std::fmt::Debug for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Oracle(_) => write!(f, "Backend::Oracle({} sites)", self.n_sites()),
            Backend::Atlas(_) => write!(f, "Backend::Atlas({} sites)", self.n_sites()),
        }
    }
}

/// A queued unit of work; `reply` routes the encoded response back to the
/// owning connection's writer thread.
enum Job {
    Distance { id: u64, pairs: Vec<(u32, u32)>, reply: mpsc::Sender<Vec<u8>> },
    Path { id: u64, s: u32, t: u32, reply: mpsc::Sender<Vec<u8>> },
}

impl Job {
    fn n_pairs(&self) -> usize {
        match self {
            Job::Distance { pairs, .. } => pairs.len(),
            Job::Path { .. } => 1,
        }
    }
}

/// State shared by the acceptor, every connection thread, and the batcher.
struct Shared {
    backend: Backend,
    cfg: ServeConfig,
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
    stats: Counters,
    shutdown: AtomicBool,
}

impl Shared {
    /// Locks the queue, recovering from a poisoned mutex: the protected
    /// state is a plain `VecDeque` of owned jobs, valid at every step, so
    /// a panicking peer thread cannot leave it torn.
    fn lock_queue(&self) -> MutexGuard<'_, VecDeque<Job>> {
        match self.queue.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

/// A bound-and-listening oracle server; [`OracleServer::serve`] runs it to
/// completion.
pub struct OracleServer {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl OracleServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral test port) and
    /// prepares to serve `backend` under `cfg`.
    pub fn bind<A: ToSocketAddrs>(addr: A, backend: Backend, cfg: ServeConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let shared = Arc::new(Shared {
            backend,
            cfg,
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
            stats: Counters::new(obs::Registry::new()),
            shutdown: AtomicBool::new(false),
        });
        Ok(OracleServer { listener, shared })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts and serves connections until a client sends the `SHUTDOWN`
    /// verb, then drains in-flight work and returns the final counters.
    pub fn serve(self) -> StatsSnapshot {
        if self.listener.set_nonblocking(true).is_err() {
            // Without a non-blocking acceptor the shutdown flag could
            // never interrupt accept(); refuse to serve rather than hang.
            return self
                .shared
                .stats
                .snapshot(self.shared.backend.n_sites(), self.shared.backend.epsilon());
        }
        let batcher = {
            let sh = Arc::clone(&self.shared);
            thread::spawn(move || batcher_loop(&sh))
        };
        let mut conns: Vec<thread::JoinHandle<()>> = Vec::new();
        while !self.shared.shutting_down() {
            // Reap handles of connections that already hung up, so a
            // long-running daemon doesn't grow one JoinHandle per
            // connection ever accepted.
            conns.retain(|c| !c.is_finished());
            match self.listener.accept() {
                Ok((stream, peer)) => {
                    self.shared.stats.connections.inc();
                    log::info("conn_open", &[("peer", peer.to_string())]);
                    let sh = Arc::clone(&self.shared);
                    conns.push(thread::spawn(move || connection_loop(stream, &sh)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(2));
                }
                // Transient accept failures (connection reset during the
                // handshake, fd pressure): back off and keep serving.
                Err(_) => thread::sleep(Duration::from_millis(10)),
            }
        }
        for c in conns {
            let _ = c.join();
        }
        // Connections are gone, so no further enqueues: wake the batcher
        // to drain the remainder and exit.
        self.shared.job_ready.notify_all();
        let _ = batcher.join();
        log::info(
            "drained",
            &[
                ("requests", self.shared.stats.requests.get().to_string()),
                ("errors", self.shared.stats.errors.get().to_string()),
            ],
        );
        self.shared.stats.snapshot(self.shared.backend.n_sites(), self.shared.backend.epsilon())
    }
}

impl std::fmt::Debug for OracleServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OracleServer({:?})", self.listener.local_addr())
    }
}

/// One connection: a reader thread (this function) plus a writer thread,
/// decoupled by an mpsc channel so batch completions never block on a slow
/// client socket while the reader holds queue state.
fn connection_loop(stream: TcpStream, sh: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    // The read timeout doubles as the shutdown poll interval.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    // Without a write timeout, a client that sends requests but never
    // reads answers would block write_all forever once kernel buffers
    // fill, wedging the writer thread — and graceful shutdown, which
    // joins it. A peer that absorbs nothing for this long is gone.
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    let writer_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<Vec<u8>>();
    let writer = thread::spawn(move || writer_loop(writer_stream, rx));
    reader_loop(stream, sh, &tx);
    log::info("conn_close", &[]);
    drop(tx);
    // The writer exits once every outstanding job's reply sender drops —
    // i.e. after all admitted answers for this connection are written.
    let _ = writer.join();
}

fn writer_loop(mut stream: TcpStream, rx: mpsc::Receiver<Vec<u8>>) {
    let mut dead = false;
    while let Ok(frame) = rx.recv() {
        if dead {
            // Keep draining so in-flight batch completions never block on
            // a connection we already gave up on.
            continue;
        }
        if write_frame(&mut stream, &frame).is_err() {
            // The client is gone or stopped reading (write timed out with
            // zero progress). A partial frame may be on the wire, so the
            // stream is unusable: tear down both directions — the read
            // half too, so the reader thread stops admitting work from a
            // peer we can no longer answer.
            dead = true;
            let _ = stream.shutdown(SockShutdown::Both);
        }
    }
    let _ = stream.shutdown(SockShutdown::Write);
}

/// `write_all`, except a timeout only fails the connection when the socket
/// made no progress for a whole timeout window (a slow-but-live client
/// keeps resetting the clock with every accepted byte).
fn write_frame(stream: &mut TcpStream, frame: &[u8]) -> io::Result<()> {
    let mut at = 0usize;
    while at < frame.len() {
        match stream.write(&frame[at..]) {
            Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
            Ok(n) => at += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            // WouldBlock/TimedOut here means a full write-timeout window
            // passed without the peer accepting a single byte.
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn reader_loop(mut stream: TcpStream, sh: &Arc<Shared>, tx: &mpsc::Sender<Vec<u8>>) {
    let mut frames = FrameReader::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if sh.shutting_down() {
            return;
        }
        let n = match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(_) => return,
        };
        frames.feed(&chunk[..n]);
        loop {
            match frames.next_payload() {
                Ok(Some(payload)) => {
                    if !handle_frame(&payload, sh, tx) {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Framing is lost (bad magic/version/length/checksum):
                    // report and close — resynchronisation on a byte
                    // stream is not possible.
                    sh.stats.malformed.inc();
                    log::debug("malformed_frame", &[("error", e.to_string())]);
                    let _ = tx.send(encode_response(&Response::Error {
                        id: 0,
                        code: ErrorCode::BadRequest,
                        message: e.to_string(),
                    }));
                    return;
                }
            }
        }
    }
}

/// Decodes and admits one request. Returns `false` when the connection
/// must close (undecodable payload).
fn handle_frame(payload: &[u8], sh: &Arc<Shared>, tx: &mpsc::Sender<Vec<u8>>) -> bool {
    let req = match decode_request(payload) {
        Ok(r) => r,
        Err(e) => {
            sh.stats.malformed.inc();
            log::debug("malformed_request", &[("error", e.to_string())]);
            let _ = tx.send(encode_response(&Response::Error {
                id: 0,
                code: ErrorCode::BadRequest,
                message: e.to_string(),
            }));
            return false;
        }
    };
    match req {
        Request::Distance { id, pairs } => {
            let n = sh.backend.n_sites();
            if let Some((index, &(s, t))) =
                pairs.iter().enumerate().find(|&(_, &(s, t))| s as usize >= n || t as usize >= n)
            {
                let site = if s as usize >= n { s } else { t };
                sh.stats.errors.inc();
                let _ = tx.send(encode_response(&Response::Error {
                    id,
                    code: ErrorCode::SiteOutOfRange,
                    message: format!("pair #{index}: site id {site} out of range for {n} sites"),
                }));
                return true;
            }
            enqueue(sh, tx, id, Job::Distance { id, pairs, reply: tx.clone() });
        }
        Request::Path { id, s, t } => {
            let n = sh.backend.n_sites();
            if !sh.backend.has_paths() {
                sh.stats.errors.inc();
                let _ = tx.send(encode_response(&Response::Error {
                    id,
                    code: ErrorCode::Unsupported,
                    message: "image has no path index".to_string(),
                }));
                return true;
            }
            if s as usize >= n || t as usize >= n {
                let site = if s as usize >= n { s } else { t };
                sh.stats.errors.inc();
                let _ = tx.send(encode_response(&Response::Error {
                    id,
                    code: ErrorCode::SiteOutOfRange,
                    message: format!("site id {site} out of range for {n} sites"),
                }));
                return true;
            }
            enqueue(sh, tx, id, Job::Path { id, s, t, reply: tx.clone() });
        }
        Request::Stats { id } => {
            let stats = sh.stats.snapshot(sh.backend.n_sites(), sh.backend.epsilon());
            let _ = tx.send(encode_response(&Response::Stats { id, stats }));
        }
        Request::Metrics { id } => {
            let mut text = sh.stats.registry.expose();
            // An out-of-core atlas keeps its residency counters in the
            // tile store's registry; append them so one scrape sees both.
            if let Backend::Atlas(h) = &sh.backend {
                if let Some(store) = h.atlas().tile_store() {
                    text.push_str(&store.registry().expose());
                }
            }
            let _ = tx.send(encode_response(&Response::Metrics { id, text }));
        }
        Request::Shutdown { id } => {
            // Ack first (the frame is already queued to the writer before
            // the flag stops anything), then stop admissions everywhere.
            let _ = tx.send(encode_response(&Response::ShuttingDown { id }));
            log::info("shutdown_requested", &[]);
            sh.shutdown.store(true, Ordering::SeqCst);
            sh.job_ready.notify_all();
        }
    }
    true
}

/// Admission: bounded-queue push or an immediate `Busy`.
fn enqueue(sh: &Arc<Shared>, tx: &mpsc::Sender<Vec<u8>>, id: u64, job: Job) {
    let mut q = sh.lock_queue();
    // The shutdown flag must be read under the queue lock: the batcher's
    // exit decision (queue empty && shutting down) happens under this same
    // mutex, so a lock-free check here would race it — a job pushed after
    // the batcher exits would never be answered and its reply sender would
    // wedge the writer thread (and graceful shutdown) forever. Under the
    // lock, either we push before the batcher's final look at the queue
    // (it drains us) or we observe the flag and refuse.
    if sh.shutting_down() {
        drop(q);
        let _ = tx.send(encode_response(&Response::Error {
            id,
            code: ErrorCode::ShuttingDown,
            message: "server is draining".to_string(),
        }));
        return;
    }
    if q.len() >= sh.cfg.queue_cap {
        let depth = q.len();
        drop(q);
        sh.stats.busy_rejections.inc();
        log::debug("busy_rejection", &[("queue_depth", depth.to_string())]);
        let _ = tx.send(encode_response(&Response::Busy { id, queue_depth: depth as u32 }));
        return;
    }
    sh.stats.requests.inc();
    sh.stats.pairs.add(job.n_pairs() as u64);
    q.push_back(job);
    let depth = q.len();
    drop(q);
    sh.stats.note_depth(depth);
    sh.job_ready.notify_one();
}

/// The coalescing batcher: pop everything queued, hold the batch open up
/// to `max_wait` for stragglers (admission policy), then run one backend
/// call for all distance pairs and split the answers back per request.
fn batcher_loop(sh: &Arc<Shared>) {
    loop {
        let mut q = sh.lock_queue();
        loop {
            if !q.is_empty() {
                break;
            }
            if sh.shutting_down() {
                // Queue empty and no more admissions: fully drained.
                return;
            }
            q = match sh.job_ready.wait(q) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
        let mut batch = Vec::new();
        let mut total_pairs = 0usize;
        while let Some(job) = q.pop_front() {
            total_pairs += job.n_pairs();
            batch.push(job);
            if total_pairs >= sh.cfg.max_batch_pairs {
                break;
            }
        }
        if total_pairs < sh.cfg.max_batch_pairs && !sh.shutting_down() {
            // lint: allow(d2, "admission deadline only — batching affects latency, never answers (element-wise determinism)")
            let deadline = std::time::Instant::now() + sh.cfg.max_wait;
            loop {
                if let Some(job) = q.pop_front() {
                    total_pairs += job.n_pairs();
                    batch.push(job);
                    if total_pairs >= sh.cfg.max_batch_pairs {
                        break;
                    }
                    continue;
                }
                if sh.shutting_down() {
                    break;
                }
                // lint: allow(d2, "admission deadline only — never feeds an answer")
                let now = std::time::Instant::now();
                if now >= deadline {
                    break;
                }
                q = match sh.job_ready.wait_timeout(q, deadline - now) {
                    Ok((g, _)) => g,
                    Err(poisoned) => poisoned.into_inner().0,
                };
            }
        }
        sh.stats.note_depth(q.len());
        drop(q);
        run_batch(sh, batch, total_pairs);
    }
}

fn run_batch(sh: &Arc<Shared>, batch: Vec<Job>, total_pairs: usize) {
    let _span = obs::trace::span("serve", "batch");
    sh.stats.note_batch(total_pairs);
    let mut concat: Vec<(u32, u32)> = Vec::with_capacity(total_pairs);
    for job in &batch {
        if let Job::Distance { pairs, .. } = job {
            concat.extend_from_slice(pairs);
        }
    }
    let coalesced = if concat.is_empty() {
        Ok((Vec::new(), ProbeStats::default()))
    } else {
        sh.backend.distances(&concat)
    };
    if let Ok((_, ps)) = &coalesced {
        sh.stats.probe_pairs.add(ps.probes);
        sh.stats.scratch_hits.add(ps.scratch_hits);
    }
    let mut at = 0usize;
    for job in &batch {
        match job {
            Job::Distance { id, pairs, reply } => {
                let resp = match &coalesced {
                    Ok((all, _)) => {
                        let slice = all[at..at + pairs.len()].to_vec();
                        at += pairs.len();
                        Response::Distances { id: *id, distances: slice }
                    }
                    // The coalesced call failed: retry this request alone
                    // so only the offending request errors, not the whole
                    // batch.
                    Err(_) => match sh.backend.distances(pairs) {
                        Ok((d, ps)) => {
                            sh.stats.probe_pairs.add(ps.probes);
                            sh.stats.scratch_hits.add(ps.scratch_hits);
                            Response::Distances { id: *id, distances: d }
                        }
                        Err((code, message)) => {
                            sh.stats.errors.inc();
                            Response::Error { id: *id, code, message }
                        }
                    },
                };
                let _ = reply.send(encode_response(&resp));
            }
            Job::Path { id, s, t, reply } => {
                let resp = match sh.backend.path(*s as usize, *t as usize) {
                    // A polyline past MAX_PATH_POINTS would encode to a
                    // frame the client's FrameReader must reject as
                    // FrameTooLarge, losing the connection over a valid
                    // answer — refuse it with a typed error instead.
                    Ok((_, points)) if points.len() > MAX_PATH_POINTS => {
                        sh.stats.errors.inc();
                        Response::Error {
                            id: *id,
                            code: ErrorCode::PathTooLong,
                            message: format!(
                                "path has {} points; the wire frame cap allows {}",
                                points.len(),
                                MAX_PATH_POINTS
                            ),
                        }
                    }
                    Ok((distance, points)) => Response::Path { id: *id, distance, points },
                    Err((code, message)) => {
                        sh.stats.errors.inc();
                        Response::Error { id: *id, code, message }
                    }
                };
                let _ = reply.send(encode_response(&resp));
            }
        }
    }
}
