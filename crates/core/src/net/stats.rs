//! Lock-free serving counters.
//!
//! Every counter is a relaxed [`AtomicU64`]: the hot path (request
//! admission, batch completion) only ever does `fetch_add`/`fetch_max`, so
//! accounting never serializes connections against each other and never
//! touches a lock — which keeps this file inside the `query-path` lint
//! contract. A [`StatsSnapshot`] read is a set of independent relaxed
//! loads: each counter is exact, the set as a whole is a point-in-time
//! approximation (fine for an operational `STATS` verb).

// lint: query-path

use super::protocol::StatsSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two batch-size buckets: bucket 16 absorbs every
/// batch above 32768 pairs (half the per-request cap, so realistic
/// coalesced batches always land in a real bucket).
pub(crate) const HIST_BUCKETS: usize = 17;

/// Aggregate serving counters shared by every connection thread and the
/// batcher.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub(crate) connections: AtomicU64,
    pub(crate) requests: AtomicU64,
    pub(crate) pairs: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) busy_rejections: AtomicU64,
    pub(crate) malformed: AtomicU64,
    pub(crate) errors: AtomicU64,
    queue_depth: AtomicU64,
    max_queue_depth: AtomicU64,
    batch_hist: [AtomicU64; HIST_BUCKETS],
}

/// Histogram bucket for a batch of `pairs` pairs: `⌈log2(pairs)⌉`, clamped
/// to the last bucket (bucket 0 holds single-pair batches).
fn bucket(pairs: usize) -> usize {
    let p = pairs.max(1) as u64;
    ((64 - (p - 1).leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

impl Counters {
    /// Records the queue depth after an enqueue or drain, maintaining the
    /// high-water mark.
    pub(crate) fn note_depth(&self, depth: usize) {
        self.queue_depth.store(depth as u64, Ordering::Relaxed);
        self.max_queue_depth.fetch_max(depth as u64, Ordering::Relaxed);
    }

    /// Records a completed batch of `pairs` total pairs.
    pub(crate) fn note_batch(&self, pairs: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_hist[bucket(pairs)].fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time snapshot; `n_sites`/`epsilon` describe the backend
    /// image and come from the caller.
    pub(crate) fn snapshot(&self, n_sites: usize, epsilon: f64) -> StatsSnapshot {
        StatsSnapshot {
            n_sites: n_sites as u64,
            epsilon,
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            pairs: self.pairs.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            malformed: self.malformed.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            batch_size_hist: self.batch_hist.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 0);
        assert_eq!(bucket(2), 1);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 2);
        assert_eq!(bucket(5), 3);
        assert_eq!(bucket(1 << 16), 16);
        assert_eq!(bucket(usize::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn snapshot_reflects_notes() {
        let c = Counters::default();
        c.note_depth(3);
        c.note_depth(1);
        c.note_batch(5);
        c.note_batch(1);
        let s = c.snapshot(10, 0.25);
        assert_eq!(s.n_sites, 10);
        assert_eq!(s.queue_depth, 1);
        assert_eq!(s.max_queue_depth, 3);
        assert_eq!(s.batches, 2);
        assert_eq!(s.batch_size_hist[0], 1);
        assert_eq!(s.batch_size_hist[3], 1);
    }
}
