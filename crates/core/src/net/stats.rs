//! Lock-free serving counters, backed by a per-server metrics registry.
//!
//! Every counter is a handle into an [`obs::Registry`] owned by the
//! server instance (so concurrent servers in one process never share
//! numbers). Handle updates are single relaxed atomic operations: the
//! hot path (request admission, batch completion) never touches a lock,
//! which keeps this file inside the `query-path` lint contract — the
//! registry's own locking happens once, in [`Counters::new`], before
//! serving starts. A [`StatsSnapshot`] read is a set of independent
//! relaxed loads: each counter is exact, the set as a whole is a
//! point-in-time approximation (fine for an operational `STATS` verb).
//!
//! The same registry is what the wire `Metrics` verb exposes, so
//! `oracle-loadgen --metrics` and `bench snapshot` read exactly the
//! counters the server serves from.

// lint: query-path

use super::protocol::StatsSnapshot;
use obs::{Counter, Gauge, Histogram, Registry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of power-of-two batch-size buckets: bucket 16 absorbs every
/// batch above 32768 pairs (half the per-request cap, so realistic
/// coalesced batches always land in a real bucket).
pub(crate) const HIST_BUCKETS: usize = 17;

/// Aggregate serving counters shared by every connection thread and the
/// batcher, registered in one per-server [`Registry`].
pub(crate) struct Counters {
    /// The registry behind every handle below — what the `Metrics` wire
    /// verb renders.
    pub(crate) registry: Registry,
    pub(crate) connections: Arc<Counter>,
    pub(crate) requests: Arc<Counter>,
    pub(crate) pairs: Arc<Counter>,
    pub(crate) busy_rejections: Arc<Counter>,
    pub(crate) malformed: Arc<Counter>,
    pub(crate) errors: Arc<Counter>,
    /// Node-pair hash probes performed by oracle batch answers
    /// (`ProbeStats::probes` summed per batch; 0 for atlas backends).
    pub(crate) probe_pairs: Arc<Counter>,
    /// Layer-array scratch-slot hits from the same answers.
    pub(crate) scratch_hits: Arc<Counter>,
    batches: Arc<Counter>,
    queue_depth: Arc<Gauge>,
    max_queue_depth: Arc<Gauge>,
    batch_pairs: Arc<Histogram>,
    /// Wire-format power-of-two histogram (the `StatsSnapshot` layout
    /// predates the registry's log-linear buckets and is kept
    /// bit-compatible).
    batch_hist: [AtomicU64; HIST_BUCKETS],
}

/// Histogram bucket for a batch of `pairs` pairs: `⌈log2(pairs)⌉`, clamped
/// to the last bucket (bucket 0 holds single-pair batches).
fn bucket(pairs: usize) -> usize {
    let p = pairs.max(1) as u64;
    ((64 - (p - 1).leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

impl Counters {
    /// Registers every serving metric in `registry` and keeps the handles.
    pub(crate) fn new(registry: Registry) -> Counters {
        Counters {
            connections: registry.counter("serve_connections_total"),
            requests: registry.counter("serve_requests_total"),
            pairs: registry.counter("serve_pairs_total"),
            busy_rejections: registry.counter("serve_busy_total"),
            malformed: registry.counter("serve_malformed_total"),
            errors: registry.counter("serve_errors_total"),
            probe_pairs: registry.counter("serve_probe_pairs_total"),
            scratch_hits: registry.counter("serve_scratch_hits_total"),
            batches: registry.counter("serve_batches_total"),
            queue_depth: registry.gauge("serve_queue_depth"),
            max_queue_depth: registry.gauge("serve_queue_depth_max"),
            batch_pairs: registry.histogram("serve_batch_pairs"),
            batch_hist: std::array::from_fn(|_| AtomicU64::new(0)),
            registry,
        }
    }

    /// Records the queue depth after an enqueue or drain, maintaining the
    /// high-water mark.
    pub(crate) fn note_depth(&self, depth: usize) {
        self.queue_depth.set(depth as u64);
        self.max_queue_depth.maximize(depth as u64);
    }

    /// Records a completed batch of `pairs` total pairs.
    pub(crate) fn note_batch(&self, pairs: usize) {
        self.batches.inc();
        self.batch_pairs.observe(pairs as u64);
        self.batch_hist[bucket(pairs)].fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time snapshot; `n_sites`/`epsilon` describe the backend
    /// image and come from the caller.
    pub(crate) fn snapshot(&self, n_sites: usize, epsilon: f64) -> StatsSnapshot {
        StatsSnapshot {
            n_sites: n_sites as u64,
            epsilon,
            connections: self.connections.get(),
            requests: self.requests.get(),
            pairs: self.pairs.get(),
            batches: self.batches.get(),
            busy_rejections: self.busy_rejections.get(),
            malformed: self.malformed.get(),
            errors: self.errors.get(),
            queue_depth: self.queue_depth.get(),
            max_queue_depth: self.max_queue_depth.get(),
            batch_size_hist: self.batch_hist.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(1), 0);
        assert_eq!(bucket(2), 1);
        assert_eq!(bucket(3), 2);
        assert_eq!(bucket(4), 2);
        assert_eq!(bucket(5), 3);
        assert_eq!(bucket(1 << 16), 16);
        assert_eq!(bucket(usize::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn snapshot_reflects_notes() {
        let c = Counters::new(Registry::new());
        c.note_depth(3);
        c.note_depth(1);
        c.note_batch(5);
        c.note_batch(1);
        let s = c.snapshot(10, 0.25);
        assert_eq!(s.n_sites, 10);
        assert_eq!(s.queue_depth, 1);
        assert_eq!(s.max_queue_depth, 3);
        assert_eq!(s.batches, 2);
        assert_eq!(s.batch_size_hist[0], 1);
        assert_eq!(s.batch_size_hist[3], 1);
    }

    #[test]
    fn registry_mirrors_the_wire_counters() {
        let c = Counters::new(Registry::new());
        c.requests.add(4);
        c.pairs.add(64);
        c.note_batch(64);
        c.note_depth(2);
        let text = c.registry.expose();
        assert_eq!(obs::lookup(&text, "serve_requests_total"), Some(4));
        assert_eq!(obs::lookup(&text, "serve_pairs_total"), Some(64));
        assert_eq!(obs::lookup(&text, "serve_batches_total"), Some(1));
        assert_eq!(obs::lookup(&text, "serve_batch_pairs_count"), Some(1));
        assert_eq!(obs::lookup(&text, "serve_batch_pairs_max"), Some(64));
        assert_eq!(obs::lookup(&text, "serve_queue_depth_max"), Some(2));
    }
}
