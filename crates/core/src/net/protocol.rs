//! Wire protocol for `oracled`: length-prefixed binary frames carrying
//! distance / path / stats / metrics / shutdown requests and their
//! responses.
//!
//! A wire frame is **exactly** the persisted-image frame of [`crate::persist`]
//! — magic, version, declared payload length, payload, FNV-1a checksum —
//! written by the same `write_framed` and validated by the same
//! `parse_frame_header`/`read_framed` pair, just with a wire-specific magic
//! ([`WIRE_MAGIC`]) and a much smaller length cap ([`WIRE_FRAME_CAP`]).
//! Sharing one decoder means every hardening rule the image loader obeys
//! (length validated before allocation, counts validated against remaining
//! bytes, checksum over the payload) holds for bytes from the socket too.
//!
//! Payload layout (all integers little-endian, matching the image format):
//!
//! | frame | payload |
//! |---|---|
//! | request  | `kind: u8`, `id: u64`, kind-specific body |
//! | response | `kind: u8`, `id: u64` (echo), kind-specific body |
//!
//! The `id` is an opaque client-chosen token echoed verbatim on the
//! response, so a client may pipeline requests and match answers even
//! though coalescing can reorder completion across connections.

// lint: query-path

use crate::persist::{parse_frame_header, read_framed, write_framed, Cursor, PersistError};

/// Magic for wire frames (`SEWF`, "space-efficient wire frame") —
/// deliberately distinct from the image magics so an oracle image piped at
/// the daemon (or a wire capture fed to the image loader) fails fast with
/// `BadMagic` instead of being misparsed.
pub const WIRE_MAGIC: [u8; 4] = *b"SEWF";

/// Wire protocol version; bumped on any frame- or payload-layout change.
/// Version 2 added the `Metrics` verb (request kind 5, response kind 7).
pub const WIRE_VERSION: u32 = 2;

/// Hard cap on a wire frame's declared payload length. Anything larger is
/// rejected from the 16-byte header alone — before a single payload byte
/// is buffered — so a hostile length field costs the peer nothing.
pub const WIRE_FRAME_CAP: u64 = 1 << 20;

/// Most pairs a single distance request may carry. Chosen so a maximal
/// request (13 + 8·n bytes) and its response (13 + 8·n bytes) both fit
/// [`WIRE_FRAME_CAP`] with room to spare.
pub const MAX_PAIRS_PER_REQUEST: usize = 65_536;

/// Most polyline points a [`Response::Path`] may carry: the largest `n`
/// for which the encoded payload (`kind: u8`, `id: u64`, `distance: f64`,
/// `count: u32`, then 24 bytes per point — 21 + 24·n) still fits
/// [`WIRE_FRAME_CAP`]. A longer polyline would frame fine on the server
/// but be rejected by the peer's [`FrameReader`] as `FrameTooLarge`,
/// killing the connection over a legitimate answer — so the server bounds
/// it at the source and answers [`ErrorCode::PathTooLong`] instead.
pub const MAX_PATH_POINTS: usize = (WIRE_FRAME_CAP as usize - 21) / 24;

/// Longest metrics exposition a [`Response::Metrics`] may carry; longer
/// texts are truncated at the encoder so the frame always fits
/// [`WIRE_FRAME_CAP`] (21 bytes of framing + payload header around it).
pub const MAX_METRICS_TEXT: usize = WIRE_FRAME_CAP as usize / 2;

const REQ_DISTANCE: u8 = 1;
const REQ_PATH: u8 = 2;
const REQ_STATS: u8 = 3;
const REQ_SHUTDOWN: u8 = 4;
const REQ_METRICS: u8 = 5;

const RESP_DISTANCES: u8 = 1;
const RESP_PATH: u8 = 2;
const RESP_BUSY: u8 = 3;
const RESP_ERROR: u8 = 4;
const RESP_STATS: u8 = 5;
const RESP_SHUTTING_DOWN: u8 = 6;
const RESP_METRICS: u8 = 7;

/// A client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Batch distance query: answer every `(s, t)` pair, in order.
    Distance {
        /// Client-chosen token echoed on the response.
        id: u64,
        /// Site-id pairs to answer.
        pairs: Vec<(u32, u32)>,
    },
    /// Shortest-path query for one pair (requires a path-enabled image).
    Path {
        /// Client-chosen token echoed on the response.
        id: u64,
        /// Source site id.
        s: u32,
        /// Target site id.
        t: u32,
    },
    /// Ask for the server's aggregate counters.
    Stats {
        /// Client-chosen token echoed on the response.
        id: u64,
    },
    /// Ask for the server's full metrics registry in text exposition
    /// format (the scrape-friendly superset of `Stats`).
    Metrics {
        /// Client-chosen token echoed on the response.
        id: u64,
    },
    /// Control verb: stop accepting work, drain in-flight batches, exit.
    Shutdown {
        /// Client-chosen token echoed on the response.
        id: u64,
    },
}

/// Why a request was answered with [`Response::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame or payload failed to decode.
    BadRequest,
    /// A site id was outside `0..n_sites`.
    SiteOutOfRange,
    /// The backend's image is corrupt (a checksum-valid but hostile image
    /// can still violate the oracle's structural invariants).
    CorruptImage,
    /// The verb is not supported by this backend (e.g. `Path` against an
    /// image built without a path index).
    Unsupported,
    /// The server is draining and no longer admits new work.
    ShuttingDown,
    /// The answer polyline exceeds [`MAX_PATH_POINTS`], so its encoding
    /// would not fit a wire frame; the distance-only `Distance` verb still
    /// works for the pair.
    PathTooLong,
}

impl ErrorCode {
    fn to_wire(self) -> u8 {
        match self {
            ErrorCode::BadRequest => 1,
            ErrorCode::SiteOutOfRange => 2,
            ErrorCode::CorruptImage => 3,
            ErrorCode::Unsupported => 4,
            ErrorCode::ShuttingDown => 5,
            ErrorCode::PathTooLong => 6,
        }
    }

    fn from_wire(b: u8) -> Result<Self, PersistError> {
        Ok(match b {
            1 => ErrorCode::BadRequest,
            2 => ErrorCode::SiteOutOfRange,
            3 => ErrorCode::CorruptImage,
            4 => ErrorCode::Unsupported,
            5 => ErrorCode::ShuttingDown,
            6 => ErrorCode::PathTooLong,
            _ => return Err(PersistError::Corrupt("unknown error code")),
        })
    }
}

/// Aggregate server counters, as reported by the `STATS` verb.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsSnapshot {
    /// Sites the backend image covers.
    pub n_sites: u64,
    /// The backend image's approximation parameter ε.
    pub epsilon: f64,
    /// Connections accepted since startup.
    pub connections: u64,
    /// Distance/path requests admitted (not counting `Busy` rejections).
    pub requests: u64,
    /// Total pairs across admitted distance requests.
    pub pairs: u64,
    /// Coalesced batches executed.
    pub batches: u64,
    /// Requests rejected with `Busy` (bounded-queue backpressure).
    pub busy_rejections: u64,
    /// Frames that failed to decode (each closes its connection).
    pub malformed: u64,
    /// Requests answered with an `Error` response.
    pub errors: u64,
    /// Queue depth observed after the most recent batch was drained.
    pub queue_depth: u64,
    /// High-water mark of the request queue.
    pub max_queue_depth: u64,
    /// Power-of-two histogram of pairs-per-batch: bucket `i` counts
    /// batches whose pair total lies in `(2^(i-1), 2^i]` (bucket 0: one
    /// pair).
    pub batch_size_hist: Vec<u64>,
}

/// A server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answers for a [`Request::Distance`], in request order.
    Distances {
        /// Echo of the request id.
        id: u64,
        /// One distance per requested pair, bit-identical to the
        /// in-process batch API on the same image.
        distances: Vec<f64>,
    },
    /// Answer for a [`Request::Path`].
    Path {
        /// Echo of the request id.
        id: u64,
        /// The oracle's ε-approximate distance for the pair.
        distance: f64,
        /// On-surface polyline as `(x, y, z)` points.
        points: Vec<(f64, f64, f64)>,
    },
    /// Backpressure: the bounded queue is full; retry later.
    Busy {
        /// Echo of the request id.
        id: u64,
        /// Queue depth at rejection time.
        queue_depth: u32,
    },
    /// The request failed; the connection stays usable unless the frame
    /// itself was malformed.
    Error {
        /// Echo of the request id (0 when the frame never decoded far
        /// enough to carry one).
        id: u64,
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// Counters for a [`Request::Stats`].
    Stats {
        /// Echo of the request id.
        id: u64,
        /// The counters at snapshot time.
        stats: StatsSnapshot,
    },
    /// Registry snapshot for a [`Request::Metrics`].
    Metrics {
        /// Echo of the request id.
        id: u64,
        /// Text exposition of the server's metrics registry
        /// ([`obs::Registry::expose`] output), truncated at
        /// [`MAX_METRICS_TEXT`] bytes.
        text: String,
    },
    /// Acknowledgement of a [`Request::Shutdown`]; queued answers still
    /// drain before the server exits.
    ShuttingDown {
        /// Echo of the request id.
        id: u64,
    },
}

fn put_u32(v: &mut Vec<u8>, x: u32) {
    v.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(v: &mut Vec<u8>, x: u64) {
    v.extend_from_slice(&x.to_le_bytes());
}

fn put_f64(v: &mut Vec<u8>, x: f64) {
    v.extend_from_slice(&x.to_le_bytes());
}

/// Wraps a payload in the shared frame (magic, version, length, checksum).
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 24);
    if write_framed(&mut out, WIRE_MAGIC, WIRE_VERSION, payload).is_err() {
        // Writing into a Vec is infallible; the io::Result on write_framed
        // exists for file sinks.
        unreachable!("Vec<u8> writes cannot fail");
    }
    out
}

/// Encodes a request as a complete wire frame, ready to write to a socket.
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut p = Vec::with_capacity(16);
    match req {
        Request::Distance { id, pairs } => {
            p.push(REQ_DISTANCE);
            put_u64(&mut p, *id);
            put_u32(&mut p, pairs.len() as u32);
            for &(s, t) in pairs {
                put_u32(&mut p, s);
                put_u32(&mut p, t);
            }
        }
        Request::Path { id, s, t } => {
            p.push(REQ_PATH);
            put_u64(&mut p, *id);
            put_u32(&mut p, *s);
            put_u32(&mut p, *t);
        }
        Request::Stats { id } => {
            p.push(REQ_STATS);
            put_u64(&mut p, *id);
        }
        Request::Metrics { id } => {
            p.push(REQ_METRICS);
            put_u64(&mut p, *id);
        }
        Request::Shutdown { id } => {
            p.push(REQ_SHUTDOWN);
            put_u64(&mut p, *id);
        }
    }
    frame(&p)
}

/// Decodes a request payload (the bytes inside an already-validated
/// frame). Every count is validated against the remaining input before it
/// drives an allocation — the same discipline as the image loaders.
pub fn decode_request(payload: &[u8]) -> Result<Request, PersistError> {
    let mut c = Cursor { buf: payload, at: 0 };
    let kind = c.u8()?;
    let id = c.u64()?;
    let req = match kind {
        REQ_DISTANCE => {
            let n = c.u32()? as usize;
            if n > MAX_PAIRS_PER_REQUEST {
                return Err(PersistError::Corrupt("distance request exceeds pair cap"));
            }
            if n > c.remaining() / 8 {
                return Err(PersistError::Corrupt("truncated distance request"));
            }
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                let s = c.u32()?;
                let t = c.u32()?;
                pairs.push((s, t));
            }
            Request::Distance { id, pairs }
        }
        REQ_PATH => {
            let s = c.u32()?;
            let t = c.u32()?;
            Request::Path { id, s, t }
        }
        REQ_STATS => Request::Stats { id },
        REQ_METRICS => Request::Metrics { id },
        REQ_SHUTDOWN => Request::Shutdown { id },
        _ => return Err(PersistError::Corrupt("unknown request kind")),
    };
    if c.remaining() != 0 {
        return Err(PersistError::Corrupt("trailing bytes after request"));
    }
    Ok(req)
}

/// Encodes a response as a complete wire frame.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut p = Vec::with_capacity(16);
    match resp {
        Response::Distances { id, distances } => {
            p.push(RESP_DISTANCES);
            put_u64(&mut p, *id);
            put_u32(&mut p, distances.len() as u32);
            for &d in distances {
                put_f64(&mut p, d);
            }
        }
        Response::Path { id, distance, points } => {
            p.push(RESP_PATH);
            put_u64(&mut p, *id);
            put_f64(&mut p, *distance);
            put_u32(&mut p, points.len() as u32);
            for &(x, y, z) in points {
                put_f64(&mut p, x);
                put_f64(&mut p, y);
                put_f64(&mut p, z);
            }
        }
        Response::Busy { id, queue_depth } => {
            p.push(RESP_BUSY);
            put_u64(&mut p, *id);
            put_u32(&mut p, *queue_depth);
        }
        Response::Error { id, code, message } => {
            p.push(RESP_ERROR);
            put_u64(&mut p, *id);
            p.push(code.to_wire());
            let msg = message.as_bytes();
            let take = msg.len().min(1024);
            put_u32(&mut p, take as u32);
            p.extend_from_slice(&msg[..take]);
        }
        Response::Stats { id, stats } => {
            p.push(RESP_STATS);
            put_u64(&mut p, *id);
            put_u64(&mut p, stats.n_sites);
            put_f64(&mut p, stats.epsilon);
            put_u64(&mut p, stats.connections);
            put_u64(&mut p, stats.requests);
            put_u64(&mut p, stats.pairs);
            put_u64(&mut p, stats.batches);
            put_u64(&mut p, stats.busy_rejections);
            put_u64(&mut p, stats.malformed);
            put_u64(&mut p, stats.errors);
            put_u64(&mut p, stats.queue_depth);
            put_u64(&mut p, stats.max_queue_depth);
            put_u32(&mut p, stats.batch_size_hist.len() as u32);
            for &b in &stats.batch_size_hist {
                put_u64(&mut p, b);
            }
        }
        Response::Metrics { id, text } => {
            p.push(RESP_METRICS);
            put_u64(&mut p, *id);
            let bytes = text.as_bytes();
            let take = bytes.len().min(MAX_METRICS_TEXT);
            put_u32(&mut p, take as u32);
            p.extend_from_slice(&bytes[..take]);
        }
        Response::ShuttingDown { id } => {
            p.push(RESP_SHUTTING_DOWN);
            put_u64(&mut p, *id);
        }
    }
    frame(&p)
}

/// Decodes a response payload, with the same count-before-allocation
/// validation as [`decode_request`].
pub fn decode_response(payload: &[u8]) -> Result<Response, PersistError> {
    let mut c = Cursor { buf: payload, at: 0 };
    let kind = c.u8()?;
    let id = c.u64()?;
    let resp = match kind {
        RESP_DISTANCES => {
            let n = c.u32()? as usize;
            if n > c.remaining() / 8 {
                return Err(PersistError::Corrupt("truncated distance response"));
            }
            let mut distances = Vec::with_capacity(n);
            for _ in 0..n {
                distances.push(c.f64()?);
            }
            Response::Distances { id, distances }
        }
        RESP_PATH => {
            let distance = c.f64()?;
            let n = c.u32()? as usize;
            if n > c.remaining() / 24 {
                return Err(PersistError::Corrupt("truncated path response"));
            }
            let mut points = Vec::with_capacity(n);
            for _ in 0..n {
                let x = c.f64()?;
                let y = c.f64()?;
                let z = c.f64()?;
                points.push((x, y, z));
            }
            Response::Path { id, distance, points }
        }
        RESP_BUSY => Response::Busy { id, queue_depth: c.u32()? },
        RESP_ERROR => {
            let code = ErrorCode::from_wire(c.u8()?)?;
            let n = c.u32()? as usize;
            if n > c.remaining() {
                return Err(PersistError::Corrupt("truncated error message"));
            }
            let message = String::from_utf8_lossy(c.take(n)?).into_owned();
            Response::Error { id, code, message }
        }
        RESP_STATS => {
            let n_sites = c.u64()?;
            let epsilon = c.f64()?;
            let connections = c.u64()?;
            let requests = c.u64()?;
            let pairs = c.u64()?;
            let batches = c.u64()?;
            let busy_rejections = c.u64()?;
            let malformed = c.u64()?;
            let errors = c.u64()?;
            let queue_depth = c.u64()?;
            let max_queue_depth = c.u64()?;
            let n = c.u32()? as usize;
            if n > c.remaining() / 8 {
                return Err(PersistError::Corrupt("truncated stats histogram"));
            }
            let mut batch_size_hist = Vec::with_capacity(n);
            for _ in 0..n {
                batch_size_hist.push(c.u64()?);
            }
            Response::Stats {
                id,
                stats: StatsSnapshot {
                    n_sites,
                    epsilon,
                    connections,
                    requests,
                    pairs,
                    batches,
                    busy_rejections,
                    malformed,
                    errors,
                    queue_depth,
                    max_queue_depth,
                    batch_size_hist,
                },
            }
        }
        RESP_METRICS => {
            let n = c.u32()? as usize;
            if n > MAX_METRICS_TEXT || n > c.remaining() {
                return Err(PersistError::Corrupt("truncated metrics text"));
            }
            let text = String::from_utf8_lossy(c.take(n)?).into_owned();
            Response::Metrics { id, text }
        }
        RESP_SHUTTING_DOWN => Response::ShuttingDown { id },
        _ => return Err(PersistError::Corrupt("unknown response kind")),
    };
    if c.remaining() != 0 {
        return Err(PersistError::Corrupt("trailing bytes after response"));
    }
    Ok(resp)
}

/// Incremental frame assembler for a socket's byte stream.
///
/// Feed it whatever `read` returns; it yields complete, checksum-verified
/// payloads as they become available. The declared length is validated
/// against [`WIRE_FRAME_CAP`] from the 16-byte header **before** any
/// payload byte is buffered beyond what the peer already sent, so memory
/// per connection is bounded by the cap plus one read chunk regardless of
/// what the peer declares.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// An empty assembler.
    pub fn new() -> Self {
        FrameReader { buf: Vec::new() }
    }

    /// Appends freshly read bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Extracts the next complete payload, if one is buffered.
    ///
    /// `Ok(None)` means "need more bytes". An `Err` is unrecoverable for
    /// the connection (framing is lost): bad magic, unsupported version, a
    /// declared length over the cap, or a checksum mismatch.
    pub fn next_payload(&mut self) -> Result<Option<Vec<u8>>, PersistError> {
        if self.buf.len() < 16 {
            return Ok(None);
        }
        let mut head = [0u8; 16];
        head.copy_from_slice(&self.buf[..16]);
        // Peers negotiate versions out of band, so unlike the image
        // loaders the wire accepts exactly one version (a single-element
        // range).
        let (_, len) =
            parse_frame_header(&head, WIRE_MAGIC, WIRE_VERSION..=WIRE_VERSION, WIRE_FRAME_CAP)?;
        let len = len as usize;
        let total = 16 + len + 8;
        if self.buf.len() < total {
            return Ok(None);
        }
        let rest = self.buf.split_off(total);
        let whole = std::mem::replace(&mut self.buf, rest);
        // Re-run the full shared validation (magic, version, cap,
        // checksum) over the complete frame.
        let (_, payload) =
            read_framed(&mut &whole[..], WIRE_MAGIC, WIRE_VERSION..=WIRE_VERSION, WIRE_FRAME_CAP)?;
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let reqs = [
            Request::Distance { id: 7, pairs: vec![(0, 1), (2, 3)] },
            Request::Distance { id: 8, pairs: vec![] },
            Request::Path { id: 9, s: 4, t: 5 },
            Request::Stats { id: 10 },
            Request::Metrics { id: 12 },
            Request::Shutdown { id: 11 },
        ];
        for req in &reqs {
            let framed = encode_request(req);
            let mut fr = FrameReader::new();
            fr.feed(&framed);
            let payload = fr.next_payload().unwrap().unwrap();
            assert_eq!(&decode_request(&payload).unwrap(), req);
            assert_eq!(fr.buffered(), 0);
        }
    }

    #[test]
    fn response_roundtrip() {
        let resps = [
            Response::Distances { id: 1, distances: vec![1.5, 2.5] },
            Response::Path { id: 2, distance: 3.25, points: vec![(0.0, 1.0, 2.0)] },
            Response::Busy { id: 3, queue_depth: 17 },
            Response::Error {
                id: 4,
                code: ErrorCode::SiteOutOfRange,
                message: "site 99 out of range".into(),
            },
            Response::Stats {
                id: 5,
                stats: StatsSnapshot {
                    n_sites: 32,
                    epsilon: 0.25,
                    requests: 100,
                    batch_size_hist: vec![0; 17],
                    ..StatsSnapshot::default()
                },
            },
            Response::Metrics {
                id: 7,
                text: "# TYPE serve_requests_total counter\nserve_requests_total 4\n".into(),
            },
            Response::ShuttingDown { id: 6 },
        ];
        for resp in &resps {
            let framed = encode_response(resp);
            let mut fr = FrameReader::new();
            fr.feed(&framed);
            let payload = fr.next_payload().unwrap().unwrap();
            assert_eq!(&decode_response(&payload).unwrap(), resp);
        }
    }

    #[test]
    fn maximal_path_response_fits_the_frame_cap_and_roundtrips() {
        // A polyline at exactly MAX_PATH_POINTS must encode within the
        // wire cap and survive the full FrameReader path; one more point
        // would overflow the cap, which is why the server refuses longer
        // answers with PathTooLong instead of framing them.
        let points: Vec<(f64, f64, f64)> =
            (0..MAX_PATH_POINTS).map(|i| (i as f64, i as f64 + 0.5, -(i as f64))).collect();
        let resp = Response::Path { id: 42, distance: 123.456, points };
        let framed = encode_response(&resp);
        let payload_len = framed.len() - 24; // 16-byte header + 8-byte checksum
        assert!(payload_len as u64 <= WIRE_FRAME_CAP);
        assert!((21 + 24 * (MAX_PATH_POINTS as u64 + 1)) > WIRE_FRAME_CAP);
        let mut fr = FrameReader::new();
        fr.feed(&framed);
        let payload = fr.next_payload().unwrap().unwrap();
        assert_eq!(decode_response(&payload).unwrap(), resp);
        assert_eq!(fr.buffered(), 0);
    }

    #[test]
    fn frame_reader_handles_split_and_pipelined_frames() {
        let a = encode_request(&Request::Stats { id: 1 });
        let b = encode_request(&Request::Distance { id: 2, pairs: vec![(0, 1)] });
        let mut stream = Vec::new();
        stream.extend_from_slice(&a);
        stream.extend_from_slice(&b);
        let mut fr = FrameReader::new();
        // Feed one byte at a time: frames must come out whole, in order.
        let mut out = Vec::new();
        for &byte in &stream {
            fr.feed(&[byte]);
            while let Some(p) = fr.next_payload().unwrap() {
                out.push(decode_request(&p).unwrap());
            }
        }
        assert_eq!(
            out,
            vec![Request::Stats { id: 1 }, Request::Distance { id: 2, pairs: vec![(0, 1)] }]
        );
    }

    #[test]
    fn oversized_declared_length_rejected_from_header() {
        let mut framed = encode_request(&Request::Stats { id: 1 });
        framed[8..16].copy_from_slice(&(WIRE_FRAME_CAP + 1).to_le_bytes());
        let mut fr = FrameReader::new();
        fr.feed(&framed);
        match fr.next_payload() {
            Err(PersistError::FrameTooLarge { declared, cap }) => {
                assert_eq!(declared, WIRE_FRAME_CAP + 1);
                assert_eq!(cap, WIRE_FRAME_CAP);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn image_magic_is_rejected_on_the_wire() {
        let mut framed = encode_request(&Request::Stats { id: 1 });
        framed[0..4].copy_from_slice(b"SEOR");
        let mut fr = FrameReader::new();
        fr.feed(&framed);
        assert!(matches!(fr.next_payload(), Err(PersistError::BadMagic(_))));
    }

    #[test]
    fn corrupt_request_payloads_error_not_panic() {
        let framed = encode_request(&Request::Distance { id: 3, pairs: vec![(1, 2), (3, 4)] });
        let (_, payload) =
            read_framed(&mut &framed[..], WIRE_MAGIC, WIRE_VERSION..=WIRE_VERSION, WIRE_FRAME_CAP)
                .unwrap();
        for i in 0..payload.len() {
            for flip in [0x01u8, 0x80] {
                let mut bad = payload.clone();
                bad[i] ^= flip;
                // Any outcome but a panic or over-allocation is fine; the
                // count-field guards make hostile counts error out.
                let _ = decode_request(&bad);
            }
        }
        for cut in 0..payload.len() {
            assert!(decode_request(&payload[..cut]).is_err());
        }
    }
}
