//! A minimal blocking client for the `oracled` wire protocol — what
//! `oracle-loadgen`, the CI smoke test, and the integration suite speak.

use super::protocol::{decode_response, encode_request, FrameReader, Request, Response};
use super::NetError;
use std::io::{self, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// One blocking connection to an `oracled` server.
///
/// Requests may be pipelined: `send` any number of requests, then `recv`
/// responses and match them to requests by the echoed `id`.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    frames: FrameReader,
    chunk: Box<[u8; 16 * 1024]>,
}

impl Connection {
    /// Connects to `addr` with `TCP_NODELAY` set (the protocol is
    /// request/response; Nagle only adds latency).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Connection { stream, frames: FrameReader::new(), chunk: Box::new([0u8; 16 * 1024]) })
    }

    /// Writes one encoded request frame.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        self.stream.write_all(&encode_request(req))
    }

    /// Blocks until the next complete response frame arrives.
    pub fn recv(&mut self) -> Result<Response, NetError> {
        loop {
            if let Some(payload) = self.frames.next_payload()? {
                return Ok(decode_response(&payload)?);
            }
            let n = self.stream.read(&mut self.chunk[..])?;
            if n == 0 {
                return Err(NetError::Disconnected);
            }
            self.frames.feed(&self.chunk[..n]);
        }
    }

    /// `send` + `recv` for strict request/response use.
    pub fn roundtrip(&mut self, req: &Request) -> Result<Response, NetError> {
        self.send(req)?;
        self.recv()
    }

    /// The underlying stream, for tests that need raw byte-level control
    /// (oversized frames, mid-frame disconnects).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}
