//! Network serving: the `oracled` wire protocol, server, and client.
//!
//! This is the process boundary in front of the in-process serving layer
//! ([`crate::serve`]): a hand-rolled length-prefixed binary protocol over
//! `std::net` (no dependencies), a thread-per-connection server whose
//! batcher coalesces queued requests into the batch query API, and a
//! minimal blocking client.
//!
//! Three design commitments, in order:
//!
//! 1. **One hardened decoder.** Wire frames are the persisted-image frames
//!    of [`crate::persist`] with a different magic and a small length cap;
//!    the same header parser and the same bounds-checked payload cursor
//!    validate both. Any hardening fix lands in one place and covers bytes
//!    from disk and bytes from the socket alike.
//! 2. **Coalescing never changes answers.** The batch APIs are
//!    element-wise, so batching is purely an admission/latency policy;
//!    `oracle-loadgen --verify` asserts socket answers are bit-identical
//!    to an in-process replay.
//! 3. **Bounded memory under hostile input.** Frame lengths are validated
//!    against the cap before buffering, the request queue is bounded
//!    (overflow answers [`Response::Busy`]), and responses are bounded by
//!    the request cap.

mod client;
mod protocol;
mod server;
mod stats;

pub use client::Connection;
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, ErrorCode, FrameReader,
    Request, Response, StatsSnapshot, MAX_METRICS_TEXT, MAX_PAIRS_PER_REQUEST, MAX_PATH_POINTS,
    WIRE_FRAME_CAP, WIRE_MAGIC, WIRE_VERSION,
};
pub use server::{Backend, OracleServer, ServeConfig};

use crate::persist::PersistError;
use std::io;

/// A client-side failure talking to an `oracled` server.
#[derive(Debug)]
pub enum NetError {
    /// The socket failed.
    Io(io::Error),
    /// A frame or payload failed validation (shared decoder error).
    Frame(PersistError),
    /// The server closed the connection.
    Disconnected,
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "socket error: {e}"),
            NetError::Frame(e) => write!(f, "protocol error: {e}"),
            NetError::Disconnected => write!(f, "server closed the connection"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            NetError::Frame(e) => Some(e),
            NetError::Disconnected => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<PersistError> for NetError {
    fn from(e: PersistError) -> Self {
        NetError::Frame(e)
    }
}
