//! Out-of-core backing store for atlas tiles.
//!
//! A [`TileStore`] keeps one open handle on a `SEAT` image (v1 or v2) and
//! decodes tile segments on demand, holding at most `resident_budget`
//! decoded bytes in memory. [`crate::Atlas::open_out_of_core`] routes every
//! tile access through `TileStore::tile`, which returns an `Arc` — a
//! query pins the tiles it touches, so eviction mid-query can never
//! invalidate data the query still reads.
//!
//! # Validation happens once, at open
//!
//! `TileStore::open` reads the whole image transiently: frame header,
//! payload checksum, and **every** tile segment are validated (each nested
//! oracle image carries its own checksum), the atlas-level metadata
//! (portal lists, portal tables, site membership) is retained, and the
//! decoded tiles are dropped again. After a successful open the only
//! failures left on the tile path are environmental — the backing file
//! shrank or was rewritten underneath us — which `TileStore::tile`
//! treats as fatal (see below) rather than threading `Result` through the
//! infallible query API.
//!
//! # Determinism
//!
//! Eviction is least-recently-used where "time" is the **query-ordinal
//! tick**: a counter bumped once per `TileStore::tile` call. No clock is
//! read anywhere (oracle-lint d2 stays green), and the decoded bytes of a
//! tile are a pure function of the image, so answers are bit-identical to
//! a fully resident atlas for any budget and any eviction schedule.
//!
//! # Metrics
//!
//! The store registers in the [`obs::Registry`] handed to
//! `TileStore::open`: counters `atlas_tile_hits_total`,
//! `atlas_tile_misses_total`, `atlas_tile_loads_total`,
//! `atlas_tile_evictions_total` and gauges `atlas_tiles_resident`,
//! `atlas_resident_bytes`. Every miss triggers exactly one load
//! (`loads == misses`), and the byte gauge never exceeds the budget while
//! more than one tile is resident.

// lint: query-path

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;
use std::sync::Arc;
// The store is the one deliberately stateful piece of the query path: an
// LRU cache *is* interior mutability. All of it lives behind this single
// mutex; decoded tile bytes are immutable once published via `Arc`.
// lint: allow(d3, "LRU residency cache: single lock, query-ordinal ticks, decoded tiles immutable behind Arc")
use std::sync::Mutex;

use crate::atlas::AtlasTile;
use crate::persist::{
    decode_tile_segment, fnv1a, parse_frame_header, parse_seat_layout, PersistError, ATLAS_MAGIC,
    ATLAS_VERSION, ATLAS_VERSION_COMPACT, IMAGE_FRAME_CAP,
};

/// Per-tile portal payload: the tile's `(portal ids, portal–portal
/// distance table)`, kept resident so routing never loads a tile.
pub(crate) type PortalData = (Vec<(u32, u32)>, Vec<f64>);

/// Atlas-level metadata collected while `TileStore::open` validates the
/// image — everything [`crate::Atlas`] needs besides the tiles themselves.
pub(crate) struct StoreMeta {
    /// Error parameter ε shared by every tile oracle.
    pub(crate) eps: f64,
    /// Number of portals in the routing graph.
    pub(crate) n_portals: usize,
    /// Home tile per global site.
    pub(crate) site_home: Vec<u32>,
    /// `(tile, local id)` memberships per global site.
    pub(crate) site_members: Vec<Vec<(u32, u32)>>,
    /// Per-tile `(portals, portal table)` — retained resident so the
    /// portal routing graph never needs a tile load.
    pub(crate) portal_data: Vec<PortalData>,
    /// Sites per tile (shape statistics).
    pub(crate) tile_sites: Vec<usize>,
}

/// Residency counters and cache statistics, read via [`TileStore::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileStoreStats {
    /// Tile accesses served from the resident set.
    pub hits: u64,
    /// Tile accesses that had to decode the segment from disk.
    pub misses: u64,
    /// Segment decodes performed (equals `misses` by construction).
    pub loads: u64,
    /// Tiles evicted to stay under the byte budget.
    pub evictions: u64,
    /// Tiles currently resident.
    pub resident_tiles: usize,
    /// Decoded bytes currently resident.
    pub resident_bytes: usize,
    /// Configured resident-byte budget.
    pub budget_bytes: usize,
    /// Total tiles in the backing image.
    pub n_tiles: usize,
}

/// Mutable cache state, all behind one lock.
struct StoreState {
    /// Open handle on the backing image.
    file: File,
    /// Resident decoded tiles (`None` = not resident).
    slots: Vec<Option<Arc<AtlasTile>>>,
    /// Last-access tick per slot (valid only while resident).
    stamp: Vec<u64>,
    /// Query-ordinal clock: bumped once per `TileStore::tile` call.
    tick: u64,
    /// Decoded bytes of the resident set.
    resident_bytes: usize,
    /// Tiles in the resident set.
    resident_tiles: usize,
}

/// Lazily decoding, LRU-evicting tile source for one `SEAT` image. See
/// the module docs for the open-time validation and determinism contract.
pub struct TileStore {
    // lint: allow(d3, "the residency cache state; see module docs")
    state: Mutex<StoreState>,
    /// Absolute `(offset, len)` of each tile segment in the backing file.
    segments: Vec<(u64, usize)>,
    /// Decoded footprint of each tile (measured at open).
    decoded_sizes: Vec<usize>,
    /// Image format version (v1 and v2 segments decode differently).
    version: u32,
    /// Portal-id bound handed to the segment decoder.
    n_portals: usize,
    /// Resident-byte budget (a lone tile may exceed it; see `tile`).
    budget: usize,
    registry: obs::Registry,
    hits: Arc<obs::Counter>,
    misses: Arc<obs::Counter>,
    loads: Arc<obs::Counter>,
    evictions: Arc<obs::Counter>,
    resident_tiles_g: Arc<obs::Gauge>,
    resident_bytes_g: Arc<obs::Gauge>,
}

impl TileStore {
    /// Opens and fully validates a `SEAT` image for out-of-core serving.
    ///
    /// Reads the whole file once: frame header and payload checksum,
    /// atlas layout, and every tile segment (decoded transiently to
    /// validate it and measure its resident footprint, then dropped).
    /// Returns the store plus the atlas-level [`StoreMeta`] the caller
    /// assembles an [`crate::Atlas`] from. `resident_budget` caps the
    /// decoded bytes held at once; metrics land in `registry`.
    pub(crate) fn open(
        path: &Path,
        resident_budget: usize,
        registry: obs::Registry,
    ) -> Result<(TileStore, StoreMeta), PersistError> {
        let bytes = std::fs::read(path)?;
        if bytes.len() < 16 {
            return Err(PersistError::Truncated { declared: 16, available: bytes.len() as u64 });
        }
        let mut head = [0u8; 16];
        head.copy_from_slice(&bytes[..16]);
        let (version, len) = parse_frame_header(
            &head,
            ATLAS_MAGIC,
            ATLAS_VERSION..=ATLAS_VERSION_COMPACT,
            IMAGE_FRAME_CAP,
        )?;
        let len = len as usize;
        let have = bytes.len() - 16;
        if have < len + 8 {
            return Err(PersistError::Truncated {
                declared: len as u64 + 8,
                available: have as u64,
            });
        }
        let payload = &bytes[16..16 + len];
        let sum = u64::from_le_bytes({
            let mut s = [0u8; 8];
            s.copy_from_slice(&bytes[16 + len..16 + len + 8]);
            s
        });
        if sum != fnv1a(payload) {
            return Err(PersistError::Corrupt("checksum mismatch"));
        }

        let layout = parse_seat_layout(payload, version)?;
        let n_tiles = layout.segments.len();
        let mut segments = Vec::with_capacity(n_tiles);
        let mut decoded_sizes = Vec::with_capacity(n_tiles);
        let mut portal_data = Vec::with_capacity(n_tiles);
        let mut tile_sites = Vec::with_capacity(n_tiles);
        for &(off, seg_len) in &layout.segments {
            // One tile at a time: the transient decode peak is a single
            // tile, not the whole atlas — the point of out-of-core.
            let tile =
                decode_tile_segment(&payload[off..off + seg_len], version, layout.n_portals)?;
            decoded_sizes.push(tile.footprint());
            tile_sites.push(tile.oracle.n_sites());
            segments.push((16 + off as u64, seg_len));
            let AtlasTile { oracle: _, portals, portal_table } = tile;
            portal_data.push((portals, portal_table));
        }
        for members in &layout.site_members {
            for &(t, l) in members {
                if t as usize >= n_tiles || l as usize >= tile_sites[t as usize] {
                    return Err(PersistError::Corrupt("site membership local id out of range"));
                }
            }
        }
        drop(bytes);

        let meta = StoreMeta {
            eps: layout.eps,
            n_portals: layout.n_portals,
            site_home: layout.site_home,
            site_members: layout.site_members,
            portal_data,
            tile_sites,
        };
        let file = File::open(path)?;
        let store = TileStore {
            // lint: allow(d3, "constructing the residency cache; see module docs")
            state: Mutex::new(StoreState {
                file,
                slots: vec![None; n_tiles],
                stamp: vec![0; n_tiles],
                tick: 0,
                resident_bytes: 0,
                resident_tiles: 0,
            }),
            segments,
            decoded_sizes,
            version,
            n_portals: meta.n_portals,
            budget: resident_budget,
            hits: registry.counter("atlas_tile_hits_total"),
            misses: registry.counter("atlas_tile_misses_total"),
            loads: registry.counter("atlas_tile_loads_total"),
            evictions: registry.counter("atlas_tile_evictions_total"),
            resident_tiles_g: registry.gauge("atlas_tiles_resident"),
            resident_bytes_g: registry.gauge("atlas_resident_bytes"),
            registry,
        };
        Ok((store, meta))
    }

    /// Returns tile `t`, decoding it from the backing file if it is not
    /// resident and evicting least-recently-used tiles while the resident
    /// set exceeds the byte budget. The just-loaded tile is never evicted
    /// (ticks are unique and monotone, so it always carries the maximal
    /// stamp), which also lets a single tile larger than the budget be
    /// served: the floor is one resident tile.
    ///
    /// # Panics
    ///
    /// If the backing file became unreadable or its bytes no longer decode
    /// (it was truncated or rewritten after `TileStore::open` validated
    /// it). That is environmental corruption mid-serve, not a query error,
    /// and the infallible query API has no channel to report it.
    pub(crate) fn tile(&self, t: usize) -> Arc<AtlasTile> {
        // lint: allow(panic, "poisoned = a prior decode panicked; the store is already dead")
        let mut st = self.state.lock().expect("tile store lock poisoned");
        st.tick += 1;
        let tick = st.tick;
        if let Some(tile) = &st.slots[t] {
            let tile = Arc::clone(tile);
            st.stamp[t] = tick;
            self.hits.inc();
            return tile;
        }
        self.misses.inc();

        let (off, len) = self.segments[t];
        let mut buf = vec![0u8; len];
        st.file
            .seek(SeekFrom::Start(off))
            .and_then(|_| st.file.read_exact(&mut buf))
            .unwrap_or_else(|e| {
                // lint: allow(panic, "backing image unreadable after open-time validation: environmental corruption, not a query error")
                panic!(
                    "out-of-core atlas: backing image became unreadable at segment {t} \
                     (offset {off}, {len} bytes): {e}; the file was validated at open — \
                     was it truncated or replaced while serving?"
                )
            });
        let tile = decode_tile_segment(&buf, self.version, self.n_portals).unwrap_or_else(|e| {
            // lint: allow(panic, "segment no longer decodes after open-time validation: the file changed under us")
            panic!(
                "out-of-core atlas: tile segment {t} no longer decodes: {e}; \
                 it validated at open — was the file rewritten while serving?"
            )
        });
        let tile = Arc::new(tile);
        st.slots[t] = Some(Arc::clone(&tile));
        st.stamp[t] = tick;
        st.resident_bytes += self.decoded_sizes[t];
        st.resident_tiles += 1;
        self.loads.inc();

        while st.resident_bytes > self.budget && st.resident_tiles > 1 {
            let victim = (0..st.slots.len())
                .filter(|&i| st.slots[i].is_some())
                .min_by_key(|&i| st.stamp[i])
                // lint: allow(panic, "resident_tiles > 1 guarantees a resident slot exists")
                .expect("resident set is non-empty");
            st.slots[victim] = None;
            st.resident_bytes -= self.decoded_sizes[victim];
            st.resident_tiles -= 1;
            self.evictions.inc();
        }
        self.resident_tiles_g.set(st.resident_tiles as u64);
        self.resident_bytes_g.set(st.resident_bytes as u64);
        tile
    }

    /// Number of tiles in the backing image.
    pub(crate) fn n_tiles(&self) -> usize {
        self.segments.len()
    }

    /// Sum of every tile's decoded footprint (what a fully resident load
    /// would hold), measured during open-time validation.
    pub(crate) fn decoded_bytes_total(&self) -> usize {
        self.decoded_sizes.iter().sum()
    }

    /// The configured resident-byte budget.
    pub fn resident_budget(&self) -> usize {
        self.budget
    }

    /// The registry carrying this store's counters and gauges.
    pub fn registry(&self) -> &obs::Registry {
        &self.registry
    }

    /// A consistent snapshot of the cache statistics.
    pub fn stats(&self) -> TileStoreStats {
        // lint: allow(panic, "poisoned = a prior decode panicked; the store is already dead")
        let st = self.state.lock().expect("tile store lock poisoned");
        TileStoreStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            loads: self.loads.get(),
            evictions: self.evictions.get(),
            resident_tiles: st.resident_tiles,
            resident_bytes: st.resident_bytes,
            budget_bytes: self.budget,
            n_tiles: self.segments.len(),
        }
    }
}
