//! The compressed partition tree (§3.2, second half).
//!
//! Starting from the original partition tree, every internal node with a
//! single child is contracted (its child re-attaches to its parent) until
//! no such node remains; leaf radii are then set to zero. Nodes keep the
//! layer number they had in the original tree. The result has at most
//! `2n − 1` nodes (Lemma 9) — the key to the oracle's `O(n)`-space
//! "space-efficient" property.

// lint: query-path
use crate::tree::{PartitionTree, NO_NODE};

/// A node of the compressed partition tree.
#[derive(Debug, Clone)]
pub struct CNode {
    /// Site index of the center.
    pub center: u32,
    /// Layer number *in the original partition tree*.
    pub layer: u32,
    /// Parent in the compressed tree (`NO_NODE` for the root).
    pub parent: u32,
    /// Child node ids.
    pub children: Vec<u32>,
    /// Disk radius: `r₀/2^layer` for internal nodes, `0` for leaves.
    pub radius: f64,
}

/// The compressed partition tree `T_compress`.
#[derive(Debug, Clone)]
pub struct CompressedTree {
    /// Nodes, indexed by compressed node id.
    pub nodes: Vec<CNode>,
    /// Root node id.
    pub root: u32,
    /// Root radius of the underlying partition tree.
    pub r0: f64,
    /// Height `h` of the underlying partition tree (layers are `0..=h`).
    pub h: u32,
    /// For each site, its leaf node id.
    pub leaf_of_site: Vec<u32>,
}

impl CompressedTree {
    /// Compresses `T_org`.
    pub fn from_partition_tree(org: &PartitionTree) -> Self {
        let h = org.height();
        let n_sites = org.layers[h as usize].len();

        // Keep the root, all leaves, and every node with ≥ 2 children.
        let keep: Vec<bool> = org
            .nodes
            .iter()
            .enumerate()
            .map(|(id, node)| {
                node.parent == NO_NODE || node.layer == h || org.nodes[id].children.len() >= 2
            })
            .collect();

        // Map kept original ids to compressed ids.
        let mut cid_of: Vec<u32> = vec![NO_NODE; org.nodes.len()];
        let mut nodes: Vec<CNode> = Vec::new();
        for (id, node) in org.nodes.iter().enumerate() {
            if keep[id] {
                cid_of[id] = nodes.len() as u32;
                let radius = if node.layer == h { 0.0 } else { org.layer_radius(node.layer) };
                nodes.push(CNode {
                    center: node.center,
                    layer: node.layer,
                    parent: NO_NODE,
                    children: Vec::new(),
                    radius,
                });
            }
        }

        // Wire each kept node to its nearest kept ancestor.
        let mut root = NO_NODE;
        for (id, node) in org.nodes.iter().enumerate() {
            if !keep[id] {
                continue;
            }
            let cid = cid_of[id];
            let mut p = node.parent;
            while p != NO_NODE && !keep[p as usize] {
                p = org.nodes[p as usize].parent;
            }
            if p == NO_NODE {
                root = cid;
            } else {
                let pc = cid_of[p as usize];
                nodes[cid as usize].parent = pc;
                nodes[pc as usize].children.push(cid);
            }
        }
        debug_assert_ne!(root, NO_NODE);

        let mut leaf_of_site = vec![NO_NODE; n_sites];
        for &leaf in &org.layers[h as usize] {
            let site = org.nodes[leaf as usize].center as usize;
            leaf_of_site[site] = cid_of[leaf as usize];
        }

        Self { nodes, root, r0: org.r0, h, leaf_of_site }
    }

    /// Number of compressed nodes (`≤ 2n − 1`, Lemma 9).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Radius of the *enlarged* disk of a node (`2·radius`; Distance
    /// property keeps all of the node's representative set inside it).
    pub fn enlarged_radius(&self, node: u32) -> f64 {
        2.0 * self.nodes[node as usize].radius
    }

    /// The path of node ids from `node` up to the root (inclusive).
    pub fn path_to_root(&self, mut node: u32) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.h as usize + 1);
        loop {
            out.push(node);
            let p = self.nodes[node as usize].parent;
            if p == NO_NODE {
                break;
            }
            node = p;
        }
        out
    }

    /// The paper's `A_s` array: `A[i]` is the node at layer `i` on the path
    /// from `site`'s leaf to the root, or `NO_NODE` when the compressed
    /// path skips layer `i`.
    pub fn layer_array(&self, site: usize) -> Vec<u32> {
        let mut a = Vec::new();
        self.layer_array_into(site, &mut a);
        a
    }

    /// [`Self::layer_array`] into a caller-owned buffer (resized to
    /// `h + 1`), so batch query paths can walk thousands of root paths
    /// without one heap allocation per site.
    pub fn layer_array_into(&self, site: usize, a: &mut Vec<u32>) {
        a.clear();
        a.resize(self.h as usize + 1, NO_NODE);
        self.layer_array_fill(site, a);
    }

    /// Fills a pre-zeroed (`NO_NODE`) slice of length `h + 1` with `site`'s
    /// layer array. Walks the leaf-to-root path directly instead of
    /// materializing it.
    fn layer_array_fill(&self, site: usize, a: &mut [u32]) {
        let mut node = self.leaf_of_site[site];
        loop {
            a[self.nodes[node as usize].layer as usize] = node;
            let p = self.nodes[node as usize].parent;
            if p == NO_NODE {
                break;
            }
            node = p;
        }
    }

    /// Layer arrays of **all** sites in one flat row-major buffer
    /// (`n_sites × (h + 1)`): row `s` is `layer_array(s)`. This is the
    /// dense form large batch queries use — one pass over the tree, then
    /// every per-query lookup is a slice index.
    pub fn all_layer_arrays(&self) -> Vec<u32> {
        let h1 = self.h as usize + 1;
        let mut flat = vec![NO_NODE; self.leaf_of_site.len() * h1];
        for (site, row) in flat.chunks_mut(h1).enumerate() {
            self.layer_array_fill(site, row);
        }
        flat
    }

    /// Whether `anc` is `node` or an ancestor of `node`.
    pub fn is_ancestor_or_self(&self, anc: u32, node: u32) -> bool {
        let mut cur = node;
        loop {
            if cur == anc {
                return true;
            }
            let p = self.nodes[cur as usize].parent;
            if p == NO_NODE {
                return false;
            }
            cur = p;
        }
    }

    /// Heap bytes of the compressed tree.
    pub fn storage_bytes(&self) -> usize {
        use std::mem::size_of;
        self.nodes.len() * size_of::<CNode>()
            + self.nodes.iter().map(|n| n.children.len() * size_of::<u32>()).sum::<usize>()
            + self.leaf_of_site.len() * size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::SelectionStrategy;
    use geodesic::ich::IchEngine;
    use geodesic::sitespace::VertexSiteSpace;
    use std::sync::Arc;
    use terrain::gen::diamond_square;

    fn build(n_sites: usize, seed: u64) -> (PartitionTree, CompressedTree) {
        let mesh = Arc::new(diamond_square(4, 0.6, seed).to_mesh());
        let nv = mesh.n_vertices();
        let sites: Vec<u32> = (0..n_sites).map(|i| (i * (nv / n_sites)) as u32).collect();
        let sp = VertexSiteSpace::new(Arc::new(IchEngine::new(mesh)), sites);
        let (org, _) = PartitionTree::build(&sp, SelectionStrategy::Random, seed).unwrap();
        let c = CompressedTree::from_partition_tree(&org);
        (org, c)
    }

    #[test]
    fn linear_size_lemma_9() {
        for seed in [1u64, 2, 3] {
            let n = 20;
            let (_, c) = build(n, seed);
            assert!(c.n_nodes() < 2 * n, "{} nodes for {n} sites", c.n_nodes());
            assert!(c.n_nodes() >= n);
        }
    }

    #[test]
    fn no_single_child_internal_nodes() {
        let (_, c) = build(25, 7);
        for (id, node) in c.nodes.iter().enumerate() {
            let is_root = id as u32 == c.root;
            if !node.children.is_empty() && !is_root {
                assert!(node.children.len() >= 2, "node {id} has a single child");
            }
        }
    }

    #[test]
    fn leaves_have_zero_radius_and_cover_all_sites() {
        let (org, c) = build(18, 5);
        let h = org.height();
        for (site, &leaf) in c.leaf_of_site.iter().enumerate() {
            let node = &c.nodes[leaf as usize];
            assert_eq!(node.center as usize, site);
            assert_eq!(node.radius, 0.0);
            assert_eq!(node.layer, h);
            assert!(node.children.is_empty());
        }
    }

    #[test]
    fn layer_numbers_preserved_and_increasing() {
        let (_, c) = build(22, 9);
        for node in &c.nodes {
            if node.parent != NO_NODE {
                assert!(
                    c.nodes[node.parent as usize].layer < node.layer,
                    "parent layer must be strictly higher"
                );
            }
        }
    }

    #[test]
    fn layer_array_matches_path() {
        let (_, c) = build(16, 11);
        for site in 0..16 {
            let a = c.layer_array(site);
            assert_eq!(a[c.h as usize], c.leaf_of_site[site]);
            assert_eq!(a[c.nodes[c.root as usize].layer as usize], c.root);
            // The layer array read in ascending layer order is the
            // root-to-leaf path.
            let on_path: Vec<u32> = a.iter().copied().filter(|&x| x != NO_NODE).collect();
            let mut path = c.path_to_root(c.leaf_of_site[site]);
            path.reverse(); // leaf→root becomes root→leaf
            assert_eq!(path, on_path);
        }
    }

    #[test]
    fn layer_array_into_and_dense_form_match() {
        let (_, c) = build(16, 19);
        let flat = c.all_layer_arrays();
        let h1 = c.h as usize + 1;
        let mut buf = Vec::new();
        for site in 0..16 {
            let a = c.layer_array(site);
            c.layer_array_into(site, &mut buf); // buffer reused across sites
            assert_eq!(a, buf, "site {site}");
            assert_eq!(&flat[site * h1..(site + 1) * h1], a.as_slice(), "site {site}");
        }
    }

    #[test]
    fn ancestor_predicate() {
        let (_, c) = build(14, 13);
        for site in 0..14 {
            let leaf = c.leaf_of_site[site];
            assert!(c.is_ancestor_or_self(c.root, leaf));
            assert!(c.is_ancestor_or_self(leaf, leaf));
            if leaf != c.root {
                assert!(!c.is_ancestor_or_self(leaf, c.root));
            }
        }
    }

    #[test]
    fn representative_sets_partition_sites() {
        // The leaves below each child of a node partition the leaves below
        // the node itself.
        let (_, c) = build(20, 17);
        fn leaves_below(c: &CompressedTree, node: u32) -> Vec<u32> {
            let mut out = Vec::new();
            let mut stack = vec![node];
            while let Some(x) = stack.pop() {
                let n = &c.nodes[x as usize];
                if n.children.is_empty() {
                    out.push(n.center);
                } else {
                    stack.extend(n.children.iter().copied());
                }
            }
            out.sort_unstable();
            out
        }
        let all = leaves_below(&c, c.root);
        assert_eq!(all.len(), 20);
        let root_children = c.nodes[c.root as usize].children.clone();
        let mut merged: Vec<u32> =
            root_children.iter().flat_map(|&ch| leaves_below(&c, ch)).collect();
        merged.extend(root_children.is_empty().then_some(c.nodes[c.root as usize].center));
        merged.sort_unstable();
        assert_eq!(all, merged);
    }
}
