//! The partition tree of §3.2: a hierarchy of geodesic disks over the POI
//! set satisfying the Separation, Covering and Distance properties.
//!
//! Layer `i` consists of disks of radius `r₀/2^i` whose centers are ≥ that
//! radius apart (Separation) and jointly cover all POIs (Covering); every
//! descendant's center lies within twice a node's radius (Distance,
//! Lemma 1). Construction follows the paper's top-down recipe: previous-
//! layer centers are re-selected first, then remaining POIs are chosen by a
//! pluggable strategy (random, or the greedy densest-cell heuristic of
//! Implementation Detail 1) until the layer covers everything; the process
//! stops at the first layer with `n` nodes.

use geodesic::sitespace::SiteSpace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Sentinel for "no node".
pub const NO_NODE: u32 = u32::MAX;

/// Point-selection strategy for Step 2(b)(i) of the construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectionStrategy {
    /// Pick an uncovered POI uniformly at random.
    Random,
    /// Pick from the densest grid cell (Implementation Detail 1's grid +
    /// B⁺-tree + max-heap bookkeeping, realised with a hash grid and a
    /// lazy max-heap).
    Greedy,
}

/// A node of the (original) partition tree.
#[derive(Debug, Clone)]
pub struct PNode {
    /// Site index of the center (a POI).
    pub center: u32,
    /// Layer number (0 = root).
    pub layer: u32,
    /// Parent node id (`NO_NODE` for the root).
    pub parent: u32,
    /// Child node ids.
    pub children: Vec<u32>,
}

/// The original (uncompressed) partition tree `T_org`.
#[derive(Debug, Clone)]
pub struct PartitionTree {
    /// Nodes, indexed by node id (node 0 is the root).
    pub nodes: Vec<PNode>,
    /// Node ids per layer.
    pub layers: Vec<Vec<u32>>,
    /// Root radius `r₀`.
    pub r0: f64,
    /// For each site, its ancestor node id at every layer `0..=h`
    /// (row-major `site * (h+1) + layer`). Every leaf chain reaches the
    /// root, so all entries are valid.
    anc: Vec<u32>,
}

/// Why construction failed.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeError {
    /// No sites.
    Empty,
    /// Two sites coincide (geodesic distance 0) — the paper requires
    /// duplicate POIs to be merged beforehand (§2).
    DuplicateSites {
        /// First coinciding site.
        a: usize,
        /// Second coinciding site.
        b: usize,
    },
    /// A site was unreachable from the root center (disconnected metric).
    Unreachable {
        /// The unreachable site.
        site: usize,
    },
    /// Exceeded the layer safety bound (ill-conditioned distances).
    TooDeep,
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::Empty => write!(f, "no sites to index"),
            TreeError::DuplicateSites { a, b } => {
                write!(f, "sites {a} and {b} coincide; merge duplicate POIs first")
            }
            TreeError::Unreachable { site } => {
                write!(f, "site {site} unreachable from the root center")
            }
            TreeError::TooDeep => write!(f, "partition tree exceeded 64 layers"),
        }
    }
}

impl std::error::Error for TreeError {}

/// Counters from partition-tree construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct TreeBuildStats {
    /// Bounded SSAD runs issued.
    pub ssad_runs: u64,
    /// Total nodes created.
    pub nodes: usize,
}

impl PartitionTree {
    /// Height `h` (layers are `0..=h`).
    pub fn height(&self) -> u32 {
        (self.layers.len() - 1) as u32
    }

    /// Radius of layer `i`: `r₀ / 2^i`.
    pub fn layer_radius(&self, layer: u32) -> f64 {
        self.r0 / (1u64 << layer) as f64
    }

    /// Radius of a node.
    pub fn node_radius(&self, node: u32) -> f64 {
        self.layer_radius(self.nodes[node as usize].layer)
    }

    /// Ancestor of `site`'s leaf at `layer`.
    pub fn ancestor(&self, site: usize, layer: u32) -> u32 {
        self.anc[site * self.layers.len() + layer as usize]
    }

    /// The leaf node of `site` (its ancestor at layer `h`).
    pub fn leaf_of(&self, site: usize) -> u32 {
        self.ancestor(site, self.height())
    }

    /// Builds the partition tree over `space` (Steps 1–2 of §3.2) on a
    /// single thread. See [`Self::build_with`] for the parallel variant.
    pub fn build(
        space: &dyn SiteSpace,
        strategy: SelectionStrategy,
        seed: u64,
    ) -> Result<(Self, TreeBuildStats), TreeError> {
        Self::build_with(space, strategy, seed, 1)
    }

    /// Builds the partition tree with `threads` workers (`0` = auto).
    ///
    /// Center *selection* is inherently sequential — each pick depends on
    /// what previous disks covered — but the SSADs of re-selected
    /// previous-layer centers are known at the top of every layer (the
    /// Separation property guarantees all of them are picked again), so the
    /// pool computes those up front. The sequential covering loop then
    /// consumes the prefetched results, making the construction
    /// byte-for-byte identical for every thread count.
    ///
    /// The prefetch parallelizes *engine* work only over a raw space: under
    /// a [`geodesic::cache::CachingSiteSpace`] (the `SeOracle::build`
    /// pipeline) each re-selected center was already swept at the previous
    /// layer with twice the radius, so every prefetched query is a cache
    /// hit — the cache, not the pool, is what removes that cost there.
    pub fn build_with(
        space: &dyn SiteSpace,
        strategy: SelectionStrategy,
        seed: u64,
        threads: usize,
    ) -> Result<(Self, TreeBuildStats), TreeError> {
        let threads = geodesic::pool::resolve_threads(threads);
        let n = space.n_sites();
        if n == 0 {
            return Err(TreeError::Empty);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stats = TreeBuildStats::default();

        // Step 1: root = random site; r0 = farthest-site distance.
        let root_center = rng.random_range(0..n);
        let all = space.all_distances(root_center);
        stats.ssad_runs += 1;
        let mut r0 = 0.0f64;
        for (s, &d) in all.iter().enumerate() {
            if !d.is_finite() {
                return Err(TreeError::Unreachable { site: s });
            }
            r0 = r0.max(d);
        }
        let mut nodes = vec![PNode {
            center: root_center as u32,
            layer: 0,
            parent: NO_NODE,
            children: Vec::new(),
        }];
        let mut layers: Vec<Vec<u32>> = vec![vec![0]];

        if n == 1 {
            // Single POI: the root is also the leaf.
            let anc = vec![0u32];
            return Ok((Self { nodes, layers, r0: 0.0, anc }, stats));
        }
        if r0 <= 0.0 {
            // n > 1 but the farthest site is at distance 0: duplicates.
            let dup = all.iter().position(|&d| d == 0.0).unwrap_or(0);
            let other = (0..n).find(|&s| s != dup && all[s] == 0.0).unwrap_or(root_center);
            return Err(TreeError::DuplicateSites { a: dup.min(other), b: dup.max(other) });
        }

        // Step 2: build layers until one has n nodes.
        // site → node id in the previous layer (for parent lookup).
        let mut prev_center_node: BTreeMap<u32, u32> = BTreeMap::new();
        prev_center_node.insert(root_center as u32, 0);

        for layer in 1..=64u32 {
            let ri = r0 / (1u64 << layer) as f64;
            let mut uncovered = vec![true; n];
            let mut n_uncovered = n;
            let mut this_layer: Vec<u32> = Vec::new();
            let mut center_node: BTreeMap<u32, u32> = BTreeMap::new();

            // Greedy bookkeeping (built lazily only when needed).
            let mut grid = if strategy == SelectionStrategy::Greedy {
                Some(DensityGrid::new(space, ri))
            } else {
                None
            };

            // Phase 1: re-select all previous-layer centers still uncovered.
            // Previous centers are ≥ 2·ri apart, so none covers another and
            // all of them are re-selected (the paper's PC set).
            let prev_centers: Vec<u32> =
                layers[layer as usize - 1].iter().map(|&nid| nodes[nid as usize].center).collect();
            let mut queue: Vec<u32> = prev_centers.clone();

            // The search radius of Step 2(b)(ii)+(iii) below, hoisted so
            // the prefetch issues exactly the queries the covering loop
            // will consume.
            let search_radius = 2.0 * ri * (1.0 + 1e-9);

            // Parallel prefetch: every queued previous-layer center is
            // guaranteed to be re-selected, so its bounded SSAD can run on
            // the pool before the sequential covering loop needs it.
            let mut prefetched: BTreeMap<u32, Vec<(usize, f64)>> =
                if threads > 1 && prev_centers.len() >= 2 {
                    let runs = geodesic::pool::run_indexed(threads, prev_centers.len(), |k| {
                        space.sites_within(prev_centers[k] as usize, search_radius)
                    });
                    prev_centers.iter().copied().zip(runs).collect()
                } else {
                    BTreeMap::new()
                };

            while n_uncovered > 0 {
                // Pick the next center.
                let center = loop {
                    if let Some(c) = queue.pop() {
                        if uncovered[c as usize] {
                            break Some(c);
                        }
                        continue;
                    }
                    break None;
                };
                let center = match center {
                    Some(c) => c,
                    None => match strategy {
                        SelectionStrategy::Random => {
                            // Uniform over uncovered sites.
                            let k = rng.random_range(0..n_uncovered);
                            let mut seen = 0usize;
                            let mut pick = 0u32;
                            for (s, &u) in uncovered.iter().enumerate() {
                                if u {
                                    if seen == k {
                                        pick = s as u32;
                                        break;
                                    }
                                    seen += 1;
                                }
                            }
                            pick
                        }
                        SelectionStrategy::Greedy => {
                            // lint: allow(panic, "invariant: the grid is built whenever the greedy strategy is selected")
                            grid.as_mut().expect("greedy grid exists").pick(&uncovered, &mut rng)
                        }
                    },
                };

                // Step 2(b)(ii)+(iii): one bounded SSAD serves both the
                // covering (≤ ri) and the parent search (≤ 2·ri; the
                // Covering property of layer i−1 guarantees a previous
                // center within 2·ri). The search radius carries a relative
                // slack: a center can lie *exactly* on the 2·ri boundary
                // (the farthest site sits at exactly r₀ from the root), and
                // SSAD roundoff must not push it outside the search.
                let near = prefetched
                    .remove(&center)
                    .unwrap_or_else(|| space.sites_within(center as usize, search_radius));
                stats.ssad_runs += 1;

                let mut parent = NO_NODE;
                let mut parent_dist = f64::INFINITY;
                for &(s, d) in &near {
                    if d <= ri && uncovered[s] {
                        uncovered[s] = false;
                        n_uncovered -= 1;
                        if let Some(g) = grid.as_mut() {
                            g.remove(s);
                        }
                    }
                    if let Some(&pn) = prev_center_node.get(&(s as u32)) {
                        if d < parent_dist {
                            parent_dist = d;
                            parent = pn;
                        }
                    }
                }
                if parent == NO_NODE {
                    // Numeric corner beyond the slack: fall back to one
                    // full sweep and take the globally nearest previous
                    // center (the paper's Step (iii) verbatim).
                    let all = space.all_distances(center as usize);
                    stats.ssad_runs += 1;
                    for (&c_site, &pn) in &prev_center_node {
                        let d = all[c_site as usize];
                        if d < parent_dist {
                            parent_dist = d;
                            parent = pn;
                        }
                    }
                }
                assert!(
                    parent != NO_NODE,
                    "covering property violated: no previous-layer center within {:.6}",
                    2.0 * ri
                );
                debug_assert!(
                    parent_dist <= 2.0 * ri * (1.0 + 1e-6),
                    "parent at {parent_dist} violates the covering bound {}",
                    2.0 * ri
                );
                debug_assert!(!uncovered[center as usize], "center must cover itself");

                let nid = nodes.len() as u32;
                nodes.push(PNode { center, layer, parent, children: Vec::new() });
                nodes[parent as usize].children.push(nid);
                this_layer.push(nid);
                center_node.insert(center, nid);
            }

            let full = this_layer.len() == n;
            layers.push(this_layer);
            prev_center_node = center_node;
            if full {
                let mut tree = Self { nodes, layers, r0, anc: Vec::new() };
                tree.fill_ancestors(n);
                stats.nodes = tree.nodes.len();
                return Ok((tree, stats));
            }
        }
        Err(TreeError::TooDeep)
    }

    /// Assembles a tree from explicit parts — for constructing fixtures
    /// with exact, hand-chosen radii/distances (e.g. the enhanced-edge
    /// boundary regression test). The leaf layer must contain one node per
    /// site, centers `0..n`.
    #[cfg(test)]
    pub(crate) fn from_parts(nodes: Vec<PNode>, layers: Vec<Vec<u32>>, r0: f64) -> Self {
        let n = layers.last().expect("at least one layer").len();
        let mut tree = Self { nodes, layers, r0, anc: Vec::new() };
        tree.fill_ancestors(n);
        tree
    }

    fn fill_ancestors(&mut self, n: usize) {
        let h = self.height() as usize;
        self.anc = vec![NO_NODE; n * (h + 1)];
        for &leaf in &self.layers[h] {
            let site = self.nodes[leaf as usize].center as usize;
            let mut cur = leaf;
            while cur != NO_NODE {
                let layer = self.nodes[cur as usize].layer as usize;
                self.anc[site * (h + 1) + layer] = cur;
                cur = self.nodes[cur as usize].parent;
            }
        }
        debug_assert!(self.anc.iter().all(|&a| a != NO_NODE), "incomplete ancestor table");
    }
}

/// The greedy strategy's density grid: cells of width `O(ri)` over the x–y
/// plane, with a lazily-revalidated max-heap over cell occupancy.
struct DensityGrid {
    /// cell → indices of sites originally in it (compacted lazily).
    cells: BTreeMap<(i64, i64), Vec<u32>>,
    counts: BTreeMap<(i64, i64), usize>,
    heap: crate::maxheap::LazyMaxHeap<(i64, i64)>,
    site_cell: Vec<(i64, i64)>,
}

impl DensityGrid {
    fn new(space: &dyn SiteSpace, ri: f64) -> Self {
        let cell = ri.max(1e-12);
        let mut cells: BTreeMap<(i64, i64), Vec<u32>> = BTreeMap::new();
        let mut site_cell = Vec::with_capacity(space.n_sites());
        for s in 0..space.n_sites() {
            let p = space.site_position(s);
            let key = ((p.x / cell).floor() as i64, (p.y / cell).floor() as i64);
            cells.entry(key).or_default().push(s as u32);
            site_cell.push(key);
        }
        let mut heap = crate::maxheap::LazyMaxHeap::new();
        let mut counts = BTreeMap::new();
        for (&k, v) in &cells {
            counts.insert(k, v.len());
            heap.push(v.len(), k);
        }
        Self { cells, counts, heap, site_cell }
    }

    fn remove(&mut self, site: usize) {
        let key = self.site_cell[site];
        if let Some(c) = self.counts.get_mut(&key) {
            *c = c.saturating_sub(1);
        }
    }

    /// Picks an uncovered site from the densest non-empty cell.
    fn pick(&mut self, uncovered: &[bool], rng: &mut StdRng) -> u32 {
        loop {
            let key = self
                .heap
                .pop_valid(|k| self.counts.get(k).copied().unwrap_or(0))
                // lint: allow(panic, "invariant: callers hold n_uncovered > 0, so a non-empty cell exists")
                .expect("uncovered sites remain, so some cell is non-empty");
            // Compact the cell to live members, pick one at random.
            // lint: allow(panic, "invariant: a just-popped grid cell is present in the cell map")
            let members = self.cells.get_mut(&key).expect("cell exists");
            members.retain(|&s| uncovered[s as usize]);
            if members.is_empty() {
                self.counts.insert(key, 0);
                continue;
            }
            self.counts.insert(key, members.len());
            // Re-add for future picks (count re-checked lazily).
            self.heap.push(members.len(), key);
            let i = rng.random_range(0..members.len());
            return members[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodesic::ich::IchEngine;
    use geodesic::sitespace::VertexSiteSpace;
    use std::sync::Arc;
    use terrain::gen::diamond_square;

    fn space(n_sites: usize, seed: u64) -> VertexSiteSpace {
        let mesh = Arc::new(diamond_square(4, 0.6, seed).to_mesh());
        let nv = mesh.n_vertices();
        let step = nv / n_sites;
        let sites: Vec<u32> = (0..n_sites).map(|i| (i * step) as u32).collect();
        VertexSiteSpace::new(Arc::new(IchEngine::new(mesh)), sites)
    }

    fn check_invariants(tree: &PartitionTree, space: &dyn SiteSpace) {
        let h = tree.height();
        let n = space.n_sites();
        // Leaf layer has n nodes, one per site.
        assert_eq!(tree.layers[h as usize].len(), n);
        let mut seen = vec![false; n];
        for &leaf in &tree.layers[h as usize] {
            let c = tree.nodes[leaf as usize].center as usize;
            assert!(!seen[c]);
            seen[c] = true;
        }
        // Separation: same-layer centers ≥ layer radius apart.
        for (li, layer) in tree.layers.iter().enumerate() {
            let ri = tree.layer_radius(li as u32);
            for (i, &a) in layer.iter().enumerate() {
                for &b in &layer[i + 1..] {
                    let d = space.distance(
                        tree.nodes[a as usize].center as usize,
                        tree.nodes[b as usize].center as usize,
                    );
                    assert!(d >= ri - 1e-9, "separation violated at layer {li}: {d} < {ri}");
                }
            }
        }
        // Distance property: every descendant center within 2·r of the node.
        for node in 0..tree.nodes.len() as u32 {
            let r = tree.node_radius(node);
            let c = tree.nodes[node as usize].center as usize;
            let mut stack = tree.nodes[node as usize].children.clone();
            while let Some(d) = stack.pop() {
                let dc = tree.nodes[d as usize].center as usize;
                let dist = space.distance(c, dc);
                assert!(dist <= 2.0 * r + 1e-9, "distance property violated: {dist} > {}", 2.0 * r);
                stack.extend(tree.nodes[d as usize].children.iter().copied());
            }
        }
        // Parent-child layers are consecutive; children lists consistent.
        for (id, node) in tree.nodes.iter().enumerate() {
            if node.parent != NO_NODE {
                assert_eq!(tree.nodes[node.parent as usize].layer + 1, node.layer);
                assert!(tree.nodes[node.parent as usize].children.contains(&(id as u32)));
            }
        }
        // Ancestor table: every site has a full chain.
        for s in 0..n {
            for l in 0..=h {
                let a = tree.ancestor(s, l);
                assert_eq!(tree.nodes[a as usize].layer, l);
            }
            assert_eq!(tree.nodes[tree.leaf_of(s) as usize].center as usize, s);
        }
    }

    #[test]
    fn random_strategy_invariants() {
        let sp = space(24, 3);
        let (tree, stats) = PartitionTree::build(&sp, SelectionStrategy::Random, 7).unwrap();
        assert!(stats.ssad_runs > 0);
        check_invariants(&tree, &sp);
    }

    #[test]
    fn greedy_strategy_invariants() {
        let sp = space(24, 5);
        let (tree, _) = PartitionTree::build(&sp, SelectionStrategy::Greedy, 11).unwrap();
        check_invariants(&tree, &sp);
    }

    #[test]
    fn deterministic_in_seed() {
        let sp = space(16, 9);
        let (a, _) = PartitionTree::build(&sp, SelectionStrategy::Random, 1).unwrap();
        let (b, _) = PartitionTree::build(&sp, SelectionStrategy::Random, 1).unwrap();
        assert_eq!(a.nodes.len(), b.nodes.len());
        for (x, y) in a.nodes.iter().zip(&b.nodes) {
            assert_eq!(x.center, y.center);
            assert_eq!(x.parent, y.parent);
        }
    }

    #[test]
    fn single_site() {
        let sp = space(1, 2);
        let (tree, _) = PartitionTree::build(&sp, SelectionStrategy::Random, 0).unwrap();
        assert_eq!(tree.height(), 0);
        assert_eq!(tree.nodes.len(), 1);
        assert_eq!(tree.leaf_of(0), 0);
    }

    #[test]
    fn empty_errors() {
        let mesh = Arc::new(diamond_square(3, 0.5, 1).to_mesh());
        let sp = VertexSiteSpace::new(Arc::new(IchEngine::new(mesh)), vec![]);
        assert_eq!(
            PartitionTree::build(&sp, SelectionStrategy::Random, 0).unwrap_err(),
            TreeError::Empty
        );
    }

    #[test]
    fn height_bound_of_lemma_2() {
        let sp = space(20, 13);
        let (tree, _) = PartitionTree::build(&sp, SelectionStrategy::Random, 3).unwrap();
        // h ≤ log2(max/min pairwise distance) + 1 (Lemma 2).
        let n = 20;
        let mut min_d = f64::INFINITY;
        let mut max_d = 0.0f64;
        for a in 0..n {
            let all = sp.all_distances(a);
            for (b, &d) in all.iter().enumerate().take(n) {
                if a != b {
                    min_d = min_d.min(d);
                    max_d = max_d.max(d);
                }
            }
        }
        let bound = (max_d / min_d).log2() + 1.0;
        assert!(
            (tree.height() as f64) <= bound + 1e-9,
            "h = {} exceeds Lemma 2 bound {bound}",
            tree.height()
        );
    }
}
