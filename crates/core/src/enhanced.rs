//! Enhanced edges (§3.5): the pre-computation that makes SE construction
//! efficient.
//!
//! For every node `O` of the *original* partition tree, one bounded SSAD to
//! radius `l·r_O`, `l = 8/ε + 10`, records the geodesic distances to all
//! same-layer node centers inside that disk. Lemma 4 guarantees that every
//! node pair the WSPD generation considers has a same-layer *enhanced node
//! pair* with identical centers, so its distance is answered by an `O(h)`
//! joint walk up the two leaf-to-root paths — replacing one SSAD per
//! considered pair (the naive method) with one SSAD per tree node.

// lint: query-path
use crate::tree::PartitionTree;
use crate::wspd::PairDistanceResolver;
use geodesic::sitespace::SiteSpace;
use phash::{pair_key, PerfectMap};
use std::collections::BTreeMap;

/// The enhanced-edge index.
pub struct EnhancedEdges {
    /// `pair_key(min_node, max_node)` → center distance, over original-tree
    /// node ids. (Enhanced pairs are symmetric: same layer, same radius.)
    map: PerfectMap<f64>,
    /// Bounded SSAD requests issued (one per worked node). A caching space
    /// serves repeated centers from memory, so engine runs can be fewer —
    /// see `BuildStats::{cache_hits, cache_misses}`.
    pub ssad_runs: u64,
    /// Number of stored edges.
    pub n_edges: usize,
}

impl EnhancedEdges {
    /// Builds all enhanced edges. The per-node SSAD runs are distributed
    /// over `threads` pool workers (`0` = auto-detect); the result is
    /// identical for every thread count.
    pub fn build(
        org: &PartitionTree,
        space: &dyn SiteSpace,
        eps: f64,
        threads: usize,
        seed: u64,
    ) -> Self {
        assert!(eps > 0.0, "ε must be positive");
        let l = 8.0 / eps + 10.0;

        // Same-layer center → node lookup.
        // center_node[layer] : site → node id.
        let center_node: Vec<BTreeMap<u32, u32>> = org
            .layers
            .iter()
            .map(|layer| layer.iter().map(|&nid| (org.nodes[nid as usize].center, nid)).collect())
            .collect();

        // Work items: every node in a layer with at least two nodes (a
        // single-node layer has no same-layer partners), grouped by center
        // in top-down layer order. One worker owns all of a center's nodes,
        // so with a caching space the first (widest) SSAD of the group
        // serves every deeper repeat without cross-worker duplication.
        let mut groups: Vec<Vec<u32>> = Vec::new();
        let mut group_of_center: BTreeMap<u32, usize> = BTreeMap::new();
        let mut n_work = 0u64;
        for layer in org.layers.iter().filter(|layer| layer.len() >= 2) {
            for &nid in layer {
                let center = org.nodes[nid as usize].center;
                let g = *group_of_center.entry(center).or_insert_with(|| {
                    groups.push(Vec::new());
                    groups.len() - 1
                });
                groups[g].push(nid);
                n_work += 1;
            }
        }

        let process = |nid: u32| -> Vec<(u64, f64)> {
            let node = &org.nodes[nid as usize];
            let radius = l * org.layer_radius(node.layer);
            let near = space.sites_within(node.center as usize, radius);
            let lookup = &center_node[node.layer as usize];
            let mut out = Vec::new();
            for (site, d) in near {
                if let Some(&other) = lookup.get(&(site as u32)) {
                    // Keep one direction; inclusive at the `l·r_O` boundary,
                    // matching `SiteSpace::sites_within` — a pair sitting
                    // exactly on the disk boundary is stored, not pushed to
                    // the resolver's SSAD fallback.
                    if other > nid && d <= radius {
                        out.push((pair_key(nid, other), d));
                    }
                }
            }
            out
        };

        // Dynamic work queue over the per-center groups; results come back
        // in group order, so the entry list is independent of thread count.
        // Once a group finishes, nothing queries its center again — release
        // its (wide, `l·r`-sized) cached sweep so peak memory tracks the
        // number of in-flight workers, not the whole tree. (A sweep whose
        // engine run turned out exhaustive is kept: it is one dense array's
        // worth of memory and keeps answering point queries — see
        // `CachingSiteSpace::release`.)
        let mut entries: Vec<(u64, f64)> =
            geodesic::pool::run_indexed(threads, groups.len(), |g| {
                let out = groups[g].iter().flat_map(|&nid| process(nid)).collect::<Vec<_>>();
                space.release(org.nodes[groups[g][0] as usize].center as usize);
                out
            })
            .into_iter()
            .flatten()
            .collect();

        // A pair (O, O') can be discovered from both endpoints' SSADs (we
        // filter to `other > nid`, so only from O's run — but duplicate
        // *sites* at equal distance cannot occur). Deduplicate defensively.
        entries.sort_unstable_by_key(|&(k, _)| k);
        entries.dedup_by_key(|&mut (k, _)| k);

        let n_edges = entries.len();
        Self { map: PerfectMap::build(entries, seed ^ 0xE44A_ED6E), ssad_runs: n_work, n_edges }
    }

    /// Looks up the distance of the enhanced edge between two original-tree
    /// nodes.
    pub fn get(&self, node_a: u32, node_b: u32) -> Option<f64> {
        self.map.get(pair_key(node_a.min(node_b), node_a.max(node_b))).copied()
    }

    /// Heap bytes of the index (construction-time only; dropped after the
    /// node pair set is built).
    pub fn storage_bytes(&self) -> usize {
        self.map.storage_bytes()
    }
}

/// The efficient construction's distance resolver: enhanced-edge walk with
/// an SSAD fallback for (floating-point-boundary) misses.
pub struct EnhancedResolver<'a> {
    org: &'a PartitionTree,
    edges: &'a EnhancedEdges,
    space: &'a dyn SiteSpace,
    /// Resolves answered by the hash walk.
    pub hits: u64,
    /// Resolves that fell back to a direct SSAD (expected: none; counted to
    /// surface numerical-boundary anomalies).
    pub fallbacks: u64,
}

impl<'a> EnhancedResolver<'a> {
    /// A resolver walking `edges` over `org`, falling back to `space`.
    pub fn new(org: &'a PartitionTree, edges: &'a EnhancedEdges, space: &'a dyn SiteSpace) -> Self {
        Self { org, edges, space, hits: 0, fallbacks: 0 }
    }
}

impl PairDistanceResolver for EnhancedResolver<'_> {
    fn resolve(&mut self, a: usize, b: usize) -> f64 {
        if a == b {
            return 0.0;
        }
        // Walk both ancestor chains bottom-up while the ancestors are still
        // centered at `a` / `b` (centers persist downward from the layer a
        // site is first selected, so the match window is a suffix of
        // layers).
        let h = self.org.height();
        for layer in (0..=h).rev() {
            let na = self.org.ancestor(a, layer);
            let nb = self.org.ancestor(b, layer);
            if self.org.nodes[na as usize].center as usize != a
                || self.org.nodes[nb as usize].center as usize != b
            {
                break;
            }
            if let Some(d) = self.edges.get(na, nb) {
                self.hits += 1;
                return d;
            }
        }
        // Lemma 4 guarantees a hit under exact arithmetic; a miss here means
        // a distance sat exactly on the l·r boundary. Answer exactly instead
        // of failing.
        self.fallbacks += 1;
        self.space.distance(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctree::CompressedTree;
    use crate::tree::{PNode, SelectionStrategy};
    use crate::wspd;
    use geodesic::ich::IchEngine;
    use geodesic::sitespace::VertexSiteSpace;
    use std::sync::Arc;
    use terrain::gen::diamond_square;

    fn setup(n: usize, seed: u64) -> (VertexSiteSpace, PartitionTree) {
        let mesh = Arc::new(diamond_square(4, 0.6, seed).to_mesh());
        let nv = mesh.n_vertices();
        let sites: Vec<u32> = (0..n).map(|i| (i * (nv / n)) as u32).collect();
        let sp = VertexSiteSpace::new(Arc::new(IchEngine::new(mesh)), sites);
        let (org, _) = PartitionTree::build(&sp, SelectionStrategy::Random, seed).unwrap();
        (sp, org)
    }

    #[test]
    fn edges_store_exact_distances() {
        let (sp, org) = setup(12, 3);
        let eps = 0.25;
        let edges = EnhancedEdges::build(&org, &sp, eps, 1, 7);
        assert!(edges.n_edges > 0);
        // Root layer skipped.
        assert_eq!(edges.ssad_runs as usize, org.nodes.len() - 1);
        // Spot-check each stored edge against a direct computation.
        let l = 8.0 / eps + 10.0;
        let mut checked = 0;
        for a in 0..org.nodes.len() as u32 {
            for b in a + 1..org.nodes.len() as u32 {
                if let Some(d) = edges.get(a, b) {
                    let (na, nb) = (&org.nodes[a as usize], &org.nodes[b as usize]);
                    assert_eq!(na.layer, nb.layer, "enhanced pair crosses layers");
                    let exact = sp.distance(na.center as usize, nb.center as usize);
                    assert!((d - exact).abs() < 1e-9, "edge ({a},{b}): {d} vs {exact}");
                    assert!(d < l * org.layer_radius(na.layer) + 1e-9);
                    checked += 1;
                    if checked > 40 {
                        return;
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_build_matches_serial() {
        let (sp, org) = setup(14, 5);
        let serial = EnhancedEdges::build(&org, &sp, 0.3, 1, 9);
        let parallel = EnhancedEdges::build(&org, &sp, 0.3, 4, 9);
        assert_eq!(serial.n_edges, parallel.n_edges);
        for a in 0..org.nodes.len() as u32 {
            for b in a + 1..org.nodes.len() as u32 {
                assert_eq!(serial.get(a, b).is_some(), parallel.get(a, b).is_some());
                if let (Some(x), Some(y)) = (serial.get(a, b), parallel.get(a, b)) {
                    assert_eq!(x, y);
                }
            }
        }
    }

    #[test]
    fn resolver_matches_direct_distances_in_wspd() {
        // Generate the node pair set with the enhanced resolver and with
        // direct SSAD; distances must agree (Lemma 4).
        let (sp, org) = setup(12, 11);
        let eps = 0.3;
        let ctree = CompressedTree::from_partition_tree(&org);
        let edges = EnhancedEdges::build(&org, &sp, eps, 1, 3);

        struct Direct<'a>(&'a dyn SiteSpace);
        impl PairDistanceResolver for Direct<'_> {
            fn resolve(&mut self, a: usize, b: usize) -> f64 {
                self.0.distance(a, b)
            }
        }
        let mut direct = Direct(&sp);
        let set_direct = wspd::generate(&ctree, eps, &mut direct);

        let mut enh = EnhancedResolver::new(&org, &edges, &sp);
        let set_enh = wspd::generate(&ctree, eps, &mut enh);

        assert_eq!(set_direct.pairs.len(), set_enh.pairs.len());
        for (p, q) in set_direct.pairs.iter().zip(&set_enh.pairs) {
            assert_eq!((p.a, p.b), (q.a, q.b));
            assert!(
                (p.dist - q.dist).abs() < 1e-9,
                "pair ({}, {}): direct {} vs enhanced {}",
                p.a,
                p.b,
                p.dist,
                q.dist
            );
        }
        assert_eq!(enh.fallbacks, 0, "Lemma 4 walk should never miss");
        assert!(enh.hits > 0);
    }

    /// A toy metric space with a hand-set distance matrix — lets tests
    /// place site pairs at *exactly* representable distances.
    struct MatrixSpace {
        d: Vec<Vec<f64>>,
    }

    impl SiteSpace for MatrixSpace {
        fn n_sites(&self) -> usize {
            self.d.len()
        }
        fn site_position(&self, site: usize) -> terrain::geom::Vec3 {
            terrain::geom::Vec3 { x: site as f64, y: 0.0, z: 0.0 }
        }
        fn sites_within(&self, site: usize, radius: f64) -> Vec<(usize, f64)> {
            self.d[site].iter().copied().enumerate().filter(|&(_, d)| d <= radius).collect()
        }
        fn all_distances(&self, site: usize) -> Vec<f64> {
            self.d[site].clone()
        }
        fn distance(&self, a: usize, b: usize) -> f64 {
            self.d[a][b]
        }
    }

    #[test]
    fn boundary_distance_pair_is_stored_not_fallback() {
        // Regression: a same-layer pair at distance *exactly* `l·r_O` used
        // to be dropped (`d < radius`) even though `sites_within` had
        // returned it (`d <= radius`), silently forcing a resolver-fallback
        // SSAD. Fixture: ε = 0.5 → l = 26 (exact in f64); a two-node layer
        // of radius 0.5 → enhanced radius 13.0; the two centers sit at
        // distance exactly 13.0. All values are binary fractions, so the
        // boundary equality is exact, not approximate.
        let eps = 0.5;
        let l = 8.0 / eps + 10.0;
        assert_eq!(l, 26.0);
        let r0 = 1.0; // layer-1 radius 0.5 → enhanced radius l·0.5 = 13.0
        let d01 = 13.0;
        let sp = MatrixSpace { d: vec![vec![0.0, d01], vec![d01, 0.0]] };
        let org = PartitionTree::from_parts(
            vec![
                PNode { center: 0, layer: 0, parent: crate::tree::NO_NODE, children: vec![1, 2] },
                PNode { center: 0, layer: 1, parent: 0, children: vec![] },
                PNode { center: 1, layer: 1, parent: 0, children: vec![] },
            ],
            vec![vec![0], vec![1, 2]],
            r0,
        );
        let edges = EnhancedEdges::build(&org, &sp, eps, 1, 5);
        assert_eq!(
            edges.get(1, 2),
            Some(d01),
            "boundary-distance pair must be stored as an enhanced edge"
        );
        assert_eq!(edges.n_edges, 1);

        // And the resolver answers it from the hash, not via fallback.
        let mut r = EnhancedResolver::new(&org, &edges, &sp);
        assert_eq!(r.resolve(0, 1), d01);
        assert_eq!(r.fallbacks, 0, "exact-boundary pair must not fall back to an SSAD");
        assert_eq!(r.hits, 1);
    }

    #[test]
    fn threads_zero_is_auto_and_identical() {
        let (sp, org) = setup(10, 7);
        let auto = EnhancedEdges::build(&org, &sp, 0.3, 0, 9);
        let serial = EnhancedEdges::build(&org, &sp, 0.3, 1, 9);
        assert_eq!(auto.n_edges, serial.n_edges);
        for a in 0..org.nodes.len() as u32 {
            for b in a + 1..org.nodes.len() as u32 {
                assert_eq!(auto.get(a, b), serial.get(a, b));
            }
        }
    }

    #[test]
    fn resolver_zero_for_same_site() {
        let (sp, org) = setup(8, 13);
        let edges = EnhancedEdges::build(&org, &sp, 0.5, 1, 1);
        let mut r = EnhancedResolver::new(&org, &edges, &sp);
        assert_eq!(r.resolve(3, 3), 0.0);
    }
}
