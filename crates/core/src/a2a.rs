//! The A2A (arbitrary point to arbitrary point) oracle of Appendix C, which
//! also serves P2P queries when `n > N` (Appendix D).
//!
//! Construction: place Steiner points on the mesh (the scheme of \[12\]),
//! build SE over the Steiner nodes *instead of* the POIs — making the
//! oracle POI-independent — and keep a point locator. A query for
//! arbitrary surface points `s, t` returns
//! `min_{p ∈ N(s), q ∈ N(t)} |s−p| + d̃(p, q) + |q−t|`, where `N(x)` is the
//! set of Steiner nodes on the face containing `x` and its edge-adjacent
//! faces, `|·|` is Euclidean distance (per the paper's §4.2.1/Appendix C
//! description) and `d̃` is the SE estimate between Steiner nodes.
//!
//! Substitution note (documented in DESIGN.md): node-to-node distances fed
//! to SE are Steiner-graph distances rather than exact geodesics, matching
//! how the baselines use `G_ε`; the end-to-end error compounds the oracle's
//! ε with the graph's approximation factor, and EXPERIMENTS.md reports the
//! measured total.

use crate::oracle::{BuildConfig, BuildError, SeOracle};
use geodesic::sitespace::GraphSiteSpace;
use geodesic::steiner::{points_per_edge_for_epsilon, NodeId, SteinerGraph};
use std::sync::Arc;
use terrain::locate::FaceLocator;
use terrain::poi::SurfacePoint;
use terrain::{FaceId, TerrainMesh};

/// The A2A distance oracle.
pub struct A2AOracle {
    mesh: Arc<TerrainMesh>,
    graph: Arc<SteinerGraph>,
    locator: FaceLocator,
    /// SE over all Steiner-graph nodes (site index == node id).
    oracle: SeOracle,
}

impl A2AOracle {
    /// Builds the oracle. `points_per_edge` defaults to the ε-derived count
    /// of the baselines when `None`.
    pub fn build(
        mesh: Arc<TerrainMesh>,
        eps: f64,
        points_per_edge: Option<usize>,
        cfg: &BuildConfig,
    ) -> Result<Self, BuildError> {
        let m = points_per_edge.unwrap_or_else(|| points_per_edge_for_epsilon(eps));
        let graph = Arc::new(SteinerGraph::with_points_per_edge(mesh.clone(), m));
        let sites: Vec<NodeId> = (0..graph.n_nodes() as NodeId).collect();
        let space = GraphSiteSpace::new(graph.clone(), sites);
        let oracle = SeOracle::build(&space, eps, cfg)?;
        let locator = FaceLocator::build(&mesh);
        Ok(Self { mesh, graph, locator, oracle })
    }

    /// The Steiner-node neighbourhood of a face: its own boundary nodes
    /// plus those of edge-adjacent faces.
    fn neighborhood(&self, f: FaceId) -> Vec<NodeId> {
        let mut out = self.graph.face_nodes(f);
        for e in self.mesh.face_edges(f) {
            if let Some(g) = self.mesh.other_face(e, f) {
                out.extend(self.graph.face_nodes(g));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// ε̃-approximate geodesic distance between two surface points.
    pub fn distance(&self, s: &SurfacePoint, t: &SurfacePoint) -> f64 {
        let ns = self.neighborhood(s.face);
        let nt = self.neighborhood(t.face);
        let mut best = if s.face == t.face
            || self
                .mesh
                .face_edges(s.face)
                .iter()
                .any(|&e| self.mesh.other_face(e, s.face) == Some(t.face))
        {
            // Same or adjacent face: the straight chord is a valid
            // surface-path upper bound the paper's scheme also exploits.
            s.pos.dist(t.pos)
        } else {
            f64::INFINITY
        };
        for &p in &ns {
            let sp = s.pos.dist(self.graph.position(p));
            if sp >= best {
                continue;
            }
            for &q in &nt {
                let total = sp
                    + self.oracle.distance(p as usize, q as usize)
                    + self.graph.position(q).dist(t.pos);
                if total < best {
                    best = total;
                }
            }
        }
        best
    }

    /// Locates `(x, y)` on the surface and queries; `None` outside the
    /// terrain footprint. This is the paper's A2A query-generation path
    /// (§5.1).
    pub fn distance_xy(&self, a: (f64, f64), b: (f64, f64)) -> Option<f64> {
        let (fa, pa) = self.locator.locate(&self.mesh, a.0, a.1)?;
        let (fb, pb) = self.locator.locate(&self.mesh, b.0, b.1)?;
        Some(
            self.distance(&SurfacePoint { face: fa, pos: pa }, &SurfacePoint { face: fb, pos: pb }),
        )
    }

    /// The underlying SE oracle (over Steiner nodes).
    pub fn oracle(&self) -> &SeOracle {
        &self.oracle
    }

    /// The Steiner graph.
    pub fn graph(&self) -> &Arc<SteinerGraph> {
        &self.graph
    }

    /// Total queryable-state size: SE oracle + node positions + locator.
    pub fn storage_bytes(&self) -> usize {
        self.oracle.storage_bytes()
            + self.graph.n_nodes() * std::mem::size_of::<terrain::Vec3>()
            + self.locator.storage_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geodesic::engine::{GeodesicEngine, Stop};
    use geodesic::ich::IchEngine;
    use terrain::gen::{diamond_square, Heightfield};
    use terrain::poi::sample_uniform;
    use terrain::refine::insert_surface_points;

    fn build(mesh: TerrainMesh, eps: f64, m: usize) -> A2AOracle {
        A2AOracle::build(Arc::new(mesh), eps, Some(m), &BuildConfig::default()).unwrap()
    }

    #[test]
    fn flat_grid_close_to_euclidean() {
        let o = build(Heightfield::flat(5, 5, 1.0, 1.0).to_mesh(), 0.15, 2);
        let d = o.distance_xy((0.3, 0.4), (3.6, 3.2)).unwrap();
        let exact = ((3.6f64 - 0.3).powi(2) + (3.2f64 - 0.4).powi(2)).sqrt();
        // Compounded error: ε (oracle) + Steiner placement + two Euclidean
        // hops. Allow a generous but bounded factor.
        assert!(d >= exact - 1e-9, "A2A below true geodesic: {d} < {exact}");
        assert!(d <= exact * 1.35, "A2A too loose: {d} vs {exact}");
    }

    #[test]
    fn same_face_returns_chord() {
        let o = build(Heightfield::flat(3, 3, 1.0, 1.0).to_mesh(), 0.2, 1);
        let d = o.distance_xy((0.2, 0.1), (0.4, 0.2)).unwrap();
        let exact = (0.2f64.powi(2) + 0.1f64.powi(2)).sqrt();
        assert!((d - exact).abs() < 1e-9);
    }

    #[test]
    fn identical_points_zero() {
        let o = build(Heightfield::flat(3, 3, 1.0, 1.0).to_mesh(), 0.2, 1);
        let d = o.distance_xy((1.3, 0.7), (1.3, 0.7)).unwrap();
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn outside_footprint_is_none() {
        let o = build(Heightfield::flat(3, 3, 1.0, 1.0).to_mesh(), 0.2, 1);
        assert!(o.distance_xy((-1.0, 0.0), (1.0, 1.0)).is_none());
    }

    #[test]
    fn bounded_against_exact_geodesic_on_fractal() {
        let mesh = diamond_square(3, 0.6, 41).to_mesh();
        let pois = sample_uniform(&mesh, 6, 11);
        let refined = insert_surface_points(&mesh, &pois, None).unwrap();
        let exact_engine = IchEngine::new(Arc::new(refined.mesh));

        let o = build(mesh, 0.15, 2);
        for i in 0..6 {
            for j in i + 1..6 {
                let approx = o.distance(&pois[i], &pois[j]);
                let exact = {
                    let r = exact_engine
                        .ssad(refined.poi_vertices[i], Stop::Targets(&[refined.poi_vertices[j]]));
                    r.dist[refined.poi_vertices[j] as usize]
                };
                // The straight query-point→Steiner-node hops can cut
                // marginally below the surface (same effect as in the
                // SP-Oracle baseline), so allow a small undershoot.
                assert!(approx >= exact * 0.95 - 1e-9, "A2A far below exact: {approx} < {exact}");
                assert!(approx <= exact * 1.5 + 1e-9, "A2A error too large: {approx} vs {exact}");
            }
        }
    }

    #[test]
    fn symmetric_queries() {
        let o = build(diamond_square(3, 0.5, 43).to_mesh(), 0.2, 1);
        let a = (1.1, 2.3);
        let b = (6.7, 4.9);
        let ab = o.distance_xy(a, b).unwrap();
        let ba = o.distance_xy(b, a).unwrap();
        assert!((ab - ba).abs() < 1e-9);
    }
}
