//! P2P and V2V front-ends: from a terrain mesh and a POI set to a queryable
//! SE oracle.
//!
//! POIs are arbitrary surface points (§2); this module inserts them into
//! the mesh as vertices (an isometric refinement), merges co-located POIs
//! (the paper's §2 preprocessing step), picks a geodesic engine, and builds
//! the [`SeOracle`] over the resulting vertex sites. V2V queries (§5.2.2)
//! are the special case `P = V` with no refinement.

// lint: query-path
use crate::oracle::{BuildConfig, BuildError, SeOracle};
use geodesic::dijkstra::EdgeGraphEngine;
use geodesic::engine::GeodesicEngine;
use geodesic::ich::IchEngine;
use geodesic::sitespace::VertexSiteSpace;
use geodesic::steiner::{SteinerEngine, SteinerGraph};
use std::sync::Arc;
use terrain::poi::SurfacePoint;
use terrain::refine::insert_surface_points;
use terrain::{MeshError, TerrainMesh, VertexId};

/// Which geodesic backend the oracle construction uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Exact continuous Dijkstra (faithful to the paper's SSAD).
    Exact,
    /// Mesh-edge Dijkstra (fast upper-bound approximation).
    EdgeGraph,
    /// Steiner-graph Dijkstra with `points_per_edge` Steiner points.
    Steiner {
        /// Steiner points per mesh edge.
        points_per_edge: usize,
    },
}

/// Errors from the P2P/V2V front-end.
#[derive(Debug)]
pub enum P2PError {
    /// No POIs supplied.
    NoPois,
    /// Mesh refinement produced an invalid mesh (should not happen on
    /// valid inputs).
    Refine(MeshError),
    /// Oracle construction failed.
    Build(BuildError),
}

impl std::fmt::Display for P2PError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            P2PError::NoPois => write!(f, "POI set is empty"),
            P2PError::Refine(e) => write!(f, "mesh refinement failed: {e}"),
            P2PError::Build(e) => write!(f, "oracle construction failed: {e}"),
        }
    }
}

impl std::error::Error for P2PError {}

/// Instantiates the geodesic engine `kind` over `mesh` — the one place the
/// [`EngineKind`] → engine mapping lives (shared by the P2P front-end and
/// the atlas builder, which constructs one engine per tile).
pub(crate) fn make_engine(mesh: Arc<TerrainMesh>, kind: EngineKind) -> Arc<dyn GeodesicEngine> {
    match kind {
        EngineKind::Exact => Arc::new(IchEngine::new(mesh)),
        EngineKind::EdgeGraph => Arc::new(EdgeGraphEngine::new(mesh)),
        EngineKind::Steiner { points_per_edge } => {
            Arc::new(SteinerEngine::new(SteinerGraph::with_points_per_edge(mesh, points_per_edge)))
        }
    }
}

/// A P2P (or V2V) distance oracle: SE over POIs realised as mesh vertices.
pub struct P2POracle {
    mesh: Arc<TerrainMesh>,
    engine: Arc<dyn GeodesicEngine>,
    oracle: SeOracle,
    /// Vertex realising each input POI.
    poi_vertices: Vec<VertexId>,
    /// Site index for each input POI (co-located POIs share a site).
    site_of_poi: Vec<usize>,
    /// Vertex of each site.
    site_vertices: Vec<VertexId>,
}

impl P2POracle {
    /// Builds a P2P oracle: refine mesh at the POIs, merge duplicates,
    /// construct SE with error parameter `eps`.
    pub fn build(
        mesh: &TerrainMesh,
        pois: &[SurfacePoint],
        eps: f64,
        engine: EngineKind,
        cfg: &BuildConfig,
    ) -> Result<Self, P2PError> {
        if pois.is_empty() {
            return Err(P2PError::NoPois);
        }
        let refined = insert_surface_points(mesh, pois, None).map_err(P2PError::Refine)?;
        Self::from_vertices(Arc::new(refined.mesh), refined.poi_vertices, eps, engine, cfg)
    }

    /// Builds a V2V oracle: every mesh vertex is a POI, no refinement
    /// ("the original POIs are discarded, and we treat all vertices as
    /// POIs", §5.2.2).
    pub fn build_v2v(
        mesh: Arc<TerrainMesh>,
        eps: f64,
        engine: EngineKind,
        cfg: &BuildConfig,
    ) -> Result<Self, P2PError> {
        let verts: Vec<VertexId> = (0..mesh.n_vertices() as VertexId).collect();
        Self::from_vertices(mesh, verts, eps, engine, cfg)
    }

    fn from_vertices(
        mesh: Arc<TerrainMesh>,
        poi_vertices: Vec<VertexId>,
        eps: f64,
        engine: EngineKind,
        cfg: &BuildConfig,
    ) -> Result<Self, P2PError> {
        // Merge co-located POIs: distinct sites in first-appearance order.
        let mut site_of_vertex = std::collections::BTreeMap::new();
        let mut site_vertices: Vec<VertexId> = Vec::new();
        let mut site_of_poi = Vec::with_capacity(poi_vertices.len());
        for &v in &poi_vertices {
            let site = *site_of_vertex.entry(v).or_insert_with(|| {
                site_vertices.push(v);
                site_vertices.len() - 1
            });
            site_of_poi.push(site);
        }

        let engine = make_engine(mesh.clone(), engine);
        let space = VertexSiteSpace::new(engine.clone(), site_vertices.clone());
        let oracle = SeOracle::build(&space, eps, cfg).map_err(P2PError::Build)?;
        Ok(Self { mesh, engine, oracle, poi_vertices, site_of_poi, site_vertices })
    }

    /// ε-approximate geodesic distance between POIs `a` and `b`
    /// (input-order indices).
    pub fn distance(&self, a: usize, b: usize) -> f64 {
        self.oracle.distance(self.site_of_poi[a], self.site_of_poi[b])
    }

    /// Geodesic distance computed by the underlying engine (exact when the
    /// engine is [`EngineKind::Exact`]) — used for error measurements.
    pub fn engine_distance(&self, a: usize, b: usize) -> f64 {
        self.engine.distance(self.poi_vertices[a], self.poi_vertices[b])
    }

    /// Number of input POIs.
    pub fn n_pois(&self) -> usize {
        self.poi_vertices.len()
    }

    /// Number of distinct sites after merging co-located POIs.
    pub fn n_sites(&self) -> usize {
        self.site_vertices.len()
    }

    /// The underlying SE oracle.
    pub fn oracle(&self) -> &SeOracle {
        &self.oracle
    }

    /// Consumes the front-end, returning the bare oracle — what a serving
    /// deployment freezes into a [`crate::serve::QueryHandle`] (the mesh
    /// and engine are construction scaffolding the query path never
    /// touches).
    pub fn into_oracle(self) -> SeOracle {
        self.oracle
    }

    /// The (refined) mesh the oracle lives on.
    pub fn mesh(&self) -> &Arc<TerrainMesh> {
        &self.mesh
    }

    /// Refined-mesh vertex of each distinct site, in site-id order — the
    /// site set a [`crate::route::PathIndex`] is built over.
    pub fn site_vertices(&self) -> &[VertexId] {
        &self.site_vertices
    }

    /// The site id POI `poi` was merged into (co-located POIs share a
    /// site; distinct POIs map one-to-one).
    ///
    /// # Panics
    /// Panics if `poi` is out of range.
    pub fn site_of_poi(&self, poi: usize) -> usize {
        self.site_of_poi[poi]
    }

    /// The engine used for construction.
    pub fn engine(&self) -> &Arc<dyn GeodesicEngine> {
        &self.engine
    }

    /// Vertex realising POI `i` on the refined mesh.
    pub fn poi_vertex(&self, i: usize) -> VertexId {
        self.poi_vertices[i]
    }

    /// Oracle size in bytes (tree + node-pair hash; matches the paper's
    /// "oracle size" measurement).
    pub fn storage_bytes(&self) -> usize {
        self.oracle.storage_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use terrain::gen::{diamond_square, Heightfield};
    use terrain::poi::sample_uniform;

    #[test]
    fn p2p_end_to_end_error_bound() {
        let mesh = diamond_square(4, 0.6, 21).to_mesh();
        let pois = sample_uniform(&mesh, 20, 3);
        let eps = 0.2;
        let o = P2POracle::build(&mesh, &pois, eps, EngineKind::Exact, &BuildConfig::default())
            .unwrap();
        assert_eq!(o.n_pois(), 20);
        for a in 0..20 {
            for b in a..20 {
                let approx = o.distance(a, b);
                let exact = o.engine_distance(a, b);
                assert!(
                    (approx - exact).abs() <= eps * exact + 1e-9,
                    "POIs ({a},{b}): {approx} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn colocated_pois_merge_to_one_site() {
        let mesh = Heightfield::flat(5, 5, 1.0, 1.0).to_mesh();
        let mut pois = sample_uniform(&mesh, 8, 5);
        pois.push(pois[2]);
        pois.push(pois[2]);
        let o = P2POracle::build(&mesh, &pois, 0.3, EngineKind::Exact, &BuildConfig::default())
            .unwrap();
        assert_eq!(o.n_pois(), 10);
        assert_eq!(o.n_sites(), 8);
        assert_eq!(o.distance(2, 8), 0.0);
        assert_eq!(o.distance(8, 9), 0.0);
        // Distances through merged POIs agree.
        assert_eq!(o.distance(0, 2), o.distance(0, 9));
    }

    #[test]
    fn empty_pois_rejected() {
        let mesh = Heightfield::flat(3, 3, 1.0, 1.0).to_mesh();
        assert!(matches!(
            P2POracle::build(&mesh, &[], 0.1, EngineKind::Exact, &BuildConfig::default()),
            Err(P2PError::NoPois)
        ));
    }

    #[test]
    fn v2v_on_flat_grid_matches_euclidean_within_eps() {
        let mesh = Arc::new(Heightfield::flat(6, 6, 1.0, 1.0).to_mesh());
        let eps = 0.1;
        let o = P2POracle::build_v2v(mesh.clone(), eps, EngineKind::Exact, &BuildConfig::default())
            .unwrap();
        assert_eq!(o.n_pois(), 36);
        for a in 0..36usize {
            for b in (a..36).step_by(5) {
                let exact = mesh.vertex(a as u32).dist(mesh.vertex(b as u32));
                let approx = o.distance(a, b);
                assert!(
                    (approx - exact).abs() <= eps * exact + 1e-9,
                    "({a},{b}): {approx} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn edge_graph_engine_still_satisfies_relative_bound() {
        // With an approximate engine the oracle is ε-approximate w.r.t.
        // that engine's metric.
        let mesh = diamond_square(4, 0.6, 33).to_mesh();
        let pois = sample_uniform(&mesh, 15, 7);
        let eps = 0.25;
        let o = P2POracle::build(&mesh, &pois, eps, EngineKind::EdgeGraph, &BuildConfig::default())
            .unwrap();
        for a in 0..15 {
            for b in 0..15 {
                let approx = o.distance(a, b);
                let engine_d = o.engine_distance(a, b);
                assert!((approx - engine_d).abs() <= eps * engine_d + 1e-9);
            }
        }
    }

    #[test]
    fn steiner_engine_builds() {
        let mesh = diamond_square(3, 0.6, 35).to_mesh();
        let pois = sample_uniform(&mesh, 10, 9);
        let o = P2POracle::build(
            &mesh,
            &pois,
            0.3,
            EngineKind::Steiner { points_per_edge: 2 },
            &BuildConfig::default(),
        )
        .unwrap();
        // Sanity: symmetric, zero diagonal, positive off-diagonal.
        for a in 0..10 {
            assert_eq!(o.distance(a, a), 0.0);
            for b in 0..10 {
                assert_eq!(o.distance(a, b), o.distance(b, a));
                if a != b {
                    assert!(o.distance(a, b) > 0.0);
                }
            }
        }
    }
}
