//! The query-serving layer: a shared read-only view of a built oracle and
//! a multi-threaded batch driver.
//!
//! A built [`SeOracle`] is immutable — construction freezes the compressed
//! tree and the node-pair perfect hash, and the query path
//! ([`SeOracle::distance`] and the batch variants) only reads them; there
//! is **no interior mutability anywhere on the query path**, which is what
//! makes concurrent serving sound *and* deterministic (a reader cannot
//! observe another reader). [`QueryHandle`] packages that guarantee:
//! freeze the oracle behind an [`Arc`] once, then hand cheap clones to as
//! many serving threads as the workload needs. Every clone answers every
//! query bit-identically to every other clone and to the original oracle.
//!
//! The batch driver [`QueryHandle::distance_many_par`] shards a pair slice
//! across [`geodesic::pool`] workers — the same pool construction uses —
//! and reassembles the per-shard results in input order, so the output is
//! independent of the thread count and of scheduling, exactly like the
//! construction pipeline's determinism contract.
//!
//! The one sanctioned exception to "no interior mutability" is the
//! out-of-core atlas backend ([`crate::tilestore::TileStore`], opened via
//! [`crate::Atlas::open_out_of_core`]): its LRU residency cache mutates
//! under queries, but tiles decode to the same bytes no matter when they
//! are (re)loaded and queries pin the tiles they touch via `Arc`, so
//! answers remain bit-identical to a fully resident atlas for any budget,
//! thread count, and eviction schedule. Eviction order uses query-ordinal
//! ticks, never a clock.

// lint: query-path
use crate::oracle::SeOracle;
use crate::proximity::DetourPoi;
use crate::route::{PathIndex, ShortestPath};
use std::sync::Arc;

/// Compile-time proof of the thread-safety contract: a built oracle (and
/// therefore a handle) may be shared and sent freely.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SeOracle>();
    assert_send_sync::<QueryHandle>();
};

/// A cheaply clonable, `Send + Sync`, read-only view of a built
/// [`SeOracle`].
///
/// Cloning copies one [`Arc`] — the tree and pair set are shared, never
/// duplicated. Use one handle per serving thread:
///
/// ```
/// use se_oracle::oracle::BuildConfig;
/// use se_oracle::p2p::{EngineKind, P2POracle};
/// use se_oracle::serve::QueryHandle;
/// use terrain::gen::Heightfield;
/// use terrain::poi::sample_uniform;
///
/// let mesh = Heightfield::flat(6, 6, 100.0, 100.0).to_mesh();
/// let pois = sample_uniform(&mesh, 10, 42);
/// let built = P2POracle::build(
///     &mesh, &pois, 0.2, EngineKind::EdgeGraph, &BuildConfig::default(),
/// ).unwrap();
/// let handle = QueryHandle::new(built.into_oracle());
///
/// let worker = handle.clone();
/// let answers = std::thread::spawn(move || {
///     worker.distance_many(&[(0, 1), (2, 3)])
/// }).join().unwrap();
/// assert_eq!(answers[0], handle.distance(0, 1));
/// ```
#[derive(Clone)]
pub struct QueryHandle {
    oracle: Arc<SeOracle>,
    paths: Option<Arc<PathIndex>>,
}

impl QueryHandle {
    /// Freezes `oracle` into a shareable handle.
    pub fn new(oracle: SeOracle) -> Self {
        Self { oracle: Arc::new(oracle), paths: None }
    }

    /// Wraps an oracle that is already shared.
    pub fn from_arc(oracle: Arc<SeOracle>) -> Self {
        Self { oracle, paths: None }
    }

    /// Attaches a [`PathIndex`] so the handle can serve
    /// [`Self::shortest_path`] alongside distances. The index is shared by
    /// every clone, read-only, exactly like the oracle itself.
    ///
    /// # Panics
    /// Panics if the index covers a different site count than the oracle.
    pub fn with_paths(mut self, paths: PathIndex) -> Self {
        assert_eq!(
            paths.n_sites(),
            self.oracle.n_sites(),
            "path index covers {} sites but the oracle has {}; build it from the same site set",
            paths.n_sites(),
            self.oracle.n_sites()
        );
        self.paths = Some(Arc::new(paths));
        self
    }

    /// Whether a [`PathIndex`] is attached ([`Self::shortest_path`] is
    /// available).
    pub fn has_paths(&self) -> bool {
        self.paths.is_some()
    }

    /// The attached path index, if any.
    pub fn paths(&self) -> Option<&PathIndex> {
        self.paths.as_deref()
    }

    /// See [`SeOracle::shortest_path`]. Answers are pure functions of the
    /// query — bit-identical across clones and thread counts, like every
    /// other query on the handle.
    ///
    /// # Panics
    /// Panics if no path index is attached ([`Self::with_paths`]) or an id
    /// is out of range.
    pub fn shortest_path(&self, s: usize, t: usize) -> ShortestPath {
        let paths = self
            .paths
            .as_deref()
            // lint: allow(panic, "documented panic contract; with_paths states the requirement and the message names the fix")
            .expect("no path index attached; build one with QueryHandle::with_paths");
        self.oracle.shortest_path(s, t, paths)
    }

    /// See [`SeOracle::pois_within_detour`]. Needs no path index — the
    /// query runs entirely on the oracle metric.
    pub fn pois_within_detour(&self, s: usize, t: usize, delta: f64) -> Vec<DetourPoi> {
        self.oracle.pois_within_detour(s, t, delta)
    }

    /// The underlying oracle (every [`SeOracle`] accessor is available
    /// through this; the common query entry points are mirrored below).
    pub fn oracle(&self) -> &SeOracle {
        &self.oracle
    }

    /// Number of sites indexed.
    pub fn n_sites(&self) -> usize {
        self.oracle.n_sites()
    }

    /// The error parameter ε.
    pub fn epsilon(&self) -> f64 {
        self.oracle.epsilon()
    }

    /// See [`SeOracle::distance`].
    pub fn distance(&self, s: usize, t: usize) -> f64 {
        self.oracle.distance(s, t)
    }

    /// See [`SeOracle::try_distance`].
    pub fn try_distance(&self, s: usize, t: usize) -> Option<f64> {
        self.oracle.try_distance(s, t)
    }

    /// See [`SeOracle::distance_many`].
    pub fn distance_many(&self, pairs: &[(u32, u32)]) -> Vec<f64> {
        self.oracle.distance_many(pairs)
    }

    /// See [`SeOracle::try_distance_many`].
    pub fn try_distance_many(&self, pairs: &[(u32, u32)]) -> Vec<Option<f64>> {
        self.oracle.try_distance_many(pairs)
    }

    /// [`SeOracle::distance_many`] sharded across `threads` pool workers
    /// (`0` = auto-detect). Results come back in input order and are
    /// bit-identical for every thread count. Batches large enough for the
    /// dense layer table build it **once** and share it read-only across
    /// every shard (a shard alone is often below the dense gate, so
    /// deciding per shard would forfeit the amortization the batch
    /// qualifies for).
    ///
    /// Panics exactly as [`SeOracle::distance_many`] does on an
    /// out-of-range pair — validated up front, so the panic fires on the
    /// caller's thread, not inside a worker; use
    /// [`Self::try_distance_many_par`] for the checked variant.
    /// An empty slice returns immediately (no pool, no dense table, no
    /// thread-count resolution).
    pub fn distance_many_par(&self, pairs: &[(u32, u32)], threads: usize) -> Vec<f64> {
        if pairs.is_empty() {
            return Vec::new();
        }
        self.oracle.check_pairs(pairs);
        if pairs.len() >= self.oracle.n_sites() {
            let dense = self.oracle.dense_layers();
            shard_pairs(pairs, threads, |chunk| self.oracle.distance_many_dense(chunk, &dense))
        } else {
            shard_pairs(pairs, threads, |chunk| self.oracle.distance_many(chunk))
        }
    }

    /// [`SeOracle::try_distance_many`] sharded across `threads` pool
    /// workers (`0` = auto-detect), element-for-element equal to the
    /// sequential call, with the same shared dense table as
    /// [`Self::distance_many_par`] and the same immediate empty-slice
    /// return.
    pub fn try_distance_many_par(&self, pairs: &[(u32, u32)], threads: usize) -> Vec<Option<f64>> {
        if pairs.is_empty() {
            return Vec::new();
        }
        if pairs.len() >= self.oracle.n_sites() {
            let dense = self.oracle.dense_layers();
            shard_pairs(pairs, threads, |chunk| self.oracle.try_distance_many_dense(chunk, &dense))
        } else {
            shard_pairs(pairs, threads, |chunk| self.oracle.try_distance_many(chunk))
        }
    }
}

impl std::fmt::Debug for QueryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryHandle")
            .field("n_sites", &self.n_sites())
            .field("epsilon", &self.epsilon())
            .field("n_pairs", &self.oracle.n_pairs())
            .field("has_paths", &self.has_paths())
            .finish()
    }
}

/// Splits `pairs` into contiguous shards, runs `f` per shard on the
/// worker pool, and concatenates the results in shard order — the
/// parallel driver shared by every batch entry point ([`QueryHandle`] and
/// the atlas handle). Shards are a few per worker so uneven probe costs
/// balance through the pool's atomic queue without fragmenting the
/// per-shard amortization. Empty and single-pair slices run inline
/// without touching the pool.
pub(crate) fn shard_pairs<T: Send>(
    pairs: &[(u32, u32)],
    threads: usize,
    f: impl Fn(&[(u32, u32)]) -> Vec<T> + Sync,
) -> Vec<T> {
    if pairs.is_empty() {
        return Vec::new();
    }
    let workers = geodesic::pool::resolve_threads(threads);
    if workers <= 1 || pairs.len() < 2 {
        return f(pairs);
    }
    let shard_len = pairs.len().div_ceil(workers * 4).max(64);
    let shards: Vec<&[(u32, u32)]> = pairs.chunks(shard_len).collect();
    let per_shard = geodesic::pool::run_indexed(workers, shards.len(), |i| f(shards[i]));
    let mut out = Vec::with_capacity(pairs.len());
    for shard in per_shard {
        out.extend(shard);
    }
    out
}

/// A deterministic stream of `len` in-range query pairs for worker
/// `stream`: the workload generator the serving stress tests, examples
/// and benches share. A pure function of its arguments (a splitmix64
/// stream per worker, streams decorrelated by golden-ratio spacing), so
/// a single-threaded replay regenerates any worker's workload exactly —
/// the precondition for asserting concurrent answers against a serial
/// rerun.
///
/// # Panics
/// Panics when `n_sites` is zero (there is no in-range pair to draw).
pub fn pair_stream(salt: u64, stream: u64, len: usize, n_sites: usize) -> Vec<(u32, u32)> {
    assert!(n_sites > 0, "pair_stream needs at least one site");
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut x = salt ^ stream.wrapping_add(1).wrapping_mul(GOLDEN);
    let mut next = move || {
        let v = phash::splitmix64(x);
        x = x.wrapping_add(GOLDEN);
        v
    };
    (0..len).map(|_| ((next() % n_sites as u64) as u32, (next() % n_sites as u64) as u32)).collect()
}

impl From<SeOracle> for QueryHandle {
    fn from(oracle: SeOracle) -> Self {
        Self::new(oracle)
    }
}

impl From<Arc<SeOracle>> for QueryHandle {
    fn from(oracle: Arc<SeOracle>) -> Self {
        Self::from_arc(oracle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::BuildConfig;
    use geodesic::ich::IchEngine;
    use geodesic::sitespace::VertexSiteSpace;
    use terrain::gen::diamond_square;
    use terrain::poi::sample_uniform;
    use terrain::refine::insert_surface_points;

    fn handle(n: usize, seed: u64, eps: f64) -> QueryHandle {
        let mesh = diamond_square(4, 0.6, seed).to_mesh();
        let pois = sample_uniform(&mesh, n, seed ^ 0x5E44);
        let refined = insert_surface_points(&mesh, &pois, None).unwrap();
        let mut sites = refined.poi_vertices.clone();
        sites.sort_unstable();
        sites.dedup();
        let sp = VertexSiteSpace::new(Arc::new(IchEngine::new(Arc::new(refined.mesh))), sites);
        QueryHandle::new(SeOracle::build(&sp, eps, &BuildConfig::default()).unwrap())
    }

    /// Every (s, t) over `n` sites, in row-major order.
    fn all_pairs(n: usize) -> Vec<(u32, u32)> {
        (0..n as u32).flat_map(|s| (0..n as u32).map(move |t| (s, t))).collect()
    }

    #[test]
    fn batch_matches_individual_queries() {
        let h = handle(18, 3, 0.2);
        let n = h.n_sites();
        let pairs = all_pairs(n); // n² ≥ n pairs: exercises the dense path
        let batch = h.distance_many(&pairs);
        for (&(s, t), &d) in pairs.iter().zip(&batch) {
            assert_eq!(d.to_bits(), h.distance(s as usize, t as usize).to_bits(), "pair ({s},{t})");
        }
    }

    #[test]
    fn small_batch_uses_scratch_and_matches() {
        let h = handle(16, 5, 0.2);
        // Fewer pairs than sites, with shared endpoints in both roles and
        // an (s, t) → (t, s) swap: the two-slot memo's hit patterns.
        let pairs = [(0, 1), (0, 2), (2, 0), (3, 3), (3, 0), (1, 2), (1, 2)];
        let batch = h.distance_many(&pairs);
        for (&(s, t), &d) in pairs.iter().zip(&batch) {
            assert_eq!(d.to_bits(), h.distance(s as usize, t as usize).to_bits());
        }
    }

    #[test]
    fn try_batch_flags_out_of_range_elements() {
        let h = handle(10, 7, 0.25);
        let n = h.n_sites() as u32;
        let pairs = [(0, 1), (n, 0), (0, n), (u32::MAX, u32::MAX), (2, 3)];
        let got = h.try_distance_many(&pairs);
        let want: Vec<Option<f64>> =
            pairs.iter().map(|&(s, t)| h.try_distance(s as usize, t as usize)).collect();
        assert_eq!(got, want);
        assert!(got[1].is_none() && got[2].is_none() && got[3].is_none());
        assert!(got[0].is_some() && got[4].is_some());
    }

    #[test]
    fn batch_panic_names_offending_pair() {
        let h = handle(8, 9, 0.25);
        let n = h.n_sites() as u32;
        let pairs = vec![(0u32, 1u32), (1, n)];
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            h.distance_many(&pairs);
        }))
        .unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("pair #1") && msg.contains("try_distance_many"),
            "panic message not actionable: {msg}"
        );
    }

    #[test]
    fn empty_batch_is_empty() {
        let h = handle(6, 11, 0.3);
        assert!(h.distance_many(&[]).is_empty());
        assert!(h.try_distance_many(&[]).is_empty());
        assert!(h.distance_many_par(&[], 4).is_empty());
    }

    #[test]
    fn empty_parallel_batch_skips_the_pool() {
        let h = handle(6, 17, 0.3);
        // Both parallel drivers must return immediately on an empty slice,
        // for every thread spec including auto-detect — the early return
        // fires before any pool or dense-table work. `shard_pairs` itself
        // must never invoke its closure for an empty slice.
        for threads in [0usize, 1, 8] {
            assert_eq!(h.distance_many_par(&[], threads), Vec::<f64>::new());
            assert_eq!(h.try_distance_many_par(&[], threads), Vec::<Option<f64>>::new());
        }
        let out: Vec<f64> = shard_pairs(&[], 8, |_| panic!("closure must not run"));
        assert!(out.is_empty());
    }

    #[test]
    fn debug_reports_shape_not_contents() {
        let h = handle(6, 19, 0.3);
        let dbg = format!("{h:?}");
        assert!(dbg.contains("QueryHandle"), "{dbg}");
        assert!(dbg.contains("n_sites") && dbg.contains("epsilon") && dbg.contains("n_pairs"));
        // Clone and original render identically (they share the oracle).
        assert_eq!(dbg, format!("{:?}", h.clone()));
    }

    #[test]
    fn parallel_driver_matches_sequential_for_every_thread_count() {
        let h = handle(15, 13, 0.2);
        let pairs = all_pairs(h.n_sites());
        let seq = h.distance_many(&pairs);
        for threads in [0usize, 1, 2, 5] {
            let par = h.distance_many_par(&pairs, threads);
            assert_eq!(seq.len(), par.len());
            for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "pair {i} with {threads} threads");
            }
            let tp = h.try_distance_many_par(&pairs, threads);
            assert_eq!(tp, seq.iter().map(|&d| Some(d)).collect::<Vec<_>>());
        }
    }

    #[test]
    fn handle_serves_paths_when_attached() {
        use crate::p2p::{EngineKind, P2POracle};
        let mesh = diamond_square(4, 0.6, 23).to_mesh();
        let pois = sample_uniform(&mesh, 12, 23 ^ 0x5E44);
        let p2p =
            P2POracle::build(&mesh, &pois, 0.2, EngineKind::EdgeGraph, &BuildConfig::default())
                .unwrap();
        let paths = PathIndex::for_p2p(&p2p, 3);
        let h = QueryHandle::new(p2p.into_oracle()).with_paths(paths);
        assert!(h.has_paths());
        let c = h.clone();
        assert!(
            std::ptr::eq(h.paths().unwrap(), c.paths().unwrap()),
            "clone must share the path index"
        );
        let sp = h.shortest_path(0, 5);
        assert_eq!(sp.distance.to_bits(), h.distance(0, 5).to_bits());
        assert_eq!(c.shortest_path(0, 5), sp);
        // The detour query needs no index and agrees through the handle.
        let delta = 0.5 * h.distance(0, 5);
        assert_eq!(h.pois_within_detour(0, 5, delta), h.oracle().pois_within_detour(0, 5, delta));
        let dbg = format!("{h:?}");
        assert!(dbg.contains("has_paths: true"), "{dbg}");
    }

    #[test]
    #[should_panic(expected = "no path index attached")]
    fn path_query_without_index_panics() {
        let h = handle(6, 25, 0.3);
        h.shortest_path(0, 1);
    }

    #[test]
    fn clones_share_the_oracle() {
        let h = handle(9, 15, 0.25);
        let c = h.clone();
        assert!(std::ptr::eq(h.oracle(), c.oracle()), "clone must share, not copy");
        assert_eq!(h.distance(0, 5).to_bits(), c.distance(0, 5).to_bits());
        assert_eq!(h.epsilon(), c.epsilon());
        assert_eq!(h.n_sites(), c.n_sites());
    }
}
