//! `oracle-lint` — the workspace static-analysis pass that makes the
//! determinism and hot-path contracts mechanical instead of folkloric.
//!
//! The repo's core guarantee is that oracle builds and queries are
//! *bit-identical* across thread counts, cache states, and serialization
//! round trips (`tests/parallel_build.rs`, `tests/engine_cross_validation.rs`
//! prove it dynamically). This crate enforces the static side of that
//! contract: no hash-randomized iteration, no wall-clock or environment
//! inputs, no interior mutability on the query path, no undocumented panics
//! or unordered float reductions in library code.
//!
//! Run it as `cargo run -p oracle-lint -- check` (CI adds
//! `--deny-warnings`). Rules, annotation syntax, and the baseline format are
//! documented in `docs/ARCHITECTURE.md` § "Determinism enforcement".
//!
//! The linter is a hand-rolled token scanner ([`lexer`]) — the container has
//! no registry access, so `syn` is not an option, and lexical rules turn out
//! to be enough: each rule is written so a match is either a real violation
//! or something that deserves the inline written reason the annotation
//! requires.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod lexer;
pub mod rules;

use baseline::Baseline;
use rules::{scan_source, DirectiveError, Rule, Violation, LIBRARY_CRATES};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Everything one `check` run produced.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Unsuppressed violations (after inline allows and the baseline).
    pub violations: Vec<Violation>,
    /// Hits suppressed by an inline allow (reason in `allowed`).
    pub allowed: Vec<Violation>,
    /// `(rule, file, hits)` suppressed by the baseline.
    pub baselined: Vec<(Rule, String, u32)>,
    /// Baseline entries whose tolerated count exceeds the live hit count
    /// `(rule, file, tolerated, actual)` — the debt shrank; tighten with
    /// `--update-baseline`.
    pub stale_baseline: Vec<(Rule, String, u32, u32)>,
    /// Malformed or unused `// lint:` directives — always fatal.
    pub errors: Vec<DirectiveError>,
    /// Per-library-crate-root unsafe gate status `(path, gated)`.
    pub unsafe_gates: Vec<(String, bool)>,
    /// Total `#[allow(unsafe_code)]` count across scanned files.
    pub unsafe_allows: u32,
}

impl Report {
    /// Whether the run found nothing actionable.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.errors.is_empty()
    }
}

/// Walks the workspace and applies every rule. `baseline` suppresses known
/// H1/H2 debt. Paths in the report are workspace-relative with `/`
/// separators.
pub fn check_workspace(root: &Path, baseline: &Baseline) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for top in ["src", "crates", "tests", "examples"] {
        collect_rs_files(&root.join(top), root, &mut files)?;
    }
    files.sort();

    let mut report = Report::default();
    let mut pre_baseline: Vec<Violation> = Vec::new();
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let scan = scan_source(&rel_str, &src);
        report.files_scanned += 1;
        report.errors.extend(scan.errors);
        report.unsafe_allows += scan.unsafe_allows;
        if LIBRARY_CRATES.iter().any(|(_, p)| format!("{p}lib.rs") == rel_str) {
            report.unsafe_gates.push((rel_str.clone(), scan.unsafe_gate));
        }
        for v in scan.violations {
            if v.allowed.is_some() {
                report.allowed.push(v);
            } else {
                pre_baseline.push(v);
            }
        }
    }

    // Apply the baseline per (rule, file): tolerate up to `count` hits.
    let mut by_key: BTreeMap<(Rule, String), Vec<Violation>> = BTreeMap::new();
    for v in pre_baseline {
        by_key.entry((v.rule, v.file.clone())).or_default().push(v);
    }
    for (key, tolerated) in &baseline.entries {
        let actual = by_key.get(key).map_or(0, |v| v.len() as u32);
        if actual < *tolerated {
            report.stale_baseline.push((key.0, key.1.clone(), *tolerated, actual));
        }
    }
    for ((rule, file), hits) in by_key {
        let tolerated = baseline.entries.get(&(rule, file.clone())).copied().unwrap_or(0) as usize;
        let n = hits.len();
        if tolerated > 0 {
            report.baselined.push((rule, file, n.min(tolerated) as u32));
        }
        report.violations.extend(hits.into_iter().skip(tolerated));
        let _ = n;
    }
    Ok(report)
}

/// Computes the baseline that would make the current tree pass: every
/// unsuppressed hit of a baselinable rule, grouped by file.
pub fn compute_baseline(root: &Path) -> std::io::Result<Baseline> {
    let report = check_workspace(root, &Baseline::default())?;
    let mut out = Baseline::default();
    for v in report.violations {
        if v.rule.baselinable() {
            *out.entries.entry((v.rule, v.file)).or_insert(0) += 1;
        }
    }
    Ok(out)
}

/// Recursively collects `.rs` files under `dir`, pushing root-relative
/// paths. Skips build output, vendored dependency stubs, and the linter's
/// own deliberately-violating test fixtures.
fn collect_rs_files(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let rel = dir.strip_prefix(root).unwrap_or(dir).to_string_lossy().replace('\\', "/");
    if rel.starts_with("target")
        || rel.starts_with("vendor")
        || rel.starts_with("crates/lint/tests/fixtures")
    {
        return Ok(());
    }
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
        }
    }
    Ok(())
}

/// Locates the workspace root: walks up from `start` to the first directory
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_root_from_crate_dir() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root");
        assert!(root.join("ROADMAP.md").exists());
    }
}
