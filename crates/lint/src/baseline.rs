//! The machine-readable baseline: known pre-existing hits the check
//! tolerates while the debt is paid down.
//!
//! Format (`lint-baseline.json` at the workspace root):
//!
//! ```json
//! {
//!   "version": 1,
//!   "entries": [
//!     { "rule": "h1", "file": "crates/core/src/dynamic.rs", "count": 29 }
//!   ]
//! }
//! ```
//!
//! Only hot-path rules (H1/H2) may be baselined — see
//! [`Rule::baselinable`]; determinism rules must be fixed or carry an
//! inline written reason. The JSON codec is hand-rolled for exactly this
//! schema (the workspace is offline; no serde).

use crate::rules::Rule;
use std::collections::BTreeMap;

/// Parsed baseline: `(rule, file) → tolerated hit count`.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Baseline {
    /// Tolerated counts, keyed by rule and workspace-relative path.
    pub entries: BTreeMap<(Rule, String), u32>,
}

impl Baseline {
    /// Parses the JSON document. Errors are strings — the CLI surfaces them
    /// verbatim.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let value = json::parse(text)?;
        let obj = value.as_object().ok_or("baseline root must be an object")?;
        match obj.get("version") {
            Some(json::Value::Number(n)) if *n == 1.0 => {}
            _ => return Err("baseline `version` must be the number 1".to_string()),
        }
        let entries = obj
            .get("entries")
            .and_then(|v| v.as_array())
            .ok_or("baseline `entries` must be an array")?;
        let mut out = Baseline::default();
        for (i, e) in entries.iter().enumerate() {
            let e = e.as_object().ok_or_else(|| format!("entries[{i}] must be an object"))?;
            let rule_name = e
                .get("rule")
                .and_then(|v| v.as_str())
                .ok_or_else(|| format!("entries[{i}].rule must be a string"))?;
            let rule = Rule::parse(rule_name)
                .ok_or_else(|| format!("entries[{i}].rule: unknown rule `{rule_name}`"))?;
            if !rule.baselinable() {
                return Err(format!(
                    "entries[{i}]: rule `{}` may not be baselined — determinism rules require \
                     an inline `// lint: allow({}, \"<reason>\")` or a fix",
                    rule.id(),
                    rule.id()
                ));
            }
            let file = e
                .get("file")
                .and_then(|v| v.as_str())
                .ok_or_else(|| format!("entries[{i}].file must be a string"))?;
            let count = e
                .get("count")
                .and_then(|v| v.as_number())
                .filter(|n| *n >= 1.0 && n.fract() == 0.0)
                .ok_or_else(|| format!("entries[{i}].count must be a positive integer"))?;
            if out.entries.insert((rule, file.to_string()), count as u32).is_some() {
                return Err(format!("duplicate baseline entry for ({rule_name}, {file})"));
            }
        }
        Ok(out)
    }

    /// Serializes in the canonical (sorted, pretty) form.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"version\": 1,\n  \"entries\": [");
        let mut first = true;
        for ((rule, file), count) in &self.entries {
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!(
                "\n    {{ \"rule\": \"{}\", \"file\": \"{}\", \"count\": {} }}",
                rule.id(),
                json::escape(file),
                count
            ));
        }
        if !first {
            s.push('\n');
            s.push_str("  ");
        }
        s.push_str("]\n}\n");
        s
    }
}

/// A minimal JSON parser — objects, arrays, strings, numbers, booleans,
/// null. Enough for the baseline schema and strict about everything else.
mod json {
    use std::collections::BTreeMap;

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any number (f64 carries every count we store).
        Number(f64),
        /// String (unescaped).
        Str(String),
        /// Array.
        Array(Vec<Value>),
        /// Object with string keys.
        Object(BTreeMap<String, Value>),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
            match self {
                Value::Object(m) => Some(m),
                _ => None,
            }
        }
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        pub fn as_number(&self) -> Option<f64> {
            match self {
                Value::Number(n) => Some(*n),
                _ => None,
            }
        }
    }

    /// Escapes a string for embedding in JSON output.
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// Parses a complete JSON document.
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser { b: text.as_bytes(), i: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing content at byte {}", p.i));
        }
        Ok(v)
    }

    struct Parser<'a> {
        b: &'a [u8],
        i: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
        }

        fn expect(&mut self, c: u8) -> Result<(), String> {
            self.skip_ws();
            if self.i < self.b.len() && self.b[self.i] == c {
                self.i += 1;
                Ok(())
            } else {
                Err(format!("expected `{}` at byte {}", c as char, self.i))
            }
        }

        fn peek(&mut self) -> Option<u8> {
            self.skip_ws();
            self.b.get(self.i).copied()
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek().ok_or("unexpected end of input")? {
                b'{' => self.object(),
                b'[' => self.array(),
                b'"' => Ok(Value::Str(self.string()?)),
                b't' => self.literal("true", Value::Bool(true)),
                b'f' => self.literal("false", Value::Bool(false)),
                b'n' => self.literal("null", Value::Null),
                _ => self.number(),
            }
        }

        fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
            if self.b[self.i..].starts_with(lit.as_bytes()) {
                self.i += lit.len();
                Ok(v)
            } else {
                Err(format!("invalid literal at byte {}", self.i))
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut map = BTreeMap::new();
            if self.peek() == Some(b'}') {
                self.i += 1;
                return Ok(Value::Object(map));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.expect(b':')?;
                let val = self.value()?;
                map.insert(key, val);
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b'}') => {
                        self.i += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {}", self.i)),
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut out = Vec::new();
            if self.peek() == Some(b']') {
                self.i += 1;
                return Ok(Value::Array(out));
            }
            loop {
                out.push(self.value()?);
                match self.peek() {
                    Some(b',') => self.i += 1,
                    Some(b']') => {
                        self.i += 1;
                        return Ok(Value::Array(out));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {}", self.i)),
                }
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            while self.i < self.b.len() {
                match self.b[self.i] {
                    b'"' => {
                        self.i += 1;
                        return Ok(out);
                    }
                    b'\\' => {
                        self.i += 1;
                        let e = *self.b.get(self.i).ok_or("unterminated escape")?;
                        self.i += 1;
                        match e {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b't' => out.push('\t'),
                            b'r' => out.push('\r'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                let hex =
                                    self.b.get(self.i..self.i + 4).ok_or("truncated \\u escape")?;
                                let code = u32::from_str_radix(
                                    std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                    16,
                                )
                                .map_err(|e| e.to_string())?;
                                self.i += 4;
                                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            }
                            _ => return Err(format!("bad escape `\\{}`", e as char)),
                        }
                    }
                    c => {
                        // Multi-byte UTF-8 passes through unchanged.
                        let s = &self.b[self.i..];
                        let ch_len = utf8_len(c);
                        let chunk = std::str::from_utf8(&s[..ch_len.min(s.len())])
                            .map_err(|e| e.to_string())?;
                        out.push_str(chunk);
                        self.i += ch_len;
                    }
                }
            }
            Err("unterminated string".to_string())
        }

        fn number(&mut self) -> Result<Value, String> {
            self.skip_ws();
            let start = self.i;
            while self.i < self.b.len()
                && matches!(self.b[self.i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                self.i += 1;
            }
            std::str::from_utf8(&self.b[start..self.i])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Value::Number)
                .ok_or_else(|| format!("invalid number at byte {start}"))
        }
    }

    fn utf8_len(first: u8) -> usize {
        match first {
            0x00..=0x7f => 1,
            0xc0..=0xdf => 2,
            0xe0..=0xef => 3,
            _ => 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut b = Baseline::default();
        b.entries.insert((Rule::H1, "crates/core/src/a.rs".to_string()), 3);
        b.entries.insert((Rule::H2, "crates/terrain/src/b.rs".to_string()), 1);
        let text = b.to_json();
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn empty_round_trip() {
        let b = Baseline::default();
        assert_eq!(Baseline::parse(&b.to_json()).unwrap(), b);
    }

    #[test]
    fn determinism_rules_rejected() {
        let text =
            r#"{ "version": 1, "entries": [ { "rule": "d1", "file": "x.rs", "count": 1 } ] }"#;
        let err = Baseline::parse(text).unwrap_err();
        assert!(err.contains("may not be baselined"), "{err}");
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(Baseline::parse("").is_err());
        assert!(Baseline::parse("[]").is_err());
        assert!(Baseline::parse(r#"{ "version": 2, "entries": [] }"#).is_err());
        assert!(Baseline::parse(
            r#"{ "version": 1, "entries": [ { "rule": "h1", "file": "x", "count": 0 } ] }"#
        )
        .is_err());
    }
}
