//! The rule set and the per-file scanner.
//!
//! Rules are **lexical**: they match token patterns, not types. That is the
//! deal the workspace makes for a dependency-free linter — the rules are
//! written so a lexical match is either a real violation or something worth
//! an inline justification. See `docs/ARCHITECTURE.md` § "Determinism
//! enforcement" for the contract each rule pins.

use crate::lexer::{lex, Directive, TokKind, Token};

/// The enforced rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// No `HashMap`/`HashSet` in `geodesic`/`core`/`terrain` library code —
    /// hash-randomized iteration order must never feed an oracle image.
    D1,
    /// No wall-clock / environment reads (`Instant`, `SystemTime`,
    /// `thread::current`, `env::var`, `available_parallelism`,
    /// `RandomState`, `DefaultHasher`) in library code without a written
    /// reason they never feed oracle data.
    D2,
    /// No interior mutability (`Mutex`, `RwLock`, `Cell`, `RefCell`, …) in
    /// modules tagged `// lint: query-path`.
    D3,
    /// No `unwrap()` / `expect()` / `panic!` / `todo!` / `unimplemented!`
    /// in non-test library code without an annotation or baseline entry.
    H1,
    /// No unordered float reduction (`.sum::<f64>()`, float-accumulator
    /// `fold`) in `geodesic`/`core`/`terrain` library code; `f64::min`/
    /// `f64::max` folds are exempt (order-insensitive).
    H2,
    /// Every library crate root must carry `#![forbid(unsafe_code)]` (or
    /// `deny` with counted allows).
    U1,
}

impl Rule {
    /// Stable lower-case id used in annotations and the baseline file.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "d1",
            Rule::D2 => "d2",
            Rule::D3 => "d3",
            Rule::H1 => "h1",
            Rule::H2 => "h2",
            Rule::U1 => "u1",
        }
    }

    /// Short human label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Rule::D1 => "hash-order",
            Rule::D2 => "env-input",
            Rule::D3 => "query-path-interior-mutability",
            Rule::H1 => "library-panic",
            Rule::H2 => "float-reduction",
            Rule::U1 => "unsafe-gate",
        }
    }

    /// Parses an annotation rule name (`h1`, `H1`, and the `panic` alias).
    pub fn parse(s: &str) -> Option<Rule> {
        match s.to_ascii_lowercase().as_str() {
            "d1" => Some(Rule::D1),
            "d2" => Some(Rule::D2),
            "d3" => Some(Rule::D3),
            "h1" | "panic" => Some(Rule::H1),
            "h2" => Some(Rule::H2),
            "u1" => Some(Rule::U1),
            _ => None,
        }
    }

    /// Whether the baseline file may carry entries for this rule.
    /// Determinism rules (D1–D3) and the unsafe gate may **not** be
    /// baselined: every surviving hit needs an inline written reason.
    pub fn baselinable(self) -> bool {
        matches!(self, Rule::H1 | Rule::H2)
    }

    /// All rules, for iteration in reports.
    pub const ALL: [Rule; 6] = [Rule::D1, Rule::D2, Rule::D3, Rule::H1, Rule::H2, Rule::U1];
}

/// One rule hit in one file.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What matched (for the message).
    pub what: String,
    /// `Some(reason)` when an inline `// lint: allow` suppressed the hit.
    pub allowed: Option<String>,
}

/// A malformed `// lint:` directive — always an error, never suppressible.
#[derive(Debug, Clone)]
pub struct DirectiveError {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What is wrong.
    pub message: String,
}

/// Result of scanning one file.
#[derive(Debug, Default)]
pub struct FileScan {
    /// Every rule hit (suppressed hits carry `allowed: Some(reason)`).
    pub violations: Vec<Violation>,
    /// Malformed directives.
    pub errors: Vec<DirectiveError>,
    /// Whether the file is tagged `// lint: query-path`.
    pub query_path: bool,
    /// `#[allow(unsafe_code)]` occurrences (surfaced in the report).
    pub unsafe_allows: u32,
    /// Whether a crate root carries `#![forbid(unsafe_code)]`/`deny`.
    pub unsafe_gate: bool,
}

/// Which rule families apply to a file, derived from its workspace path.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scope {
    /// D1 + H2: deterministic-structure rules.
    pub deterministic: bool,
    /// D2 + H1: all library source.
    pub library: bool,
    /// U1: this file is a library crate root (`lib.rs`).
    pub crate_root: bool,
}

/// The seven library crates (crate name, source prefix). `crates/bench` and
/// `crates/lint` are tooling, not part of the served artifact, and are out
/// of scope; `vendor/` holds offline dependency stubs.
pub const LIBRARY_CRATES: [(&str, &str); 7] = [
    ("terrain", "crates/terrain/src/"),
    ("obs", "crates/obs/src/"),
    ("geodesic", "crates/geodesic/src/"),
    ("phash", "crates/phash/src/"),
    ("se-oracle", "crates/core/src/"),
    ("baselines", "crates/baselines/src/"),
    ("terrain-oracle", "src/"),
];

/// Crates whose data structures feed oracle images directly (D1/H2 scope).
const DETERMINISTIC_PREFIXES: [&str; 3] =
    ["crates/geodesic/src/", "crates/core/src/", "crates/terrain/src/"];

/// Classifies a workspace-relative path (`/`-separated).
pub fn scope_of(path: &str) -> Scope {
    // Binaries under src/bin are CLI front ends, not library code.
    let library = LIBRARY_CRATES.iter().any(|(_, p)| path.starts_with(p))
        && !path.starts_with("src/bin/")
        && !path.contains("/bin/");
    Scope {
        deterministic: DETERMINISTIC_PREFIXES.iter().any(|p| path.starts_with(p)),
        library,
        crate_root: LIBRARY_CRATES.iter().any(|(_, p)| format!("{p}lib.rs") == path),
    }
}

/// An inline allow annotation.
#[derive(Debug, Clone)]
struct Allow {
    rule: Rule,
    line: u32,
    reason: String,
}

/// Parses the directives of a file into allows / tags / errors.
fn parse_directives(
    directives: &[Directive<'_>],
    file: &str,
) -> (Vec<Allow>, bool, Vec<DirectiveError>) {
    let mut allows = Vec::new();
    let mut query_path = false;
    let mut errors = Vec::new();
    for d in directives {
        let err =
            |message: String| DirectiveError { file: file.to_string(), line: d.line, message };
        if d.text == "query-path" {
            query_path = true;
            continue;
        }
        if let Some(rest) = d.text.strip_prefix("allow") {
            let rest = rest.trim_start();
            let Some(inner) = rest.strip_prefix('(').and_then(|r| r.strip_suffix(')')) else {
                errors.push(err(format!("malformed allow: `{}`", d.text)));
                continue;
            };
            let Some((name, reason)) = inner.split_once(',') else {
                errors
                    .push(err(format!("allow needs a reason: `lint: allow({inner}, \"<why>\")`")));
                continue;
            };
            let Some(rule) = Rule::parse(name.trim()) else {
                errors.push(err(format!("unknown rule `{}` in allow", name.trim())));
                continue;
            };
            let reason = reason.trim();
            let Some(reason) = reason.strip_prefix('"').and_then(|r| r.strip_suffix('"')) else {
                errors.push(err("allow reason must be a quoted string".to_string()));
                continue;
            };
            if reason.trim().is_empty() {
                errors.push(err("allow reason must not be empty".to_string()));
                continue;
            }
            allows.push(Allow { rule, line: d.line, reason: reason.to_string() });
        } else {
            errors.push(err(format!(
                "unknown lint directive `{}` (expected `allow(<rule>, \"<reason>\")` or \
                 `query-path`)",
                d.text
            )));
        }
    }
    (allows, query_path, errors)
}

/// Returns the retained token indices after removing `#[cfg(test)]` items.
///
/// Conservative and purely lexical: an outer attribute whose bracket group
/// mentions `cfg` and `test` hides the item it is attached to (through the
/// item's brace block or trailing `;` at bracket depth 0).
fn non_test_token_indices(tokens: &[Token<'_>]) -> Vec<usize> {
    let mut keep = Vec::with_capacity(tokens.len());
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].text == "#"
            && i + 1 < tokens.len()
            && tokens[i + 1].text == "["
            && attr_is_cfg_test(tokens, i + 1)
        {
            i = skip_attributed_item(tokens, i);
            continue;
        }
        keep.push(i);
        i += 1;
    }
    keep
}

/// Whether the attribute bracket group opening at `open` (`[`) contains both
/// `cfg` and `test` idents.
fn attr_is_cfg_test(tokens: &[Token<'_>], open: usize) -> bool {
    let close = match matching_bracket(tokens, open, "[", "]") {
        Some(c) => c,
        None => return false,
    };
    let mut saw_cfg = false;
    let mut saw_test = false;
    for t in &tokens[open + 1..close] {
        if t.kind == TokKind::Ident {
            saw_cfg |= t.text == "cfg";
            saw_test |= t.text == "test";
        }
    }
    saw_cfg && saw_test
}

/// Skips an item that starts with the attribute at `attr_start` (`#`):
/// consumes any further attributes, then either a brace block or a trailing
/// `;`. Returns the index just past the item.
fn skip_attributed_item(tokens: &[Token<'_>], attr_start: usize) -> usize {
    let mut i = attr_start;
    // Consume consecutive outer attributes.
    while i + 1 < tokens.len() && tokens[i].text == "#" && tokens[i + 1].text == "[" {
        match matching_bracket(tokens, i + 1, "[", "]") {
            Some(close) => i = close + 1,
            None => return tokens.len(),
        }
    }
    // Consume the item: first `{…}` block at bracket depth 0, or `;`.
    let mut depth_round = 0i32;
    let mut depth_square = 0i32;
    while i < tokens.len() {
        match tokens[i].text {
            "(" => depth_round += 1,
            ")" => depth_round -= 1,
            "[" => depth_square += 1,
            "]" => depth_square -= 1,
            "{" if depth_round == 0 && depth_square == 0 => {
                return match matching_bracket(tokens, i, "{", "}") {
                    Some(close) => close + 1,
                    None => tokens.len(),
                };
            }
            ";" if depth_round == 0 && depth_square == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}

/// Index of the bracket matching `tokens[open]`.
fn matching_bracket(tokens: &[Token<'_>], open: usize, op: &str, cl: &str) -> Option<usize> {
    debug_assert_eq!(tokens[open].text, op);
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if t.kind == TokKind::Punct {
            if t.text == op {
                depth += 1;
            } else if t.text == cl {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
        let _ = k;
    }
    None
}

const D2_IDENTS: [&str; 5] =
    ["Instant", "SystemTime", "RandomState", "DefaultHasher", "available_parallelism"];
const D3_IDENTS: [&str; 9] = [
    "Mutex",
    "RwLock",
    "Cell",
    "RefCell",
    "UnsafeCell",
    "OnceCell",
    "OnceLock",
    "LazyCell",
    "LazyLock",
];

/// Scans one file's source. `path` is the workspace-relative path (used for
/// rule scoping); fixture tests pass synthetic paths to opt into scopes.
pub fn scan_source(path: &str, src: &str) -> FileScan {
    let lexed = lex(src);
    let (allows, query_path, errors) = parse_directives(&lexed.directives, path);
    let scope = scope_of(path);
    let mut scan = FileScan { errors, query_path, ..FileScan::default() };

    let toks = &lexed.tokens;
    let keep = non_test_token_indices(toks);

    // U1 bookkeeping runs on the full stream (attributes are real tokens).
    for w in toks.windows(7) {
        if w[0].text == "#"
            && w[1].text == "!"
            && w[2].text == "["
            && (w[3].text == "forbid" || w[3].text == "deny")
            && w[4].text == "("
            && w[5].text == "unsafe_code"
        {
            scan.unsafe_gate = true;
        }
    }
    for w in toks.windows(5) {
        if w[0].text == "#"
            && w[1].text == "["
            && w[2].text == "allow"
            && w[3].text == "("
            && w[4].text == "unsafe_code"
        {
            scan.unsafe_allows += 1;
        }
    }

    let mut hits: Vec<(Rule, u32, String)> = Vec::new();
    if scope.crate_root && !scan.unsafe_gate {
        hits.push((Rule::U1, 1, "library crate root lacks `#![forbid(unsafe_code)]`".to_string()));
    }

    // Helper views over retained (non-test) tokens.
    let tk = |k: usize| -> &Token<'_> { &toks[keep[k]] };
    let n = keep.len();
    let is = |k: usize, text: &str| k < n && tk(k).text == text;
    let is_ident =
        |k: usize, text: &str| k < n && tk(k).kind == TokKind::Ident && tk(k).text == text;

    for k in 0..n {
        let t = tk(k);
        if t.kind != TokKind::Ident {
            continue;
        }
        // D1 — hash-randomized collections anywhere in deterministic crates.
        if scope.deterministic && (t.text == "HashMap" || t.text == "HashSet") {
            hits.push((Rule::D1, t.line, format!("`{}`", t.text)));
        }
        // D2 — wall-clock / environment inputs in library code.
        if scope.library {
            if D2_IDENTS.contains(&t.text) {
                hits.push((Rule::D2, t.line, format!("`{}`", t.text)));
            }
            if t.text == "thread" && is(k + 1, ":") && is(k + 2, ":") && is_ident(k + 3, "current")
            {
                hits.push((Rule::D2, t.line, "`thread::current`".to_string()));
            }
            if t.text == "env"
                && is(k + 1, ":")
                && is(k + 2, ":")
                && k + 3 < n
                && ["var", "vars", "var_os", "vars_os"].contains(&tk(k + 3).text)
            {
                hits.push((Rule::D2, t.line, format!("`env::{}`", tk(k + 3).text)));
            }
        }
        // D3 — interior mutability in query-path modules.
        if query_path && D3_IDENTS.contains(&t.text) {
            hits.push((Rule::D3, t.line, format!("`{}`", t.text)));
        }
        // H1 — panics in library code.
        if scope.library {
            if (t.text == "unwrap" || t.text == "expect")
                && k >= 1
                && is(k - 1, ".")
                && is(k + 1, "(")
            {
                hits.push((Rule::H1, t.line, format!("`.{}()`", t.text)));
            }
            if ["panic", "todo", "unimplemented"].contains(&t.text) && is(k + 1, "!") {
                hits.push((Rule::H1, t.line, format!("`{}!`", t.text)));
            }
        }
        // H2 — unordered float reductions in deterministic crates.
        if scope.deterministic {
            if (t.text == "sum" || t.text == "product")
                && is(k + 1, ":")
                && is(k + 2, ":")
                && is(k + 3, "<")
                && k + 4 < n
                && (tk(k + 4).text == "f64" || tk(k + 4).text == "f32")
            {
                hits.push((Rule::H2, t.line, format!("`.{}::<{}>()`", t.text, tk(k + 4).text)));
            }
            if t.text == "fold" && is(k + 1, "(") {
                if let Some(close) = matching_keep_bracket(toks, &keep, k + 1) {
                    let args = &keep[k + 2..close];
                    let has_float = args.iter().any(|&j| toks[j].kind == TokKind::Float);
                    let min_max = args.windows(4).any(|w| {
                        (toks[w[0]].text == "f64" || toks[w[0]].text == "f32")
                            && toks[w[1]].text == ":"
                            && toks[w[2]].text == ":"
                            && (toks[w[3]].text == "min" || toks[w[3]].text == "max")
                    });
                    if has_float && !min_max {
                        hits.push((
                            Rule::H2,
                            t.line,
                            "float-accumulator `fold` (not a min/max fold)".to_string(),
                        ));
                    }
                }
            }
        }
    }

    // Apply inline allows: a hit is suppressed by an allow for its rule on
    // the same line, or on the line directly above when that line is a
    // standalone comment (carries no code tokens of its own).
    let lines_with_code: std::collections::BTreeSet<u32> = toks.iter().map(|t| t.line).collect();
    let mut used = vec![false; allows.len()];
    for (rule, line, what) in hits {
        let reason = allows.iter().enumerate().find_map(|(ai, a)| {
            let applies = a.rule == rule
                && (a.line == line || (a.line + 1 == line && !lines_with_code.contains(&a.line)));
            applies.then(|| {
                used[ai] = true;
                a.reason.clone()
            })
        });
        scan.violations.push(Violation {
            rule,
            file: path.to_string(),
            line,
            what,
            allowed: reason,
        });
    }
    // Unused allows are errors: stale justifications must not accumulate.
    for (ai, a) in allows.iter().enumerate() {
        if !used[ai] {
            scan.errors.push(DirectiveError {
                file: path.to_string(),
                line: a.line,
                message: format!(
                    "unused allow({}) — no {} hit on this or the next line",
                    a.rule.id(),
                    a.rule.id()
                ),
            });
        }
    }
    scan
}

/// `matching_bracket` but `open_k` indexes into `keep`.
fn matching_keep_bracket(tokens: &[Token<'_>], keep: &[usize], open_k: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, &j) in keep.iter().enumerate().skip(open_k) {
        let t = &tokens[j];
        if t.kind == TokKind::Punct {
            if t.text == "(" {
                depth += 1;
            } else if t.text == ")" {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits(path: &str, src: &str) -> Vec<(Rule, u32, bool)> {
        scan_source(path, src)
            .violations
            .iter()
            .map(|v| (v.rule, v.line, v.allowed.is_some()))
            .collect()
    }

    #[test]
    fn d1_fires_only_in_deterministic_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(hits("crates/core/src/x.rs", src), vec![(Rule::D1, 1, false)]);
        assert_eq!(hits("crates/bench/src/x.rs", src), vec![]);
        assert_eq!(hits("crates/phash/src/x.rs", src), vec![]);
    }

    #[test]
    fn cfg_test_items_are_exempt() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    use std::collections::HashMap;\n    fn b() { x.unwrap(); }\n}\n";
        assert_eq!(hits("crates/core/src/x.rs", src), vec![]);
    }

    #[test]
    fn allow_same_line_and_line_above() {
        let src = "// lint: allow(h1, \"reason one\")\nx.unwrap();\ny.unwrap(); // lint: allow(panic, \"reason two\")\nz.unwrap();\n";
        let v = hits("crates/core/src/x.rs", src);
        assert_eq!(v, vec![(Rule::H1, 2, true), (Rule::H1, 3, true), (Rule::H1, 4, false)]);
    }

    #[test]
    fn d3_requires_tag() {
        let src = "use std::sync::Mutex;\n";
        assert_eq!(hits("crates/core/src/x.rs", src), vec![]);
        let tagged = format!("// lint: query-path\n{src}");
        assert_eq!(hits("crates/core/src/x.rs", &tagged), vec![(Rule::D3, 2, false)]);
    }

    #[test]
    fn h2_exempts_min_max_folds() {
        let src = "let a = xs.iter().fold(0.0, f64::max);\nlet b = xs.iter().fold(0.0, |p, q| p + q);\nlet c = xs.iter().sum::<f64>();\n";
        let v = hits("crates/geodesic/src/x.rs", src);
        assert_eq!(v, vec![(Rule::H2, 2, false), (Rule::H2, 3, false)]);
    }

    #[test]
    fn unused_allow_is_an_error() {
        let scan = scan_source(
            "crates/core/src/x.rs",
            "// lint: allow(h1, \"nothing here\")\nlet x = 1;\n",
        );
        assert_eq!(scan.errors.len(), 1);
        assert!(scan.errors[0].message.contains("unused allow"));
    }

    #[test]
    fn u1_checks_crate_roots() {
        let v = hits("crates/core/src/lib.rs", "pub mod x;\n");
        assert_eq!(v, vec![(Rule::U1, 1, false)]);
        let ok = scan_source("crates/core/src/lib.rs", "#![forbid(unsafe_code)]\npub mod x;\n");
        assert!(ok.violations.is_empty());
        assert!(ok.unsafe_gate);
    }

    #[test]
    fn d2_patterns() {
        let src =
            "let t = Instant::now();\nlet id = thread::current().id();\nlet v = env::var(\"X\");\n";
        let v = hits("crates/core/src/x.rs", src);
        assert_eq!(
            v.iter().map(|(r, l, _)| (*r, *l)).collect::<Vec<_>>(),
            vec![(Rule::D2, 1), (Rule::D2, 2), (Rule::D2, 3)]
        );
    }
}
