//! CLI front end: `cargo run -p oracle-lint -- check [flags]`.

use oracle_lint::baseline::Baseline;
use oracle_lint::rules::Rule;
use oracle_lint::{check_workspace, compute_baseline, find_workspace_root, Report};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
oracle-lint — workspace determinism & hot-path contract checker

USAGE:
    oracle-lint check [--deny-warnings] [--report] [--update-baseline]
                      [--root <dir>] [--baseline <file>]

FLAGS:
    --deny-warnings     exit non-zero on any unsuppressed violation (CI mode)
    --report            print the allow/baseline/unsafe summary
    --update-baseline   rewrite the baseline from the current tree and exit
    --root <dir>        workspace root (default: walk up from cwd)
    --baseline <file>   baseline path (default: <root>/lint-baseline.json)

Rules (see docs/ARCHITECTURE.md § Determinism enforcement):
    D1 hash-order    D2 env-input    D3 query-path-interior-mutability
    H1 library-panic H2 float-reduction U1 unsafe-gate
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("check") => {}
        Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            return ExitCode::from(2);
        }
    }

    let mut deny = false;
    let mut want_report = false;
    let mut update = false;
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--deny-warnings" => deny = true,
            "--report" => want_report = true,
            "--update-baseline" => update = true,
            "--root" => match it.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage_err("--root needs a value"),
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => return usage_err("--baseline needs a value"),
            },
            other => return usage_err(&format!("unknown flag `{other}`")),
        }
    }

    let root =
        match root.or_else(|| std::env::current_dir().ok().and_then(|d| find_workspace_root(&d))) {
            Some(r) => r,
            None => {
                eprintln!("error: no workspace root found (pass --root)");
                return ExitCode::from(2);
            }
        };
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.json"));

    if update {
        let computed = match compute_baseline(&root) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        };
        if let Err(e) = std::fs::write(&baseline_path, computed.to_json()) {
            eprintln!("error writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!("wrote {} ({} entries)", baseline_path.display(), computed.entries.len());
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error in {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        Err(_) => Baseline::default(),
    };

    let report = match check_workspace(&root, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    print_findings(&report, deny);
    if want_report {
        print_summary(&report);
    }

    if !report.errors.is_empty() {
        return ExitCode::from(2);
    }
    if deny && !report.violations.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage_err(msg: &str) -> ExitCode {
    eprintln!("error: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}

fn print_findings(report: &Report, deny: bool) {
    for e in &report.errors {
        eprintln!("error[lint]: {}:{}: {}", e.file, e.line, e.message);
    }
    let severity = if deny { "error" } else { "warning" };
    for v in &report.violations {
        eprintln!(
            "{severity}[{} {}]: {}:{}: {} — {}",
            v.rule.id(),
            v.rule.label(),
            v.file,
            v.line,
            v.what,
            remedy(v.rule)
        );
    }
    let status =
        if report.violations.is_empty() && report.errors.is_empty() { "clean" } else { "dirty" };
    println!(
        "oracle-lint: {} files scanned, {} violation(s), {} inline allow(s), {} baselined, \
         {} directive error(s) — {status}",
        report.files_scanned,
        report.violations.len(),
        report.allowed.len(),
        report.baselined.iter().map(|(_, _, n)| *n as usize).sum::<usize>(),
        report.errors.len(),
    );
    for (rule, file, tolerated, actual) in &report.stale_baseline {
        println!(
            "note: stale baseline entry ({}, {file}): tolerates {tolerated}, found {actual} — \
             run `cargo run -p oracle-lint -- check --update-baseline` to ratchet down",
            rule.id()
        );
    }
}

fn remedy(rule: Rule) -> &'static str {
    match rule {
        Rule::D1 => {
            "hash-randomized iteration order must not reach oracle data; use BTreeMap/BTreeSet \
             or sort explicitly and annotate"
        }
        Rule::D2 => {
            "wall-clock/environment input in library code; keep it out of oracle data and \
             annotate why, or remove it"
        }
        Rule::D3 => {
            "interior mutability in a `// lint: query-path` module breaks the frozen-handle \
             invariant; move it out of the query path or annotate a scratch arena"
        }
        Rule::H1 => {
            "library panic; return a typed error, or annotate \
             `// lint: allow(panic, \"<reason>\")`"
        }
        Rule::H2 => {
            "float reduction whose result depends on evaluation order; sum in a fixed order \
             and annotate, or restructure"
        }
        Rule::U1 => "add `#![forbid(unsafe_code)]` to the crate root",
    }
}

fn print_summary(report: &Report) {
    println!("\n== oracle-lint report ==");
    println!("inline allows ({}):", report.allowed.len());
    for v in &report.allowed {
        println!(
            "  {}:{} [{}] {} — \"{}\"",
            v.file,
            v.line,
            v.rule.id(),
            v.what,
            v.allowed.as_deref().unwrap_or("")
        );
    }
    println!("baseline suppressions:");
    if report.baselined.is_empty() {
        println!("  (none)");
    }
    for (rule, file, n) in &report.baselined {
        println!("  {file} [{}] {n} hit(s)", rule.id());
    }
    println!("unsafe gate:");
    let gated = report.unsafe_gates.iter().filter(|(_, g)| *g).count();
    println!(
        "  {}/{} library crate roots carry #![forbid(unsafe_code)]; \
         {} #[allow(unsafe_code)] site(s)",
        gated,
        report.unsafe_gates.len(),
        report.unsafe_allows
    );
    for (file, g) in &report.unsafe_gates {
        if !g {
            println!("  missing gate: {file}");
        }
    }
}
