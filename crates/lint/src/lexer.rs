//! A minimal Rust lexer — just enough structure for lexical lint rules.
//!
//! The scanner distinguishes identifiers, punctuation, string/char/number
//! literals and lifetimes, skips comments (collecting `// lint:` directives),
//! and understands raw strings and raw identifiers. It does **not** parse:
//! every rule downstream works on the flat token stream plus brace matching.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `fn`, `r#type`).
    Ident,
    /// Single punctuation character (`.`, `(`, `::` is two tokens).
    Punct,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Integer literal.
    Int,
    /// Floating-point literal (`0.0`, `1e-9`, `2.5f64`).
    Float,
    /// Lifetime (`'a`) — kept distinct so `'a` never looks like a char.
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token<'a> {
    /// Token class.
    pub kind: TokKind,
    /// Source text of the token (for `Str`, includes the quotes).
    pub text: &'a str,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// A `// lint: …` comment, surfaced separately from the token stream.
#[derive(Debug, Clone)]
pub struct Directive<'a> {
    /// 1-based line of the comment.
    pub line: u32,
    /// Text after `lint:`, trimmed.
    pub text: &'a str,
}

/// Output of [`lex`].
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token<'a>>,
    /// All `// lint: …` directives in source order.
    pub directives: Vec<Directive<'a>>,
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic()
}

fn is_ident_continue(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric()
}

/// Lexes `src`. Invalid UTF-8 is impossible (`&str` input); lexically
/// malformed Rust degrades gracefully (unknown bytes become `Punct`).
pub fn lex(src: &str) -> Lexed<'_> {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let comment = &src[start..i];
                // Strip leading slashes and `!` (handles `//`, `///`, `//!`).
                let body = comment.trim_start_matches('/').trim_start_matches('!').trim_start();
                if let Some(rest) = body.strip_prefix("lint:") {
                    out.directives.push(Directive { line, text: rest.trim() });
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Nested block comment.
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let (end, nl) = scan_string(b, i);
                out.tokens.push(Token { kind: TokKind::Str, text: &src[i..end], line });
                line += nl;
                i = end;
            }
            b'r' | b'b' if raw_or_byte_string_start(b, i) => {
                let (end, nl) = scan_raw_or_byte(b, i);
                let kind = if b[i] == b'b' && i + 1 < b.len() && b[i + 1] == b'\'' {
                    TokKind::Char
                } else {
                    TokKind::Str
                };
                out.tokens.push(Token { kind, text: &src[i..end], line });
                line += nl;
                i = end;
            }
            b'\'' => {
                // Lifetime vs char literal: `'a` followed by anything but a
                // closing quote is a lifetime; `'a'`, `'\n'`, `'\u{…}'` are
                // chars.
                if i + 1 < b.len()
                    && is_ident_start(b[i + 1])
                    && !(i + 2 < b.len() && b[i + 2] == b'\'')
                {
                    let start = i;
                    i += 1;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                    out.tokens.push(Token { kind: TokKind::Lifetime, text: &src[start..i], line });
                } else {
                    let start = i;
                    i += 1;
                    while i < b.len() {
                        match b[i] {
                            b'\\' => i += 2,
                            b'\'' => {
                                i += 1;
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    out.tokens.push(Token { kind: TokKind::Char, text: &src[start..i], line });
                }
            }
            c if is_ident_start(c) => {
                let start = i;
                // Raw identifier `r#name` is handled by the raw-string guard
                // above not firing (next char after `#` must be ident-start).
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                out.tokens.push(Token { kind: TokKind::Ident, text: &src[start..i], line });
            }
            c if c.is_ascii_digit() => {
                let (end, is_float) = scan_number(b, i);
                let kind = if is_float { TokKind::Float } else { TokKind::Int };
                out.tokens.push(Token { kind, text: &src[i..end], line });
                i = end;
            }
            _ => {
                out.tokens.push(Token { kind: TokKind::Punct, text: &src[i..i + 1], line });
                i += 1;
            }
        }
    }
    out
}

/// Whether position `i` (at `r` or `b`) starts a raw/byte string or byte char
/// rather than a plain identifier.
fn raw_or_byte_string_start(b: &[u8], i: usize) -> bool {
    let next = |k: usize| b.get(i + k).copied().unwrap_or(0);
    match b[i] {
        b'r' => {
            // r"…" or r#…"  (r#ident is a raw identifier, not a string)
            next(1) == b'"' || (next(1) == b'#' && (next(2) == b'"' || next(2) == b'#'))
        }
        b'b' => {
            // b"…", b'…', br"…", br#"…"
            next(1) == b'"'
                || next(1) == b'\''
                || (next(1) == b'r' && (next(2) == b'"' || next(2) == b'#'))
        }
        _ => false,
    }
}

/// Scans a plain `"…"` string starting at `i`; returns (end index, newlines).
fn scan_string(b: &[u8], i: usize) -> (usize, u32) {
    let mut j = i + 1;
    let mut nl = 0u32;
    while j < b.len() {
        match b[j] {
            b'\\' => {
                // A line-continuation escape (`\` + newline) still ends a
                // source line — count it or every later token drifts.
                if b.get(j + 1) == Some(&b'\n') {
                    nl += 1;
                }
                j += 2;
            }
            b'\n' => {
                nl += 1;
                j += 1;
            }
            b'"' => return (j + 1, nl),
            _ => j += 1,
        }
    }
    (j, nl)
}

/// Scans a raw string `r#*"…"#*`, byte string `b"…"`, byte-raw `br#"…"#`, or
/// byte char `b'…'` starting at `i`; returns (end index, newlines).
fn scan_raw_or_byte(b: &[u8], i: usize) -> (usize, u32) {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j < b.len() && b[j] == b'\'' {
        // byte char
        j += 1;
        while j < b.len() {
            match b[j] {
                b'\\' => j += 2,
                b'\'' => return (j + 1, 0),
                _ => j += 1,
            }
        }
        return (j, 0);
    }
    let raw = j < b.len() && b[j] == b'r';
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    debug_assert!(j < b.len() && b[j] == b'"');
    j += 1; // opening quote
    let mut nl = 0u32;
    while j < b.len() {
        match b[j] {
            b'\n' => {
                nl += 1;
                j += 1;
            }
            b'\\' if !raw => {
                if b.get(j + 1) == Some(&b'\n') {
                    nl += 1;
                }
                j += 2;
            }
            b'"' => {
                // Need `hashes` trailing #s to close a raw string.
                let mut k = 0usize;
                while k < hashes && j + 1 + k < b.len() && b[j + 1 + k] == b'#' {
                    k += 1;
                }
                if k == hashes {
                    return (j + 1 + hashes, nl);
                }
                j += 1;
            }
            _ => j += 1,
        }
    }
    (j, nl)
}

/// Scans a number starting at digit `i`; returns (end index, is_float).
fn scan_number(b: &[u8], i: usize) -> (usize, bool) {
    let mut j = i;
    let mut is_float = false;
    // Radix prefixes never produce floats.
    if b[j] == b'0' && j + 1 < b.len() && matches!(b[j + 1], b'x' | b'o' | b'b') {
        j += 2;
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        return (j, false);
    }
    while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
        j += 1;
    }
    // Fractional part: a dot followed by a digit (or end-of-literal dot that
    // is not a range `..` and not a method call `1.max(…)`).
    if j < b.len() && b[j] == b'.' {
        let after = b.get(j + 1).copied().unwrap_or(0);
        if after.is_ascii_digit() {
            is_float = true;
            j += 1;
            while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
                j += 1;
            }
        } else if after != b'.' && !is_ident_start(after) {
            is_float = true;
            j += 1;
        }
    }
    // Exponent.
    if j < b.len() && (b[j] == b'e' || b[j] == b'E') {
        let mut k = j + 1;
        if k < b.len() && (b[k] == b'+' || b[k] == b'-') {
            k += 1;
        }
        if k < b.len() && b[k].is_ascii_digit() {
            is_float = true;
            j = k;
            while j < b.len() && (b[j].is_ascii_digit() || b[j] == b'_') {
                j += 1;
            }
        }
    }
    // Suffix (u32, f64, …).
    let suffix_start = j;
    while j < b.len() && is_ident_continue(b[j]) {
        j += 1;
    }
    let suffix = &b[suffix_start..j];
    if suffix.starts_with(b"f32") || suffix.starts_with(b"f64") {
        is_float = true;
    }
    (j, is_float)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<&str> {
        lex(src).tokens.iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn comments_and_strings_hide_tokens() {
        let src = r##"
            // HashMap in a comment
            /* HashMap in a block /* nested */ comment */
            let s = "HashMap in a string";
            let r = r#"HashMap raw "quoted" string"#;
            let c = 'H';
            let real = HashMap::new();
        "##;
        let ids = idents(src);
        assert_eq!(ids.iter().filter(|&&t| t == "HashMap").count(), 1);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks.tokens.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(toks.tokens.iter().any(|t| t.kind == TokKind::Char && t.text == "'x'"));
    }

    #[test]
    fn float_detection() {
        let toks = lex("a(0.0, 1e-9, 2.5f64, 7, 0..10, x.1, 3.max(y), 0xff)");
        let floats: Vec<&str> =
            toks.tokens.iter().filter(|t| t.kind == TokKind::Float).map(|t| t.text).collect();
        assert_eq!(floats, vec!["0.0", "1e-9", "2.5f64"]);
        let ints: Vec<&str> =
            toks.tokens.iter().filter(|t| t.kind == TokKind::Int).map(|t| t.text).collect();
        assert!(ints.contains(&"7") && ints.contains(&"0xff"));
    }

    #[test]
    fn directives_are_collected() {
        let src = "let x = 1; // lint: allow(h1, \"why\")\n// lint: query-path\n/// lint: doc\n";
        let l = lex(src);
        assert_eq!(l.directives.len(), 3);
        assert_eq!(l.directives[0].line, 1);
        assert!(l.directives[0].text.starts_with("allow(h1"));
        assert_eq!(l.directives[1].text, "query-path");
    }

    #[test]
    fn multiline_strings_track_lines() {
        let src = "let s = \"a\nb\nc\";\nHashMap";
        let l = lex(src);
        let h = l.tokens.iter().find(|t| t.text == "HashMap").unwrap();
        assert_eq!(h.line, 4);
    }

    #[test]
    fn escaped_newline_continuations_track_lines() {
        let src = "let s = \"first \\\n    second\";\nHashMap";
        let l = lex(src);
        let h = l.tokens.iter().find(|t| t.text == "HashMap").unwrap();
        assert_eq!(h.line, 3);
    }
}
