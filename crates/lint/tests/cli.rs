//! End-to-end tests of the `oracle-lint` binary: the self-check on the real
//! workspace, baseline round trips on a scratch workspace, and exit codes.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_oracle-lint"))
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

/// Builds a throwaway workspace under `CARGO_TARGET_TMPDIR` whose single
/// library file carries `n_unwraps` H1 hits.
fn scratch_workspace(name: &str, n_unwraps: usize) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    // Wipe leftovers from previous runs — a stale baseline would flip the
    // expected exit codes.
    let _ = std::fs::remove_dir_all(&root);
    let src = root.join("crates/core/src");
    std::fs::create_dir_all(&src).expect("mkdir scratch workspace");
    std::fs::write(root.join("Cargo.toml"), "[workspace]\nmembers = []\n").expect("manifest");
    let mut body = String::from("pub fn f(v: &[u32]) -> u32 {\n    let mut acc = 0;\n");
    for i in 0..n_unwraps {
        body.push_str(&format!("    acc += *v.get({i}).unwrap();\n"));
    }
    body.push_str("    acc\n}\n");
    std::fs::write(src.join("debt.rs"), body).expect("write debt.rs");
    root
}

#[test]
fn real_workspace_is_clean_under_deny_warnings() {
    let out = bin()
        .args(["check", "--deny-warnings", "--report"])
        .arg("--root")
        .arg(repo_root())
        .output()
        .expect("run oracle-lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "lint dirty on the real workspace:\n{stdout}\n{stderr}");
    assert!(stdout.contains("— clean"), "missing clean summary:\n{stdout}");
    assert!(
        stdout.contains("7/7 library crate roots carry #![forbid(unsafe_code)]"),
        "unsafe gate summary missing:\n{stdout}"
    );
}

#[test]
fn deny_warnings_fails_on_violations_and_baseline_absorbs_them() {
    let root = scratch_workspace("lint-ws-baseline", 2);
    let baseline = root.join("lint-baseline.json");

    // Dirty without a baseline: exit 1 under --deny-warnings, 0 without.
    let dirty =
        bin().args(["check", "--deny-warnings", "--root"]).arg(&root).output().expect("run");
    assert_eq!(dirty.status.code(), Some(1), "expected exit 1 on unsuppressed violations");
    let warn_only = bin().args(["check", "--root"]).arg(&root).output().expect("run");
    assert_eq!(warn_only.status.code(), Some(0), "warnings alone must not fail");

    // --update-baseline captures the debt, after which CI mode passes.
    let upd =
        bin().args(["check", "--update-baseline", "--root"]).arg(&root).output().expect("run");
    assert!(upd.status.success());
    let text = std::fs::read_to_string(&baseline).expect("baseline written");
    assert!(text.contains("\"rule\": \"h1\""), "baseline should record h1 debt: {text}");
    assert!(text.contains("\"count\": 2"), "baseline should count both hits: {text}");
    let clean =
        bin().args(["check", "--deny-warnings", "--root"]).arg(&root).output().expect("run");
    assert!(clean.status.success(), "baselined workspace should pass CI mode");
}

#[test]
fn stale_baseline_entries_are_reported() {
    let root = scratch_workspace("lint-ws-stale", 1);
    std::fs::write(
        root.join("lint-baseline.json"),
        r#"{
  "version": 1,
  "entries": [
    { "rule": "h1", "file": "crates/core/src/debt.rs", "count": 3 }
  ]
}
"#,
    )
    .expect("write baseline");
    let out = bin().args(["check", "--deny-warnings", "--root"]).arg(&root).output().expect("run");
    assert!(out.status.success(), "over-tolerant baseline still passes");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("stale baseline entry"), "expected ratchet note:\n{stdout}");
}

#[test]
fn deterministic_rules_may_not_be_baselined() {
    let root = scratch_workspace("lint-ws-d1-baseline", 0);
    std::fs::write(
        root.join("lint-baseline.json"),
        r#"{
  "version": 1,
  "entries": [
    { "rule": "d1", "file": "crates/core/src/debt.rs", "count": 1 }
  ]
}
"#,
    )
    .expect("write baseline");
    let out = bin().args(["check", "--root"]).arg(&root).output().expect("run");
    assert_eq!(out.status.code(), Some(2), "d1 baseline entry must be rejected");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("may not be baselined"), "unexpected error text:\n{stderr}");
}

#[test]
fn usage_errors_exit_2() {
    let out = bin().args(["check", "--no-such-flag"]).output().expect("run");
    assert_eq!(out.status.code(), Some(2));
    let out = bin().args(["frobnicate"]).output().expect("run");
    assert_eq!(out.status.code(), Some(2));
    let help = bin().args(["--help"]).output().expect("run");
    assert!(help.status.success());
    assert!(String::from_utf8_lossy(&help.stdout).contains("oracle-lint"));
}
