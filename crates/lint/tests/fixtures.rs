//! Rule-by-rule fixture coverage: every rule has a positive hit, an
//! annotated allow, and (for baselinable rules) a baseline-suppression path.
//! Fixture sources live under `tests/fixtures/`; the workspace walker skips
//! that directory, so the deliberate violations never reach CI.
//!
//! Each fixture is scanned under a *synthetic* workspace-relative path —
//! rule scoping is path-based, so the path picks which rules are armed.

use oracle_lint::baseline::Baseline;
use oracle_lint::rules::{scan_source, FileScan, Rule};
use std::path::Path;

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

fn scan(name: &str, synthetic_path: &str) -> FileScan {
    scan_source(synthetic_path, &fixture(name))
}

/// Unsuppressed hits of `rule`.
fn hits(scan: &FileScan, rule: Rule) -> Vec<u32> {
    scan.violations
        .iter()
        .filter(|v| v.rule == rule && v.allowed.is_none())
        .map(|v| v.line)
        .collect()
}

/// Hits of `rule` suppressed by an inline allow.
fn allowed(scan: &FileScan, rule: Rule) -> Vec<(u32, String)> {
    scan.violations
        .iter()
        .filter(|v| v.rule == rule && v.allowed.is_some())
        .map(|v| (v.line, v.allowed.clone().unwrap_or_default()))
        .collect()
}

#[test]
fn d1_hits_in_deterministic_crates_only() {
    let s = scan("d1_hit.rs", "crates/core/src/fixture.rs");
    assert_eq!(hits(&s, Rule::D1).len(), 2, "use line + return type");
    assert!(s.errors.is_empty());

    // The same source outside the deterministic crates is out of scope.
    let s = scan("d1_hit.rs", "crates/baselines/src/fixture.rs");
    assert!(hits(&s, Rule::D1).is_empty(), "D1 must not fire outside geodesic/core/terrain");
}

#[test]
fn d1_inline_allow_suppresses_with_reason() {
    let s = scan("d1_allow.rs", "crates/terrain/src/fixture.rs");
    assert!(hits(&s, Rule::D1).is_empty());
    let a = allowed(&s, Rule::D1);
    assert_eq!(a.len(), 2);
    assert!(a.iter().all(|(_, reason)| !reason.is_empty()), "reasons must be surfaced");
    assert!(s.errors.is_empty(), "both allows are used: {:?}", s.errors);
}

#[test]
fn d2_hits_wall_clock_thread_and_env() {
    let s = scan("d2_hit.rs", "crates/geodesic/src/fixture.rs");
    let what: Vec<&str> =
        s.violations.iter().filter(|v| v.rule == Rule::D2).map(|v| v.what.as_str()).collect();
    assert!(what.iter().filter(|w| w.contains("Instant")).count() >= 2, "{what:?}");
    assert!(what.iter().any(|w| w.contains("thread::current")), "{what:?}");
    assert!(what.iter().any(|w| w.contains("env::var")), "{what:?}");

    // Binaries under src/bin are CLI front ends, not library code.
    let s = scan("d2_hit.rs", "src/bin/fixture.rs");
    assert!(hits(&s, Rule::D2).is_empty(), "D2 must not fire in bin targets");
}

#[test]
fn d2_inline_allow_suppresses() {
    let s = scan("d2_allow.rs", "crates/core/src/fixture.rs");
    assert!(hits(&s, Rule::D2).is_empty());
    assert_eq!(allowed(&s, Rule::D2).len(), 2);
    assert!(s.errors.is_empty());
}

#[test]
fn d3_fires_only_in_tagged_modules() {
    let s = scan("d3_hit.rs", "crates/core/src/fixture.rs");
    assert!(s.query_path, "fixture carries the query-path tag");
    assert_eq!(hits(&s, Rule::D3).len(), 2, "use line + field type");

    // The identical source without the tag is out of D3 scope: strip it.
    let untagged = fixture("d3_hit.rs").replace("// lint: query-path\n", "");
    let s = scan_source("crates/core/src/fixture.rs", &untagged);
    assert!(!s.query_path);
    assert!(hits(&s, Rule::D3).is_empty(), "D3 only applies to tagged modules");
}

#[test]
fn d3_scratch_arena_allow() {
    let s = scan("d3_allow.rs", "crates/geodesic/src/fixture.rs");
    assert!(hits(&s, Rule::D3).is_empty());
    let a = allowed(&s, Rule::D3);
    assert_eq!(a.len(), 2);
    assert!(a[0].1.contains("scratch arena"), "reason travels with the finding: {a:?}");
    assert!(s.errors.is_empty());
}

#[test]
fn h1_hits_unwrap_expect_panic() {
    let s = scan("h1_hit.rs", "crates/terrain/src/fixture.rs");
    let what: Vec<&str> =
        s.violations.iter().filter(|v| v.rule == Rule::H1).map(|v| v.what.as_str()).collect();
    assert_eq!(what.len(), 3, "{what:?}");
    assert!(what.contains(&"`.unwrap()`"));
    assert!(what.contains(&"`.expect()`"));
    assert!(what.contains(&"`panic!`"));
}

#[test]
fn h1_allow_accepts_panic_alias_and_same_line() {
    let s = scan("h1_allow.rs", "crates/core/src/fixture.rs");
    assert!(hits(&s, Rule::H1).is_empty());
    assert_eq!(allowed(&s, Rule::H1).len(), 2, "line-above and same-line forms both apply");
    assert!(s.errors.is_empty());
}

#[test]
fn h1_baseline_suppression_is_per_file_counted() {
    // Baseline semantics live above scan_source: tolerate up to `count`
    // hits of a baselinable rule per file, surface the rest.
    let mut baseline = Baseline::default();
    baseline.entries.insert((Rule::H1, "crates/terrain/src/fixture.rs".to_string()), 2);
    let s = scan("h1_hit.rs", "crates/terrain/src/fixture.rs");
    let h1 = hits(&s, Rule::H1);
    assert_eq!(h1.len(), 3);
    let tolerated = baseline
        .entries
        .get(&(Rule::H1, "crates/terrain/src/fixture.rs".to_string()))
        .copied()
        .unwrap_or(0) as usize;
    assert_eq!(h1.len() - tolerated, 1, "two baselined, one still surfaced");
}

#[test]
fn h2_hits_float_sum_and_fold() {
    let s = scan("h2_hit.rs", "crates/geodesic/src/fixture.rs");
    let what: Vec<&str> =
        s.violations.iter().filter(|v| v.rule == Rule::H2).map(|v| v.what.as_str()).collect();
    assert_eq!(what.len(), 2, "{what:?}");
    assert!(what.iter().any(|w| w.contains("sum::<f64>")));
    assert!(what.iter().any(|w| w.contains("fold")));
}

#[test]
fn h2_min_max_fold_is_exempt_and_allow_applies() {
    let s = scan("h2_allow.rs", "crates/core/src/fixture.rs");
    assert!(hits(&s, Rule::H2).is_empty(), "min/max folds are order-insensitive");
    assert_eq!(allowed(&s, Rule::H2).len(), 1);
    assert!(s.errors.is_empty());
}

#[test]
fn u1_crate_root_gate() {
    let s = scan("u1_hit.rs", "crates/phash/src/lib.rs");
    assert!(!s.unsafe_gate);
    assert_eq!(hits(&s, Rule::U1).len(), 1, "ungated library root is a violation");

    let s = scan("u1_gated.rs", "crates/phash/src/lib.rs");
    assert!(s.unsafe_gate);
    assert!(hits(&s, Rule::U1).is_empty());
    assert_eq!(s.unsafe_allows, 1, "allow(unsafe_code) sites are counted");

    // Non-root files never raise U1 even without the gate.
    let s = scan("u1_hit.rs", "crates/phash/src/map.rs");
    assert!(hits(&s, Rule::U1).is_empty());
}

#[test]
fn cfg_test_items_are_exempt() {
    let s = scan("cfg_test_exempt.rs", "crates/core/src/fixture.rs");
    assert!(
        s.violations.is_empty(),
        "rules must not fire inside #[cfg(test)] items: {:?}",
        s.violations
    );
}

#[test]
fn malformed_and_unused_directives_are_errors() {
    let s = scan("bad_directive.rs", "crates/core/src/fixture.rs");
    let msgs: Vec<&str> = s.errors.iter().map(|e| e.message.as_str()).collect();
    assert_eq!(msgs.len(), 4, "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("allow needs a reason")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("unknown rule")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("unknown lint directive")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("unused allow")), "{msgs:?}");
}

#[test]
fn baseline_rejects_deterministic_rules() {
    let err = Baseline::parse(
        r#"{"version": 1, "entries": [
            {"rule": "d2", "file": "crates/core/src/x.rs", "count": 1}
        ]}"#,
    )
    .expect_err("d2 must not be baselinable");
    assert!(err.contains("may not be baselined"), "{err}");
}

#[test]
fn baseline_round_trips_canonically() {
    let mut b = Baseline::default();
    b.entries.insert((Rule::H2, "crates/geodesic/src/path.rs".to_string()), 1);
    b.entries.insert((Rule::H1, "crates/terrain/src/dem.rs".to_string()), 2);
    let text = b.to_json();
    let back = Baseline::parse(&text).expect("own output parses");
    assert_eq!(back.entries, b.entries);
    // Canonical order: sorted by (rule, file), independent of insert order.
    let h1_pos = text.find("\"h1\"").expect("h1 entry");
    let h2_pos = text.find("\"h2\"").expect("h2 entry");
    assert!(h1_pos < h2_pos, "entries must be emitted in sorted order:\n{text}");
}
