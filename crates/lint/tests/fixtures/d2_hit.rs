// Fixture: D2 positive — wall-clock and environment inputs in library code.
use std::time::Instant;

pub fn stamp() -> u128 {
    let t0 = Instant::now();
    let who = std::thread::current();
    let _ = who.name();
    let path = std::env::var("ORACLE_PATH").unwrap_or_default();
    let _ = path;
    t0.elapsed().as_nanos()
}
