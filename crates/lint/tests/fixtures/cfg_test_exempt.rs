// Fixture: rules must not fire inside #[cfg(test)] items.
pub fn lib_code() -> u32 {
    7
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn test_only_code_is_exempt() {
        let m: HashMap<u32, u32> = HashMap::new();
        let t = Instant::now();
        assert!(m.is_empty());
        let _ = t.elapsed();
        assert_eq!(super::lib_code(), 7);
        let v: Vec<u32> = vec![1];
        let _ = v.first().unwrap();
    }
}
