// Fixture: H2 — min/max folds are order-insensitive and exempt; a sequential
// sum carries an allow.
pub fn shortest(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

pub fn total(xs: &[f64]) -> f64 {
    // lint: allow(h2, "sequential sum in index order — fixed evaluation order")
    xs.iter().sum::<f64>()
}
