// Fixture: D3 positive — interior mutability in a query-path module.
// lint: query-path
use std::sync::Mutex;

pub struct Handle {
    cache: Mutex<Vec<f64>>,
}

impl Handle {
    pub fn probe(&self) -> usize {
        self.cache.lock().map(|v| v.len()).unwrap_or(0)
    }
}
