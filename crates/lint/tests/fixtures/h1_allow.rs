// Fixture: H1 suppressed via the `panic` alias, same-line and line-above.
pub fn first(v: &[u32]) -> u32 {
    // lint: allow(panic, "callers are documented to pass non-empty slices")
    *v.first().unwrap()
}

pub fn second(v: &[u32]) -> u32 {
    *v.get(1).expect("two elements") // lint: allow(h1, "invariant: len checked by caller")
}
