// Fixture: malformed directives are fatal errors, and an allow that matches
// nothing is an error too (anti-staleness).
// lint: allow(d1)
// lint: allow(z9, "no such rule")
// lint: frobnicate
// lint: allow(h1, "nothing on this or the next line panics")
pub fn fine() -> u32 {
    3
}
