// Fixture: H2 positives — float reductions in a deterministic crate.
pub fn total(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}

pub fn accumulate(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |acc, x| acc + x)
}
