// Fixture: D3 scratch-arena case — tagged query-path, Mutex allowed with a
// written justification.
// lint: query-path
// lint: allow(d3, "scratch arena: per-run buffers behind a lock; results stay bit-identical")
use std::sync::Mutex;

pub struct Arena {
    // lint: allow(d3, "scratch arena: the lock never spans a query answer")
    pool: Mutex<Vec<Vec<u32>>>,
}

impl Arena {
    pub fn take(&self) -> Vec<u32> {
        self.pool.lock().ok().and_then(|mut p| p.pop()).unwrap_or_default()
    }
}
