// Fixture: H1 positives — unwrap/expect/panic! in library code.
pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn second(v: &[u32]) -> u32 {
    *v.get(1).expect("needs two elements")
}

pub fn never() -> ! {
    panic!("unreachable by construction")
}
