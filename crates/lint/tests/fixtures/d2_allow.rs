// Fixture: D2 suppressed by inline allows.
// lint: allow(d2, "timing types for build stats; never feeds oracle data")
use std::time::Instant;

pub fn timed_build() -> f64 {
    // lint: allow(d2, "build timing lands in stats only")
    let t0 = Instant::now();
    t0.elapsed().as_secs_f64()
}
