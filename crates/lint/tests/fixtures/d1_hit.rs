// Fixture: D1 positive — hash-randomized collection in a deterministic crate.
use std::collections::HashMap;

pub fn build_index(pairs: &[(u64, f64)]) -> HashMap<u64, f64> {
    pairs.iter().copied().collect()
}
