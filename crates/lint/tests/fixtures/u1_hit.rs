//! Fixture: U1 positive — a library crate root without the unsafe gate.

pub mod something {}
