// Fixture: D1 suppressed by an inline allow with a written reason.
// lint: allow(d1, "keys are sorted before any iteration reaches oracle data")
use std::collections::HashMap;

pub fn scratch(pairs: &[(u64, f64)]) -> Vec<(u64, f64)> {
    // lint: allow(d1, "drained through a sort on the next line")
    let m: HashMap<u64, f64> = pairs.iter().copied().collect();
    let mut v: Vec<(u64, f64)> = m.into_iter().collect();
    v.sort_unstable_by(|a, b| a.0.cmp(&b.0));
    v
}
