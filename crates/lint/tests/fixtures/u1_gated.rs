//! Fixture: U1 clean — gated crate root with one counted unsafe allow.

#![forbid(unsafe_code)]

#[allow(unsafe_code)]
pub mod something {}
