//! Dependency-free observability for the terrain-oracle workspace.
//!
//! Three small, independent facilities:
//!
//! - [`metrics`] — a registry of named counters, gauges, and log-bucket
//!   histograms. Hot-path updates are single relaxed atomic operations;
//!   registration (the only locking path) happens once per handle.
//!   Snapshots are deterministic `BTreeMap`s and render to a text
//!   exposition format served over the wire by `oracled`.
//! - [`trace`] — scoped spans exported as Chrome trace-event JSON
//!   (`chrome://tracing` / Perfetto). Disabled by default; the disabled
//!   fast path is one relaxed atomic load per span site.
//! - [`log`] — level-filtered structured `key=value` stderr logging.
//!
//! # Determinism contract
//!
//! The workspace's oracle images must be byte-identical regardless of
//! whether telemetry is enabled. This crate therefore never feeds clock
//! or environment values back to its callers' data paths: metric values
//! flow *in* from instrumented code, and the only wall-clock reads live
//! in [`trace`] (annotated for the d2 lint rule), where they decorate
//! trace events and nothing else. Files tagged `// lint: query-path`
//! may only use the atomic handle types ([`Counter`], [`Gauge`],
//! [`Histogram`]); the registry's interior locking stays on the
//! registration path, outside any query.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod log;
pub mod metrics;
pub mod trace;

pub use metrics::{
    global, lookup, Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, Registry,
};
