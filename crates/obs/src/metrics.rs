//! Metrics registry: named counters, gauges, and log-bucket histograms.
//!
//! A [`Registry`] hands out `Arc`-wrapped handles registered by static
//! name. Updates on a handle are single relaxed atomic operations — safe
//! for `// lint: query-path` files, which admit atomics only. The
//! registry's own `Mutex` is touched exclusively during registration and
//! snapshotting, never on a metric update.
//!
//! [`Registry::snapshot`] returns a `BTreeMap` keyed by metric name, so
//! two registries fed identical updates produce identical snapshots —
//! the property `tests/telemetry.rs` pins down. [`Registry::expose`]
//! renders the snapshot in a Prometheus-flavoured text format; [`lookup`]
//! is the matching one-value parser used by `oracle-loadgen`, `bench
//! snapshot`, and the socket tests.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Monotone event counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value (also supports a running max).
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (high-water mark).
    pub fn maximize(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: values 0–3 exactly, then four
/// log-linear sub-buckets per power of two up to `u64::MAX`.
pub const HIST_BUCKETS: usize = 252;

/// Fixed log-bucket histogram of `u64` samples.
///
/// Buckets follow an HdrHistogram-style log-linear layout: each power
/// of two is split into four equal sub-buckets, bounding the relative
/// quantile-estimation error at 25 % (typically ~12.5 %). `observe` is
/// four relaxed atomic operations; `max` is tracked exactly.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Index of the bucket recording value `v`.
pub fn bucket_index(v: u64) -> usize {
    if v < 4 {
        return v as usize;
    }
    let msb = 63 - u64::from(v.leading_zeros());
    let sub = (v >> (msb - 2)) & 3;
    ((msb - 1) * 4 + sub) as usize
}

/// Inclusive upper bound of bucket `i` (saturates at `u64::MAX`).
pub fn bucket_bound(i: usize) -> u64 {
    if i < 4 {
        return i as u64;
    }
    let msb = (i / 4 + 1) as u32;
    let sub = (i % 4) as u128;
    let bound = (1u128 << msb) + (sub + 1) * (1u128 << (msb - 2)) - 1;
    bound.min(u128::from(u64::MAX)) as u64
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((bucket_bound(i), c));
            }
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Frozen copy of a [`Histogram`]: non-empty buckets only, plus exact
/// count/sum/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Exact largest sample (not a bucket bound).
    pub max: u64,
    /// `(inclusive upper bound, count)` for each non-empty bucket, in
    /// ascending bound order.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) as the upper bound of
    /// the bucket holding the rank-`⌈q·count⌉` sample, clamped to the
    /// exact max. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(bound, c) in &self.buckets {
            seen += c;
            if seen >= rank {
                return bound.min(self.max);
            }
        }
        self.max
    }
}

/// One metric's value inside a [`Registry`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotone counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(u64),
    /// Histogram distribution.
    Histogram(HistogramSnapshot),
}

#[derive(Default)]
struct Inner {
    counters: Mutex<BTreeMap<&'static str, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<&'static str, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<Histogram>>>,
}

/// A named-metric registry. Cheap to clone (clones share the metrics).
///
/// Names must be unique across all three kinds — a counter and a gauge
/// with the same name would collide in the snapshot map.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Inner>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // Metric state is a bag of atomics; a panic elsewhere cannot leave
    // it logically torn, so poisoning is ignored.
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns the counter registered as `name`, creating it on first use.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(lock(&self.inner.counters).entry(name).or_default())
    }

    /// Returns the gauge registered as `name`, creating it on first use.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Arc::clone(lock(&self.inner.gauges).entry(name).or_default())
    }

    /// Returns the histogram registered as `name`, creating it on first use.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        Arc::clone(lock(&self.inner.histograms).entry(name).or_default())
    }

    /// Deterministic point-in-time view: metric name → value, ordered
    /// by name. Two registries fed identical updates produce equal maps.
    pub fn snapshot(&self) -> BTreeMap<String, MetricValue> {
        let mut out = BTreeMap::new();
        for (name, c) in lock(&self.inner.counters).iter() {
            out.insert((*name).to_string(), MetricValue::Counter(c.get()));
        }
        for (name, g) in lock(&self.inner.gauges).iter() {
            out.insert((*name).to_string(), MetricValue::Gauge(g.get()));
        }
        for (name, h) in lock(&self.inner.histograms).iter() {
            out.insert((*name).to_string(), MetricValue::Histogram(h.snapshot()));
        }
        out
    }

    /// Renders the snapshot in a Prometheus-flavoured text exposition
    /// format. Histograms emit cumulative `_bucket{le="…"}` lines plus
    /// `_sum`, `_count`, and (non-standard, exact) `_max`.
    pub fn expose(&self) -> String {
        let mut out = String::new();
        for (name, value) in self.snapshot() {
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let mut cum = 0u64;
                    for (bound, c) in &h.buckets {
                        cum += c;
                        out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cum}\n"));
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
                    out.push_str(&format!("{name}_sum {}\n", h.sum));
                    out.push_str(&format!("{name}_count {}\n", h.count));
                    out.push_str(&format!("{name}_max {}\n", h.max));
                }
            }
        }
        out
    }
}

/// Finds the value of the plain sample line `name <value>` in an
/// exposition text (as produced by [`Registry::expose`]). Histogram
/// series resolve via their suffixed lines (`name_count`, `name_max`, …).
pub fn lookup(exposition: &str, name: &str) -> Option<u64> {
    exposition.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse().ok()
    })
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// Process-wide default registry. Library build paths (oracle
/// construction, the geodesic pool and cache) record here; servers use
/// their own per-instance registries so concurrent servers in one
/// process never share counters.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_buckets_up_to_three() {
        for v in 0..4 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_boundaries_are_exact() {
        // Every bucket's bound maps back into the bucket, and bound+1
        // starts the next one.
        for i in 0..HIST_BUCKETS - 1 {
            let bound = bucket_bound(i);
            assert_eq!(bucket_index(bound), i, "bound {bound} of bucket {i}");
            assert_eq!(bucket_index(bound + 1), i + 1, "first value past bucket {i}");
        }
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_bound(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn bucket_bounds_monotone() {
        for i in 1..HIST_BUCKETS {
            assert!(bucket_bound(i) > bucket_bound(i - 1));
        }
    }

    #[test]
    fn log_linear_layout_spot_checks() {
        // Powers of two open a fresh sub-bucket run of width 2^(k-2).
        assert_eq!(bucket_index(4), 4);
        assert_eq!(bucket_index(7), 7);
        assert_eq!(bucket_index(8), 8);
        assert_eq!(bucket_index(9), 8); // [8, 9] share a bucket
        assert_eq!(bucket_index(10), 9);
        assert_eq!(bucket_bound(8), 9);
        assert_eq!(bucket_bound(11), 15);
    }

    #[test]
    fn quantiles_track_known_distribution() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.max, 1000);
        assert_eq!(snap.sum, 500_500);
        // Bucketed estimates overshoot by at most one bucket width (25 %).
        let p50 = snap.quantile(0.50);
        assert!((500..=640).contains(&p50), "p50 {p50}");
        let p99 = snap.quantile(0.99);
        assert!((990..=1000).contains(&p99), "p99 {p99}");
        assert_eq!(snap.quantile(1.0), 1000);
        assert_eq!(snap.quantile(0.0), snap.buckets[0].0);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        assert_eq!(Histogram::default().snapshot().quantile(0.5), 0);
    }

    #[test]
    fn snapshot_is_deterministic_across_registries() {
        let build = |reg: &Registry| {
            reg.counter("zulu_total").add(7);
            reg.gauge("alpha_depth").set(3);
            let h = reg.histogram("mid_hist");
            for v in [1, 5, 900, 900, 17] {
                h.observe(v);
            }
        };
        let (a, b) = (Registry::new(), Registry::new());
        build(&a);
        build(&b);
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.expose(), b.expose());
        // Keys come out name-ordered regardless of registration order.
        let keys: Vec<String> = a.snapshot().into_keys().collect();
        assert_eq!(keys, ["alpha_depth", "mid_hist", "zulu_total"]);
    }

    #[test]
    fn handles_share_state() {
        let reg = Registry::new();
        reg.counter("c").inc();
        reg.counter("c").add(2);
        assert_eq!(reg.counter("c").get(), 3);
        reg.gauge("g").maximize(9);
        reg.gauge("g").maximize(4);
        assert_eq!(reg.gauge("g").get(), 9);
    }

    #[test]
    fn expose_and_lookup_roundtrip() {
        let reg = Registry::new();
        reg.counter("served_total").add(41);
        reg.gauge("depth").set(6);
        reg.histogram("lat").observe(100);
        let text = reg.expose();
        assert_eq!(lookup(&text, "served_total"), Some(41));
        assert_eq!(lookup(&text, "depth"), Some(6));
        assert_eq!(lookup(&text, "lat_count"), Some(1));
        assert_eq!(lookup(&text, "lat_max"), Some(100));
        assert_eq!(lookup(&text, "missing"), None);
        // A name that prefixes another must not match its lines.
        assert_eq!(lookup(&text, "served"), None);
        assert!(text.contains("# TYPE lat histogram\n"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 1\n"));
    }
}
