//! Scoped-span tracing with a Chrome trace-event JSON exporter.
//!
//! Tracing is off by default. While off, [`span`] costs one relaxed
//! atomic load and allocates nothing, so instrumentation can stay in
//! library code permanently. While on, each dropped span appends one
//! complete (`"ph":"X"`) event to a process-wide sink; [`take_events`]
//! drains the sink and [`export_chrome_json`] renders it for
//! `chrome://tracing` / Perfetto (`terrain-oracle build --trace`).
//!
//! This is the only module in the workspace's library code that reads a
//! wall clock. The readings decorate trace events and are never
//! returned to callers, so enabling tracing cannot perturb oracle
//! construction — `tests/telemetry.rs` proves images built with tracing
//! on and off are byte-identical.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
// lint: allow(d2, "trace timestamps only: spans stamp wall time onto trace events; readings never reach oracle data (bit-identity pinned by tests/telemetry.rs)")
use std::time::Instant;

/// One completed span, in Chrome trace-event terms.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Category (`"build"`, `"ssad"`, `"serve"`, …).
    pub cat: &'static str,
    /// Span name (`"tree"`, `"enhanced-edges"`, …).
    pub name: &'static str,
    /// Start, µs since the sink was enabled.
    pub ts_us: u64,
    /// Duration in µs.
    pub dur_us: u64,
    /// Stable per-thread id (assigned in first-span order, not an OS id).
    pub tid: u64,
}

struct Sink {
    // lint: allow(d2, "epoch for relative trace timestamps; compared only against other trace readings")
    epoch: Instant,
    events: Vec<TraceEvent>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: Mutex<Option<Sink>> = Mutex::new(None);
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

fn sink() -> std::sync::MutexGuard<'static, Option<Sink>> {
    // The sink is append-only trace decoration; a panicking holder
    // cannot corrupt it, so poisoning is ignored.
    match SINK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Starts collecting spans into a fresh sink (discarding any events an
/// earlier enable left behind).
pub fn enable() {
    let mut guard = sink();
    // lint: allow(d2, "trace epoch capture; the reading only anchors trace-event timestamps")
    *guard = Some(Sink { epoch: Instant::now(), events: Vec::new() });
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stops collecting. Already-recorded events stay in the sink.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether spans are currently being recorded.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Stops collecting and drains every recorded event.
pub fn take_events() -> Vec<TraceEvent> {
    ENABLED.store(false, Ordering::SeqCst);
    sink().take().map(|s| s.events).unwrap_or_default()
}

struct Started {
    cat: &'static str,
    name: &'static str,
    // lint: allow(d2, "span start time; used only to stamp the trace event on drop")
    start: Instant,
}

/// RAII guard returned by [`span`]; records the event when dropped.
pub struct Span(Option<Started>);

/// Opens a scoped span. A no-op (one atomic load, no allocation) unless
/// tracing is enabled.
pub fn span(cat: &'static str, name: &'static str) -> Span {
    if !ENABLED.load(Ordering::Relaxed) {
        return Span(None);
    }
    // lint: allow(d2, "span start stamp for the optional build trace; never fed back to callers")
    Span(Some(Started { cat, name, start: Instant::now() }))
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(s) = self.0.take() else { return };
        let dur_us = s.start.elapsed().as_micros() as u64;
        let mut guard = sink();
        let Some(sink) = guard.as_mut() else { return };
        // `duration_since` saturates to zero, so a span that raced an
        // `enable` (fresh epoch) records ts 0 rather than panicking.
        let ts_us = s.start.duration_since(sink.epoch).as_micros() as u64;
        sink.events.push(TraceEvent {
            cat: s.cat,
            name: s.name,
            ts_us,
            dur_us,
            tid: TID.with(|t| *t),
        });
    }
}

/// Renders events as Chrome trace-event JSON (`{"traceEvents":[…]}`).
///
/// Span names and categories are static workspace-chosen strings and
/// must not contain `"` or `\`.
pub fn export_chrome_json(events: &[TraceEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
            e.name, e.cat, e.ts_us, e.dur_us, e.tid
        ));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global sink is process-wide state, so everything that toggles
    // it lives in this single test (integration-level coverage is in
    // tests/telemetry.rs, a separate process).
    #[test]
    fn spans_record_only_while_enabled() {
        drop(span("t", "ignored-while-disabled"));
        assert!(take_events().is_empty());

        enable();
        assert!(is_enabled());
        {
            let _outer = span("t", "outer");
            drop(span("t", "inner"));
        }
        disable();
        drop(span("t", "ignored-after-disable"));
        let events = take_events();
        assert_eq!(events.len(), 2);
        // Inner drops first; both carry this thread's tid.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[1].name, "outer");
        assert_eq!(events[0].tid, events[1].tid);
        assert!(events[1].dur_us >= events[0].dur_us);

        let json = export_chrome_json(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("\"name\":\"inner\""));
        assert!(json.contains("\"ph\":\"X\""));
        // A second take finds the sink empty.
        assert!(take_events().is_empty());
    }

    #[test]
    fn empty_export_is_valid_json() {
        assert_eq!(export_chrome_json(&[]), "{\"traceEvents\":[]}");
    }
}
