//! Level-filtered structured logging: one `key=value` line per event on
//! stderr.
//!
//! The filter is a process-wide atomic; the default ([`Level::Error`])
//! keeps library code silent under tests. Binaries raise it from a
//! `--log-level {error,info,debug}` flag (`oracled`). Lines look like:
//!
//! ```text
//! level=info event=conn_open peer=127.0.0.1:51344
//! ```
//!
//! Values containing whitespace, `=`, or `"` are double-quoted. No
//! timestamps: wall clocks stay out of library code (see the d2 lint
//! rule); a supervisor's log pipeline can stamp arrival times.

use std::io::Write;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Failures that lose work or terminate a connection unexpectedly.
    Error = 0,
    /// Lifecycle events: connections, shutdown progress.
    Info = 1,
    /// Per-request noise: Busy rejections, malformed frames.
    Debug = 2,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Parses a `--log-level` value.
pub fn parse_level(s: &str) -> Option<Level> {
    match s {
        "error" => Some(Level::Error),
        "info" => Some(Level::Info),
        "debug" => Some(Level::Debug),
        _ => None,
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Error as u8);

/// Sets the process-wide log filter: events *above* `l` are dropped.
pub fn set_level(l: Level) {
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// Whether events at `l` currently pass the filter.
pub fn enabled(l: Level) -> bool {
    l as u8 <= LEVEL.load(Ordering::Relaxed)
}

/// Emits one structured line if `l` passes the filter. Write errors on
/// stderr are ignored.
pub fn emit(l: Level, event: &str, fields: &[(&str, String)]) {
    if !enabled(l) {
        return;
    }
    let mut line = format!("level={} event={event}", l.as_str());
    for (k, v) in fields {
        let needs_quotes = v.is_empty() || v.contains([' ', '\t', '=', '"']);
        if needs_quotes {
            line.push_str(&format!(" {k}=\"{}\"", v.replace('"', "'")));
        } else {
            line.push_str(&format!(" {k}={v}"));
        }
    }
    let stderr = std::io::stderr();
    let _ = writeln!(stderr.lock(), "{line}");
}

/// [`emit`] at [`Level::Error`].
pub fn error(event: &str, fields: &[(&str, String)]) {
    emit(Level::Error, event, fields);
}

/// [`emit`] at [`Level::Info`].
pub fn info(event: &str, fields: &[(&str, String)]) {
    emit(Level::Info, event, fields);
}

/// [`emit`] at [`Level::Debug`].
pub fn debug(event: &str, fields: &[(&str, String)]) {
    emit(Level::Debug, event, fields);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_exactly_three_levels() {
        assert_eq!(parse_level("error"), Some(Level::Error));
        assert_eq!(parse_level("info"), Some(Level::Info));
        assert_eq!(parse_level("debug"), Some(Level::Debug));
        assert_eq!(parse_level("trace"), None);
        assert_eq!(parse_level(""), None);
    }

    // Global filter state: keep every threshold assertion in one test.
    #[test]
    fn filter_orders_levels() {
        set_level(Level::Error);
        assert!(enabled(Level::Error));
        assert!(!enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(Level::Debug);
        assert!(enabled(Level::Info));
        assert!(enabled(Level::Debug));
        set_level(Level::Error);
    }
}
