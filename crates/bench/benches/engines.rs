//! Substrate benches: the SSAD engines the whole stack stands on, plus the
//! extension features (proximity search, dynamic updates, persistence).

use bench::setup::Workload;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geodesic::engine::{GeodesicEngine, Stop};
use geodesic::ich::IchEngine;
use geodesic::sitespace::VertexSiteSpace;
use geodesic::steiner::{SteinerEngine, SteinerGraph};
use geodesic::EdgeGraphEngine;
use se_oracle::dynamic::DynamicOracle;
use se_oracle::oracle::BuildConfig;
use se_oracle::{ProximityIndex, SeOracle};
use std::hint::black_box;
use std::sync::Arc;
use terrain::gen::Preset;
use terrain::refine::insert_surface_points;

/// One full SSAD per engine on the shared small preset.
fn bench_ssad(c: &mut Criterion) {
    let mesh = Arc::new(Preset::SfSmall.mesh(0.2));
    let mut g = c.benchmark_group("ssad");
    g.sample_size(10);
    g.bench_function("ich-exact", |b| {
        let eng = IchEngine::new(mesh.clone());
        b.iter(|| black_box(eng.ssad(0, Stop::Exhaust)))
    });
    for m in [1usize, 3] {
        g.bench_with_input(BenchmarkId::new("steiner", m), &m, |b, &m| {
            let eng = SteinerEngine::new(SteinerGraph::with_points_per_edge(mesh.clone(), m));
            b.iter(|| black_box(eng.ssad(0, Stop::Exhaust)))
        });
    }
    g.bench_function("edge-graph", |b| {
        let eng = EdgeGraphEngine::new(mesh.clone());
        b.iter(|| black_box(eng.ssad(0, Stop::Exhaust)))
    });
    g.finish();
}

/// Bounded SSAD (the construction's inner loop) vs full propagation.
fn bench_ssad_radius(c: &mut Criterion) {
    let mesh = Arc::new(Preset::SfSmall.mesh(0.2));
    let eng = IchEngine::new(mesh.clone());
    let reach = eng.ssad(0, Stop::Exhaust).dist.iter().cloned().fold(0.0, f64::max);
    let mut g = c.benchmark_group("ssad_radius");
    g.sample_size(10);
    for frac in [25u32, 50, 100] {
        let r = reach * frac as f64 / 100.0;
        g.bench_with_input(BenchmarkId::from_parameter(frac), &r, |b, &r| {
            b.iter(|| black_box(eng.ssad(0, Stop::Radius(r))))
        });
    }
    g.finish();
}

fn built_oracle(n: usize) -> (SeOracle, usize) {
    let w = Workload::preset(Preset::SfSmall, 0.15, n);
    let refined = insert_surface_points(&w.mesh, &w.pois, None).unwrap();
    let mut sites = refined.poi_vertices.clone();
    sites.sort_unstable();
    sites.dedup();
    let n_sites = sites.len();
    let sp = VertexSiteSpace::new(Arc::new(IchEngine::new(Arc::new(refined.mesh))), sites);
    (SeOracle::build(&sp, 0.15, &BuildConfig::default()).unwrap(), n_sites)
}

/// kNN through the tree vs the O(n) brute-force oracle scan.
fn bench_proximity(c: &mut Criterion) {
    let (oracle, n_sites) = built_oracle(48);
    let idx = ProximityIndex::new(&oracle);
    let mut g = c.benchmark_group("proximity");
    g.bench_function("knn-tree-k5", |b| {
        let mut q = 0;
        b.iter(|| {
            q = (q + 1) % n_sites;
            black_box(idx.knn(q, 5))
        })
    });
    g.bench_function("knn-scan-k5", |b| {
        let mut q = 0;
        b.iter(|| {
            q = (q + 1) % n_sites;
            let mut all: Vec<(f64, usize)> =
                (0..n_sites).filter(|&s| s != q).map(|s| (oracle.distance(q, s), s)).collect();
            all.sort_by(|a, b| a.partial_cmp(b).unwrap());
            all.truncate(5);
            black_box(all)
        })
    });
    g.finish();
}

/// Oracle image save/load (persistence extension).
fn bench_persistence(c: &mut Criterion) {
    let (oracle, _) = built_oracle(48);
    let bytes = oracle.save_bytes();
    let mut g = c.benchmark_group("persist");
    g.bench_function("save", |b| b.iter(|| black_box(oracle.save_bytes())));
    g.bench_function("load", |b| b.iter(|| black_box(SeOracle::load_bytes(&bytes).unwrap())));
    g.finish();
}

/// One dynamic insertion (SSAD + tree descent) against a static rebuild.
fn bench_dynamic_insert(c: &mut Criterion) {
    let w = Workload::preset(Preset::SfSmall, 0.15, 32);
    let refined = insert_surface_points(&w.mesh, &w.pois, None).unwrap();
    let mut sites = refined.poi_vertices.clone();
    sites.sort_unstable();
    sites.dedup();
    let space =
        VertexSiteSpace::new(Arc::new(IchEngine::new(Arc::new(refined.mesh))), sites.clone());
    let n = sites.len();
    let initial: Vec<usize> = (0..n - 1).collect();
    let mut g = c.benchmark_group("dynamic");
    g.sample_size(10);
    g.bench_function("insert-one", |b| {
        b.iter_with_setup(
            || {
                DynamicOracle::with_initial(&space, initial.clone(), 0.2, &BuildConfig::default())
                    .unwrap()
            },
            |mut dy| {
                dy.insert(n - 1).unwrap();
                black_box(dy.distance(0, n - 1))
            },
        )
    });
    g.bench_function("static-rebuild", |b| {
        b.iter(|| black_box(DynamicOracle::build(&space, 0.2, &BuildConfig::default()).unwrap()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ssad,
    bench_ssad_radius,
    bench_proximity,
    bench_persistence,
    bench_dynamic_insert
);
criterion_main!(benches);
