//! Criterion microbenchmarks of the pipelines behind the paper's figures,
//! at reduced sizes: oracle construction across ε (Figures 8/13/14),
//! query latency per method (the query-time panels of every figure), and
//! A2A queries (Figure 12).
//!
//! The figure binaries in `src/bin/` regenerate the actual series; these
//! benches track regressions in the same code paths.

use bench::setup::{a2a_query_coords, query_pairs, Workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use se_oracle::oracle::BuildConfig;
use se_oracle::p2p::{EngineKind, P2POracle};
use se_oracle::A2AOracle;
use std::hint::black_box;
use terrain::gen::Preset;

fn workload() -> Workload {
    Workload::preset(Preset::SfSmall, 0.15, 40)
}

/// Figures 8(a)/13(a)/14(a): oracle construction time as ε varies.
fn bench_build_eps(c: &mut Criterion) {
    let w = workload();
    let mut g = c.benchmark_group("build/eps");
    g.sample_size(10);
    for &eps in &[0.25, 0.1] {
        g.bench_with_input(BenchmarkId::new("SE-exact", eps), &eps, |b, &eps| {
            b.iter(|| {
                P2POracle::build(&w.mesh, &w.pois, eps, EngineKind::Exact, &BuildConfig::default())
                    .unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("SE-steiner", eps), &eps, |b, &eps| {
            b.iter(|| {
                P2POracle::build(
                    &w.mesh,
                    &w.pois,
                    eps,
                    EngineKind::Steiner { points_per_edge: 2 },
                    &BuildConfig::default(),
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

/// The query-time panels: SE's O(h) probe vs the baselines' work.
fn bench_query_methods(c: &mut Criterion) {
    let w = workload();
    let eps = 0.1;
    let se = P2POracle::build(&w.mesh, &w.pois, eps, EngineKind::Exact, &BuildConfig::default())
        .unwrap();
    let sp = baselines::SpOracle::build(w.mesh.clone(), 2, usize::MAX, 2).unwrap();
    let kalgo = baselines::KAlgo::new(w.mesh.clone(), 2);
    let pairs = query_pairs(w.pois.len(), 64, 0xBE);

    let mut g = c.benchmark_group("query/method");
    g.bench_function("SE", |b| {
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            black_box(se.distance(s, t))
        })
    });
    g.bench_function("SP-Oracle", |b| {
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            black_box(sp.distance(&w.pois[s], &w.pois[t]))
        })
    });
    g.sample_size(10);
    g.bench_function("K-Algo", |b| {
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            black_box(kalgo.distance(&w.pois[s], &w.pois[t]))
        })
    });
    g.finish();
}

/// Figure 12(d): A2A query latency.
fn bench_a2a_query(c: &mut Criterion) {
    let w = Workload::preset(Preset::SfSmall, 0.12, 8);
    let oracle = A2AOracle::build(w.mesh.clone(), 0.2, Some(1), &BuildConfig::default()).unwrap();
    let coords = a2a_query_coords(&w.mesh, 64, 0xA2A);
    c.bench_function("query/a2a", |b| {
        let mut i = 0;
        b.iter(|| {
            let (p, q) = coords[i % coords.len()];
            i += 1;
            black_box(oracle.distance_xy(p, q))
        })
    });
}

criterion_group!(benches, bench_build_eps, bench_query_methods, bench_a2a_query);
criterion_main!(benches);
