//! Query-throughput microbenchmarks for the serving layer: one batch of
//! 10k pairs answered by individual `distance` calls, by the amortized
//! `distance_many`, and by the pool-sharded parallel driver at fixed and
//! auto-detected thread counts.
//!
//! Each measurement covers the **whole 10k-pair batch**, so the reported
//! time is directly a queries-per-second figure (iters × 10k / elapsed).
//! On a single-core container the 1-thread batch win is the layer-array
//! amortization alone; the N-thread rows record the scaling trajectory on
//! multi-core runners.

use bench::setup::{query_pairs, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use se_oracle::oracle::BuildConfig;
use se_oracle::p2p::{EngineKind, P2POracle};
use se_oracle::serve::QueryHandle;
use std::hint::black_box;
use terrain::gen::Preset;

const BATCH: usize = 10_000;

fn bench_query_batch(c: &mut Criterion) {
    let w = Workload::preset(Preset::SfSmall, 0.3, 60);
    // The query path is engine-independent; the edge-graph build keeps the
    // bench's setup phase cheap.
    let built =
        P2POracle::build(&w.mesh, &w.pois, 0.15, EngineKind::EdgeGraph, &BuildConfig::default())
            .expect("oracle construction");
    let handle = QueryHandle::new(built.into_oracle());
    let pairs: Vec<(u32, u32)> = query_pairs(handle.n_sites(), BATCH, 0xBA7C)
        .into_iter()
        .map(|(s, t)| (s as u32, t as u32))
        .collect();

    let mut g = c.benchmark_group("query_batch");
    g.bench_function(format!("individual/{BATCH}-pairs"), |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(s, t) in &pairs {
                acc += handle.distance(s as usize, t as usize);
            }
            black_box(acc)
        })
    });
    g.bench_function(format!("1-thread/{BATCH}-pairs"), |b| {
        b.iter(|| black_box(handle.distance_many(&pairs)))
    });
    g.bench_function(format!("2-thread/{BATCH}-pairs"), |b| {
        b.iter(|| black_box(handle.distance_many_par(&pairs, 2)))
    });
    let auto = geodesic::pool::resolve_threads(0);
    g.bench_function(format!("auto-{auto}-thread/{BATCH}-pairs"), |b| {
        b.iter(|| black_box(handle.distance_many_par(&pairs, 0)))
    });
    g.finish();
}

criterion_group!(benches, bench_query_batch);
criterion_main!(benches);
