//! Atlas microbenchmarks: what tiling buys at build time and what portal
//! routing costs at query time.
//!
//! * `build/monolithic` vs `build/atlas-2x2` — one whole-mesh oracle
//!   construction against four quarter-mesh tile builds plus the portal
//!   graph, identical sites and ε (the atlas side should win and widen its
//!   lead with mesh size).
//! * `query/intra-tile` vs `query/cross-tile` — 256-pair batches that stay
//!   inside one tile (pure `O(h)` probes) against batches that cross a
//!   seam (portal-graph Dijkstra per pair): the price of routing.
//! * `query/mixed-10k` — a realistic mixed batch through the amortized
//!   scratch, the atlas analogue of `query_batch/1-thread`.

use criterion::{criterion_group, criterion_main, Criterion};
use se_oracle::atlas::{Atlas, AtlasConfig};
use se_oracle::oracle::{BuildConfig, SeOracle};
use se_oracle::p2p::EngineKind;
use se_oracle::serve::pair_stream;
use std::hint::black_box;
use std::sync::Arc;
use terrain::gen::diamond_square;
use terrain::poi::sample_uniform;
use terrain::refine::insert_surface_points;
use terrain::tile::TileGridConfig;

fn bench_atlas(c: &mut Criterion) {
    // Level-6 fractal (4 225 vertices), 120 POIs, edge-graph engine — the
    // same regime as `examples/atlas_region.rs`: big enough that the
    // quarter-mesh SSAD saving beats the portal-site overhead (on smaller
    // fixtures the build rows come out roughly even).
    let eps = 0.15;
    let base = diamond_square(6, 0.6, 0xBE7C).to_mesh();
    let pois = sample_uniform(&base, 120, 0x5EAD);
    let refined = insert_surface_points(&base, &pois, None).expect("refine");
    let mut sites = refined.poi_vertices.clone();
    sites.sort_unstable();
    sites.dedup();
    let mesh = Arc::new(refined.mesh);
    let cfg = AtlasConfig {
        grid: TileGridConfig { portal_spacing: 4, ..Default::default() },
        ..Default::default()
    };

    let mut g = c.benchmark_group("atlas");
    g.bench_function("build/monolithic", |b| {
        b.iter(|| {
            let engine = geodesic::dijkstra::EdgeGraphEngine::new(mesh.clone());
            let space = geodesic::sitespace::VertexSiteSpace::new(Arc::new(engine), sites.clone());
            black_box(SeOracle::build(&space, eps, &BuildConfig::default()).expect("build"))
        })
    });
    g.bench_function("build/atlas-2x2", |b| {
        b.iter(|| {
            black_box(
                Atlas::build_over_vertices(
                    mesh.clone(),
                    sites.clone(),
                    eps,
                    EngineKind::EdgeGraph,
                    &cfg,
                )
                .expect("build"),
            )
        })
    });

    // Query fixtures: split one deterministic stream into intra- and
    // cross-tile batches of equal size.
    let atlas =
        Atlas::build_over_vertices(mesh.clone(), sites.clone(), eps, EngineKind::EdgeGraph, &cfg)
            .expect("build");
    let stream = pair_stream(0xA71A_BE7C, 0, 50_000, atlas.n_sites());
    let mut intra = Vec::new();
    let mut cross = Vec::new();
    for &(s, t) in &stream {
        let bucket =
            if atlas.is_cross_tile(s as usize, t as usize) { &mut cross } else { &mut intra };
        if bucket.len() < 256 {
            bucket.push((s, t));
        }
    }
    assert!(intra.len() == 256 && cross.len() == 256, "stream too short to fill buckets");
    g.bench_function("query/intra-tile/256-pairs", |b| {
        b.iter(|| black_box(atlas.distance_many(&intra)))
    });
    g.bench_function("query/cross-tile/256-pairs", |b| {
        b.iter(|| black_box(atlas.distance_many(&cross)))
    });
    let mixed = pair_stream(0xA71A_00AA, 1, 10_000, atlas.n_sites());
    g.bench_function("query/mixed-10k", |b| b.iter(|| black_box(atlas.distance_many(&mixed))));
    g.finish();
}

criterion_group!(benches, bench_atlas);
criterion_main!(benches);
