//! Ablation benches for the design choices DESIGN.md §6 calls out:
//!
//! * `ablation_query`   — the paper's O(h) query vs the naive O(h²) scan;
//! * `ablation_build`   — enhanced-edge construction vs per-pair SSAD;
//! * `ablation_hash`    — FKS perfect hash vs `std::collections::HashMap`;
//! * `ablation_engine`  — exact vs Steiner vs edge-graph engines at build;
//! * `ablation_select`  — random vs greedy point selection.

use bench::setup::{query_pairs, Workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phash::{pair_key, PerfectMap};
use se_oracle::oracle::{BuildConfig, ConstructionMethod};
use se_oracle::p2p::{EngineKind, P2POracle};
use se_oracle::tree::SelectionStrategy;
use std::collections::HashMap;
use std::hint::black_box;
use terrain::gen::Preset;

fn workload() -> Workload {
    Workload::preset(Preset::SfSmall, 0.15, 40)
}

/// O(h) three-phase query vs O(h²) Cartesian scan (§3.4).
fn ablation_query(c: &mut Criterion) {
    let w = workload();
    let oracle =
        P2POracle::build(&w.mesh, &w.pois, 0.1, EngineKind::Exact, &BuildConfig::default())
            .unwrap();
    let se = oracle.oracle();
    let pairs = query_pairs(se.n_sites(), 64, 7);
    let mut g = c.benchmark_group("ablation_query");
    g.bench_function("efficient-O(h)", |b| {
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            black_box(se.distance(s, t))
        })
    });
    g.bench_function("naive-O(h2)", |b| {
        let mut i = 0;
        b.iter(|| {
            let (s, t) = pairs[i % pairs.len()];
            i += 1;
            black_box(se.distance_naive(s, t).0)
        })
    });
    g.finish();
}

/// Enhanced-edge construction (one SSAD per tree node, §3.5) vs the naive
/// per-pair SSAD construction, on the small preset where both terminate.
fn ablation_build(c: &mut Criterion) {
    let w = Workload::preset(Preset::SfSmall, 0.12, 24);
    let mut g = c.benchmark_group("ablation_build");
    g.sample_size(10);
    for (label, method) in
        [("enhanced", ConstructionMethod::Efficient), ("per-pair-ssad", ConstructionMethod::Naive)]
    {
        g.bench_function(label, |b| {
            let cfg = BuildConfig { method, ..Default::default() };
            b.iter(|| P2POracle::build(&w.mesh, &w.pois, 0.2, EngineKind::Exact, &cfg).unwrap())
        });
    }
    g.finish();
}

/// FKS perfect hash vs std HashMap for node-pair probing (§3.3 indexes the
/// node pair set with perfect hashing; is that worth it?).
fn ablation_hash(c: &mut Criterion) {
    let w = workload();
    let oracle =
        P2POracle::build(&w.mesh, &w.pois, 0.1, EngineKind::Exact, &BuildConfig::default())
            .unwrap();
    let entries: Vec<(u64, f64)> = oracle.oracle().pair_entries().collect();
    let fks = PerfectMap::build(entries.clone(), 99);
    let std_map: HashMap<u64, f64> = entries.iter().copied().collect();
    // Probe mix: half hits, half misses (queries probe absent pairs while
    // scanning the root paths).
    let probes: Vec<u64> = entries
        .iter()
        .map(|&(k, _)| k)
        .chain((0..entries.len() as u32).map(|i| pair_key(i * 2 + 1, i * 7 + 3)))
        .collect();

    let mut g = c.benchmark_group("ablation_hash");
    g.bench_function("fks-perfect", |b| {
        let mut i = 0;
        b.iter(|| {
            let k = probes[i % probes.len()];
            i += 1;
            black_box(fks.get(k))
        })
    });
    g.bench_function("std-hashmap", |b| {
        let mut i = 0;
        b.iter(|| {
            let k = probes[i % probes.len()];
            i += 1;
            black_box(std_map.get(&k))
        })
    });
    g.bench_function("fks-build", |b| b.iter(|| PerfectMap::build(black_box(entries.clone()), 3)));
    g.finish();
}

/// Which geodesic engine should feed the construction? Exact is faithful;
/// Steiner and edge-graph trade error for build speed (DESIGN.md §6).
fn ablation_engine(c: &mut Criterion) {
    let w = Workload::preset(Preset::SfSmall, 0.12, 24);
    let mut g = c.benchmark_group("ablation_engine");
    g.sample_size(10);
    for (label, engine) in [
        ("exact-ich", EngineKind::Exact),
        ("steiner-m2", EngineKind::Steiner { points_per_edge: 2 }),
        ("edge-graph", EngineKind::EdgeGraph),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &engine, |b, &engine| {
            b.iter(|| {
                P2POracle::build(&w.mesh, &w.pois, 0.2, engine, &BuildConfig::default()).unwrap()
            })
        });
    }
    g.finish();
}

/// Random vs greedy point selection (Implementation Detail 1; the paper's
/// Fig 8 finds similar build times, greedy slightly better queries).
fn ablation_select(c: &mut Criterion) {
    let w = Workload::preset(Preset::SfSmall, 0.12, 32);
    let mut g = c.benchmark_group("ablation_select");
    g.sample_size(10);
    for (label, strategy) in
        [("random", SelectionStrategy::Random), ("greedy", SelectionStrategy::Greedy)]
    {
        g.bench_function(label, |b| {
            let cfg = BuildConfig { strategy, ..Default::default() };
            b.iter(|| P2POracle::build(&w.mesh, &w.pois, 0.15, EngineKind::Exact, &cfg).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    ablation_query,
    ablation_build,
    ablation_hash,
    ablation_engine,
    ablation_select
);
criterion_main!(benches);
