//! Path-workload microbenchmarks: what promoting a distance answer to a
//! route costs. `distance_only` is the baseline oracle probe;
//! `shortest_path` adds Steiner-graph backtracking for the polyline;
//! `pois_within_detour` is the pruned dual sweep over the partition tree.

use bench::setup::{query_pairs, Workload};
use criterion::{criterion_group, criterion_main, Criterion};
use se_oracle::oracle::BuildConfig;
use se_oracle::p2p::{EngineKind, P2POracle};
use se_oracle::route::PathIndex;
use se_oracle::serve::QueryHandle;
use std::hint::black_box;
use terrain::gen::Preset;

const PAIRS: usize = 64;

fn bench_path_query(c: &mut Criterion) {
    let w = Workload::preset(Preset::SfSmall, 0.3, 60);
    // The query path is engine-independent; the edge-graph build keeps the
    // bench's setup phase cheap.
    let built =
        P2POracle::build(&w.mesh, &w.pois, 0.15, EngineKind::EdgeGraph, &BuildConfig::default())
            .expect("oracle construction");
    let paths = PathIndex::for_p2p(&built, 3);
    let handle = QueryHandle::new(built.into_oracle()).with_paths(paths);
    let pairs = query_pairs(handle.n_sites(), PAIRS, 0x9A7B);
    let diameter = pairs.iter().map(|&(s, t)| handle.distance(s, t)).fold(0.0f64, f64::max);

    let mut g = c.benchmark_group("path_query");
    g.bench_function(format!("distance_only/{PAIRS}-pairs"), |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(s, t) in &pairs {
                acc += handle.distance(s, t);
            }
            black_box(acc)
        })
    });
    g.bench_function(format!("shortest_path/{PAIRS}-pairs"), |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &(s, t) in &pairs {
                acc += handle.shortest_path(s, t).path.length;
            }
            black_box(acc)
        })
    });
    g.bench_function(format!("pois_within_detour/{PAIRS}-pairs"), |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &(s, t) in &pairs {
                acc += handle.pois_within_detour(s, t, 0.1 * diameter).len();
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_path_query);
criterion_main!(benches);
