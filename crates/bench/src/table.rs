//! Fixed-width table printing and CSV export for experiment output.

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-aligned table that can also be saved as CSV.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row; must match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                let _ = write!(s, "{:>w$}  ", c, w = widths[i]);
            }
            s.trim_end().to_string()
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + widths.len() * 2;
        let _ = writeln!(out, "{}", "-".repeat(total.min(120)));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Writes CSV next to the experiment results (`results/<name>.csv`),
    /// creating the directory if needed. Errors are reported, not fatal.
    pub fn save_csv(&self, name: &str) {
        let dir = Path::new("results");
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("warning: cannot create results/: {e}");
            return;
        }
        let mut csv = String::new();
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let _ =
            writeln!(csv, "{}", self.headers.iter().map(|h| esc(h)).collect::<Vec<_>>().join(","));
        for row in &self.rows {
            let _ = writeln!(csv, "{}", row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
        }
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = std::fs::write(&path, csv) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        } else {
            println!("(saved {})", path.display());
        }
    }
}

/// Formats a duration in the unit the paper's axes use (seconds).
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a duration in milliseconds (query-time axes).
pub fn millis(d: std::time::Duration) -> String {
    format!("{:.4}", d.as_secs_f64() * 1e3)
}

/// Formats a byte count in MB (size axes).
pub fn megabytes(bytes: usize) -> String {
    format!("{:.3}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "long-header", "c"]);
        t.row(vec!["1".into(), "2".into(), "3".into()]);
        t.row(vec!["100".into(), "x".into(), "yy".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.contains("long-header"));
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_bad_row() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
        assert_eq!(millis(std::time::Duration::from_micros(250)), "0.2500");
        assert_eq!(megabytes(1024 * 1024), "1.000");
    }
}
