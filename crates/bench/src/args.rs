//! Minimal command-line parsing shared by the figure binaries.

/// Common experiment options.
#[derive(Debug, Clone, Copy)]
pub struct BenchArgs {
    /// Multiplier on the default mesh sizes.
    pub scale: f64,
    /// Shrink everything for a smoke run.
    pub quick: bool,
    /// Worker threads for parallelizable construction phases (resolved —
    /// `--threads 0` is normalized to the detected parallelism at parse
    /// time).
    pub threads: usize,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self { scale: 1.0, quick: false, threads: geodesic::pool::resolve_threads(0) }
    }
}

impl BenchArgs {
    /// Parses `std::env::args()`; exits with usage on malformed input.
    pub fn parse() -> Self {
        let mut out = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => {
                    let v = args.next().and_then(|s| s.parse().ok());
                    match v {
                        Some(s) if s > 0.0 => out.scale = s,
                        _ => usage_exit("--scale needs a positive number"),
                    }
                }
                "--threads" => {
                    let v: Option<usize> = args.next().and_then(|s| s.parse().ok());
                    match v {
                        Some(t) => out.threads = geodesic::pool::resolve_threads(t),
                        None => usage_exit("--threads needs a non-negative integer (0 = auto)"),
                    }
                }
                "--quick" => out.quick = true,
                "--help" | "-h" => usage_exit(""),
                other => usage_exit(&format!("unknown argument '{other}'")),
            }
        }
        if out.quick {
            out.scale *= 0.25;
        }
        out
    }
}

fn usage_exit(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: <bin> [--scale <f64>] [--threads <n>] [--quick]");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
