//! Timed method runners producing uniform per-method reports.

use baselines::{KAlgo, SpOracle};
use se_oracle::oracle::{BuildConfig, ConstructionMethod};
use se_oracle::p2p::{EngineKind, P2POracle};
use se_oracle::tree::SelectionStrategy;
use se_oracle::A2AOracle;
use std::sync::Arc;
use std::time::{Duration, Instant};
use terrain::poi::SurfacePoint;
use terrain::TerrainMesh;

/// One method's measurements for one experiment point — the quantities on
/// the paper's four axes (building time, oracle size, query time, error).
#[derive(Debug, Clone)]
pub struct MethodReport {
    pub method: String,
    pub build: Duration,
    pub size_bytes: usize,
    /// Mean per-query latency.
    pub query_avg: Duration,
    /// Mean/max relative error vs. the supplied exact distances (NaN when
    /// no reference was supplied).
    pub avg_err: f64,
    pub max_err: f64,
}

fn error_stats(answers: &[f64], exact: Option<&[f64]>) -> (f64, f64) {
    let Some(exact) = exact else {
        return (f64::NAN, f64::NAN);
    };
    let mut sum = 0.0;
    let mut max: f64 = 0.0;
    let mut count = 0usize;
    for (&a, &e) in answers.iter().zip(exact) {
        if e > 0.0 && e.is_finite() {
            let err = (a - e).abs() / e;
            sum += err;
            max = max.max(err);
            count += 1;
        }
    }
    if count == 0 {
        (0.0, 0.0)
    } else {
        (sum / count as f64, max)
    }
}

/// Times a query loop, repeating it until it has run for at least ~50 ms
/// (or `max_reps`), and returns (answers-from-first-rep, avg latency).
fn time_queries<F: FnMut(usize) -> f64>(
    n_queries: usize,
    max_reps: u32,
    mut run: F,
) -> (Vec<f64>, Duration) {
    let mut answers = Vec::with_capacity(n_queries);
    let t0 = Instant::now();
    for q in 0..n_queries {
        answers.push(run(q));
    }
    let first = t0.elapsed();
    let mut total = first;
    let mut reps = 1u32;
    while total < Duration::from_millis(50) && reps < max_reps {
        let t = Instant::now();
        for q in 0..n_queries {
            std::hint::black_box(run(q));
        }
        total += t.elapsed();
        reps += 1;
    }
    (answers, total / (reps * n_queries as u32))
}

/// SE configuration for [`run_se`].
#[derive(Debug, Clone, Copy)]
pub struct SeSetup {
    pub engine: EngineKind,
    pub strategy: SelectionStrategy,
    pub method: ConstructionMethod,
    pub threads: usize,
}

impl Default for SeSetup {
    fn default() -> Self {
        Self {
            engine: EngineKind::Exact,
            strategy: SelectionStrategy::Random,
            method: ConstructionMethod::Efficient,
            threads: 1,
        }
    }
}

/// Builds and measures an SE oracle (P2P).
pub fn run_se(
    label: &str,
    mesh: &TerrainMesh,
    pois: &[SurfacePoint],
    eps: f64,
    setup: SeSetup,
    pairs: &[(usize, usize)],
    exact: Option<&[f64]>,
) -> MethodReport {
    let cfg = BuildConfig {
        strategy: setup.strategy,
        method: setup.method,
        threads: setup.threads,
        ..Default::default()
    };
    let t0 = Instant::now();
    let oracle = P2POracle::build(mesh, pois, eps, setup.engine, &cfg).expect("SE construction");
    let build = t0.elapsed();
    let (answers, query_avg) =
        time_queries(pairs.len(), 10_000, |q| oracle.distance(pairs[q].0, pairs[q].1));
    let (avg_err, max_err) = error_stats(&answers, exact);
    MethodReport {
        method: label.to_string(),
        build,
        size_bytes: oracle.storage_bytes(),
        query_avg,
        avg_err,
        max_err,
    }
}

/// Builds and measures an SE oracle in V2V mode.
pub fn run_se_v2v(
    label: &str,
    mesh: Arc<TerrainMesh>,
    eps: f64,
    setup: SeSetup,
    pairs: &[(usize, usize)],
    exact: Option<&[f64]>,
) -> MethodReport {
    let cfg = BuildConfig {
        strategy: setup.strategy,
        method: setup.method,
        threads: setup.threads,
        ..Default::default()
    };
    let t0 = Instant::now();
    let oracle = P2POracle::build_v2v(mesh, eps, setup.engine, &cfg).expect("SE V2V");
    let build = t0.elapsed();
    let (answers, query_avg) =
        time_queries(pairs.len(), 10_000, |q| oracle.distance(pairs[q].0, pairs[q].1));
    let (avg_err, max_err) = error_stats(&answers, exact);
    MethodReport {
        method: label.to_string(),
        build,
        size_bytes: oracle.storage_bytes(),
        query_avg,
        avg_err,
        max_err,
    }
}

/// Builds and measures SP-Oracle; `None` when the all-pairs index exceeds
/// `budget_bytes` (reported like the paper's out-of-memory series).
#[allow(clippy::too_many_arguments)]
pub fn run_sp_oracle(
    mesh: Arc<TerrainMesh>,
    pois: &[SurfacePoint],
    points_per_edge: usize,
    budget_bytes: usize,
    threads: usize,
    pairs: &[(usize, usize)],
    exact: Option<&[f64]>,
) -> Option<MethodReport> {
    let oracle = match SpOracle::build(mesh, points_per_edge, budget_bytes, threads) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("  SP-Oracle skipped: {e}");
            return None;
        }
    };
    let (answers, query_avg) =
        time_queries(pairs.len(), 1_000, |q| oracle.distance(&pois[pairs[q].0], &pois[pairs[q].1]));
    let (avg_err, max_err) = error_stats(&answers, exact);
    Some(MethodReport {
        method: "SP-Oracle".into(),
        build: oracle.build_time(),
        size_bytes: oracle.storage_bytes(),
        query_avg,
        avg_err,
        max_err,
    })
}

/// Measures SP-Oracle in V2V mode (matrix lookups).
pub fn run_sp_oracle_v2v(
    mesh: Arc<TerrainMesh>,
    points_per_edge: usize,
    budget_bytes: usize,
    threads: usize,
    pairs: &[(usize, usize)],
    exact: Option<&[f64]>,
) -> Option<MethodReport> {
    let oracle = match SpOracle::build(mesh, points_per_edge, budget_bytes, threads) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("  SP-Oracle skipped: {e}");
            return None;
        }
    };
    let (answers, query_avg) = time_queries(pairs.len(), 10_000, |q| {
        oracle.distance_vertices(pairs[q].0 as u32, pairs[q].1 as u32)
    });
    let (avg_err, max_err) = error_stats(&answers, exact);
    Some(MethodReport {
        method: "SP-Oracle".into(),
        build: oracle.build_time(),
        size_bytes: oracle.storage_bytes(),
        query_avg,
        avg_err,
        max_err,
    })
}

/// Measures K-Algo (on-the-fly; build = one-off Steiner graph setup).
pub fn run_kalgo(
    mesh: Arc<TerrainMesh>,
    pois: &[SurfacePoint],
    points_per_edge: usize,
    pairs: &[(usize, usize)],
    exact: Option<&[f64]>,
) -> MethodReport {
    let k = KAlgo::new(mesh, points_per_edge);
    let (answers, query_avg) =
        time_queries(pairs.len(), 2, |q| k.distance(&pois[pairs[q].0], &pois[pairs[q].1]));
    let (avg_err, max_err) = error_stats(&answers, exact);
    MethodReport {
        method: "K-Algo".into(),
        build: k.setup_time(),
        size_bytes: k.storage_bytes(),
        query_avg,
        avg_err,
        max_err,
    }
}

/// Measures K-Algo in V2V mode.
pub fn run_kalgo_v2v(
    mesh: Arc<TerrainMesh>,
    points_per_edge: usize,
    pairs: &[(usize, usize)],
    exact: Option<&[f64]>,
) -> MethodReport {
    let k = KAlgo::new(mesh, points_per_edge);
    let (answers, query_avg) =
        time_queries(pairs.len(), 2, |q| k.distance_vertices(pairs[q].0 as u32, pairs[q].1 as u32));
    let (avg_err, max_err) = error_stats(&answers, exact);
    MethodReport {
        method: "K-Algo".into(),
        build: k.setup_time(),
        size_bytes: k.storage_bytes(),
        query_avg,
        avg_err,
        max_err,
    }
}

/// Builds and measures the A2A oracle of Appendix C on coordinate queries.
pub fn run_a2a(
    mesh: Arc<TerrainMesh>,
    eps: f64,
    points_per_edge: Option<usize>,
    threads: usize,
    coords: &[crate::setup::CoordPair],
) -> (MethodReport, A2AOracle) {
    let cfg = BuildConfig { threads, ..Default::default() };
    let t0 = Instant::now();
    let oracle = A2AOracle::build(mesh, eps, points_per_edge, &cfg).expect("A2A oracle");
    let build = t0.elapsed();
    let (_, query_avg) = time_queries(coords.len(), 100, |q| {
        oracle.distance_xy(coords[q].0, coords[q].1).unwrap_or(f64::NAN)
    });
    (
        MethodReport {
            method: "SE (A2A)".into(),
            build,
            size_bytes: oracle.storage_bytes(),
            query_avg,
            avg_err: f64::NAN,
            max_err: f64::NAN,
        },
        oracle,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::{exact_pair_distances, query_pairs, Workload};
    use terrain::gen::Preset;

    #[test]
    fn se_report_is_consistent() {
        let w = Workload::preset(Preset::SfSmall, 0.15, 12);
        let pairs = query_pairs(w.pois.len(), 20, 3);
        let exact = exact_pair_distances(&w.mesh, &w.pois, &pairs);
        let eps = 0.2;
        let r = run_se("SE", &w.mesh, &w.pois, eps, SeSetup::default(), &pairs, Some(&exact));
        assert!(r.size_bytes > 0);
        assert!(r.query_avg > Duration::ZERO);
        assert!(r.max_err <= eps + 1e-9, "error {} above ε", r.max_err);
        assert!(r.avg_err <= r.max_err);
    }

    #[test]
    fn kalgo_and_sp_agree_on_shared_graph() {
        let w = Workload::preset(Preset::SfSmall, 0.15, 10);
        let pairs = query_pairs(w.pois.len(), 10, 5);
        let sp = run_sp_oracle(w.mesh.clone(), &w.pois, 1, usize::MAX, 1, &pairs, None)
            .expect("within budget");
        let k = run_kalgo(w.mesh.clone(), &w.pois, 1, &pairs, None);
        // SP-Oracle precomputes, K-Algo searches — same substrate, so the
        // size relation must hold the paper's way:
        assert!(sp.size_bytes > k.size_bytes);
    }

    #[test]
    fn sp_budget_produces_none() {
        let w = Workload::preset(Preset::SfSmall, 0.15, 5);
        let pairs = query_pairs(5, 5, 7);
        assert!(run_sp_oracle(w.mesh.clone(), &w.pois, 2, 1000, 1, &pairs, None).is_none());
    }
}
