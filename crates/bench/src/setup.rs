//! Workload construction shared by the experiment binaries.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use terrain::gen::Preset;
use terrain::locate::FaceLocator;
use terrain::poi::{dedup_pois, sample_clustered, SurfacePoint};
use terrain::TerrainMesh;

/// A dataset: terrain + POI set (the paper's Table 2 rows).
pub struct Workload {
    pub name: &'static str,
    pub mesh: Arc<TerrainMesh>,
    pub pois: Vec<SurfacePoint>,
}

impl Workload {
    /// Builds a preset dataset with clustered POIs (OSM-extract stand-in).
    pub fn preset(preset: Preset, scale: f64, n_pois: usize) -> Self {
        let mesh = Arc::new(preset.mesh(scale));
        let locator = FaceLocator::build(&mesh);
        let raw = sample_clustered(&mesh, &locator, n_pois, 6, 0.08, preset.seed() ^ 0xB0B);
        let pois = dedup_pois(&raw, 1e-9);
        Self { name: preset.name(), mesh, pois }
    }
}

/// `count` random ordered POI-index pairs (the paper's "100 queries ...
/// randomly sampling two POIs").
pub fn query_pairs(n_pois: usize, count: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| (rng.random_range(0..n_pois), rng.random_range(0..n_pois))).collect()
}

/// One A2A query: a pair of `(x, y)` surface coordinates.
pub type CoordPair = ((f64, f64), (f64, f64));

/// `count` random coordinate pairs inside the terrain footprint (the
/// paper's A2A query generation, §5.1).
pub fn a2a_query_coords(mesh: &TerrainMesh, count: usize, seed: u64) -> Vec<CoordPair> {
    let mut rng = StdRng::seed_from_u64(seed);
    let s = mesh.stats();
    let (lo, hi) = s.bbox;
    let pick = move |rng: &mut StdRng| (rng.random_range(lo.x..hi.x), rng.random_range(lo.y..hi.y));
    (0..count).map(|_| (pick(&mut rng), pick(&mut rng))).collect()
}

/// Exact geodesic distances for the query pairs, via the exact engine on
/// the POI-refined mesh. Grouped per source to reuse SSAD runs.
pub fn exact_pair_distances(
    mesh: &TerrainMesh,
    pois: &[SurfacePoint],
    pairs: &[(usize, usize)],
) -> Vec<f64> {
    use geodesic::engine::{GeodesicEngine, Stop};
    use geodesic::ich::IchEngine;
    use terrain::refine::insert_surface_points;

    let refined = insert_surface_points(mesh, pois, None).expect("refinement");
    let engine = IchEngine::new(Arc::new(refined.mesh));
    let verts = &refined.poi_vertices;

    // Group queries by source POI.
    let mut by_source: std::collections::HashMap<usize, Vec<usize>> = Default::default();
    for (qi, &(s, _)) in pairs.iter().enumerate() {
        by_source.entry(s).or_default().push(qi);
    }
    let mut out = vec![f64::NAN; pairs.len()];
    for (&s, queries) in &by_source {
        let targets: Vec<u32> = queries.iter().map(|&qi| verts[pairs[qi].1]).collect();
        let r = engine.ssad(verts[s], Stop::Targets(&targets));
        for &qi in queries {
            out[qi] = r.dist[verts[pairs[qi].1] as usize];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builds_with_requested_pois() {
        let w = Workload::preset(Preset::SfSmall, 0.3, 30);
        assert_eq!(w.pois.len(), 30);
        assert!(w.mesh.n_vertices() > 100);
    }

    #[test]
    fn query_pairs_in_range_and_deterministic() {
        let a = query_pairs(10, 50, 3);
        let b = query_pairs(10, 50, 3);
        assert_eq!(a, b);
        assert!(a.iter().all(|&(s, t)| s < 10 && t < 10));
    }

    #[test]
    fn exact_distances_match_direct_queries() {
        use geodesic::engine::GeodesicEngine;
        use geodesic::ich::IchEngine;
        use terrain::gen::Heightfield;
        use terrain::poi::sample_uniform;
        use terrain::refine::insert_surface_points;

        let mesh = Heightfield::flat(5, 5, 1.0, 1.0).to_mesh();
        let pois = sample_uniform(&mesh, 6, 1);
        let pairs = query_pairs(6, 10, 7);
        let exact = exact_pair_distances(&mesh, &pois, &pairs);

        let refined = insert_surface_points(&mesh, &pois, None).unwrap();
        let eng = IchEngine::new(Arc::new(refined.mesh));
        for (qi, &(s, t)) in pairs.iter().enumerate() {
            let d = eng.distance(refined.poi_vertices[s], refined.poi_vertices[t]);
            assert!((exact[qi] - d).abs() < 1e-9);
        }
    }

    #[test]
    fn a2a_coords_inside_bbox() {
        let w = Workload::preset(Preset::SfSmall, 0.2, 5);
        let coords = a2a_query_coords(&w.mesh, 20, 5);
        let s = w.mesh.stats();
        for &((x1, y1), (x2, y2)) in &coords {
            for (x, y) in [(x1, y1), (x2, y2)] {
                assert!(x >= s.bbox.0.x && x <= s.bbox.1.x);
                assert!(y >= s.bbox.0.y && y <= s.bbox.1.y);
            }
        }
    }
}
