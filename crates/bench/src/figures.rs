//! Shared figure drivers (the ε-sweep layout used by Figs 8, 13, 14 and
//! the V2V ε experiment of §5.2.2).

use crate::methods::{run_kalgo, run_kalgo_v2v, run_se, run_se_v2v, SeSetup};
use crate::setup::{query_pairs, Workload};
use crate::table::{megabytes, millis, secs, Table};
use crate::BenchArgs;
use se_oracle::p2p::EngineKind;
use terrain::gen::Preset;

/// The ε-sweep of Figs 13/14: SE vs K-Algo on a full-size preset (the
/// paper drops SP-Oracle here — its index exceeds the memory budget).
pub fn eps_sweep_p2p(preset: Preset, rel_scale: f64, n_pois: usize, args: &BenchArgs, csv: &str) {
    let w = Workload::preset(preset, rel_scale * args.scale, n_pois);
    let n_queries = if args.quick { 25 } else { 100 };
    let pairs = query_pairs(w.pois.len(), n_queries, 0xF13);
    println!(
        "{csv} — {}: N = {} vertices, n = {} POIs\n",
        w.name,
        w.mesh.n_vertices(),
        w.pois.len()
    );

    let mut table = Table::new(
        format!("{csv}: effect of ε on {} (P2P)", w.name),
        &["eps", "method", "build(s)", "size(MB)", "query(ms)"],
    );
    for &eps in &[0.05, 0.1, 0.15, 0.2, 0.25] {
        let m = geodesic::steiner::points_per_edge_for_epsilon(eps).min(3);
        let setup = SeSetup {
            engine: EngineKind::Steiner { points_per_edge: m },
            threads: args.threads,
            ..Default::default()
        };
        let se = run_se("SE", &w.mesh, &w.pois, eps, setup, &pairs, None);
        let k = run_kalgo(w.mesh.clone(), &w.pois, m, &pairs, None);
        for r in [se, k] {
            table.row(vec![
                format!("{eps}"),
                r.method,
                secs(r.build),
                megabytes(r.size_bytes),
                millis(r.query_avg),
            ]);
        }
    }
    table.print();
    table.save_csv(csv);
    println!(
        "shape check (paper): SE query time is orders of magnitude below \
         K-Algo at every ε; build grows as ε shrinks."
    );
}

/// The §5.2.2 V2V ε-sweep on SF-small.
pub fn eps_sweep_v2v(args: &BenchArgs, csv: &str) {
    let w = Workload::preset(Preset::SfSmall, 0.5 * args.scale, 5);
    let n = w.mesh.n_vertices();
    let n_queries = if args.quick { 25 } else { 100 };
    let pairs = query_pairs(n, n_queries, 0xF25);
    println!("{csv} — SF-small V2V: n = N = {n}\n");

    let mut table = Table::new(
        format!("{csv}: effect of ε on SF-small (V2V)"),
        &["eps", "method", "build(s)", "size(MB)", "query(ms)"],
    );
    for &eps in &[0.05, 0.1, 0.15, 0.2, 0.25] {
        let m = geodesic::steiner::points_per_edge_for_epsilon(eps).min(3);
        let setup = SeSetup {
            engine: EngineKind::Steiner { points_per_edge: m },
            threads: args.threads,
            ..Default::default()
        };
        let se = run_se_v2v("SE", w.mesh.clone(), eps, setup, &pairs, None);
        let k = run_kalgo_v2v(w.mesh.clone(), m, &pairs, None);
        for r in [se, k] {
            table.row(vec![
                format!("{eps}"),
                r.method,
                secs(r.build),
                megabytes(r.size_bytes),
                millis(r.query_avg),
            ]);
        }
    }
    table.print();
    table.save_csv(csv);
}
