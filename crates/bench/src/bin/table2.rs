//! Table 2: dataset statistics — vertices, resolution, region covered,
//! POI count — for our stand-in presets (the paper's BH / EP / SF rows).

use bench::setup::Workload;
use bench::table::Table;
use bench::BenchArgs;
use terrain::gen::Preset;

fn main() {
    let args = BenchArgs::parse();
    let mut table = Table::new(
        "Table 2: dataset statistics",
        &["dataset", "vertices", "resolution(m)", "region(km×km)", "POIs"],
    );
    for (preset, n_pois) in [
        (Preset::BearHead, 400),
        (Preset::EaglePeak, 400),
        (Preset::SanFrancisco, 510),
        (Preset::SfSmall, 60),
        (Preset::BearHeadLow, 400),
    ] {
        let w = Workload::preset(preset, args.scale, n_pois);
        let s = w.mesh.stats();
        table.row(vec![
            w.name.into(),
            s.n_vertices.to_string(),
            format!("{:.0}", s.mean_edge_len),
            format!(
                "{:.1}×{:.1}",
                (s.bbox.1.x - s.bbox.0.x) / 1000.0,
                (s.bbox.1.y - s.bbox.0.y) / 1000.0
            ),
            w.pois.len().to_string(),
        ]);
    }
    table.print();
    table.save_csv("table2");
    println!(
        "paper's Table 2 (full size): BH 1.4M @10m 14×10km 4k POIs; EP 1.5M \
         @10m 10.7×14km 4k; SF 170k @30m 14×11.1km 51k. Our presets keep the \
         footprints and scale the vertex counts by --scale."
    );
}
